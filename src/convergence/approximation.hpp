// Simplicial approximation (paper §5, Lemma 2.1 / Lemma 5.3 / Theorem 5.1)
// made executable.
//
// Given a target subdivision A of s^n, we search for the smallest k such
// that the STAR CONDITION can be satisfied level-k-subdivision-wide: assign
// to each vertex v of SDS^k(s^n) (or Bsd^k) a target vertex w with
//     hull(star(v)) subset hull(star(w)),
// plus carrier monotonicity, plus (chromatic variant) color equality.  The
// classical simplicial approximation theorem guarantees such assignments
// exist for all large enough k, and the star condition alone implies the
// resulting vertex map is simplicial -- which we nevertheless re-verify.
//
// This is the paper's §5 reorganization in code: instead of the geometric
// arguments of [12], Lemma 2.1 (existence for Bsd^k) plus the convergence
// construction give the chromatic statement for SDS^k.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "topology/complex.hpp"
#include "topology/simplicial_map.hpp"

namespace wfc::conv {

struct ApproximationResult {
  bool found = false;
  int level = -1;  // the k that worked
  /// The source complex SDS^level(base) (or Bsd^level(base)).
  topo::ChromaticComplex source;
  /// image[v] = target vertex for source vertex v.
  std::vector<topo::VertexId> image;
  std::uint64_t star_checks = 0;  // work counter for the benchmarks

  ApproximationResult() : source(1) {}
};

struct ApproximationOptions {
  int max_level = 4;
  double tol = 1e-9;
};

/// Theorem 5.1: a color- and carrier-preserving simplicial map
/// SDS^k(base) -> target, for the smallest k <= max_level that admits one
/// via the star condition.  `target` must be a chromatic subdivision of the
/// same base simplex, embedded in the same barycentric frame.
ApproximationResult chromatic_approximation(
    const topo::ChromaticComplex& target, const topo::ChromaticComplex& base,
    const ApproximationOptions& options = {});

/// Lemma 2.1: a carrier-preserving (not color-preserving) simplicial map
/// Bsd^k(base) -> target.
ApproximationResult barycentric_approximation(
    const topo::ChromaticComplex& target, const topo::ChromaticComplex& base,
    const ApproximationOptions& options = {});

/// Checks an ApproximationResult against `target`: simplicial,
/// carrier-monotone, and (if `chromatic`) color-preserving.
bool verify_approximation(const ApproximationResult& result,
                          const topo::ChromaticComplex& target,
                          bool chromatic);

}  // namespace wfc::conv
