#include "convergence/approximation.hpp"

#include <algorithm>
#include <cmath>

#include "common/linalg.hpp"
#include "common/rng.hpp"
#include "topology/subdivision.hpp"

namespace wfc::conv {

namespace {

using topo::ChromaticComplex;
using topo::Simplex;
using topo::VertexId;

/// Pre-extracted facet vertex coordinates of a complex.
std::vector<std::vector<std::vector<double>>> facet_coords(
    const ChromaticComplex& c) {
  std::vector<std::vector<std::vector<double>>> out;
  out.reserve(c.num_facets());
  for (const Simplex& f : c.facets()) {
    std::vector<std::vector<double>> verts;
    verts.reserve(f.size());
    for (VertexId v : f) verts.push_back(c.vertex(v).coords);
    out.push_back(std::move(verts));
  }
  return out;
}

bool in_hull(const std::vector<std::vector<double>>& tau,
             const std::vector<double>& point, double tol) {
  std::vector<double> coords;
  if (!linalg::barycentric_coords(tau, point, coords)) return false;
  return linalg::coords_nonnegative(coords, tol);
}

/// Deterministic interior sample points of the simplex spanned by `verts`:
/// the barycenter, points pulled toward each vertex, pairwise-edge-biased
/// points, and a few seeded pseudorandom ones.  All strictly interior.
std::vector<std::vector<double>> interior_samples(
    const std::vector<std::vector<double>>& verts) {
  const std::size_t k = verts.size();
  const std::size_t d = verts[0].size();
  std::vector<std::vector<double>> weights;
  // Barycenter.
  weights.emplace_back(k, 1.0);
  // Pulled toward each vertex (weight 4 vs 1).
  for (std::size_t i = 0; i < k; ++i) {
    std::vector<double> w(k, 1.0);
    w[i] = 4.0;
    weights.push_back(std::move(w));
    // And strongly (weight 16): probes the corner region of the facet.
    std::vector<double> w2(k, 1.0);
    w2[i] = 16.0;
    weights.push_back(std::move(w2));
  }
  // Edge-biased.
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      std::vector<double> w(k, 0.5);
      w[i] = 3.0;
      w[j] = 3.0;
      weights.push_back(std::move(w));
    }
  }
  // Seeded pseudorandom interior points.
  Rng rng(0xC0FFEEu + 31 * k);
  for (int r = 0; r < 8; ++r) {
    std::vector<double> w(k);
    for (double& x : w) x = 0.05 + rng.unit();
    weights.push_back(std::move(w));
  }

  std::vector<std::vector<double>> out;
  out.reserve(weights.size());
  for (const auto& w : weights) {
    double sum = 0.0;
    for (double x : w) sum += x;
    std::vector<double> p(d, 0.0);
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t c = 0; c < d; ++c) p[c] += (w[i] / sum) * verts[i][c];
    }
    out.push_back(std::move(p));
  }
  return out;
}

ApproximationResult approximate(const ChromaticComplex& target,
                                const ChromaticComplex& base, bool chromatic,
                                const ApproximationOptions& options) {
  WFC_REQUIRE(base.num_facets() == 1,
              "approximation: base must be a single simplex");
  WFC_REQUIRE(target.dimension() == base.dimension(),
              "approximation: dimension mismatch");
  ApproximationResult result;
  const auto tcoords = facet_coords(target);

  for (int k = 1; k <= options.max_level; ++k) {
    ChromaticComplex source = chromatic ? topo::iterated_sds(base, k)
                                        : topo::iterated_bsd(base, k);
    const auto scoords = facet_coords(source);

    // For each source facet sigma: the target vertices w such that w lies
    // in EVERY target facet that (detectably) meets sigma's interior --
    // i.e. the candidates for which interior(sigma) is inside star(w).
    // Missing a sliver intersection only ever ADDS candidates; the exact
    // simpliciality verification below catches any resulting bad map and
    // escalates the level.
    std::vector<std::vector<bool>> facet_ok(
        source.num_facets(),
        std::vector<bool>(target.num_vertices(), true));
    for (std::uint32_t si = 0; si < source.num_facets(); ++si) {
      for (const auto& x : interior_samples(scoords[si])) {
        for (std::uint32_t ti = 0; ti < target.num_facets(); ++ti) {
          ++result.star_checks;
          if (!in_hull(tcoords[ti], x, options.tol)) continue;
          // Every sample-containing target facet must contain w: rule out
          // all vertices outside tau.
          std::vector<bool> in_tau(target.num_vertices(), false);
          for (VertexId w : target.facets()[ti]) in_tau[w] = true;
          for (VertexId w = 0; w < target.num_vertices(); ++w) {
            if (!in_tau[w]) facet_ok[si][w] = false;
          }
        }
      }
    }

    std::vector<VertexId> image(source.num_vertices(), topo::kNoVertex);
    bool all_assigned = true;
    for (VertexId v = 0; v < source.num_vertices() && all_assigned; ++v) {
      const auto& sd = source.vertex(v);
      // Candidate = allowed by every incident facet's coverage set, correct
      // color (chromatic) and carrier; among those, prefer the nearest.
      double best_dist = 0.0;
      for (VertexId w = 0; w < target.num_vertices(); ++w) {
        const auto& td = target.vertex(w);
        if (chromatic && td.color != sd.color) continue;
        if (!td.carrier.subset_of(sd.carrier)) continue;
        bool ok = true;
        for (std::uint32_t si : source.facets_containing(v)) {
          if (!facet_ok[si][w]) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        double dist = 0.0;
        for (std::size_t c = 0; c < sd.coords.size(); ++c) {
          const double diff = sd.coords[c] - td.coords[c];
          dist += diff * diff;
        }
        if (image[v] == topo::kNoVertex || dist < best_dist) {
          image[v] = w;
          best_dist = dist;
        }
      }
      if (image[v] == topo::kNoVertex) all_assigned = false;
    }
    if (!all_assigned) continue;

    ApproximationResult attempt;
    attempt.found = true;
    attempt.level = k;
    attempt.source = std::move(source);
    attempt.image = std::move(image);
    attempt.star_checks = result.star_checks;
    // Exact verification; sampling may have overestimated the candidate
    // sets, in which case we refine further.
    if (verify_approximation(attempt, target, chromatic)) return attempt;
  }
  return result;
}

}  // namespace

ApproximationResult chromatic_approximation(
    const ChromaticComplex& target, const ChromaticComplex& base,
    const ApproximationOptions& options) {
  return approximate(target, base, /*chromatic=*/true, options);
}

ApproximationResult barycentric_approximation(
    const ChromaticComplex& target, const ChromaticComplex& base,
    const ApproximationOptions& options) {
  return approximate(target, base, /*chromatic=*/false, options);
}

bool verify_approximation(const ApproximationResult& result,
                          const ChromaticComplex& target, bool chromatic) {
  if (!result.found) return false;
  topo::SimplicialMap map(result.source, target);
  for (VertexId v = 0; v < result.source.num_vertices(); ++v) {
    if (result.image[v] == topo::kNoVertex) return false;
    map.set(v, result.image[v]);
  }
  if (!map.is_simplicial()) return false;
  if (!map.is_carrier_monotone()) return false;
  if (chromatic && !map.is_color_preserving()) return false;
  return true;
}

}  // namespace wfc::conv
