// §5 of the paper, operational: solving chromatic simplex agreement (CSASS)
// by compiling a convergence map, with no backtracking search.
//
// Pipeline (the paper's proof of Theorem 5.1 / Corollary 5.2, run forward):
//   1. chromatic_approximation finds k and a color+carrier-preserving
//      simplicial map phi : SDS^k(s^n) -> A (star condition);
//   2. the decision protocol runs k rounds of iterated immediate snapshot,
//      locates its local state as a vertex of SDS^k(s^n) (Lemma 3.3), and
//      outputs phi(vertex);
//   3. simpliciality of phi makes the outputs of any execution a simplex of
//      A; carrier monotonicity keeps it inside the participants' face --
//      exactly the CSASS specification.
//
// Also provided: the canonical carrier-preserving simplicial map
// SDS(C) -> Bsd(C) ("the obvious map" in the paper's Lemma 5.3 proof),
// sending (P_i, sigma) to the barycenter vertex of sigma.
#pragma once

#include "convergence/approximation.hpp"
#include "tasks/canonical.hpp"
#include "tasks/solvability.hpp"

namespace wfc::conv {

/// Builds a kSolvable SolveResult for `task` (chromatic simplex agreement on
/// its target subdivision) by convergence-map compilation.  Throws
/// std::runtime_error if no approximation level <= options.max_level works.
/// The result can be executed with task::DecisionProtocol.
task::SolveResult solve_simplex_agreement_by_convergence(
    const task::SimplexAgreementTask& task,
    const ApproximationOptions& options = {});

/// The canonical carrier-preserving simplicial map SDS(C) -> Bsd(C):
/// (P_i, sigma) -> barycenter(sigma).  Returns the image vector indexed by
/// vertices of `sds`; requires `sds` == standard_chromatic_subdivision(c)
/// and `bsd` == barycentric_subdivision(c) for the same complex c (matched
/// by vertex keys).
std::vector<topo::VertexId> sds_to_bsd_map(const topo::ChromaticComplex& sds,
                                           const topo::ChromaticComplex& bsd);

}  // namespace wfc::conv
