#include "convergence/convergence.hpp"

#include <sstream>
#include <stdexcept>

#include "protocol/sds_chain.hpp"
#include "topology/subdivision.hpp"

namespace wfc::conv {

task::SolveResult solve_simplex_agreement_by_convergence(
    const task::SimplexAgreementTask& task,
    const ApproximationOptions& options) {
  const int n_plus_1 = task.input().n_colors();
  // The approximation needs an embedded base; the task's input complex is
  // the same abstract simplex but carries no coordinates.
  const topo::ChromaticComplex base = topo::base_simplex(n_plus_1);
  ApproximationResult approx =
      chromatic_approximation(task.output(), base, options);
  if (!approx.found) {
    throw std::runtime_error(
        "convergence: no approximation level <= max_level admits a star-"
        "condition map; raise max_level");
  }

  task::SolveResult result;
  result.status = task::Solvability::kSolvable;
  result.level = approx.level;
  result.chain =
      std::make_shared<proto::SdsChain>(task.input(), approx.level);
  result.decision = approx.image;

  // The chain was rebuilt from the task's (coordinate-free) input; the
  // construction is deterministic, so vertex ids and keys must agree with
  // the approximation's source complex.
  const auto& top = result.chain->top();
  WFC_CHECK(top.num_vertices() == approx.source.num_vertices(),
            "convergence: chain/source vertex count mismatch");
  for (topo::VertexId v = 0; v < top.num_vertices(); ++v) {
    WFC_CHECK(top.vertex(v).key == approx.source.vertex(v).key,
              "convergence: chain/source key mismatch");
  }
  return result;
}

std::vector<topo::VertexId> sds_to_bsd_map(const topo::ChromaticComplex& sds,
                                           const topo::ChromaticComplex& bsd) {
  std::vector<topo::VertexId> image(sds.num_vertices(), topo::kNoVertex);
  for (topo::VertexId v = 0; v < sds.num_vertices(); ++v) {
    // SDS keys are "<color>@id,id,..."; the matching Bsd barycenter vertex
    // has key "b@[id id ...]".
    const std::string& key = sds.vertex(v).key;
    const auto at = key.find('@');
    WFC_REQUIRE(at != std::string::npos,
                "sds_to_bsd_map: source is not an SDS complex");
    std::ostringstream bkey;
    bkey << "b@[";
    bool first = true;
    std::size_t pos = at + 1;
    while (pos < key.size()) {
      std::size_t comma = key.find(',', pos);
      if (comma == std::string::npos) comma = key.size();
      if (!first) bkey << ' ';
      bkey << key.substr(pos, comma - pos);
      first = false;
      pos = comma + 1;
    }
    bkey << ']';
    const topo::VertexId w = bsd.find_vertex(bkey.str());
    WFC_CHECK(w != topo::kNoVertex,
              "sds_to_bsd_map: no barycenter vertex for " + key);
    image[v] = w;
  }
  return image;
}

}  // namespace wfc::conv
