// The paper's main construction (§4, Figure 2): emulating the k-shot SWMR
// atomic snapshot protocol (Figure 1) in the iterated immediate snapshot
// model.
//
// Emulator P^s_i carries a set of tuples through consecutive one-shot
// immediate snapshot memories M_j.  To emulate P_i's sq-th write of `val` it
// submits (its union so far) ∪ {(i, sq, val)} and re-submits the union of
// what it receives until (i, sq, val) is in the INTERSECTION of the sets it
// receives -- at which point every processor it can see has adopted the
// tuple, so the write has happened.  SnapshotReads work the same way with
// the placeholder tuple (i, sq, ?), and the returned view takes, per cell,
// the highest-seq non-placeholder tuple in the intersection.
//
// The emulation is NONBLOCKING, not wait-free (paper, end of §4): a single
// operation can be overtaken arbitrarily often while some other emulator
// makes progress.  Because Figure 1 protocols are k-shot (bounded -- Lemma
// 3.1), every emulator nevertheless finishes: overtakers eventually halt.
//
// Client protocols use the same (init, on_scan) shape as the direct
// simulated atomic-snapshot model (runtime/sim_snapshot.hpp), so identical
// client code runs in both worlds -- that is what the correctness
// experiments compare.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "emulation/tuple.hpp"
#include "runtime/adversary.hpp"
#include "runtime/sim_iis.hpp"
#include "runtime/sim_snapshot.hpp"

namespace wfc::emu {

/// One completed emulated operation, for history checking.
struct EmulatedOp {
  int proc = 0;
  int seq = 0;           // Figure 1's sq
  bool is_write = false;
  int value = 0;         // written value (writes only)
  /// Snapshot view (snapshots only): per cell, (writer seq, value) of the
  /// latest write observed, or nullopt if the cell was still empty.
  std::vector<std::optional<std::pair<int, int>>> view;
  int start_round = 0;  // index of the first IIS memory used by this op
  int end_round = 0;    // index of the IIS memory where it completed
};

/// Per-emulator state machine.  Drive it with initial_submission() once and
/// then on_round() per IIS round; a nullopt return means the emulated
/// processor has decided and left.
class EmulatorCore {
 public:
  using OnScan =
      std::function<rt::Step<int>(int, int, const rt::MemoryView<int>&)>;

  /// n_procs: emulated processors (cells).  init/on_scan: the Figure 1
  /// client protocol of this processor.
  EmulatorCore(int id, int n_procs, std::function<int(int)> init,
               OnScan on_scan);

  /// The set submitted to M_0: {(i, 1, init(i))}.
  [[nodiscard]] TupleSet initial_submission();

  /// Processes the output of the IIS round `round` (the (proc, set) pairs
  /// this emulator received).  Returns the next submission, or nullopt when
  /// the client protocol halted.
  std::optional<TupleSet> on_round(
      int round, const std::vector<std::pair<int, TupleSet>>& received);

  [[nodiscard]] const std::vector<EmulatedOp>& log() const noexcept {
    return log_;
  }

  /// The operation submitted but not yet completed, if any (an emulator
  /// stopped mid-operation -- crashed or out of rounds).  Its end_round is
  /// INT_MAX: the op never linearized from this emulator's point of view,
  /// but its VALUE may legitimately appear in survivors' snapshots (they
  /// adopted the tuple before the crash), so crash-aware executors append
  /// pending writes to the log before handing histories to check_history.
  [[nodiscard]] std::optional<EmulatedOp> pending() const;

  [[nodiscard]] int id() const noexcept { return id_; }

 private:
  enum class Phase { kWrite, kRead };

  [[nodiscard]] Tuple target() const;
  std::vector<std::optional<std::pair<int, int>>> extract_view(
      const TupleSet& inter) const;

  int id_;
  int n_procs_;
  std::function<int(int)> init_;
  OnScan on_scan_;

  Phase phase_ = Phase::kWrite;
  int sq_ = 1;
  int value_ = 0;
  int op_start_round_ = 0;
  bool started_ = false;
  bool halted_ = false;
  std::vector<EmulatedOp> log_;
};

struct EmulationResult {
  /// Per emulated processor: its completed operation log.
  std::vector<std::vector<EmulatedOp>> ops;
  /// IIS memories consumed in total (max over processors of last round + 1).
  int rounds_used = 0;
  /// Per processor, number of WriteReads (IIS steps) it performed.
  std::vector<int> iis_steps;
};

/// Runs the emulation in the simulated IIS model under `adversary`.
/// Throws std::logic_error if some emulator is still running after
/// max_rounds (pick max_rounds generously; see the starvation note above).
EmulationResult run_emulation_simulated(
    int n_procs, rt::Adversary& adversary, int max_rounds,
    const std::function<int(int)>& init, const EmulatorCore::OnScan& on_scan);

/// Runs the emulation on real threads over register-based one-shot
/// immediate snapshots.
EmulationResult run_emulation_threads(int n_procs, int max_rounds,
                                      const std::function<int(int)>& init,
                                      const EmulatorCore::OnScan& on_scan);

/// Convenience client: the Figure 1 k-shot full-information protocol with
/// interned views -- each processor writes its id, then writes an interned
/// encoding of each snapshot it takes, halting after `shots` snapshots.
/// Returns (init, on_scan) closures over a shared intern table.
struct FullInfoClient {
  explicit FullInfoClient(int shots);

  std::function<int(int)> init() const;
  EmulatorCore::OnScan on_scan();

 private:
  int shots_;
};

}  // namespace wfc::emu
