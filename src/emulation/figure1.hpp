// Figure 1 run NATIVELY: the k-shot SWMR atomic snapshot protocol executed
// by real threads against the wait-free atomic snapshot object of
// registers/atomic_snapshot.hpp.
//
// The run produces the same EmulatedOp history format as the §4 emulation,
// timestamped with a global logical clock, so emu::check_history validates
// both stacks with one checker:
//
//     Figure 1 on AtomicSnapshot (native)    --+
//                                               +-- same checker, same spec
//     Figure 1 via Figure 2 on IIS (emulated) --+
//
// That cross-validation is the operational form of Proposition 4.1: the
// emulation implements the same object the native run uses.
#pragma once

#include "emulation/emulator.hpp"

namespace wfc::emu {

/// Runs every processor's Figure 1 client (same (init, on_scan) shape as
/// the emulator) on its own thread against a shared AtomicSnapshot.
/// start/end "rounds" in the returned ops are logical-clock timestamps.
EmulationResult run_figure1_threads(int n_procs,
                                    const std::function<int(int)>& init,
                                    const EmulatorCore::OnScan& on_scan);

}  // namespace wfc::emu
