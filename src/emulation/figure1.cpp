#include "emulation/figure1.hpp"

#include <atomic>
#include <thread>

#include "registers/atomic_snapshot.hpp"

namespace wfc::emu {

EmulationResult run_figure1_threads(int n_procs,
                                    const std::function<int(int)>& init,
                                    const EmulatorCore::OnScan& on_scan) {
  WFC_REQUIRE(n_procs >= 1 && n_procs <= kMaxColors,
              "run_figure1_threads: bad n_procs");

  struct Cell {
    int seq = 0;
    int value = 0;
  };
  reg::AtomicSnapshot<Cell> mem(n_procs);
  std::atomic<int> clock{0};

  EmulationResult result;
  result.ops.resize(static_cast<std::size_t>(n_procs));
  result.iis_steps.assign(static_cast<std::size_t>(n_procs), 0);

  auto body = [&](int p) {
    auto& log = result.ops[static_cast<std::size_t>(p)];
    int value = init(p);
    for (int sq = 1;; ++sq) {
      // Write C_p.
      EmulatedOp write_op;
      write_op.proc = p;
      write_op.seq = sq;
      write_op.is_write = true;
      write_op.value = value;
      write_op.start_round = clock.fetch_add(1, std::memory_order_acq_rel);
      mem.update(p, Cell{sq, value});
      write_op.end_round = clock.fetch_add(1, std::memory_order_acq_rel);
      log.push_back(std::move(write_op));

      // SnapshotRead C_0..C_n.
      EmulatedOp snap_op;
      snap_op.proc = p;
      snap_op.seq = sq;
      snap_op.start_round = clock.fetch_add(1, std::memory_order_acq_rel);
      const auto view = mem.scan();
      snap_op.end_round = clock.fetch_add(1, std::memory_order_acq_rel);
      snap_op.view.resize(static_cast<std::size_t>(n_procs));
      rt::MemoryView<int> values(static_cast<std::size_t>(n_procs));
      for (int q = 0; q < n_procs; ++q) {
        const auto& cell = view[static_cast<std::size_t>(q)];
        if (cell.has_value()) {
          snap_op.view[static_cast<std::size_t>(q)] =
              std::make_pair(cell->seq, cell->value);
          values[static_cast<std::size_t>(q)] = cell->value;
        }
      }
      log.push_back(std::move(snap_op));
      result.iis_steps[static_cast<std::size_t>(p)] += 2;

      rt::Step<int> step = on_scan(p, sq, values);
      if (step.kind == rt::Step<int>::Kind::kHalt) return;
      value = step.next;
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n_procs));
  for (int p = 0; p < n_procs; ++p) threads.emplace_back(body, p);
  for (auto& t : threads) t.join();
  result.rounds_used = clock.load(std::memory_order_acquire);
  return result;
}

}  // namespace wfc::emu
