#include "emulation/emulator.hpp"

#include <limits>
#include <map>
#include <memory>
#include <mutex>

#include "runtime/thread_iis.hpp"

namespace wfc::emu {

EmulatorCore::EmulatorCore(int id, int n_procs, std::function<int(int)> init,
                           OnScan on_scan)
    : id_(id), n_procs_(n_procs), init_(std::move(init)),
      on_scan_(std::move(on_scan)) {
  WFC_REQUIRE(id >= 0 && id < n_procs, "EmulatorCore: bad id");
}

Tuple EmulatorCore::target() const {
  if (phase_ == Phase::kWrite) return Tuple{id_, sq_, false, value_};
  return Tuple{id_, sq_, true, 0};
}

std::vector<std::optional<std::pair<int, int>>> EmulatorCore::extract_view(
    const TupleSet& inter) const {
  // Per cell, the non-placeholder tuple with the highest seq (Figure 2's
  // SnapshotRead epilogue).
  std::vector<std::optional<std::pair<int, int>>> view(
      static_cast<std::size_t>(n_procs_));
  for (const Tuple& t : inter.tuples()) {
    if (t.placeholder) continue;
    auto& cell = view[static_cast<std::size_t>(t.id)];
    if (!cell.has_value() || cell->first < t.seq) {
      cell = std::make_pair(t.seq, t.value);
    }
  }
  return view;
}

TupleSet EmulatorCore::initial_submission() {
  WFC_REQUIRE(!started_, "EmulatorCore: initial_submission called twice");
  started_ = true;
  value_ = init_(id_);
  phase_ = Phase::kWrite;
  sq_ = 1;
  op_start_round_ = 0;
  return TupleSet({target()});
}

std::optional<TupleSet> EmulatorCore::on_round(
    int round, const std::vector<std::pair<int, TupleSet>>& received) {
  WFC_REQUIRE(started_, "EmulatorCore: on_round before initial_submission");
  WFC_REQUIRE(!received.empty(), "EmulatorCore: empty round output");

  // \S and [S over the sets this emulator received (its own included).
  TupleSet inter = received.front().second;
  TupleSet uni = received.front().second;
  for (std::size_t i = 1; i < received.size(); ++i) {
    inter = inter.intersect(received[i].second);
    uni = uni.unite(received[i].second);
  }

  const Tuple t = target();
  if (!inter.contains(t)) {
    return uni;  // overtaken; resubmit the union and retry
  }

  // Operation complete at memory `round`.
  EmulatedOp op;
  op.proc = id_;
  op.seq = sq_;
  op.start_round = op_start_round_;
  op.end_round = round;
  op_start_round_ = round + 1;

  if (phase_ == Phase::kWrite) {
    op.is_write = true;
    op.value = value_;
    log_.push_back(std::move(op));
    phase_ = Phase::kRead;
    return uni.with(target());
  }

  op.is_write = false;
  op.view = extract_view(inter);
  rt::MemoryView<int> values(op.view.size());
  for (std::size_t c = 0; c < op.view.size(); ++c) {
    if (op.view[c].has_value()) values[c] = op.view[c]->second;
  }
  const int completed_sq = sq_;
  log_.push_back(std::move(op));

  rt::Step<int> step = on_scan_(id_, completed_sq, values);
  if (step.kind == rt::Step<int>::Kind::kHalt) {
    halted_ = true;
    return std::nullopt;
  }
  phase_ = Phase::kWrite;
  ++sq_;
  value_ = step.next;
  return uni.with(target());
}

std::optional<EmulatedOp> EmulatorCore::pending() const {
  if (!started_ || halted_) return std::nullopt;
  EmulatedOp op;
  op.proc = id_;
  op.seq = sq_;
  op.is_write = (phase_ == Phase::kWrite);
  if (op.is_write) op.value = value_;
  op.start_round = op_start_round_;
  op.end_round = std::numeric_limits<int>::max();  // never completed
  return op;
}

namespace {

EmulationResult collect(std::vector<EmulatorCore>& cores, int rounds_used,
                        std::vector<int> iis_steps) {
  EmulationResult out;
  out.rounds_used = rounds_used;
  out.iis_steps = std::move(iis_steps);
  out.ops.reserve(cores.size());
  for (const EmulatorCore& core : cores) out.ops.push_back(core.log());
  return out;
}

}  // namespace

EmulationResult run_emulation_simulated(int n_procs, rt::Adversary& adversary,
                                        int max_rounds,
                                        const std::function<int(int)>& init,
                                        const EmulatorCore::OnScan& on_scan) {
  std::vector<EmulatorCore> cores;
  cores.reserve(static_cast<std::size_t>(n_procs));
  for (int p = 0; p < n_procs; ++p) {
    cores.emplace_back(p, n_procs, init, on_scan);
  }
  std::function<TupleSet(int)> iis_init = [&](int p) {
    return cores[static_cast<std::size_t>(p)].initial_submission();
  };
  std::function<rt::Step<TupleSet>(int, int, const rt::IisSnapshot<TupleSet>&)>
      iis_view = [&](int p, int round, const rt::IisSnapshot<TupleSet>& snap) {
        auto next =
            cores[static_cast<std::size_t>(p)].on_round(round, snap);
        if (!next.has_value()) return rt::Step<TupleSet>::halt();
        return rt::Step<TupleSet>::cont(std::move(*next));
      };
  rt::IisRunStats stats =
      rt::run_iis<TupleSet>(n_procs, adversary, max_rounds, iis_init, iis_view);
  return collect(cores, stats.rounds_executed, stats.rounds_taken);
}

EmulationResult run_emulation_threads(int n_procs, int max_rounds,
                                      const std::function<int(int)>& init,
                                      const EmulatorCore::OnScan& on_scan) {
  std::vector<EmulatorCore> cores;
  cores.reserve(static_cast<std::size_t>(n_procs));
  for (int p = 0; p < n_procs; ++p) {
    cores.emplace_back(p, n_procs, init, on_scan);
  }
  std::function<TupleSet(int)> iis_init = [&](int p) {
    return cores[static_cast<std::size_t>(p)].initial_submission();
  };
  std::function<rt::Step<TupleSet>(int, int, const rt::IisSnapshot<TupleSet>&)>
      iis_view = [&](int p, int round, const rt::IisSnapshot<TupleSet>& snap) {
        auto next =
            cores[static_cast<std::size_t>(p)].on_round(round, snap);
        if (!next.has_value()) return rt::Step<TupleSet>::halt();
        return rt::Step<TupleSet>::cont(std::move(*next));
      };
  std::vector<int> steps =
      rt::run_iis_threads<TupleSet>(n_procs, max_rounds, iis_init, iis_view);
  int rounds_used = 0;
  for (int s : steps) rounds_used = std::max(rounds_used, s);
  return collect(cores, rounds_used, std::move(steps));
}

// ---------------------------------------------------------------------------
// FullInfoClient
// ---------------------------------------------------------------------------

namespace {

/// Shared, thread-safe intern table for full-information views.
class ViewIntern {
 public:
  int intern(const rt::MemoryView<int>& view) {
    std::vector<int> key;
    key.reserve(view.size());
    for (const auto& cell : view) key.push_back(cell.value_or(-1));
    std::scoped_lock lock(mu_);
    auto [it, inserted] = index_.emplace(std::move(key),
                                         static_cast<int>(index_.size()) + 1000);
    return it->second;
  }

 private:
  std::mutex mu_;
  std::map<std::vector<int>, int> index_;
};

}  // namespace

struct FullInfoClientState {
  int shots;
  ViewIntern intern;
};

FullInfoClient::FullInfoClient(int shots) : shots_(shots) {
  WFC_REQUIRE(shots >= 1, "FullInfoClient: shots must be >= 1");
}

std::function<int(int)> FullInfoClient::init() const {
  return [](int p) { return p; };
}

EmulatorCore::OnScan FullInfoClient::on_scan() {
  auto state = std::make_shared<FullInfoClientState>();
  state->shots = shots_;
  return [state](int /*p*/, int k, const rt::MemoryView<int>& view) {
    const int encoded = state->intern.intern(view);
    if (k >= state->shots) return rt::Step<int>::halt();
    return rt::Step<int>::cont(encoded);
  };
}

}  // namespace wfc::emu
