// The reverse emulation (§3.5's "obvious" direction): running an iterated
// immediate snapshot protocol INSIDE the SWMR atomic-snapshot model.
//
// Together with Figure 2 (emulation/emulator.hpp -- the paper's main
// result, AS-in-IIS) this closes the equivalence circle operationally:
// any IIS protocol runs in atomic-snapshot memory and vice versa, so the
// two models solve exactly the same wait-free tasks.
//
// Construction: each one-shot memory M_r is realized by the Borowsky-Gafni
// descending-levels algorithm [8].  Because the snapshot model gives each
// processor a single cell, the cell holds the processor's full PER-ROUND
// history (round -> (level, value)): M_r's register state is the round-r
// projection of the cells, and a processor that already moved past M_r has
// its final M_r record frozen in place -- exactly the persistence the IIS
// model gives earlier memories.
//
// Wait-freedom: one IIS round costs at most n+1 level descents, each one
// write + one snapshot, so a b-round protocol finishes within
// 2 * b * (n+1) appearances per processor on ANY schedule.
#pragma once

#include <functional>
#include <vector>

#include "runtime/sim_iis.hpp"
#include "runtime/sim_snapshot.hpp"

namespace wfc::emu {

struct ReverseEmulationStats {
  /// Snapshot-model appearances (writes + scans) consumed per processor.
  std::vector<int> ops_taken;
  /// IIS rounds (WriteReads) each processor completed.
  std::vector<int> rounds_completed;
};

/// Runs the IIS protocol (same (init, on_view) shape as rt::run_iis) in the
/// simulated atomic-snapshot model under `schedule`.  Throws
/// std::logic_error if the schedule ends before every processor halts;
/// 2 * max_rounds * (n+1) appearances per processor always suffice.
template <typename Value>
ReverseEmulationStats run_iis_in_snapshot_model(
    int n_procs, const std::vector<Color>& schedule,
    const std::function<Value(int)>& init,
    const std::function<rt::Step<Value>(int, int,
                                        const rt::IisSnapshot<Value>&)>&
        on_view);

/// Convenience: a fair schedule long enough for any b-round IIS protocol.
std::vector<Color> reverse_emulation_schedule(int n_procs, int max_rounds);

// ---------------------------------------------------------------------------
// Implementation.
// ---------------------------------------------------------------------------

namespace detail {

template <typename Value>
struct RoundRecord {
  int level = 0;  // current level in M_round's descent
  Value value{};
};

/// A processor's cell: its record for every round it has touched.
template <typename Value>
using CellHistory = std::vector<RoundRecord<Value>>;  // index = round

}  // namespace detail

template <typename Value>
ReverseEmulationStats run_iis_in_snapshot_model(
    int n_procs, const std::vector<Color>& schedule,
    const std::function<Value(int)>& init,
    const std::function<rt::Step<Value>(int, int,
                                        const rt::IisSnapshot<Value>&)>&
        on_view) {
  using Record = detail::RoundRecord<Value>;
  using Cell = detail::CellHistory<Value>;

  // Per-processor simulation state (driven by the snapshot-model callbacks).
  struct Sim {
    int round = 0;
    int level = 0;
    Value value{};
    Cell history;
  };
  std::vector<Sim> sims(static_cast<std::size_t>(n_procs));

  ReverseEmulationStats stats;
  stats.rounds_completed.assign(static_cast<std::size_t>(n_procs), 0);

  std::function<Cell(int)> cell_init = [&](int p) {
    Sim& sim = sims[static_cast<std::size_t>(p)];
    sim.round = 0;
    sim.level = n_procs;  // n+1 in paper terms (levels n+1 .. 1)
    sim.value = init(p);
    sim.history.push_back(Record{sim.level, sim.value});
    return sim.history;
  };

  std::function<rt::Step<Cell>(int, int, const rt::MemoryView<Cell>&)>
      on_scan = [&](int p, int /*k*/, const rt::MemoryView<Cell>& view) {
        Sim& sim = sims[static_cast<std::size_t>(p)];
        // Collect the round-r projection: who is at level <= mine in M_r?
        rt::IisSnapshot<Value> seen;
        for (int j = 0; j < n_procs; ++j) {
          const auto& cell = view[static_cast<std::size_t>(j)];
          if (!cell.has_value()) continue;
          const Cell& hist = *cell;
          if (static_cast<int>(hist.size()) <= sim.round) continue;
          const Record& rec = hist[static_cast<std::size_t>(sim.round)];
          if (rec.level <= sim.level) seen.emplace_back(j, rec.value);
        }
        if (static_cast<int>(seen.size()) >= sim.level) {
          // M_round's WriteRead is complete; hand the view to the protocol.
          ++stats.rounds_completed[static_cast<std::size_t>(p)];
          rt::Step<Value> step = on_view(p, sim.round, seen);
          if (step.kind == rt::Step<Value>::Kind::kHalt) {
            return rt::Step<Cell>::halt();
          }
          ++sim.round;
          sim.level = n_procs;
          sim.value = std::move(step.next);
          sim.history.push_back(Record{sim.level, sim.value});
        } else {
          // Descend one level and re-announce.
          --sim.level;
          WFC_CHECK(sim.level >= 1,
                    "reverse emulation: descended below level 1");
          sim.history[static_cast<std::size_t>(sim.round)].level = sim.level;
        }
        return rt::Step<Cell>::cont(sim.history);
      };

  rt::SnapshotRunStats run =
      rt::run_snapshot_model<Cell>(n_procs, schedule, cell_init, on_scan);
  stats.ops_taken = std::move(run.ops_taken);
  return stats;
}

}  // namespace wfc::emu
