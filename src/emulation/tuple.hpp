// Tuples and tuple sets for the §4 emulation (Figure 2).
//
// A tuple (id, seq, val) says "P_id wrote val in its seq-th write of the
// emulated protocol"; (id, seq, ⊥) is the placeholder announcing P_id's
// seq-th SnapshotRead.  Emulators ship SETS of tuples through the iterated
// immediate snapshot memories and act on the union / intersection of the
// sets they receive.
#pragma once

#include <algorithm>
#include <compare>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace wfc::emu {

struct Tuple {
  int id = 0;
  int seq = 0;
  bool placeholder = false;  // true: this is (id, seq, ?)
  int value = 0;             // meaningful only when !placeholder

  friend auto operator<=>(const Tuple&, const Tuple&) = default;
};

/// A set of tuples, kept sorted and duplicate-free.
class TupleSet {
 public:
  TupleSet() = default;
  explicit TupleSet(std::vector<Tuple> tuples) : data_(std::move(tuples)) {
    normalize();
  }

  [[nodiscard]] bool contains(const Tuple& t) const {
    return std::binary_search(data_.begin(), data_.end(), t);
  }

  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] const std::vector<Tuple>& tuples() const noexcept {
    return data_;
  }

  /// this ∪ {t}.
  [[nodiscard]] TupleSet with(const Tuple& t) const {
    TupleSet out = *this;
    auto it = std::lower_bound(out.data_.begin(), out.data_.end(), t);
    if (it == out.data_.end() || *it != t) out.data_.insert(it, t);
    return out;
  }

  [[nodiscard]] TupleSet unite(const TupleSet& o) const {
    TupleSet out;
    out.data_.reserve(data_.size() + o.data_.size());
    std::set_union(data_.begin(), data_.end(), o.data_.begin(), o.data_.end(),
                   std::back_inserter(out.data_));
    return out;
  }

  [[nodiscard]] TupleSet intersect(const TupleSet& o) const {
    TupleSet out;
    std::set_intersection(data_.begin(), data_.end(), o.data_.begin(),
                          o.data_.end(), std::back_inserter(out.data_));
    return out;
  }

  [[nodiscard]] bool subset_of(const TupleSet& o) const {
    return std::includes(o.data_.begin(), o.data_.end(), data_.begin(),
                         data_.end());
  }

  friend bool operator==(const TupleSet&, const TupleSet&) = default;

 private:
  void normalize() {
    std::sort(data_.begin(), data_.end());
    data_.erase(std::unique(data_.begin(), data_.end()), data_.end());
  }

  std::vector<Tuple> data_;
};

/// Union over a collection of tuple sets ([S in the paper's notation).
template <typename Iter>
TupleSet union_of(Iter first, Iter last) {
  TupleSet out;
  for (Iter it = first; it != last; ++it) out = out.unite(*it);
  return out;
}

/// Intersection over a NON-EMPTY collection (\S in the paper's notation).
template <typename Iter>
TupleSet intersection_of(Iter first, Iter last) {
  WFC_REQUIRE(first != last, "intersection_of: empty collection");
  TupleSet out = *first;
  for (Iter it = std::next(first); it != last; ++it) out = out.intersect(*it);
  return out;
}

}  // namespace wfc::emu
