// Correctness checker for emulated atomic-snapshot histories
// (Proposition 4.1 / Claim 4.1 / Corollary 4.1 in machine-checkable form).
//
// Given the per-processor logs of completed emulated operations, the
// emulation is a correct atomic snapshot memory iff:
//   (1) well-formedness: each processor alternates write_1, snap_1,
//       write_2, snap_2, ... with increasing seq;
//   (2) self-inclusion: P_i's snap_q sees its own write_q (the freshest
//       value only P_i itself can have written);
//   (3) per-writer monotonicity: in consecutive snapshots of one processor,
//       observed seqs per cell never decrease;
//   (4) total order: all views, across all processors, are componentwise
//       comparable by seq -- the containment property the paper proves via
//       the \S-containment argument;
//   (5) freshness (Corollary 4.1): a snapshot that STARTED after P_i's m-th
//       Write procedure TERMINATED observes C_i at seq >= m;
//   (6) value faithfulness: every observed (seq, value) pair was actually
//       written by that processor.
// For single-writer snapshot memory these conditions are equivalent to
// linearizability of the whole history.
#pragma once

#include <string>
#include <vector>

#include "emulation/emulator.hpp"

namespace wfc::emu {

struct HistoryReport {
  bool well_formed = false;
  bool self_inclusion = false;
  bool per_writer_monotone = false;
  bool views_totally_ordered = false;
  bool fresh = false;
  bool values_faithful = false;
  std::string violation;  // description of the first violation found

  [[nodiscard]] bool ok() const noexcept {
    return well_formed && self_inclusion && per_writer_monotone &&
           views_totally_ordered && fresh && values_faithful;
  }
};

/// Checks the full history of an emulation run.
HistoryReport check_history(const EmulationResult& result);

}  // namespace wfc::emu
