#include "emulation/history.hpp"

#include <map>
#include <sstream>

namespace wfc::emu {

namespace {

std::string describe(const EmulatedOp& op) {
  std::ostringstream os;
  os << "P" << op.proc << (op.is_write ? " write" : " snap") << " sq="
     << op.seq << " rounds[" << op.start_round << "," << op.end_round << "]";
  return os.str();
}

}  // namespace

HistoryReport check_history(const EmulationResult& result) {
  HistoryReport rep;
  rep.well_formed = true;
  rep.self_inclusion = true;
  rep.per_writer_monotone = true;
  rep.views_totally_ordered = true;
  rep.fresh = true;
  rep.values_faithful = true;

  auto fail = [&](bool& flag, const std::string& what) {
    if (rep.violation.empty()) rep.violation = what;
    flag = false;
  };

  const int n = static_cast<int>(result.ops.size());

  // (1) well-formedness + collect writes and snapshots.
  std::map<std::pair<int, int>, int> written_value;  // (proc, seq) -> value
  std::map<std::pair<int, int>, int> write_end;      // (proc, seq) -> round
  struct Snap {
    const EmulatedOp* op;
  };
  std::vector<Snap> snaps;
  for (int p = 0; p < n; ++p) {
    const auto& log = result.ops[static_cast<std::size_t>(p)];
    int expect_seq = 1;
    bool expect_write = true;
    int prev_end = -1;
    for (const EmulatedOp& op : log) {
      if (op.proc != p) fail(rep.well_formed, "foreign op in log of P" + std::to_string(p));
      if (op.is_write != expect_write || op.seq != expect_seq) {
        fail(rep.well_formed, "out-of-order op: " + describe(op));
      }
      if (op.start_round <= prev_end && prev_end >= 0) {
        fail(rep.well_formed, "overlapping ops: " + describe(op));
      }
      if (op.end_round < op.start_round) {
        fail(rep.well_formed, "negative duration: " + describe(op));
      }
      prev_end = op.end_round;
      if (op.is_write) {
        written_value[{p, op.seq}] = op.value;
        write_end[{p, op.seq}] = op.end_round;
        expect_write = false;
      } else {
        snaps.push_back(Snap{&op});
        expect_write = true;
        ++expect_seq;
      }
    }
  }

  // (2) self-inclusion, (6) faithfulness.
  for (const Snap& s : snaps) {
    const EmulatedOp& op = *s.op;
    const auto& own = op.view[static_cast<std::size_t>(op.proc)];
    if (!own.has_value() || own->first < op.seq) {
      fail(rep.self_inclusion, "missing own write: " + describe(op));
    }
    for (std::size_t c = 0; c < op.view.size(); ++c) {
      if (!op.view[c].has_value()) continue;
      const auto [seq, value] = *op.view[c];
      auto it = written_value.find({static_cast<int>(c), seq});
      if (it == written_value.end() || it->second != value) {
        fail(rep.values_faithful, "ghost value: " + describe(op));
      }
    }
  }

  // (3) per-writer monotonicity within each processor's snapshot sequence.
  for (int p = 0; p < n; ++p) {
    const EmulatedOp* prev = nullptr;
    for (const EmulatedOp& op : result.ops[static_cast<std::size_t>(p)]) {
      if (op.is_write) continue;
      if (prev != nullptr) {
        for (std::size_t c = 0; c < op.view.size(); ++c) {
          const int before =
              prev->view[c].has_value() ? prev->view[c]->first : 0;
          const int after = op.view[c].has_value() ? op.view[c]->first : 0;
          if (after < before) {
            fail(rep.per_writer_monotone, "view went backwards: " + describe(op));
          }
        }
      }
      prev = &op;
    }
  }

  // (4) total order on views (componentwise by seq).
  for (std::size_t a = 0; a < snaps.size(); ++a) {
    for (std::size_t b = a + 1; b < snaps.size(); ++b) {
      const auto& va = snaps[a].op->view;
      const auto& vb = snaps[b].op->view;
      bool a_le_b = true, b_le_a = true;
      for (std::size_t c = 0; c < va.size(); ++c) {
        const int sa = va[c].has_value() ? va[c]->first : 0;
        const int sb = vb[c].has_value() ? vb[c]->first : 0;
        if (sa > sb) a_le_b = false;
        if (sb > sa) b_le_a = false;
      }
      if (!a_le_b && !b_le_a) {
        fail(rep.views_totally_ordered,
             "incomparable views: " + describe(*snaps[a].op) + " vs " +
                 describe(*snaps[b].op));
      }
    }
  }

  // (5) freshness: snapshot started after write (i, m) ended => sees
  // seq >= m for cell i.
  for (const Snap& s : snaps) {
    const EmulatedOp& op = *s.op;
    for (const auto& [key, end_round] : write_end) {
      const auto [writer, m] = key;
      if (op.start_round > end_round) {
        const auto& cell = op.view[static_cast<std::size_t>(writer)];
        const int seen = cell.has_value() ? cell->first : 0;
        if (seen < m) {
          fail(rep.fresh, "stale read of P" + std::to_string(writer) +
                              " by " + describe(op));
        }
      }
    }
  }

  return rep;
}

}  // namespace wfc::emu
