#include "emulation/iis_in_snapshot.hpp"

namespace wfc::emu {

std::vector<Color> reverse_emulation_schedule(int n_procs, int max_rounds) {
  WFC_REQUIRE(n_procs >= 1, "reverse_emulation_schedule: n_procs");
  WFC_REQUIRE(max_rounds >= 0, "reverse_emulation_schedule: max_rounds");
  // One IIS round costs at most n+1 descents of (write, scan).
  return rt::fair_schedule(n_procs, 2 * max_rounds * (n_procs + 1));
}

}  // namespace wfc::emu
