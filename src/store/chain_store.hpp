// Persistent content-addressed store of canonical SDS chains.
//
// SDS^k is a pure function of the input complex, so a chain is fully
// identified by complex_fingerprint(level 0) -- the same key SdsCache
// memoizes by.  The store keeps one file per fingerprint,
//
//   <dir>/chain-<%016x fingerprint>.wfc
//
// holding the serialized topo::Arena blob of every level behind a
// versioned + checksummed header.  Readers mmap the file read-only and
// hand the levels to proto::SdsChain as a ChainBacking: the kernel page
// cache then shares ONE physical copy of the deep towers across every
// wfc_serve shard on the box, and a restarted shard answers its first
// deep query without building anything.
//
// Durability and concurrency:
//   * publish writes <dir>/.tmp-<pid>-<fp>, fsyncs, and renames into
//     place -- atomic on POSIX, so readers see either the old complete
//     file or the new complete file, never a torn one.  Concurrent
//     publishers race benignly (last rename wins; content is identical
//     by construction).  A reader holding the old mapping keeps it:
//     rename only unlinks the name.
//   * load verifies magic, version, and the FNV-1a checksum over the
//     whole payload before serving, then bounds-validates every arena
//     header.  ANY failure -- truncation, corruption, version skew --
//     counts a fallback and behaves as a miss (callers rebuild in
//     memory); the store never crashes the process and never serves a
//     bad chain.
//   * readonly mode (shared store directories, e.g. one writer + N
//     reader shards) turns publish into a counted no-op.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "protocol/sds_chain.hpp"

namespace wfc::store {

inline constexpr char kStoreMagic[8] = {'W', 'F', 'C', 'S', 'T', 'O', 'R', '1'};
inline constexpr std::uint32_t kStoreVersion = 2;

/// On-disk file header, followed by a u64 offset/size table (2 entries per
/// level, byte offsets relative to the payload start) and the payload: the
/// concatenated 8-byte-aligned arena blobs of levels 0..n_levels-1.
///
/// Version history: v1 ends after payload_checksum (40 bytes); v2 appends
/// model_tag.  Readers accept both -- a v1 file is by construction an
/// unrestricted (wait-free) tower and loads with model_tag 0, no fallback
/// counted.  Writers always emit v2.
struct ChainFileHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t n_levels;
  std::uint64_t fingerprint;       // complex_fingerprint(level 0); for a
                                   // restricted tower, the MIXED fingerprint
                                   // (model::mix_fingerprint of base + tag)
  std::uint64_t payload_bytes;
  std::uint64_t payload_checksum;  // FNV-1a over the payload bytes
  std::uint64_t model_tag;         // v2: Model::tag() (0 = wait_free)
};

/// Bytes of the v1 header (everything before model_tag).
inline constexpr std::size_t kHeaderBytesV1 = 40;

static_assert(sizeof(ChainFileHeader) == 48 &&
                  offsetof(ChainFileHeader, model_tag) == kHeaderBytesV1,
              "ChainFileHeader v2 must be the v1 layout plus model_tag");

struct StoreStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;            // load() served an mmap'ed chain
  std::uint64_t misses = 0;          // no file for the fingerprint
  std::uint64_t fallbacks = 0;       // file present but unusable
  std::uint64_t publishes = 0;       // files written
  std::uint64_t publish_skipped = 0; // readonly / shallower / over budget
  std::uint64_t mapped_bytes = 0;    // bytes in currently live mappings
  std::uint64_t files = 0;           // on-disk inventory (last refresh)
  std::uint64_t file_bytes = 0;
};

class ChainStore {
 public:
  struct Options {
    std::string dir;  // empty disables the store entirely
    bool readonly = false;
    /// On-disk byte budget; publishes that would exceed it are skipped
    /// (the store never evicts -- it is an operator-managed artifact
    /// cache).  0 = unlimited.
    std::uint64_t max_bytes = 0;
  };

  /// Creates `dir` (one level) when writable.  Directory problems leave
  /// the store disabled rather than throwing: serving must start even if
  /// the store volume is missing.
  explicit ChainStore(Options options);

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  [[nodiscard]] const Options& options() const noexcept { return options_; }

  /// Opens, verifies, and mmaps the stored chain for `fingerprint`.
  /// Returns nullptr on miss or fallback (see file comment); the returned
  /// chain's depth is whatever was stored (callers extend if short).
  /// `expect_model_tag` guards model separation: a file whose recorded tag
  /// differs is a fallback, never served.  v1 files carry tag 0 (they
  /// predate models and are always unrestricted towers).
  [[nodiscard]] std::shared_ptr<const proto::SdsChain> load(
      std::uint64_t fingerprint, std::uint64_t expect_model_tag = 0);

  /// Serializes `chain` under `fingerprint` unless the store is readonly,
  /// a same-or-deeper file already exists, or the byte budget would be
  /// exceeded.  `model_tag` is recorded in the v2 header (0 = unrestricted
  /// wait-free tower).  Returns true when a file was written.
  bool publish(std::uint64_t fingerprint, const proto::SdsChain& chain,
               std::uint64_t model_tag = 0);

  struct Entry {
    std::uint64_t fingerprint = 0;
    std::uint64_t bytes = 0;
    /// Recorded model tag (0 for v1 files and unrestricted towers).
    std::uint64_t model_tag = 0;
  };
  /// On-disk inventory (also refreshes the files/file_bytes gauges).
  [[nodiscard]] std::vector<Entry> list();

  [[nodiscard]] StoreStats stats() const;

  /// Path of the chain file for a fingerprint (test/debug aid).
  [[nodiscard]] std::string file_path(std::uint64_t fingerprint) const;

 private:
  void refresh_inventory();

  Options options_;
  bool enabled_ = false;

  // Counters are plain atomics: the store sits behind SdsCache's
  // per-entry build lock on the hot path, so contention is nil.
  std::shared_ptr<std::atomic<std::uint64_t>> mapped_bytes_ =
      std::make_shared<std::atomic<std::uint64_t>>(0);
  std::atomic<std::uint64_t> lookups_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> fallbacks_{0};
  std::atomic<std::uint64_t> publishes_{0};
  std::atomic<std::uint64_t> publish_skipped_{0};
  std::atomic<std::uint64_t> files_{0};
  std::atomic<std::uint64_t> file_bytes_{0};
};

}  // namespace wfc::store
