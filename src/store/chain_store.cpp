#include "store/chain_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string_view>
#include <utility>

#include "topology/hash.hpp"

namespace wfc::store {

namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t align8(std::uint64_t n) { return (n + 7) & ~7ull; }

std::string fingerprint_hex(std::uint64_t fp) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fp));
  return std::string(buf, 16);
}

/// A live read-only mapping.  Destroys with munmap and returns its bytes
/// to the owning store's mapped-bytes gauge (the store may already be
/// gone -- the gauge is shared).
struct MappedFile {
  void* base = MAP_FAILED;
  std::size_t bytes = 0;
  std::shared_ptr<std::atomic<std::uint64_t>> gauge;

  ~MappedFile() {
    if (base != MAP_FAILED) {
      ::munmap(base, bytes);
      if (gauge) gauge->fetch_sub(bytes, std::memory_order_relaxed);
    }
  }
};

/// ChainBacking over a verified mapping: arenas are zero-copy views whose
/// shared backing keeps the mmap alive.
class MappedChainBacking : public proto::ChainBacking {
 public:
  explicit MappedChainBacking(std::vector<topo::Arena> arenas)
      : arenas_(std::move(arenas)) {}

  [[nodiscard]] int depth() const override {
    return static_cast<int>(arenas_.size()) - 1;
  }
  [[nodiscard]] topo::Arena arena(int r) const override {
    return arenas_.at(static_cast<std::size_t>(r));
  }

 private:
  std::vector<topo::Arena> arenas_;
};

bool write_all(int fd, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Bytes of the on-disk header for a given format version (v1 predates
/// model_tag).
std::size_t header_bytes_for(std::uint32_t version) {
  return version == 1 ? kHeaderBytesV1 : sizeof(ChainFileHeader);
}

/// Levels stored in an existing file, or 0 when absent/unreadable; lets
/// publish skip work without mapping the whole payload.
std::uint32_t existing_levels(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return 0;
  ChainFileHeader h{};
  const ssize_t n = ::pread(fd, &h, sizeof(h), 0);
  ::close(fd);
  // A v1 file may be exactly kHeaderBytesV1 + table + payload; the version
  // field sits inside the common 40-byte prefix either way.
  if (n < static_cast<ssize_t>(kHeaderBytesV1)) return 0;
  if (std::memcmp(h.magic, kStoreMagic, sizeof(kStoreMagic)) != 0) return 0;
  if (h.version != 1 && h.version != kStoreVersion) return 0;
  return h.n_levels;
}

}  // namespace

ChainStore::ChainStore(Options options) : options_(std::move(options)) {
  if (options_.dir.empty()) return;
  std::error_code ec;
  if (options_.readonly) {
    enabled_ = fs::is_directory(options_.dir, ec);
  } else {
    fs::create_directories(options_.dir, ec);
    enabled_ = !ec && fs::is_directory(options_.dir, ec);
  }
  if (enabled_) refresh_inventory();
}

std::string ChainStore::file_path(std::uint64_t fingerprint) const {
  return options_.dir + "/chain-" + fingerprint_hex(fingerprint) + ".wfc";
}

std::shared_ptr<const proto::SdsChain> ChainStore::load(
    std::uint64_t fingerprint, std::uint64_t expect_model_tag) {
  if (!enabled_) return nullptr;
  lookups_.fetch_add(1, std::memory_order_relaxed);
  const std::string path = file_path(fingerprint);
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      misses_.fetch_add(1, std::memory_order_relaxed);
    } else {
      fallbacks_.fetch_add(1, std::memory_order_relaxed);
    }
    return nullptr;
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0 ||
      static_cast<std::size_t>(st.st_size) < kHeaderBytesV1) {
    ::close(fd);
    fallbacks_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  auto mapping = std::make_shared<MappedFile>();
  mapping->base = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);
  if (mapping->base == MAP_FAILED) {
    fallbacks_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  mapping->bytes = size;
  mapping->gauge = mapped_bytes_;
  mapped_bytes_->fetch_add(size, std::memory_order_relaxed);

  // From here on any validation failure is a fallback: the file exists
  // but cannot be trusted.  The checksum walk touches every payload page
  // once; the pages stay in the (shared) page cache for the search.
  const auto fail = [this]() -> std::shared_ptr<const proto::SdsChain> {
    fallbacks_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  };
  const char* bytes = static_cast<const char*>(mapping->base);
  ChainFileHeader header{};
  // Copy the v1 prefix first; the version field decides whether model_tag
  // exists on disk.  A v1 file (pre-model) is an unrestricted tower: tag 0.
  std::memcpy(&header, bytes, kHeaderBytesV1);
  if (std::memcmp(header.magic, kStoreMagic, sizeof(kStoreMagic)) != 0) {
    return fail();
  }
  if (header.version != 1 && header.version != kStoreVersion) return fail();
  const std::size_t header_bytes = header_bytes_for(header.version);
  if (size < header_bytes) return fail();
  if (header.version == kStoreVersion) {
    std::memcpy(&header.model_tag, bytes + kHeaderBytesV1, 8);
  } else {
    header.model_tag = 0;
  }
  if (header.fingerprint != fingerprint) return fail();
  // Model separation: never serve a tower restricted under a different
  // model than the caller asked for, even if the mixed fingerprints were
  // ever to collide.
  if (header.model_tag != expect_model_tag) return fail();
  if (header.n_levels == 0 || header.n_levels > 64) return fail();
  const std::uint64_t table_bytes = std::uint64_t{header.n_levels} * 16;
  const std::uint64_t payload_off = align8(header_bytes + table_bytes);
  if (payload_off > size || header.payload_bytes != size - payload_off) {
    return fail();
  }
  const std::uint64_t checksum = topo::fnv1a(
      topo::kFnvOffset,
      std::string_view(bytes + payload_off,
                       static_cast<std::size_t>(header.payload_bytes)));
  if (checksum != header.payload_checksum) return fail();

  const char* table = bytes + header_bytes;
  std::vector<topo::Arena> arenas;
  arenas.reserve(header.n_levels);
  for (std::uint32_t r = 0; r < header.n_levels; ++r) {
    std::uint64_t off = 0;
    std::uint64_t len = 0;
    std::memcpy(&off, table + r * 16, 8);
    std::memcpy(&len, table + r * 16 + 8, 8);
    if (off % 8 != 0 || off > header.payload_bytes ||
        len > header.payload_bytes - off) {
      return fail();
    }
    try {
      arenas.push_back(topo::Arena::view(
          std::span<const std::byte>(
              reinterpret_cast<const std::byte*>(bytes + payload_off + off),
              static_cast<std::size_t>(len)),
          mapping));
    } catch (const std::exception&) {
      return fail();
    }
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return std::make_shared<proto::SdsChain>(
      std::make_shared<MappedChainBacking>(std::move(arenas)));
}

bool ChainStore::publish(std::uint64_t fingerprint,
                         const proto::SdsChain& chain,
                         std::uint64_t model_tag) {
  if (!enabled_ || options_.readonly) {
    publish_skipped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const std::string path = file_path(fingerprint);
  const std::uint32_t n_levels = static_cast<std::uint32_t>(chain.depth()) + 1;
  const std::uint64_t already = existing_levels(path);
  if (already >= n_levels) {
    publish_skipped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  // Serialize every level (zero-copy when the chain is itself backed).
  std::vector<topo::Arena> arenas;
  arenas.reserve(n_levels);
  std::vector<std::uint64_t> table(std::size_t{n_levels} * 2, 0);
  std::uint64_t payload_bytes = 0;
  for (std::uint32_t r = 0; r < n_levels; ++r) {
    arenas.push_back(chain.arena(static_cast<int>(r)));
    const std::uint64_t len = arenas.back().bytes().size();
    table[r * 2] = payload_bytes;
    table[r * 2 + 1] = len;
    payload_bytes = align8(payload_bytes + len);
  }
  const std::uint64_t payload_off =
      align8(sizeof(ChainFileHeader) + std::uint64_t{n_levels} * 16);
  const std::uint64_t total = payload_off + payload_bytes;

  if (options_.max_bytes != 0) {
    refresh_inventory();
    std::error_code ec;
    const std::uint64_t replaced =
        already > 0 ? static_cast<std::uint64_t>(fs::file_size(path, ec)) : 0;
    const std::uint64_t current =
        file_bytes_.load(std::memory_order_relaxed);
    if (current - std::min(current, replaced) + total > options_.max_bytes) {
      publish_skipped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }

  // Checksum over the payload exactly as laid out (including the
  // inter-level alignment padding, which the buffer makes zero).
  std::vector<char> payload(static_cast<std::size_t>(payload_bytes), 0);
  for (std::uint32_t r = 0; r < n_levels; ++r) {
    const auto blob = arenas[r].bytes();
    std::memcpy(payload.data() + table[r * 2], blob.data(), blob.size());
  }
  ChainFileHeader header{};
  std::memcpy(header.magic, kStoreMagic, sizeof(kStoreMagic));
  header.version = kStoreVersion;
  header.n_levels = n_levels;
  header.fingerprint = fingerprint;
  header.payload_bytes = payload_bytes;
  header.payload_checksum = topo::fnv1a(
      topo::kFnvOffset, std::string_view(payload.data(), payload.size()));
  header.model_tag = model_tag;

  const std::string tmp = options_.dir + "/.tmp-" +
                          std::to_string(static_cast<long>(::getpid())) + "-" +
                          fingerprint_hex(fingerprint);
  const int fd =
      ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) {
    publish_skipped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const std::vector<char> gap(
      static_cast<std::size_t>(payload_off) - sizeof(ChainFileHeader) -
          std::size_t{n_levels} * 16,
      0);
  const bool wrote = write_all(fd, &header, sizeof(header)) &&
                     write_all(fd, table.data(), table.size() * 8) &&
                     (gap.empty() || write_all(fd, gap.data(), gap.size())) &&
                     write_all(fd, payload.data(), payload.size()) &&
                     ::fsync(fd) == 0;
  ::close(fd);
  if (!wrote || ::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    publish_skipped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Make the rename durable: fsync the directory.
  const int dfd = ::open(options_.dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  publishes_.fetch_add(1, std::memory_order_relaxed);
  refresh_inventory();
  return true;
}

std::vector<ChainStore::Entry> ChainStore::list() {
  std::vector<Entry> out;
  if (!enabled_) return out;
  std::error_code ec;
  for (const auto& de : fs::directory_iterator(options_.dir, ec)) {
    const std::string name = de.path().filename().string();
    if (name.size() != 6 + 16 + 4 || name.rfind("chain-", 0) != 0 ||
        name.substr(6 + 16) != ".wfc") {
      continue;
    }
    Entry e;
    char* end = nullptr;
    e.fingerprint = std::strtoull(name.substr(6, 16).c_str(), &end, 16);
    std::error_code sec;
    e.bytes = static_cast<std::uint64_t>(de.file_size(sec));
    // Recorded model tag (v2 files only; v1 towers are unrestricted).
    const int fd = ::open(de.path().c_str(), O_RDONLY | O_CLOEXEC);
    if (fd >= 0) {
      ChainFileHeader h{};
      const ssize_t n = ::pread(fd, &h, sizeof(h), 0);
      ::close(fd);
      if (n >= static_cast<ssize_t>(sizeof(h)) &&
          h.version == kStoreVersion) {
        e.model_tag = h.model_tag;
      }
    }
    out.push_back(e);
  }
  std::uint64_t total = 0;
  for (const Entry& e : out) total += e.bytes;
  files_.store(out.size(), std::memory_order_relaxed);
  file_bytes_.store(total, std::memory_order_relaxed);
  return out;
}

void ChainStore::refresh_inventory() { (void)list(); }

StoreStats ChainStore::stats() const {
  StoreStats s;
  s.lookups = lookups_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.fallbacks = fallbacks_.load(std::memory_order_relaxed);
  s.publishes = publishes_.load(std::memory_order_relaxed);
  s.publish_skipped = publish_skipped_.load(std::memory_order_relaxed);
  s.mapped_bytes = mapped_bytes_->load(std::memory_order_relaxed);
  s.files = files_.load(std::memory_order_relaxed);
  s.file_bytes = file_bytes_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace wfc::store
