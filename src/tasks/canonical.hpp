// Canonical task instances from the paper and its surrounding literature:
//
//  * ConsensusTask        -- binary (or m-ary) consensus; FLP-impossible
//                            wait-free, the paper's motivating example [2].
//  * KSetConsensusTask    -- (n+1, k) set consensus (§3.2, [4]); solvable
//                            iff k >= n+1; the k = n case is the
//                            Sperner-lemma impossibility (E8).
//  * RenamingTask         -- M-renaming; represented as a plain task (note:
//                            with ids as inputs the task has the trivial
//                            identity solution for M >= n+1; the classic
//                            lower bound applies to rank-symmetric
//                            protocols, which Delta alone cannot express).
//  * SimplexAgreementTask -- the paper's §5 chromatic simplex agreement on a
//                            target subdivision A(s^n): outputs must form a
//                            simplex of A inside the carrier of the
//                            participants.  Solvable at level b iff there is
//                            a color-and-carrier-preserving simplicial map
//                            SDS^b(s^n) -> A (Theorem 5.1 existence).
//  * IdentityTask         -- decide your own input; solvable with b = 0.
#pragma once

#include <memory>
#include <vector>

#include "tasks/task.hpp"

namespace wfc::task {

/// m-ary consensus over n_procs processors: every processor starts with a
/// value in {0..m-1}; all decided values are equal and equal to some
/// participant's input.
class ConsensusTask final : public Task {
 public:
  ConsensusTask(int n_procs, int n_values);

  [[nodiscard]] const topo::ChromaticComplex& input() const override {
    return input_;
  }
  [[nodiscard]] const topo::ChromaticComplex& output() const override {
    return output_;
  }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] bool allows(const topo::Simplex& in,
                            const topo::Simplex& out) const override;

  [[nodiscard]] int input_value(topo::VertexId v) const {
    return in_value_.at(v);
  }
  [[nodiscard]] int output_value(topo::VertexId v) const {
    return out_value_.at(v);
  }

 private:
  int n_procs_, n_values_;
  topo::ChromaticComplex input_;
  topo::ChromaticComplex output_;
  std::vector<int> in_value_, out_value_;
};

/// (n_procs, k) set consensus with ids as inputs (§3.2): every processor
/// decides a participating processor's id; at most k distinct ids decided.
class KSetConsensusTask final : public Task {
 public:
  KSetConsensusTask(int n_procs, int k);

  [[nodiscard]] const topo::ChromaticComplex& input() const override {
    return input_;
  }
  [[nodiscard]] const topo::ChromaticComplex& output() const override {
    return output_;
  }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] bool allows(const topo::Simplex& in,
                            const topo::Simplex& out) const override;

  [[nodiscard]] int k() const noexcept { return k_; }
  [[nodiscard]] int decided_id(topo::VertexId v) const {
    return out_id_.at(v);
  }

 private:
  int n_procs_, k_;
  topo::ChromaticComplex input_;
  topo::ChromaticComplex output_;
  std::vector<int> out_id_;
};

/// M-renaming: processors decide pairwise distinct names in {0..M-1}.
class RenamingTask final : public Task {
 public:
  RenamingTask(int n_procs, int n_names);

  [[nodiscard]] const topo::ChromaticComplex& input() const override {
    return input_;
  }
  [[nodiscard]] const topo::ChromaticComplex& output() const override {
    return output_;
  }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] bool allows(const topo::Simplex& in,
                            const topo::Simplex& out) const override;

  [[nodiscard]] int decided_name(topo::VertexId v) const {
    return out_name_.at(v);
  }

 private:
  int n_procs_, n_names_;
  topo::ChromaticComplex input_;
  topo::ChromaticComplex output_;
  std::vector<int> out_name_;
};

/// Chromatic simplex agreement over a target chromatic subdivision A of
/// s^n (CSASS, §5): processor i starts at corner i; outputs must form a
/// simplex of A with carrier(W, A) inside the participants' face.
class SimplexAgreementTask final : public Task {
 public:
  /// `target` must be a chromatic subdivision of s^{n_procs-1} whose
  /// vertices carry carriers (e.g. produced by iterated_sds).
  SimplexAgreementTask(int n_procs, topo::ChromaticComplex target);

  [[nodiscard]] const topo::ChromaticComplex& input() const override {
    return input_;
  }
  [[nodiscard]] const topo::ChromaticComplex& output() const override {
    return output_;
  }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] bool allows(const topo::Simplex& in,
                            const topo::Simplex& out) const override;

 private:
  int n_procs_;
  topo::ChromaticComplex input_;
  topo::ChromaticComplex output_;
};

/// Approximate agreement on the integer grid {0..m}: every processor starts
/// at an endpoint (0 or m) and must decide a grid value inside the range of
/// the participating inputs, with all decided values within distance 1 of
/// each other.  Wait-free solvable for every m -- but the minimal level
/// grows: one IIS round subdivides an edge 3-fold, so two processors need
/// b = ceil(log3 m) rounds.  This is the library's clean "level growth"
/// family (the paper's b is task-dependent and unbounded).
class ApproxAgreementTask final : public Task {
 public:
  ApproxAgreementTask(int n_procs, int grid);

  [[nodiscard]] const topo::ChromaticComplex& input() const override {
    return input_;
  }
  [[nodiscard]] const topo::ChromaticComplex& output() const override {
    return output_;
  }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] bool allows(const topo::Simplex& in,
                            const topo::Simplex& out) const override;

  [[nodiscard]] int grid() const noexcept { return grid_; }
  [[nodiscard]] int input_value(topo::VertexId v) const {
    return in_value_.at(v);
  }
  [[nodiscard]] int output_value(topo::VertexId v) const {
    return out_value_.at(v);
  }

 private:
  int n_procs_, grid_;
  topo::ChromaticComplex input_;
  topo::ChromaticComplex output_;
  std::vector<int> in_value_, out_value_;
};

/// Decide your own input value (any input complex); the trivial task.
class IdentityTask final : public Task {
 public:
  explicit IdentityTask(topo::ChromaticComplex input);

  [[nodiscard]] const topo::ChromaticComplex& input() const override {
    return input_;
  }
  [[nodiscard]] const topo::ChromaticComplex& output() const override {
    return input_;  // outputs mirror inputs
  }
  [[nodiscard]] std::string name() const override { return "identity"; }
  [[nodiscard]] bool allows(const topo::Simplex& in,
                            const topo::Simplex& out) const override;

 private:
  topo::ChromaticComplex input_;
};

}  // namespace wfc::task
