#include "tasks/resilience.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace wfc::task {

namespace {

using topo::Simplex;
using topo::VertexId;

/// Enumerates all assignments a in values^n.
template <typename Fn>
void for_each_value_assignment(int n, const std::vector<int>& values,
                               Fn&& fn) {
  std::vector<std::size_t> idx(static_cast<std::size_t>(n), 0);
  for (;;) {
    std::vector<int> a(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      a[static_cast<std::size_t>(i)] = values[idx[static_cast<std::size_t>(i)]];
    }
    fn(a);
    int i = 0;
    while (i < n) {
      if (++idx[static_cast<std::size_t>(i)] < values.size()) break;
      idx[static_cast<std::size_t>(i)] = 0;
      ++i;
    }
    if (i == n) return;
  }
}

}  // namespace

ColorlessSpec colorless_consensus(int n_values) {
  WFC_REQUIRE(n_values >= 1, "colorless consensus: need values");
  ColorlessSpec spec;
  spec.name = "colorless-consensus(m=" + std::to_string(n_values) + ")";
  for (int v = 0; v < n_values; ++v) {
    spec.input_values.push_back(v);
    spec.output_values.push_back(v);
  }
  spec.allowed = [](const std::set<int>& in, const std::set<int>& out) {
    if (out.empty()) return true;
    if (out.size() > 1) return false;
    return in.count(*out.begin()) > 0;
  };
  return spec;
}

ColorlessSpec colorless_set_consensus(int k, int n_values) {
  WFC_REQUIRE(k >= 1, "colorless set consensus: bad k");
  ColorlessSpec spec;
  spec.name = "colorless-" + std::to_string(k) + "-set-consensus(m=" +
              std::to_string(n_values) + ")";
  for (int v = 0; v < n_values; ++v) {
    spec.input_values.push_back(v);
    spec.output_values.push_back(v);
  }
  spec.allowed = [k](const std::set<int>& in, const std::set<int>& out) {
    if (static_cast<int>(out.size()) > k) return false;
    return std::all_of(out.begin(), out.end(),
                       [&](int v) { return in.count(v) > 0; });
  };
  return spec;
}

ColorlessSpec colorless_approx_agreement(int grid) {
  WFC_REQUIRE(grid >= 1, "colorless approx agreement: bad grid");
  ColorlessSpec spec;
  spec.name = "colorless-approx-agreement(m=" + std::to_string(grid) + ")";
  spec.input_values = {0, grid};
  for (int g = 0; g <= grid; ++g) spec.output_values.push_back(g);
  spec.allowed = [](const std::set<int>& in, const std::set<int>& out) {
    if (out.empty()) return true;
    const int in_lo = *in.begin(), in_hi = *in.rbegin();
    const int out_lo = *out.begin(), out_hi = *out.rbegin();
    return out_lo >= in_lo && out_hi <= in_hi && out_hi - out_lo <= 1;
  };
  return spec;
}

ProjectedColorlessTask::ProjectedColorlessTask(ColorlessSpec spec, int n_procs,
                                               bool distinct_inputs)
    : spec_(std::move(spec)), n_procs_(n_procs), input_(n_procs),
      output_(n_procs) {
  WFC_REQUIRE(n_procs >= 1 && n_procs <= kMaxColors,
              "projected colorless task: bad n_procs");
  WFC_REQUIRE(!spec_.input_values.empty() && !spec_.output_values.empty(),
              "projected colorless task: empty value domain");
  WFC_REQUIRE(static_cast<bool>(spec_.allowed),
              "projected colorless task: missing predicate");
  WFC_REQUIRE(!distinct_inputs ||
                  spec_.input_values.size() >= static_cast<std::size_t>(n_procs),
              "projected colorless task: not enough values for distinct "
              "inputs");

  std::vector<std::vector<VertexId>> in_v(static_cast<std::size_t>(n_procs));
  std::vector<std::vector<VertexId>> out_v(static_cast<std::size_t>(n_procs));
  for (Color p = 0; p < n_procs; ++p) {
    const std::vector<int> my_inputs =
        distinct_inputs
            ? std::vector<int>{spec_.input_values[static_cast<std::size_t>(p)]}
            : spec_.input_values;
    for (int v : my_inputs) {
      in_v[static_cast<std::size_t>(p)].push_back(input_.add_vertex(
          p, "P" + std::to_string(p) + "=" + std::to_string(v),
          ColorSet::single(p)));
      in_value_.push_back(v);
    }
    for (int v : spec_.output_values) {
      out_v[static_cast<std::size_t>(p)].push_back(output_.add_vertex(
          p, "P" + std::to_string(p) + "->" + std::to_string(v),
          ColorSet::single(p)));
      out_value_.push_back(v);
    }
  }
  if (distinct_inputs) {
    Simplex f;
    for (Color p = 0; p < n_procs; ++p) {
      f.push_back(in_v[static_cast<std::size_t>(p)][0]);
    }
    input_.add_facet(topo::make_simplex(std::move(f)));
  } else {
    for_each_value_assignment(
        n_procs, spec_.input_values, [&](const std::vector<int>& a) {
          Simplex f;
          for (Color p = 0; p < n_procs; ++p) {
            const auto& values = spec_.input_values;
            const auto pos = static_cast<std::size_t>(
                std::find(values.begin(), values.end(),
                          a[static_cast<std::size_t>(p)]) -
                values.begin());
            f.push_back(in_v[static_cast<std::size_t>(p)][pos]);
          }
          input_.add_facet(topo::make_simplex(std::move(f)));
        });
  }
  for_each_value_assignment(
      n_procs, spec_.output_values, [&](const std::vector<int>& a) {
        std::set<int> values(a.begin(), a.end());
        // A facet exists if the tuple is allowed for SOME input set: use the
        // full input-value set (most permissive); per-input filtering is
        // allows()'s job.
        std::set<int> all_in(spec_.input_values.begin(),
                             spec_.input_values.end());
        if (!spec_.allowed(all_in, values)) return;
        Simplex f;
        for (Color p = 0; p < n_procs; ++p) {
          const auto& domain = spec_.output_values;
          const auto pos = static_cast<std::size_t>(
              std::find(domain.begin(), domain.end(),
                        a[static_cast<std::size_t>(p)]) -
              domain.begin());
          f.push_back(out_v[static_cast<std::size_t>(p)][pos]);
        }
        output_.add_facet(topo::make_simplex(std::move(f)));
      });
}

std::string ProjectedColorlessTask::name() const {
  return spec_.name + "@" + std::to_string(n_procs_) + "procs";
}

bool ProjectedColorlessTask::allows(const Simplex& in,
                                    const Simplex& out) const {
  std::set<int> in_values, out_values;
  for (VertexId v : in) in_values.insert(in_value_[v]);
  for (VertexId v : out) out_values.insert(out_value_[v]);
  return spec_.allowed(in_values, out_values);
}

ResilienceVerdict decide_t_resilient(const ColorlessSpec& spec, int n_procs,
                                     int t, int max_level,
                                     const SolveOptions& options) {
  WFC_REQUIRE(n_procs >= 1, "decide_t_resilient: bad n_procs");
  WFC_REQUIRE(t >= 0 && t + 1 <= n_procs, "decide_t_resilient: bad t");
  // The BG reduction: (n_procs, t)-resilient solvability of a colorless
  // task == wait-free solvability by t+1 processors.
  ResilienceVerdict verdict;

  // Cheap refutation attempt first: the distinct-inputs restriction.
  if (spec.input_values.size() >= static_cast<std::size_t>(t + 1)) {
    ProjectedColorlessTask restricted(spec, t + 1, /*distinct_inputs=*/true);
    SolveResult r = solve(restricted, max_level, options);
    verdict.nodes_explored += r.nodes_explored;
    if (r.status == Solvability::kUnsolvable) {
      verdict.status = Solvability::kUnsolvable;
      return verdict;
    }
  }

  ProjectedColorlessTask projected(spec, t + 1);
  SolveResult r = solve(projected, max_level, options);
  verdict.status = r.status;
  verdict.wait_free_level = r.level;
  verdict.nodes_explored += r.nodes_explored;
  return verdict;
}

}  // namespace wfc::task
