// Renaming from one immediate snapshot -- the algorithmic side of the
// paper's reference [8] ("Immediate Atomic Snapshots and Fast Renaming").
//
// After a single one-shot immediate snapshot, processor P_i holds S_i.  The
// §3.5 properties make the following name assignment collision-free:
//
//     name(i, S_i) = |S_i| (|S_i| - 1) / 2  +  rank of i within S_i
//
// Why: processors in the same block have EQUAL views (so distinct ranks),
// and processors in different blocks have views of distinct sizes (prefix
// unions grow strictly), so the triangular offsets separate them.  With p
// participants every view has size <= p, giving the ADAPTIVE bound
// name < p(p+1)/2 -- independent of the namespace the ids came from.
//
// This is one immediate snapshot, i.e. ONE round of the IIS model: a
// level-"b=1" protocol in the characterization's terms (not the optimal
// 2p-1 renaming, which needs the full iterated machinery; see DESIGN.md).
#pragma once

#include <vector>

#include "runtime/adversary.hpp"
#include "runtime/sim_iis.hpp"

namespace wfc::task {

/// The name assigned to processor `id` with immediate-snapshot view
/// `view_ids` (the participant ids it saw, itself included, sorted).
int snapshot_renaming_name(int id, const std::vector<int>& view_ids);

struct RenamingRun {
  std::vector<int> names;  // per position in the participating set
  bool distinct = false;
  int max_name = -1;
};

/// Runs the protocol once for `participants` (processor ids) under the
/// adversary, in the simulated IIS model.
RenamingRun run_snapshot_renaming(const std::vector<Color>& participants,
                                  rt::Adversary& adversary);

/// Runs the protocol on real threads over a register-based immediate
/// snapshot object.
RenamingRun run_snapshot_renaming_threads(const std::vector<Color>& participants);

/// Exhaustively checks distinctness and the adaptive bound over EVERY
/// one-round IIS execution of `n_procs` processors; returns the number of
/// executions checked, throwing std::logic_error on any violation.
std::size_t validate_snapshot_renaming(int n_procs);

}  // namespace wfc::task
