#include "tasks/decision_protocol.hpp"

#include <algorithm>
#include <functional>

#include "runtime/sim_iis.hpp"
#include "runtime/thread_iis.hpp"

namespace wfc::task {

namespace {

using topo::Simplex;
using topo::VertexId;

}  // namespace

DecisionProtocol::DecisionProtocol(const Task& task, SolveResult result)
    : task_(&task), result_(std::move(result)) {
  WFC_REQUIRE(result_.status == Solvability::kSolvable,
              "DecisionProtocol: result is not solvable");
  WFC_REQUIRE(result_.chain != nullptr, "DecisionProtocol: missing chain");
  WFC_REQUIRE(result_.decision.size() == result_.chain->top().num_vertices(),
              "DecisionProtocol: decision size mismatch");
}

RunOutcome DecisionProtocol::finish(
    const Simplex& input_facet,
    const std::vector<VertexId>& final_vertices) const {
  RunOutcome out;
  out.input_facet = input_facet;
  out.decisions.reserve(final_vertices.size());
  for (VertexId v : final_vertices) {
    WFC_CHECK(v != topo::kNoVertex, "DecisionProtocol: processor undecided");
    out.decisions.push_back(result_.decision[v]);
  }
  Simplex decided = topo::make_simplex(out.decisions);
  out.valid = task_->output().contains_simplex(decided) &&
              task_->allows(input_facet, decided);
  if (decided.size() == 1 && !task_->output().contains_simplex(decided)) {
    // A single vertex is always a simplex of O; contains_simplex only fails
    // if the vertex id is foreign, which would be a library bug.
    out.valid = false;
  }
  return out;
}

RunOutcome DecisionProtocol::run_simulated(const Simplex& input_facet,
                                           rt::Adversary& adversary) const {
  const auto& chain = *result_.chain;
  const auto& input = task_->input();
  WFC_REQUIRE(input.contains_simplex(input_facet),
              "run_simulated: not an input simplex");
  const int b = chain.depth();
  const int n_active = static_cast<int>(input_facet.size());
  std::vector<Color> colors(input_facet.size());
  for (std::size_t i = 0; i < input_facet.size(); ++i) {
    colors[i] = input.vertex(input_facet[i]).color;
  }
  std::vector<VertexId> finals(input_facet.size(), topo::kNoVertex);

  if (b == 0) {
    // Level-0 maps decide directly on the input vertex.
    return finish(input_facet, std::vector<VertexId>(input_facet.begin(),
                                                     input_facet.end()));
  }

  // Value carried through the IIS rounds: current vertex id at the current
  // level of the chain.
  std::function<VertexId(int)> init = [&](int pos) {
    return input_facet[static_cast<std::size_t>(pos)];
  };
  std::function<rt::Step<VertexId>(int, int, const rt::IisSnapshot<VertexId>&)>
      on_view = [&](int pos, int round, const rt::IisSnapshot<VertexId>& snap) {
        Simplex seen;
        seen.reserve(snap.size());
        for (const auto& [q, vid] : snap) seen.push_back(vid);
        const VertexId next = chain.locate(
            round + 1, colors[static_cast<std::size_t>(pos)],
            topo::make_simplex(std::move(seen)));
        if (round + 1 == b) {
          finals[static_cast<std::size_t>(pos)] = next;
          return rt::Step<VertexId>::halt();
        }
        return rt::Step<VertexId>::cont(next);
      };
  rt::run_iis<VertexId>(n_active, adversary, b, init, on_view);
  return finish(input_facet, finals);
}

RunOutcome DecisionProtocol::run_threads(const Simplex& input_facet) const {
  const auto& chain = *result_.chain;
  const auto& input = task_->input();
  WFC_REQUIRE(input.contains_simplex(input_facet),
              "run_threads: not an input simplex");
  const int b = chain.depth();
  if (b == 0) {
    return finish(input_facet, std::vector<VertexId>(input_facet.begin(),
                                                     input_facet.end()));
  }
  const int n_active = static_cast<int>(input_facet.size());
  std::vector<Color> colors(input_facet.size());
  for (std::size_t i = 0; i < input_facet.size(); ++i) {
    colors[i] = input.vertex(input_facet[i]).color;
  }
  std::vector<VertexId> finals(input_facet.size(), topo::kNoVertex);

  std::function<VertexId(int)> init = [&](int pos) {
    return input_facet[static_cast<std::size_t>(pos)];
  };
  std::function<rt::Step<VertexId>(int, int, const rt::IisSnapshot<VertexId>&)>
      on_view = [&](int pos, int round, const rt::IisSnapshot<VertexId>& snap) {
        Simplex seen;
        seen.reserve(snap.size());
        for (const auto& [q, vid] : snap) seen.push_back(vid);
        const VertexId next = chain.locate(
            round + 1, colors[static_cast<std::size_t>(pos)],
            topo::make_simplex(std::move(seen)));
        if (round + 1 == b) {
          finals[static_cast<std::size_t>(pos)] = next;
          return rt::Step<VertexId>::halt();
        }
        return rt::Step<VertexId>::cont(next);
      };
  rt::run_iis_threads<VertexId>(n_active, b, init, on_view);
  return finish(input_facet, finals);
}

std::size_t DecisionProtocol::validate_exhaustively(
    const Simplex& input_facet) const {
  const auto& chain = *result_.chain;
  const auto& input = task_->input();
  WFC_REQUIRE(input.contains_simplex(input_facet),
              "validate_exhaustively: not an input simplex");
  const int b = chain.depth();
  if (b == 0) {
    RunOutcome out = finish(input_facet, std::vector<VertexId>(
                                             input_facet.begin(),
                                             input_facet.end()));
    WFC_CHECK(out.valid, "decision map invalid at level 0");
    return 1;
  }
  const int n_active = static_cast<int>(input_facet.size());
  std::vector<Color> colors(input_facet.size());
  for (std::size_t i = 0; i < input_facet.size(); ++i) {
    colors[i] = input.vertex(input_facet[i]).color;
  }
  std::vector<VertexId> finals(input_facet.size(), topo::kNoVertex);
  std::size_t executions = 0;

  std::function<VertexId(int)> init = [&](int pos) {
    return input_facet[static_cast<std::size_t>(pos)];
  };
  std::function<rt::Step<VertexId>(int, int, const rt::IisSnapshot<VertexId>&)>
      on_view = [&](int pos, int round, const rt::IisSnapshot<VertexId>& snap) {
        Simplex seen;
        seen.reserve(snap.size());
        for (const auto& [q, vid] : snap) seen.push_back(vid);
        const VertexId next = chain.locate(
            round + 1, colors[static_cast<std::size_t>(pos)],
            topo::make_simplex(std::move(seen)));
        if (round + 1 == b) {
          finals[static_cast<std::size_t>(pos)] = next;
          return rt::Step<VertexId>::halt();
        }
        return rt::Step<VertexId>::cont(next);
      };
  rt::for_each_iis_execution<VertexId>(
      n_active, b, init, on_view, [&](const std::vector<rt::Partition>&) {
        ++executions;
        RunOutcome out = finish(input_facet, finals);
        WFC_CHECK(out.valid, "decision map produced a disallowed tuple");
      });
  return executions;
}

}  // namespace wfc::task
