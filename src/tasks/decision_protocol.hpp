// Executable decision maps: the constructive half of the characterization.
//
// A kSolvable SolveResult is a simplicial map delta_b : SDS^b(I) -> O.  This
// module turns it into a running protocol: each processor performs b rounds
// of full-information iterated immediate snapshot, locates its local state
// as a vertex of SDS^b(I) (SdsChain::locate -- the operational Lemma 3.3),
// and decides delta_b(vertex).  Proposition 3.1 guarantees the decided
// tuple is allowed; the runners below double-check it at runtime.
//
// Runners exist for the simulated executor (any adversary, deterministic)
// and for real threads over register-based immediate snapshots.
#pragma once

#include <vector>

#include "runtime/adversary.hpp"
#include "tasks/solvability.hpp"

namespace wfc::task {

struct RunOutcome {
  /// decision[pos] = output vertex decided by the processor at position
  /// `pos` of the chosen input facet.
  std::vector<topo::VertexId> decisions;
  /// The input facet the run was started with.
  topo::Simplex input_facet;
  bool valid = false;  // task.allows(input_facet, decisions as simplex)
};

class DecisionProtocol {
 public:
  /// `result` must be kSolvable (with its chain).  The task reference must
  /// outlive the protocol.
  DecisionProtocol(const Task& task, SolveResult result);

  [[nodiscard]] int level() const noexcept { return result_.level; }

  /// Runs the protocol for the participants of `input_facet` (a facet or
  /// face of task.input()) under `adversary` in the simulated IIS model.
  RunOutcome run_simulated(const topo::Simplex& input_facet,
                           rt::Adversary& adversary) const;

  /// Runs on real threads over register-based immediate snapshots.
  RunOutcome run_threads(const topo::Simplex& input_facet) const;

  /// Runs over EVERY IIS execution of the participants of `input_facet`,
  /// returning the number of executions and failing (std::logic_error) on
  /// the first invalid decision tuple.  Exhaustive validation of the map.
  std::size_t validate_exhaustively(const topo::Simplex& input_facet) const;

 private:
  RunOutcome finish(const topo::Simplex& input_facet,
                    const std::vector<topo::VertexId>& final_vertices) const;

  const Task* task_;
  SolveResult result_;
};

}  // namespace wfc::task
