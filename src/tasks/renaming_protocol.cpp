#include "tasks/renaming_protocol.hpp"

#include <algorithm>
#include <set>

#include "common/assert.hpp"
#include "registers/immediate_snapshot.hpp"
#include "runtime/thread_iis.hpp"

namespace wfc::task {

int snapshot_renaming_name(int id, const std::vector<int>& view_ids) {
  WFC_REQUIRE(!view_ids.empty(), "snapshot_renaming_name: empty view");
  WFC_REQUIRE(std::is_sorted(view_ids.begin(), view_ids.end()),
              "snapshot_renaming_name: view must be sorted");
  const auto it = std::find(view_ids.begin(), view_ids.end(), id);
  WFC_REQUIRE(it != view_ids.end(),
              "snapshot_renaming_name: view must contain self");
  const int size = static_cast<int>(view_ids.size());
  const int rank = static_cast<int>(it - view_ids.begin());
  return size * (size - 1) / 2 + rank;
}

namespace {

RenamingRun finish(std::vector<int> names) {
  RenamingRun run;
  run.names = std::move(names);
  std::set<int> distinct(run.names.begin(), run.names.end());
  run.distinct = distinct.size() == run.names.size();
  run.max_name = *std::max_element(run.names.begin(), run.names.end());
  return run;
}

}  // namespace

RenamingRun run_snapshot_renaming(const std::vector<Color>& participants,
                                  rt::Adversary& adversary) {
  WFC_REQUIRE(!participants.empty(), "run_snapshot_renaming: no participants");
  const int n = static_cast<int>(participants.size());
  std::vector<int> names(participants.size(), -1);
  std::function<int(int)> init = [&](int pos) {
    return participants[static_cast<std::size_t>(pos)];
  };
  std::function<rt::Step<int>(int, int, const rt::IisSnapshot<int>&)> on_view =
      [&](int pos, int, const rt::IisSnapshot<int>& snap) {
        std::vector<int> view_ids;
        view_ids.reserve(snap.size());
        for (const auto& [q, id] : snap) view_ids.push_back(id);
        std::sort(view_ids.begin(), view_ids.end());
        names[static_cast<std::size_t>(pos)] = snapshot_renaming_name(
            participants[static_cast<std::size_t>(pos)], view_ids);
        return rt::Step<int>::halt();
      };
  rt::run_iis<int>(n, adversary, 1, init, on_view);
  return finish(std::move(names));
}

RenamingRun run_snapshot_renaming_threads(
    const std::vector<Color>& participants) {
  WFC_REQUIRE(!participants.empty(),
              "run_snapshot_renaming_threads: no participants");
  const int n = static_cast<int>(participants.size());
  reg::ImmediateSnapshot<int> object(n);
  std::vector<int> names(participants.size(), -1);
  std::vector<std::thread> threads;
  threads.reserve(participants.size());
  for (int pos = 0; pos < n; ++pos) {
    threads.emplace_back([&, pos] {
      auto out = object.write_read(
          pos, participants[static_cast<std::size_t>(pos)]);
      std::vector<int> view_ids;
      view_ids.reserve(out.size());
      for (const auto& [q, id] : out) view_ids.push_back(id);
      std::sort(view_ids.begin(), view_ids.end());
      names[static_cast<std::size_t>(pos)] = snapshot_renaming_name(
          participants[static_cast<std::size_t>(pos)], view_ids);
    });
  }
  for (auto& t : threads) t.join();
  return finish(std::move(names));
}

std::size_t validate_snapshot_renaming(int n_procs) {
  WFC_REQUIRE(n_procs >= 1 && n_procs <= 6,
              "validate_snapshot_renaming: instance too large");
  std::vector<int> names(static_cast<std::size_t>(n_procs), -1);
  std::size_t executions = 0;
  std::function<int(int)> init = [](int p) { return p; };
  std::function<rt::Step<int>(int, int, const rt::IisSnapshot<int>&)> on_view =
      [&](int pos, int, const rt::IisSnapshot<int>& snap) {
        std::vector<int> view_ids;
        for (const auto& [q, id] : snap) view_ids.push_back(id);
        std::sort(view_ids.begin(), view_ids.end());
        names[static_cast<std::size_t>(pos)] =
            snapshot_renaming_name(pos, view_ids);
        return rt::Step<int>::halt();
      };
  rt::for_each_iis_execution<int>(
      n_procs, 1, init, on_view, [&](const std::vector<rt::Partition>&) {
        ++executions;
        std::set<int> distinct(names.begin(), names.end());
        WFC_CHECK(distinct.size() == names.size(),
                  "snapshot renaming produced a name collision");
        const int bound = n_procs * (n_procs + 1) / 2;
        for (int name : names) {
          WFC_CHECK(name >= 0 && name < bound,
                    "snapshot renaming exceeded the adaptive bound");
        }
      });
  return executions;
}

}  // namespace wfc::task
