// Tasks as input/output chromatic complexes plus the relation Delta
// (paper §3.2): for each input simplex (a participating set with inputs),
// the output tuples that may be decided.
//
// `allows(in, out)` must be FACE-CLOSED in `out` for fixed `in`: if an
// output tuple is allowed, so is every sub-tuple.  This matches the paper's
// solvability definition (a partial output tuple must extend to an allowed
// one; we represent Delta directly by its face closure) and is what makes
// partial-assignment pruning in the solvability search sound.
#pragma once

#include <string>

#include "topology/complex.hpp"

namespace wfc::task {

class Task {
 public:
  virtual ~Task() = default;

  [[nodiscard]] virtual const topo::ChromaticComplex& input() const = 0;
  [[nodiscard]] virtual const topo::ChromaticComplex& output() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  /// True iff the output simplex `out` (vertex ids of output()) is allowed
  /// when the participating input simplex is `in` (vertex ids of input()).
  /// Callers guarantee colors(out) subset colors(in); implementations check
  /// the value constraints.
  [[nodiscard]] virtual bool allows(const topo::Simplex& in,
                                    const topo::Simplex& out) const = 0;

  /// Convenience: the output vertex of color `c` carrying `value`, or
  /// kNoVertex.  Default implementation scans; tasks with value labels
  /// override nothing (they expose values via vertex keys).
  [[nodiscard]] topo::VertexId output_vertex(Color c,
                                             const std::string& key) const {
    for (topo::VertexId v = 0; v < output().num_vertices(); ++v) {
      if (output().vertex(v).color == c && output().vertex(v).key == key) {
        return v;
      }
    }
    return topo::kNoVertex;
  }
};

}  // namespace wfc::task
