// The Proposition 3.1 decision procedure: a bounded-input task T is
// wait-free solvable in the IIS model at level b iff there is a
// color-preserving simplicial map delta_b : SDS^b(I) -> O with
// delta_b(s) in Delta(carrier(s, I)) for EVERY simplex s.
//
// The search is exact backtracking over the vertices of SDS^b(I):
//   * candidates(v) = output vertices of v's color allowed for v's carrier;
//   * a constraint per face of SDS^b(I): the (partial) image must be a
//     simplex of O allowed for the face's carrier.  Because Delta is
//     face-closed (see task.hpp), partial-assignment pruning is sound, so
//     kUnsolvable answers are genuine impossibility proofs for that level.
//
// By the paper's main theorem (the §4 emulation plus [8]), "solvable at some
// level b" is equivalent to wait-free solvability in read/write shared
// memory, making this the effective (per-level) form of the
// characterization.  (Full solvability is undecidable for >= 3 processors
// [9]: the per-level search cannot be escaped, hence `max_level` and the
// node budget, and the kUnknown verdict.)
//
// Long-running searches degrade gracefully: SolveOptions carries an optional
// deadline and an atomic cancel token, both checked inside the backtracking
// loop, yielding kCancelled.  A ChainProvider lets callers (notably the
// service-layer SDS cache, src/service) supply memoized SDS^k chains instead
// of rebuilding the subdivision tower per query.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "protocol/sds_chain.hpp"
#include "tasks/task.hpp"
#include "topology/arena.hpp"

namespace wfc::task {

enum class Solvability {
  kSolvable,
  kUnsolvable,
  kUnknown,    // node budget exhausted before a definite answer
  kCancelled,  // deadline passed or cancel token flipped mid-search
};

/// Short uppercase rendering ("SOLVABLE", ...), for logs and front-ends.
[[nodiscard]] const char* to_cstring(Solvability s);

struct SolveResult {
  Solvability status = Solvability::kUnknown;
  int level = -1;  // the b at which a map was found (status == kSolvable)
  /// decision[v] = output vertex for vertex v of SDS^level(I).
  std::vector<topo::VertexId> decision;
  /// The chain I, SDS(I), ..., SDS^level(I); present when solvable so the
  /// decision can be executed (see decision_protocol.hpp).
  std::shared_ptr<const proto::SdsChain> chain;
  std::uint64_t nodes_explored = 0;
};

/// Supplies the chain I, SDS(I), ..., SDS^depth(I) for an input complex
/// (depth() may exceed the request).  SDS^k is a pure function of the input,
/// so providers may memoize across queries; see svc::SdsCache.
using ChainProvider =
    std::function<std::shared_ptr<const proto::SdsChain>(
        const topo::ChromaticComplex& input, int depth)>;

/// A per-level restriction of the search: the admissible subcomplex of
/// SDS^level(I) under some sub-IIS model (wfc::model derives these by
/// pruning the level's arena; solvability itself stays model-agnostic).
/// Vertex colors, carriers, and base carriers are those of the original
/// level, so Delta constraints transfer unchanged -- but vertex IDS are the
/// pruned complex's own, so a restricted SolveResult's decision indexes the
/// restriction, not SDS^level(I), and result.chain stays null.
struct LevelRestriction {
  /// What the kArena engine searches.  Zero facets = no admissible runs at
  /// this level: the level is unsolvable by definition (a simplicial map
  /// must exist on SOME admissible complex, and the search over an empty
  /// complex would be vacuously solvable).
  topo::Arena arena;
  /// Complex form for the kLegacy engine; may be null, in which case the
  /// arena is materialized on demand.
  std::shared_ptr<const topo::ChromaticComplex> complex;
};

/// Supplies the restriction for one level of the (full) chain, or nullopt
/// for "search the level unrestricted".  Must be pure per (chain, level).
using LevelRestrictor =
    std::function<std::optional<LevelRestriction>(
        const proto::SdsChain& chain, int level)>;

/// Which backtracking engine runs the Prop 3.1 search.  Both explore the
/// identical search tree (same variable/value order, same AC-3 fixpoints)
/// and return identical verdicts, decisions, and node counts; kArena walks
/// flat topo::Arena spans with bitmask domains and precomputed pair tables
/// (tasks/arena_search.cpp), kLegacy walks the pointer-based
/// ChromaticComplex and is kept as the reference/baseline engine.
enum class SolveEngine {
  kArena,
  kLegacy,
};

struct SolveOptions {
  std::uint64_t node_budget = 50'000'000;  // backtracking nodes per level
  /// Absolute deadline; the search returns kCancelled once it passes.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Cooperative cancellation: flip to true (from any thread) and the
  /// search returns kCancelled at the next node.  Must outlive the call.
  const std::atomic<bool>* cancel = nullptr;
  /// Progress heartbeat: bumped (relaxed) at every search node so an
  /// external watchdog can tell a long search from a stuck worker.  Must
  /// outlive the call.
  std::atomic<std::uint64_t>* progress = nullptr;
  /// Observability checkpoints riding the heartbeat seam: when
  /// checkpoint_every > 0, on_checkpoint(nodes) is invoked every
  /// checkpoint_every explored nodes of a level's search (nodes counts from
  /// zero per level).  The callback runs on the search thread and must be
  /// cheap; the service records the samples as trace counter events.
  std::uint64_t checkpoint_every = 0;
  std::function<void(std::uint64_t nodes)> on_checkpoint;
  /// When set, solve/solve_at_level obtain SDS chains here instead of
  /// building privately (the provider may return an already-deeper chain).
  ChainProvider chain_provider;
  /// Search engine; kArena unless explicitly benchmarking the baseline.
  SolveEngine engine = SolveEngine::kArena;
  /// When set, each level's search runs over restrictor(chain, level)
  /// instead of the full level (see LevelRestriction).  Absent restrictor
  /// -- and a restrictor returning nullopt -- leaves the search bit-for-bit
  /// identical to an unrestricted solve.
  LevelRestrictor restrictor;
};

/// Decides level-b solvability exactly (within the node budget).
SolveResult solve_at_level(const Task& task, int level,
                           const SolveOptions& options = {});

/// Tries levels 0..max_level in order; returns the first solvable level, or
/// kUnsolvable if every level was exhaustively refuted, or kUnknown if some
/// level ran out of budget, or kCancelled on deadline/cancellation.  The
/// SDS chain grows once across levels (level b extends the level b-1 tower)
/// rather than being rebuilt from scratch per level.
SolveResult solve(const Task& task, int max_level,
                  const SolveOptions& options = {});

}  // namespace wfc::task
