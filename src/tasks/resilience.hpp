// t-resilient solvability for COLORLESS tasks via the BG reduction -- the
// extension the paper's §1 and §6 advertise ("our techniques can be
// extended to characterize models that are more complex than the
// wait-free"; worked out in [10, 11] on top of [7]'s simulation).
//
// A task is COLORLESS when Delta depends only on the SETS of input and
// output values, not on which processor holds which (consensus, k-set
// consensus, approximate agreement -- but not renaming).  For such tasks
// the BG simulation gives the classical reduction:
//
//   T is solvable by n+1 processors tolerating t failures
//     <=>  T is wait-free solvable by t+1 processors.
//
//   =>  : t+1 simulators BG-simulate the (n+1)-processor t-resilient
//         protocol; at most t simulated processors block (one per crashed
//         simulator -- see bg/simulation.hpp, machine-checked), so some
//         simulated processor decides, and colorlessness lets every
//         simulator adopt any decided value.
//   <= : n+1 processors run the (t+1)-processor protocol by "colorless
//         emulation": everyone proposes its input, the first t+1 positions
//         drive, stragglers adopt (validity is value-based, so adoption is
//         legal).
//
// decide_t_resilient() therefore projects the task to t+1 processors and
// invokes the wait-free Prop 3.1 checker -- the characterization reused as
// the engine for a stronger model.
#pragma once

#include <functional>
#include <set>
#include <string>

#include "tasks/solvability.hpp"

namespace wfc::task {

/// A colorless task over a fixed finite value domain: `allowed(in, out)`
/// with `in` the set of participating input values and `out` the set of
/// decided values.  Must be monotone-closed in `out` (subsets of allowed
/// output sets are allowed) for the projection to be a well-formed Task.
struct ColorlessSpec {
  std::string name;
  std::vector<int> input_values;   // each processor may hold any of these
  std::vector<int> output_values;  // decision domain
  std::function<bool(const std::set<int>&, const std::set<int>&)> allowed;
};

/// Canonical colorless specs.
ColorlessSpec colorless_consensus(int n_values);
ColorlessSpec colorless_set_consensus(int k, int n_values);
ColorlessSpec colorless_approx_agreement(int grid);

/// The m-processor instantiation of a colorless spec as a Task (every
/// processor may hold every input value; outputs are value-labeled).
class ProjectedColorlessTask final : public Task {
 public:
  /// `distinct_inputs`: restrict the input complex to the single assignment
  /// "processor i holds input_values[i]" (requires enough values).  The
  /// restricted task is implied by the general one, so UNSOLVABLE verdicts
  /// on it refute the general task too -- at a fraction of the search cost.
  ProjectedColorlessTask(ColorlessSpec spec, int n_procs,
                         bool distinct_inputs = false);

  [[nodiscard]] const topo::ChromaticComplex& input() const override {
    return input_;
  }
  [[nodiscard]] const topo::ChromaticComplex& output() const override {
    return output_;
  }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] bool allows(const topo::Simplex& in,
                            const topo::Simplex& out) const override;

 private:
  ColorlessSpec spec_;
  int n_procs_;
  topo::ChromaticComplex input_;
  topo::ChromaticComplex output_;
  std::vector<int> in_value_, out_value_;
};

struct ResilienceVerdict {
  Solvability status = Solvability::kUnknown;
  int wait_free_level = -1;  // witness level of the (t+1)-processor instance
  std::uint64_t nodes_explored = 0;
};

/// Decides whether the colorless task is solvable by `n_procs` processors
/// tolerating `t` crash failures, by the BG reduction to the wait-free
/// (t+1)-processor question.  Requires 1 <= t+1 <= n_procs.
///
/// Strategy: first try the cheap distinct-inputs instance (when the value
/// domain allows) -- if IT is unsolvable, so is the task.  Otherwise decide
/// the general instance.  kUnknown means some level exhausted the budget.
ResilienceVerdict decide_t_resilient(const ColorlessSpec& spec, int n_procs,
                                     int t, int max_level,
                                     const SolveOptions& options = {});

}  // namespace wfc::task
