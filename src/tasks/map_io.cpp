#include "tasks/map_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "topology/hash.hpp"
#include "topology/simplicial_map.hpp"

namespace wfc::task {

std::uint64_t complex_fingerprint(const topo::ChromaticComplex& c) {
  // The canonical hasher lives in topology/ (shared with the service-layer
  // SDS cache); this alias keeps the historical map_io entry point.
  return topo::complex_fingerprint(c);
}

void write_solve_result(std::ostream& os, const Task& task,
                        const SolveResult& result) {
  WFC_REQUIRE(result.status == Solvability::kSolvable,
              "write_solve_result: result is not solvable");
  WFC_REQUIRE(result.chain != nullptr, "write_solve_result: missing chain");
  os << "wfc-decision-map 1\n";
  os << "task " << task::complex_fingerprint(task.input()) << ' '
     << task::complex_fingerprint(task.output()) << "\n";
  os << "level " << result.level << "\n";
  os << "decision";
  for (topo::VertexId w : result.decision) os << ' ' << w;
  os << "\n";
}

SolveResult read_solve_result(std::istream& is, const Task& task) {
  std::string line;
  WFC_REQUIRE(std::getline(is, line) && line == "wfc-decision-map 1",
              "read_solve_result: bad header");
  WFC_REQUIRE(std::getline(is, line) && line.rfind("task ", 0) == 0,
              "read_solve_result: missing task line");
  {
    std::istringstream ls(line.substr(5));
    std::uint64_t in_fp = 0, out_fp = 0;
    ls >> in_fp >> out_fp;
    WFC_REQUIRE(in_fp == task::complex_fingerprint(task.input()) &&
                    out_fp == task::complex_fingerprint(task.output()),
                "read_solve_result: map was saved for a different task");
  }
  WFC_REQUIRE(std::getline(is, line) && line.rfind("level ", 0) == 0,
              "read_solve_result: missing level line");
  const int level = std::stoi(line.substr(6));
  WFC_REQUIRE(level >= 0, "read_solve_result: negative level");

  SolveResult result;
  result.status = Solvability::kSolvable;
  result.level = level;
  result.chain = std::make_shared<proto::SdsChain>(task.input(), level);

  WFC_REQUIRE(std::getline(is, line) && line.rfind("decision", 0) == 0,
              "read_solve_result: missing decision line");
  {
    std::istringstream ls(line.substr(8));
    topo::VertexId w;
    while (ls >> w) result.decision.push_back(w);
  }
  const topo::ChromaticComplex& top = result.chain->top();
  WFC_REQUIRE(result.decision.size() == top.num_vertices(),
              "read_solve_result: decision size mismatch");
  for (topo::VertexId w : result.decision) {
    WFC_REQUIRE(w < task.output().num_vertices(),
                "read_solve_result: decision references a foreign vertex");
  }

  // Re-validate the witness before handing it out.
  topo::SimplicialMap map(top, task.output());
  for (topo::VertexId v = 0; v < top.num_vertices(); ++v) {
    map.set(v, result.decision[v]);
  }
  WFC_REQUIRE(map.is_simplicial() && map.is_color_preserving(),
              "read_solve_result: stored map fails validation");
  return result;
}

std::string solve_result_to_text(const Task& task, const SolveResult& result) {
  std::ostringstream os;
  write_solve_result(os, task, result);
  return os.str();
}

SolveResult solve_result_from_text(const std::string& text, const Task& task) {
  std::istringstream is(text);
  return read_solve_result(is, task);
}

}  // namespace wfc::task
