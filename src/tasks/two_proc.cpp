#include "tasks/two_proc.hpp"

#include <algorithm>
#include <map>
#include <queue>

#include "common/assert.hpp"

namespace wfc::task {

namespace {

using topo::ChromaticComplex;
using topo::kNoVertex;
using topo::Simplex;
using topo::VertexId;

/// Shortest path length (in edges) between a and b in the Delta(e)-allowed
/// output graph; -1 if disconnected or an endpoint is not allowed.
int allowed_path_length(const Task& task, const Simplex& edge, VertexId a,
                        VertexId b) {
  const ChromaticComplex& out = task.output();
  if (!task.allows(edge, {a}) || !task.allows(edge, {b})) return -1;
  if (a == b) return 0;
  std::vector<int> dist(out.num_vertices(), -1);
  std::queue<VertexId> queue;
  dist[a] = 0;
  queue.push(a);
  while (!queue.empty()) {
    const VertexId cur = queue.front();
    queue.pop();
    // Neighbours of cur in the allowed graph: scan facets containing cur.
    for (std::uint32_t fi : out.facets_containing(cur)) {
      for (VertexId nxt : out.facets()[fi]) {
        if (nxt == cur || dist[nxt] >= 0) continue;
        if (!out.contains_simplex(topo::make_simplex({cur, nxt}))) continue;
        if (!task.allows(edge, topo::make_simplex({cur, nxt}))) continue;
        dist[nxt] = dist[cur] + 1;
        if (nxt == b) return dist[nxt];
        queue.push(nxt);
      }
    }
  }
  return -1;
}

int level_for_path(int length) {
  // A color-alternating walk of any odd length >= `length` exists once the
  // path does; SDS^b(s^1) is a path of 3^b edges, so b = ceil(log3 length).
  int level = 0;
  for (int reach = 1; reach < length; reach *= 3) ++level;
  return level;
}

}  // namespace

TwoProcVerdict decide_two_processors(const Task& task) {
  const ChromaticComplex& in = task.input();
  const ChromaticComplex& out = task.output();
  WFC_REQUIRE(in.n_colors() == 2,
              "decide_two_processors: task is not a 2-processor task");

  // Solo decision candidates per input vertex.
  std::vector<std::vector<VertexId>> solo(in.num_vertices());
  for (VertexId u = 0; u < in.num_vertices(); ++u) {
    for (VertexId w = 0; w < out.num_vertices(); ++w) {
      if (out.vertex(w).color != in.vertex(u).color) continue;
      if (task.allows({u}, {w})) solo[u].push_back(w);
    }
    if (solo[u].empty()) return {};  // some solo run cannot decide at all
  }

  // Memoized per-edge path lengths: (edge index, w0, w1) -> length.
  std::map<std::tuple<std::size_t, VertexId, VertexId>, int> memo;
  const auto& edges = in.facets();
  auto path_length = [&](std::size_t ei, VertexId w0, VertexId w1) {
    auto key = std::make_tuple(ei, std::min(w0, w1), std::max(w0, w1));
    auto it = memo.find(key);
    if (it == memo.end()) {
      it = memo.emplace(key, allowed_path_length(task, edges[ei], w0, w1))
               .first;
    }
    return it->second;
  };

  // Backtracking over solo assignments, minimizing the worst path length.
  TwoProcVerdict best;
  int best_worst = -1;
  std::vector<VertexId> pick(in.num_vertices(), kNoVertex);

  // Edges indexed by the input vertex assigned LAST (largest id), so each
  // constraint is checked as soon as both endpoints are chosen.
  std::vector<std::vector<std::size_t>> edges_by_last(in.num_vertices());
  for (std::size_t ei = 0; ei < edges.size(); ++ei) {
    if (edges[ei].size() == 2) {
      edges_by_last[std::max(edges[ei][0], edges[ei][1])].push_back(ei);
    }
  }

  auto rec = [&](auto&& self, VertexId u, int worst) -> void {
    if (u == in.num_vertices()) {
      if (best_worst < 0 || worst < best_worst) {
        best_worst = worst;
        best.solvable = true;
        best.solo_decision = pick;
        best.level_lower_bound = level_for_path(worst);
      }
      return;
    }
    for (VertexId w : solo[u]) {
      pick[u] = w;
      int new_worst = worst;
      bool ok = true;
      for (std::size_t ei : edges_by_last[u]) {
        const Simplex& e = edges[ei];
        const VertexId other = e[0] == u ? e[1] : e[0];
        const int len = path_length(ei, pick[other], w);
        if (len < 0) {
          ok = false;
          break;
        }
        new_worst = std::max(new_worst, len);
      }
      if (ok && (best_worst < 0 || new_worst < best_worst)) {
        self(self, u + 1, new_worst);
      }
      pick[u] = kNoVertex;
    }
  };
  rec(rec, 0, 0);
  return best;
}

}  // namespace wfc::task
