#include "tasks/solvability.hpp"

#include <algorithm>
#include <map>

#include "common/assert.hpp"
#include "tasks/arena_search.hpp"

namespace wfc::task {

namespace {

using topo::ChromaticComplex;
using topo::kNoVertex;
using topo::Simplex;
using topo::VertexId;

/// How often (in explored nodes) the deadline clock is consulted; the cancel
/// token is a relaxed atomic load and is checked at every node.
constexpr std::uint64_t kDeadlineCheckMask = 0x3ff;

bool deadline_passed(const SolveOptions& options) {
  return options.deadline &&
         std::chrono::steady_clock::now() >= *options.deadline;
}

bool cancel_requested(const SolveOptions& options) {
  return (options.cancel &&
          options.cancel->load(std::memory_order_relaxed)) ||
         deadline_passed(options);
}

/// One Delta constraint: a face of SDS^b(I) with its carrier in I.
struct FaceConstraint {
  Simplex face;          // vertices of SDS^b(I)
  Simplex base_carrier;  // simplex of I
};

/// Backtracking with forward checking.  Domains are per-vertex candidate
/// lists; assigning v=w prunes neighbouring domains through the binary
/// (edge) constraints, and full face constraints are re-checked when their
/// last member is assigned.  Face-closure of Delta (task.hpp) makes both
/// prunings sound, so kUnsolvable is an exhaustive refutation.
class Search {
 public:
  Search(const Task& task, const ChromaticComplex& complex,
         const SolveOptions& options)
      : task_(&task),
        complex_(&complex),
        options_(&options),
        budget_(options.node_budget) {
    build_domains();
    build_constraints();
  }

  Solvability run(std::vector<VertexId>& out, std::uint64_t& nodes) {
    assignment_.assign(complex_->num_vertices(), kNoVertex);
    nodes_ = 0;
    if (cancel_requested(*options_)) {
      nodes = 0;
      return Solvability::kCancelled;
    }
    // Root arc consistency: prune before the first branch.
    std::vector<std::pair<VertexId, VertexId>> root_trail;
    if (!propagate(kNoVertex, root_trail)) {
      nodes = nodes_;
      return Solvability::kUnsolvable;
    }
    const Solvability result = assign(0);
    nodes = nodes_;
    if (result == Solvability::kSolvable) out = assignment_;
    return result;
  }

 private:
  void build_domains() {
    const ChromaticComplex& out = task_->output();
    domains_.resize(complex_->num_vertices());
    for (VertexId v = 0; v < complex_->num_vertices(); ++v) {
      const auto& data = complex_->vertex(v);
      for (VertexId w = 0; w < out.num_vertices(); ++w) {
        if (out.vertex(w).color != data.color) continue;
        if (!task_->allows(data.base_carrier, {w})) continue;
        domains_[v].push_back(w);
      }
    }
    // Output adjacency: compat_[w1][w2] iff {w1, w2} is a simplex of O.
    const std::size_t m = out.num_vertices();
    compat_.assign(m, std::vector<bool>(m, false));
    for (VertexId w = 0; w < m; ++w) compat_[w][w] = true;
    out.for_each_face([&](const Simplex& s) {
      for (VertexId a : s) {
        for (VertexId b : s) compat_[a][b] = true;
      }
    });
  }

  void build_constraints() {
    complex_->for_each_face([&](const Simplex& face) {
      if (face.size() < 2) return;  // singletons folded into the domains
      const std::size_t ci = constraints_.size();
      constraints_.push_back(
          FaceConstraint{face, complex_->base_carrier_of(face)});
      if (face.size() == 2) {
        pair_constraint_[{face[0], face[1]}] =
            static_cast<std::uint32_t>(ci);
      }
    });
    by_vertex_.resize(complex_->num_vertices());
    neighbours_.resize(complex_->num_vertices());
    for (std::size_t ci = 0; ci < constraints_.size(); ++ci) {
      for (VertexId v : constraints_[ci].face) {
        by_vertex_[v].push_back(static_cast<std::uint32_t>(ci));
      }
    }
    for (const auto& [pair, ci] : pair_constraint_) {
      neighbours_[pair.first].push_back({pair.second, ci});
      neighbours_[pair.second].push_back({pair.first, ci});
    }
  }

  /// Exact check of every face constraint whose members are all assigned
  /// and which contains v.
  bool faces_consistent(VertexId v) {
    for (std::uint32_t ci : by_vertex_[v]) {
      const FaceConstraint& fc = constraints_[ci];
      Simplex image;
      image.reserve(fc.face.size());
      bool all_assigned = true;
      for (VertexId u : fc.face) {
        if (assignment_[u] == kNoVertex) {
          all_assigned = false;
          break;
        }
        image.push_back(assignment_[u]);
      }
      if (!all_assigned) continue;
      image = topo::make_simplex(std::move(image));
      if (!task_->output().contains_simplex(image)) return false;
      if (!task_->allows(fc.base_carrier, image)) return false;
    }
    return true;
  }

  /// True iff the pair {a, b} is permitted by edge constraint `ci`.
  bool edge_ok(std::uint32_t ci, VertexId a, VertexId b) {
    if (!compat_[a][b]) return false;
    return task_->allows(constraints_[ci].base_carrier,
                         topo::make_simplex({a, b}));
  }

  /// AC-3 arc consistency over the binary (edge) constraints, seeded with
  /// the arcs pointing at `start` (or with every arc when start ==
  /// kNoVertex, i.e. the root call).  Removed values go on `trail` for
  /// undo.  Returns false on a domain wipe-out.
  ///
  /// Transitive propagation matters: tasks like approximate agreement pin
  /// distant vertices (the corners) and constrain neighbours by +-1; plain
  /// forward checking discovers the conflict only after walking the whole
  /// chain, AC-3 trims every domain to its feasible window up front.
  bool propagate(VertexId start,
                 std::vector<std::pair<VertexId, VertexId>>& trail) {
    // Work queue of (target u, constraint, source v): re-check u against v.
    std::vector<std::tuple<VertexId, std::uint32_t, VertexId>> queue;
    if (start == kNoVertex) {
      for (VertexId v = 0; v < complex_->num_vertices(); ++v) {
        for (const auto& [u, ci] : neighbours_[v]) queue.emplace_back(u, ci, v);
      }
    } else {
      for (const auto& [u, ci] : neighbours_[start]) {
        queue.emplace_back(u, ci, start);
      }
    }
    while (!queue.empty()) {
      const auto [u, ci, v] = queue.back();
      queue.pop_back();
      if (assignment_[u] != kNoVertex) continue;
      // v's live values: its assignment if set, else its domain.
      const VertexId v_assigned = assignment_[v];
      auto& dom = domains_[u];
      bool removed_any = false;
      for (std::size_t i = dom.size(); i-- > 0;) {
        const VertexId cand = dom[i];
        bool supported = false;
        if (v_assigned != kNoVertex) {
          supported = edge_ok(ci, cand, v_assigned);
        } else {
          for (VertexId wv : domains_[v]) {
            if (edge_ok(ci, cand, wv)) {
              supported = true;
              break;
            }
          }
        }
        if (!supported) {
          trail.emplace_back(u, cand);
          dom[i] = dom.back();
          dom.pop_back();
          removed_any = true;
        }
      }
      if (dom.empty()) return false;
      if (removed_any) {
        for (const auto& [x, cj] : neighbours_[u]) {
          if (x != v) queue.emplace_back(x, cj, u);
        }
      }
    }
    return true;
  }

  void undo(const std::vector<std::pair<VertexId, VertexId>>& trail) {
    for (const auto& [u, cand] : trail) domains_[u].push_back(cand);
  }

  /// Dynamic variable selection: the unassigned vertex with the smallest
  /// live domain (ties to lower id for determinism).
  VertexId pick_vertex() const {
    VertexId best = kNoVertex;
    std::size_t best_size = ~std::size_t{0};
    for (VertexId v = 0; v < complex_->num_vertices(); ++v) {
      if (assignment_[v] != kNoVertex) continue;
      if (domains_[v].size() < best_size) {
        best = v;
        best_size = domains_[v].size();
      }
    }
    return best;
  }

  /// kUnknown (budget) or kCancelled (token/deadline) if the search must
  /// stop at this node; kSolvable (meaning "keep going") otherwise.
  Solvability node_interrupt() {
    if (options_->progress != nullptr) {
      options_->progress->fetch_add(1, std::memory_order_relaxed);
    }
    if (++nodes_ > budget_) return Solvability::kUnknown;
    if (options_->checkpoint_every != 0 &&
        nodes_ % options_->checkpoint_every == 0 && options_->on_checkpoint) {
      options_->on_checkpoint(nodes_);
    }
    if (options_->cancel &&
        options_->cancel->load(std::memory_order_relaxed)) {
      return Solvability::kCancelled;
    }
    if ((nodes_ & kDeadlineCheckMask) == 0 && deadline_passed(*options_)) {
      return Solvability::kCancelled;
    }
    return Solvability::kSolvable;
  }

  Solvability assign(std::size_t depth) {
    const VertexId v = pick_vertex();
    if (v == kNoVertex) return Solvability::kSolvable;
    // Snapshot the domain: propagation from deeper levels mutates it (and
    // the swap-remove scrambles order, so restore the deterministic
    // natural value order -- it doubles as a good heuristic for tasks whose
    // outputs are ordered, e.g. grids).
    std::vector<VertexId> options(domains_[v].begin(), domains_[v].end());
    std::sort(options.begin(), options.end());
    for (VertexId w : options) {
      const Solvability interrupt = node_interrupt();
      if (interrupt != Solvability::kSolvable) return interrupt;
      assignment_[v] = w;
      std::vector<std::pair<VertexId, VertexId>> trail;
      if (faces_consistent(v) && propagate(v, trail)) {
        const Solvability sub = assign(depth + 1);
        if (sub != Solvability::kUnsolvable) {
          undo(trail);
          if (sub == Solvability::kSolvable) assignment_[v] = w;
          return sub;
        }
      }
      undo(trail);
      assignment_[v] = kNoVertex;
    }
    return Solvability::kUnsolvable;
  }

  const Task* task_;
  const ChromaticComplex* complex_;
  const SolveOptions* options_;
  std::uint64_t budget_;
  std::uint64_t nodes_ = 0;

  std::vector<std::vector<VertexId>> domains_;
  std::vector<std::vector<bool>> compat_;
  std::vector<FaceConstraint> constraints_;
  std::map<std::pair<VertexId, VertexId>, std::uint32_t> pair_constraint_;
  std::vector<std::vector<std::uint32_t>> by_vertex_;
  std::vector<std::vector<std::pair<VertexId, std::uint32_t>>> neighbours_;
  std::vector<VertexId> assignment_;
};

/// Chain acquisition shared by solve and solve_at_level: consult the
/// provider when present, otherwise grow `own` (extending the existing
/// tower shares every already-built level; see SdsChain).
std::shared_ptr<const proto::SdsChain> chain_for(
    const Task& task, int depth, const SolveOptions& options,
    std::shared_ptr<const proto::SdsChain>& own) {
  if (options.chain_provider) {
    std::shared_ptr<const proto::SdsChain> chain =
        options.chain_provider(task.input(), depth);
    WFC_CHECK(chain != nullptr && chain->depth() >= depth,
              "solve: chain provider returned a short chain");
    return chain;
  }
  if (!own) {
    own = std::make_shared<proto::SdsChain>(task.input(), depth);
  } else if (own->depth() < depth) {
    own = std::make_shared<proto::SdsChain>(*own, depth);
  }
  return own;
}

/// Runs the level-b search over `chain` (depth >= level) and assembles the
/// result; the stored chain is truncated to exactly `level` so that
/// DecisionProtocol's b == chain->depth() invariant holds.
SolveResult search_level(const Task& task, int level,
                         std::shared_ptr<const proto::SdsChain> chain,
                         const SolveOptions& options) {
  SolveResult result;
  std::optional<LevelRestriction> restriction;
  if (options.restrictor) restriction = options.restrictor(*chain, level);
  if (restriction.has_value()) {
    if (restriction->arena.num_facets() == 0) {
      // No admissible run reaches this level; the search over an empty
      // complex would be vacuously solvable, so short-circuit.
      result.status = Solvability::kUnsolvable;
      return result;
    }
    if (options.engine == SolveEngine::kArena) {
      result.status = arena_search(task, restriction->arena, options,
                                   result.decision, result.nodes_explored);
    } else {
      std::shared_ptr<const ChromaticComplex> complex = restriction->complex;
      if (complex == nullptr) {
        complex = std::make_shared<ChromaticComplex>(
            restriction->arena.materialize());
      }
      Search search(task, *complex, options);
      result.status = search.run(result.decision, result.nodes_explored);
    }
    if (result.status == Solvability::kSolvable) {
      // The decision indexes the PRUNED complex; the full chain would
      // misalign, so no chain travels with a restricted result.
      result.level = level;
    }
    return result;
  }
  if (options.engine == SolveEngine::kArena) {
    // The default engine: flat spans, bitmask domains (arena_search.cpp).
    // For store-backed chains arena(level) is a zero-copy view of the mmap.
    result.status = arena_search(task, chain->arena(level), options,
                                 result.decision, result.nodes_explored);
  } else {
    Search search(task, chain->level(level), options);
    result.status = search.run(result.decision, result.nodes_explored);
  }
  if (result.status == Solvability::kSolvable) {
    result.level = level;
    result.chain = chain->depth() == level
                       ? std::move(chain)
                       : std::make_shared<proto::SdsChain>(*chain, level);
  }
  return result;
}

}  // namespace

const char* to_cstring(Solvability s) {
  switch (s) {
    case Solvability::kSolvable: return "SOLVABLE";
    case Solvability::kUnsolvable: return "UNSOLVABLE";
    case Solvability::kUnknown: return "UNKNOWN";
    case Solvability::kCancelled: return "CANCELLED";
  }
  return "?";
}

SolveResult solve_at_level(const Task& task, int level,
                           const SolveOptions& options) {
  WFC_REQUIRE(level >= 0, "solve_at_level: negative level");
  std::shared_ptr<const proto::SdsChain> own;
  return search_level(task, level, chain_for(task, level, options, own),
                      options);
}

SolveResult solve(const Task& task, int max_level,
                  const SolveOptions& options) {
  WFC_REQUIRE(max_level >= 0, "solve: negative max_level");
  bool hit_budget = false;
  std::uint64_t total_nodes = 0;
  std::shared_ptr<const proto::SdsChain> own;
  for (int b = 0; b <= max_level; ++b) {
    if (cancel_requested(options)) {
      SolveResult out;
      out.status = Solvability::kCancelled;
      out.nodes_explored = total_nodes;
      return out;
    }
    SolveResult r =
        search_level(task, b, chain_for(task, b, options, own), options);
    total_nodes += r.nodes_explored;
    if (r.status == Solvability::kSolvable ||
        r.status == Solvability::kCancelled) {
      r.nodes_explored = total_nodes;
      return r;
    }
    if (r.status == Solvability::kUnknown) hit_budget = true;
  }
  SolveResult out;
  out.status = hit_budget ? Solvability::kUnknown : Solvability::kUnsolvable;
  out.nodes_explored = total_nodes;
  return out;
}

}  // namespace wfc::task
