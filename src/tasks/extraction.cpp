#include "tasks/extraction.hpp"

#include <algorithm>

#include "runtime/sim_iis.hpp"

namespace wfc::task {

namespace {

using topo::ChromaticComplex;
using topo::kNoVertex;
using topo::Simplex;
using topo::VertexId;

}  // namespace

ExtractionReport extract_decision_map(const Task& task, int level,
                                      const ExtractionProtocol& protocol) {
  WFC_REQUIRE(level >= 1, "extract_decision_map: need at least one round");
  WFC_REQUIRE(protocol.init && protocol.step && protocol.decide,
              "extract_decision_map: protocol callbacks must be set");
  ExtractionReport report;
  auto chain = std::make_shared<proto::SdsChain>(task.input(), level);
  const ChromaticComplex& top = chain->top();
  const ChromaticComplex& input = task.input();
  const ChromaticComplex& output = task.output();

  std::vector<VertexId> decision(top.num_vertices(), kNoVertex);
  report.deterministic = true;

  auto fail = [&](bool& flag, const std::string& what) {
    if (report.violation.empty()) report.violation = what;
    flag = false;
  };

  // Replay every execution of every input facet, tracking (protocol state,
  // chain vertex) side by side.
  using Pair = std::pair<int, VertexId>;
  for (const Simplex& facet : input.facets()) {
    const int n_active = static_cast<int>(facet.size());
    std::vector<Color> colors(facet.size());
    for (std::size_t pos = 0; pos < facet.size(); ++pos) {
      colors[pos] = input.vertex(facet[pos]).color;
    }
    std::function<Pair(int)> init = [&](int pos) {
      const VertexId iv = facet[static_cast<std::size_t>(pos)];
      return Pair{protocol.init(colors[static_cast<std::size_t>(pos)], iv), iv};
    };
    std::function<rt::Step<Pair>(int, int, const rt::IisSnapshot<Pair>&)>
        on_view = [&](int pos, int round, const rt::IisSnapshot<Pair>& snap) {
          const Color c = colors[static_cast<std::size_t>(pos)];
          rt::IisSnapshot<int> states;
          Simplex seen;
          states.reserve(snap.size());
          for (const auto& [q, pr] : snap) {
            states.emplace_back(colors[static_cast<std::size_t>(q)], pr.first);
            seen.push_back(pr.second);
          }
          std::sort(states.begin(), states.end());
          const int next_state = protocol.step(c, round, states);
          const VertexId next_vertex =
              chain->locate(round + 1, c, topo::make_simplex(std::move(seen)));
          if (round + 1 == level) {
            const VertexId decided = protocol.decide(c, next_state);
            WFC_REQUIRE(decided < output.num_vertices(),
                        "extract_decision_map: decide() returned a foreign "
                        "vertex");
            if (decision[next_vertex] == kNoVertex) {
              decision[next_vertex] = decided;
            } else if (decision[next_vertex] != decided) {
              fail(report.deterministic,
                   "vertex " + top.vertex(next_vertex).key +
                       " decided two different outputs");
            }
            return rt::Step<Pair>::halt();
          }
          return rt::Step<Pair>::cont({next_state, next_vertex});
        };
    rt::for_each_iis_execution<Pair>(n_active, level, init, on_view,
                                     [](const std::vector<rt::Partition>&) {});
  }

  // Totality: every vertex of SDS^level(I) is reachable by some execution,
  // so every slot must be filled.
  report.total = std::find(decision.begin(), decision.end(), kNoVertex) ==
                 decision.end();
  if (!report.total) fail(report.total, "some vertex never decided");

  // Color preservation.
  report.color_preserving = true;
  for (VertexId v = 0; v < top.num_vertices() && report.total; ++v) {
    if (output.vertex(decision[v]).color != top.vertex(v).color) {
      fail(report.color_preserving,
           "decision changes color at " + top.vertex(v).key);
    }
  }

  // Simpliciality + Delta on every face.
  report.simplicial = true;
  report.delta_respecting = true;
  if (report.total) {
    top.for_each_face([&](const Simplex& face) {
      Simplex image;
      image.reserve(face.size());
      for (VertexId v : face) image.push_back(decision[v]);
      image = topo::make_simplex(std::move(image));
      if (!output.contains_simplex(image)) {
        fail(report.simplicial,
             "image of " + topo::to_string(face) + " is not a simplex of O");
        return;
      }
      if (!task.allows(top.base_carrier_of(face), image)) {
        fail(report.delta_respecting,
             "image of " + topo::to_string(face) + " violates Delta");
      }
    });
  }

  if (report.ok()) {
    report.result.status = Solvability::kSolvable;
    report.result.level = level;
    report.result.decision = std::move(decision);
    report.result.chain = std::move(chain);
  }
  return report;
}

}  // namespace wfc::task
