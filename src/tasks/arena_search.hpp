// Arena-core Prop 3.1 search: the same exact backtracking + AC-3 decision
// procedure as the legacy Search in solvability.cpp, rebuilt over the flat
// topo::Arena form of SDS^b(I) so the inner loop is cache-linear:
//
//   * domains are per-vertex bitmask words (one bit per output vertex), so
//     AC-3 support checks are word-wide ANDs instead of nested scans;
//   * the edge-constraint `allows` oracle is precomputed ONCE per distinct
//     face carrier (a "carrier class") into a pair-allowed bitmatrix --
//     the search itself never calls Task::allows on edges;
//   * output facet membership is a bitset per output vertex, so the
//     contains_simplex check on a fully-assigned face is a word-wide AND;
//   * face/constraint/neighbour tables are CSR spans over dense uint32 ids
//     with zero per-node allocation (trail and snapshots live in reused
//     flat buffers).
//
// Equivalence contract (tested in tests/arena_test.cpp): variable order
// (min live domain, ties to lowest id), value order (ascending output id),
// the AC-3 fixpoints, and the interrupt cadence are identical to the
// legacy engine, so verdict, decision map, and nodes_explored match
// bit-for-bit; only the per-node constant factor changes.
#pragma once

#include <cstdint>
#include <vector>

#include "tasks/solvability.hpp"
#include "topology/arena.hpp"

namespace wfc::task {

/// Runs the level search over `arena` (the flat form of SDS^b(I)) against
/// task.output().  On kSolvable, `decision[v]` is the output vertex for
/// arena vertex v.  `nodes` is the explored-node count (identical to the
/// legacy engine's).
[[nodiscard]] Solvability arena_search(const Task& task,
                                       const topo::Arena& arena,
                                       const SolveOptions& options,
                                       std::vector<topo::VertexId>& decision,
                                       std::uint64_t& nodes);

}  // namespace wfc::task
