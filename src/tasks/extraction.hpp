// Decision-map extraction: the inverse direction of Proposition 3.1.
//
// The solvability checker goes map -> protocol.  This module goes
// protocol -> map: given a deterministic full-information IIS protocol
// that decides after exactly `level` WriteReads, replay it over EVERY
// execution, record which output vertex each SDS^level(I) vertex decides,
// and check the paper's conditions on the recorded map:
//   * totality      -- every reachable vertex decides;
//   * simpliciality -- executions' joint decisions are simplices of O;
//   * color preservation;
//   * Delta respect -- decisions allowed for each face's carrier.
// A hand-written algorithm passing extract_decision_map() is thereby
// PROVEN correct on all schedules (for the given finite input complex),
// and the returned SolveResult can be executed like any searched witness.
#pragma once

#include <functional>
#include <string>

#include "runtime/sim_iis.hpp"
#include "tasks/solvability.hpp"

namespace wfc::task {

/// A protocol under extraction: carries an opaque integer state; deciding
/// means returning a vertex of task.output().
struct ExtractionProtocol {
  /// Initial state of the processor owning input vertex `v` (of color c).
  std::function<int(Color c, topo::VertexId v)> init;
  /// State transition after one WriteRead; `snap` pairs are (color, state).
  std::function<int(Color c, int round,
                    const rt::IisSnapshot<int>& snap)> step;
  /// Final decision from the state after `level` rounds.
  std::function<topo::VertexId(Color c, int state)> decide;
};

struct ExtractionReport {
  bool total = false;
  bool deterministic = false;  // same vertex never decides two ways
  bool color_preserving = false;
  bool simplicial = false;
  bool delta_respecting = false;
  std::string violation;

  /// The extracted witness (valid when ok()).
  SolveResult result;

  [[nodiscard]] bool ok() const noexcept {
    return total && deterministic && color_preserving && simplicial &&
           delta_respecting;
  }
};

/// Replays `protocol` over every `level`-round IIS execution of every facet
/// of task.input() and validates the induced decision map.
ExtractionReport extract_decision_map(const Task& task, int level,
                                      const ExtractionProtocol& protocol);

}  // namespace wfc::task
