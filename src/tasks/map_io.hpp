// Persistence for solved decision maps: a witness found by the (possibly
// expensive) Prop 3.1 search can be saved and later reloaded and executed
// without re-searching.  The chain is NOT serialized -- it is rebuilt
// deterministically from the task's input complex -- so the format is just
// (level, decision vector) plus fingerprints of the input/output complexes
// that reject loading a map against the wrong task.
#pragma once

#include <iosfwd>
#include <string>

#include "tasks/solvability.hpp"

namespace wfc::task {

/// Serializes a kSolvable result.
void write_solve_result(std::ostream& os, const Task& task,
                        const SolveResult& result);

/// Reloads a result for `task`; throws std::invalid_argument on malformed
/// input or a task fingerprint mismatch.  The returned result is kSolvable
/// with a freshly built chain and is re-validated (simplicial + color) on
/// load.
SolveResult read_solve_result(std::istream& is, const Task& task);

std::string solve_result_to_text(const Task& task, const SolveResult& result);
SolveResult solve_result_from_text(const std::string& text, const Task& task);

/// A stable fingerprint of a complex (vertex keys, colors, facets) used to
/// bind saved maps to their task.
std::uint64_t complex_fingerprint(const topo::ChromaticComplex& c);

}  // namespace wfc::task
