// The classical 2-processor special case of the characterization, decided
// by graph connectivity instead of subdivision search.
//
// For n+1 = 2 the protocol complex SDS^b(I) of an input edge is a path, so
// Proposition 3.1 collapses to a connectivity statement (this is the
// topological reading of FLP [2] / Biran-Moran-Zaks [3] for two
// processors):
//
//   T = (I, O, Delta) is wait-free solvable iff there is a choice of a solo
//   decision d(u) in Delta({u}) for every input vertex u such that for
//   every input edge {u0, u1}, d(u0) and d(u1) lie in the same connected
//   component of the graph of Delta({u0,u1})-allowed output edges.
//
// (=> : contract the decision map on the path.  <= : a path in the allowed
//  graph IS a simplicial map from a fine-enough subdivided edge, since a
//  subdivided edge is a path -- take b with 3^b >= path length.)
//
// decide_two_processors() evaluates this directly and doubles as an
// independent oracle against the general search in the test suite.
#pragma once

#include "tasks/task.hpp"

namespace wfc::task {

struct TwoProcVerdict {
  bool solvable = false;
  /// When solvable: the witness solo decision per input vertex.
  std::vector<topo::VertexId> solo_decision;
  /// A lower bound on the level needed: ceil(log3(longest path length))
  /// over the connecting paths chosen by the witness.
  int level_lower_bound = 0;
};

/// Requires task.input().n_colors() == 2.  Exact (enumerates solo decision
/// combinations with memoized per-edge connectivity).
TwoProcVerdict decide_two_processors(const Task& task);

}  // namespace wfc::task
