#include "tasks/arena_search.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <map>

#include "common/assert.hpp"

namespace wfc::task {

namespace {

using topo::ChromaticComplex;
using topo::kNoVertex;
using topo::Simplex;
using topo::VertexId;

// Mirrors the legacy engine (solvability.cpp) so the interrupt cadence --
// and therefore the node accounting -- is identical.
constexpr std::uint64_t kDeadlineCheckMask = 0x3ff;

bool deadline_passed(const SolveOptions& options) {
  return options.deadline &&
         std::chrono::steady_clock::now() >= *options.deadline;
}

bool cancel_requested(const SolveOptions& options) {
  return (options.cancel &&
          options.cancel->load(std::memory_order_relaxed)) ||
         deadline_passed(options);
}

inline bool test_bit(const std::uint64_t* row, std::uint32_t i) {
  return (row[i >> 6] >> (i & 63)) & 1u;
}
inline void set_bit(std::uint64_t* row, std::uint32_t i) {
  row[i >> 6] |= std::uint64_t{1} << (i & 63);
}
inline void clear_bit(std::uint64_t* row, std::uint32_t i) {
  row[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
}

class ArenaSearcher {
 public:
  ArenaSearcher(const Task& task, const topo::Arena& arena,
                const SolveOptions& options)
      : task_(&task),
        in_(&arena),
        out_(&task.output()),
        options_(&options),
        budget_(options.node_budget),
        n_(arena.num_vertices()),
        m_(static_cast<std::uint32_t>(task.output().num_vertices())),
        words_((m_ + 63) / 64) {
    build_output_tables();
    build_domains();
    build_constraints();
    build_pair_tables();
    snapshots_.resize(static_cast<std::size_t>(n_) * words_);
    scratch_row_.resize(words_);
    scratch_facets_.resize(facet_words_);
  }

  Solvability run(std::vector<VertexId>& out, std::uint64_t& nodes) {
    assignment_.assign(n_, kNoVertex);
    nodes_ = 0;
    if (cancel_requested(*options_)) {
      nodes = 0;
      return Solvability::kCancelled;
    }
    trail_.clear();
    if (!propagate(kNoVertex)) {
      nodes = nodes_;
      return Solvability::kUnsolvable;
    }
    const Solvability result = assign(0);
    nodes = nodes_;
    if (result == Solvability::kSolvable) out = assignment_;
    return result;
  }

 private:
  std::uint64_t* dom_row(VertexId v) {
    return domains_.data() + static_cast<std::size_t>(v) * words_;
  }
  const std::uint64_t* pair_row(std::uint32_t cls, VertexId a) const {
    return pair_[cls].data() + static_cast<std::size_t>(a) * words_;
  }

  void build_output_tables() {
    // compat_[a] bit b <=> {a, b} is a simplex of O: any pair inside a
    // facet, plus the diagonal (matches the legacy compat_ matrix).
    compat_.assign(static_cast<std::size_t>(m_) * words_, 0);
    out_colors_.resize(m_);
    for (VertexId w = 0; w < m_; ++w) {
      out_colors_[w] = out_->vertex(w).color;
      set_bit(compat_.data() + static_cast<std::size_t>(w) * words_, w);
    }
    const auto& facets = out_->facets();
    const std::uint32_t n_facets = static_cast<std::uint32_t>(facets.size());
    facet_words_ = (n_facets + 63) / 64 == 0 ? 1 : (n_facets + 63) / 64;
    facet_bits_.assign(static_cast<std::size_t>(m_) * facet_words_, 0);
    for (std::uint32_t fi = 0; fi < n_facets; ++fi) {
      for (VertexId a : facets[fi]) {
        set_bit(facet_bits_.data() + static_cast<std::size_t>(a) * facet_words_,
                fi);
        for (VertexId b : facets[fi]) {
          set_bit(compat_.data() + static_cast<std::size_t>(a) * words_, b);
        }
      }
    }
  }

  void build_domains() {
    domains_.assign(static_cast<std::size_t>(n_) * words_, 0);
    dom_count_.assign(n_, 0);
    const auto colors = in_->colors();
    Simplex bc;
    Simplex single(1);
    for (VertexId v = 0; v < n_; ++v) {
      const auto bc_span = in_->base_carrier(v);
      bc.assign(bc_span.begin(), bc_span.end());
      std::uint64_t* row = dom_row(v);
      for (VertexId w = 0; w < m_; ++w) {
        if (out_colors_[w] != static_cast<Color>(colors[v])) continue;
        single[0] = w;
        if (!task_->allows(bc, single)) continue;
        set_bit(row, w);
        ++dom_count_[v];
      }
    }
  }

  void build_constraints() {
    // Carrier classes: one id per distinct face base-carrier.  The arena
    // face table holds every deduplicated face of size >= 2 in the same
    // first-emission order the legacy engine enumerates, so constraint
    // indices line up with face indices.
    const std::uint32_t n_faces = in_->num_faces();
    face_cls_.resize(n_faces);
    std::map<Simplex, std::uint32_t> cls_ids;
    for (std::uint32_t fi = 0; fi < n_faces; ++fi) {
      const auto bc = in_->face_base_carrier(fi);
      Simplex key(bc.begin(), bc.end());
      const auto [it, inserted] =
          cls_ids.emplace(std::move(key), static_cast<std::uint32_t>(
                                              cls_ids.size()));
      if (inserted) cls_carrier_.push_back(it->first);
      face_cls_[fi] = it->second;
    }

    // by_vertex CSR: face ids containing v, ascending.
    std::vector<std::uint32_t> counts(n_ + 1, 0);
    for (std::uint32_t fi = 0; fi < n_faces; ++fi) {
      for (VertexId v : in_->face(fi)) ++counts[v + 1];
    }
    by_vertex_idx_.assign(counts.begin(), counts.end());
    for (std::size_t i = 1; i < by_vertex_idx_.size(); ++i) {
      by_vertex_idx_[i] += by_vertex_idx_[i - 1];
    }
    by_vertex_pool_.resize(by_vertex_idx_.back());
    {
      std::vector<std::uint32_t> cursor(by_vertex_idx_.begin(),
                                        by_vertex_idx_.end() - 1);
      for (std::uint32_t fi = 0; fi < n_faces; ++fi) {
        for (VertexId v : in_->face(fi)) by_vertex_pool_[cursor[v]++] = fi;
      }
    }

    // Neighbour CSR over the edge (size-2) constraints.
    std::vector<std::uint32_t> ncounts(n_ + 1, 0);
    for (std::uint32_t fi = 0; fi < n_faces; ++fi) {
      const auto f = in_->face(fi);
      if (f.size() != 2) continue;
      ++ncounts[f[0] + 1];
      ++ncounts[f[1] + 1];
      pair_needed_.resize(cls_carrier_.size());
      pair_needed_[face_cls_[fi]] = true;
    }
    pair_needed_.resize(cls_carrier_.size());
    nbr_idx_.assign(ncounts.begin(), ncounts.end());
    for (std::size_t i = 1; i < nbr_idx_.size(); ++i) {
      nbr_idx_[i] += nbr_idx_[i - 1];
    }
    nbr_pool_.resize(nbr_idx_.back());
    {
      std::vector<std::uint32_t> cursor(nbr_idx_.begin(), nbr_idx_.end() - 1);
      for (std::uint32_t fi = 0; fi < n_faces; ++fi) {
        const auto f = in_->face(fi);
        if (f.size() != 2) continue;
        nbr_pool_[cursor[f[0]]++] = Arc{f[1], face_cls_[fi]};
        nbr_pool_[cursor[f[1]]++] = Arc{f[0], face_cls_[fi]};
      }
    }
  }

  void build_pair_tables() {
    // pair_[cls] row a, bit b: {a, b} is a simplex of O AND
    // allows(carrier(cls), {a, b}).  Computed once; the search never calls
    // the allows oracle on an edge again.
    pair_.resize(cls_carrier_.size());
    Simplex edge;
    for (std::uint32_t cls = 0; cls < cls_carrier_.size(); ++cls) {
      if (!pair_needed_[cls]) continue;
      auto& table = pair_[cls];
      table.assign(static_cast<std::size_t>(m_) * words_, 0);
      const Simplex& carrier = cls_carrier_[cls];
      for (VertexId a = 0; a < m_; ++a) {
        const std::uint64_t* compat_row =
            compat_.data() + static_cast<std::size_t>(a) * words_;
        for (VertexId b = a; b < m_; ++b) {
          if (!test_bit(compat_row, b)) continue;
          edge.clear();
          edge.push_back(a);
          if (b != a) edge.push_back(b);
          if (!task_->allows(carrier, edge)) continue;
          set_bit(table.data() + static_cast<std::size_t>(a) * words_, b);
          set_bit(table.data() + static_cast<std::size_t>(b) * words_, a);
        }
      }
    }
  }

  /// Exact check of every face constraint containing v whose members are
  /// all assigned: the image must be a simplex of O (facet-bitset AND)
  /// allowed for the face's carrier class.
  bool faces_consistent(VertexId v) {
    const std::uint32_t begin = by_vertex_idx_[v];
    const std::uint32_t end = by_vertex_idx_[v + 1];
    for (std::uint32_t k = begin; k < end; ++k) {
      const std::uint32_t fi = by_vertex_pool_[k];
      const auto face = in_->face(fi);
      image_.clear();
      bool all_assigned = true;
      for (VertexId u : face) {
        if (assignment_[u] == kNoVertex) {
          all_assigned = false;
          break;
        }
        image_.push_back(assignment_[u]);
      }
      if (!all_assigned) continue;
      std::sort(image_.begin(), image_.end());
      image_.erase(std::unique(image_.begin(), image_.end()), image_.end());
      // contains_simplex: some output facet contains every image vertex.
      const std::uint64_t* first =
          facet_bits_.data() +
          static_cast<std::size_t>(image_[0]) * facet_words_;
      std::copy(first, first + facet_words_, scratch_facets_.begin());
      for (std::size_t i = 1; i < image_.size(); ++i) {
        const std::uint64_t* row =
            facet_bits_.data() +
            static_cast<std::size_t>(image_[i]) * facet_words_;
        for (std::size_t w = 0; w < facet_words_; ++w) {
          scratch_facets_[w] &= row[w];
        }
      }
      bool contained = false;
      for (std::size_t w = 0; w < facet_words_; ++w) {
        if (scratch_facets_[w] != 0) {
          contained = true;
          break;
        }
      }
      if (!contained) return false;
      if (!task_->allows(cls_carrier_[face_cls_[fi]], image_)) return false;
    }
    return true;
  }

  /// AC-3 over the edge constraints; bit-parallel support checks.  Same
  /// fixpoint (and wipe-out detection) as the legacy engine.
  bool propagate(VertexId start) {
    queue_.clear();
    if (start == kNoVertex) {
      for (VertexId v = 0; v < n_; ++v) {
        for (std::uint32_t k = nbr_idx_[v]; k < nbr_idx_[v + 1]; ++k) {
          queue_.push_back(Item{nbr_pool_[k].peer, nbr_pool_[k].cls, v});
        }
      }
    } else {
      for (std::uint32_t k = nbr_idx_[start]; k < nbr_idx_[start + 1]; ++k) {
        queue_.push_back(Item{nbr_pool_[k].peer, nbr_pool_[k].cls, start});
      }
    }
    while (!queue_.empty()) {
      const Item it = queue_.back();
      queue_.pop_back();
      const VertexId u = it.target;
      if (assignment_[u] != kNoVertex) continue;
      std::uint64_t* du = dom_row(u);
      std::copy(du, du + words_, scratch_row_.begin());
      const VertexId v_assigned = assignment_[it.source];
      const std::uint64_t* dv = dom_row(it.source);
      bool removed_any = false;
      for (std::size_t w = 0; w < words_; ++w) {
        std::uint64_t bits = scratch_row_[w];
        while (bits != 0) {
          const std::uint32_t cand =
              static_cast<std::uint32_t>(w * 64) +
              static_cast<std::uint32_t>(std::countr_zero(bits));
          bits &= bits - 1;
          bool supported;
          const std::uint64_t* prow = pair_row(it.cls, cand);
          if (v_assigned != kNoVertex) {
            supported = test_bit(prow, v_assigned);
          } else {
            supported = false;
            for (std::size_t x = 0; x < words_; ++x) {
              if (prow[x] & dv[x]) {
                supported = true;
                break;
              }
            }
          }
          if (!supported) {
            clear_bit(du, cand);
            --dom_count_[u];
            trail_.push_back(Removed{u, cand});
            removed_any = true;
          }
        }
      }
      if (dom_count_[u] == 0) return false;
      if (removed_any) {
        for (std::uint32_t k = nbr_idx_[u]; k < nbr_idx_[u + 1]; ++k) {
          if (nbr_pool_[k].peer != it.source) {
            queue_.push_back(Item{nbr_pool_[k].peer, nbr_pool_[k].cls, u});
          }
        }
      }
    }
    return true;
  }

  void undo(std::size_t mark) {
    while (trail_.size() > mark) {
      const Removed r = trail_.back();
      trail_.pop_back();
      set_bit(dom_row(r.vertex), r.value);
      ++dom_count_[r.vertex];
    }
  }

  VertexId pick_vertex() const {
    VertexId best = kNoVertex;
    std::uint32_t best_size = ~std::uint32_t{0};
    for (VertexId v = 0; v < n_; ++v) {
      if (assignment_[v] != kNoVertex) continue;
      if (dom_count_[v] < best_size) {
        best = v;
        best_size = dom_count_[v];
      }
    }
    return best;
  }

  Solvability node_interrupt() {
    if (options_->progress != nullptr) {
      options_->progress->fetch_add(1, std::memory_order_relaxed);
    }
    if (++nodes_ > budget_) return Solvability::kUnknown;
    if (options_->checkpoint_every != 0 &&
        nodes_ % options_->checkpoint_every == 0 && options_->on_checkpoint) {
      options_->on_checkpoint(nodes_);
    }
    if (options_->cancel &&
        options_->cancel->load(std::memory_order_relaxed)) {
      return Solvability::kCancelled;
    }
    if ((nodes_ & kDeadlineCheckMask) == 0 && deadline_passed(*options_)) {
      return Solvability::kCancelled;
    }
    return Solvability::kSolvable;
  }

  Solvability assign(std::size_t depth) {
    const VertexId v = pick_vertex();
    if (v == kNoVertex) return Solvability::kSolvable;
    // Snapshot v's domain into this depth's slice: propagation from deeper
    // levels mutates the live row.  Bit order IS ascending output-id order,
    // matching the legacy engine's sorted snapshot.
    std::uint64_t* snap =
        snapshots_.data() + depth * static_cast<std::size_t>(words_);
    std::copy(dom_row(v), dom_row(v) + words_, snap);
    for (std::size_t w = 0; w < words_; ++w) {
      std::uint64_t bits = snap[w];
      while (bits != 0) {
        const std::uint32_t cand =
            static_cast<std::uint32_t>(w * 64) +
            static_cast<std::uint32_t>(std::countr_zero(bits));
        bits &= bits - 1;
        const Solvability interrupt = node_interrupt();
        if (interrupt != Solvability::kSolvable) return interrupt;
        assignment_[v] = cand;
        const std::size_t mark = trail_.size();
        if (faces_consistent(v) && propagate(v)) {
          const Solvability sub = assign(depth + 1);
          if (sub != Solvability::kUnsolvable) {
            undo(mark);
            if (sub == Solvability::kSolvable) assignment_[v] = cand;
            return sub;
          }
        }
        undo(mark);
        assignment_[v] = kNoVertex;
      }
    }
    return Solvability::kUnsolvable;
  }

  struct Arc {
    std::uint32_t peer;
    std::uint32_t cls;
  };
  struct Item {
    VertexId target;
    std::uint32_t cls;
    VertexId source;
  };
  struct Removed {
    VertexId vertex;
    std::uint32_t value;
  };

  const Task* task_;
  const topo::Arena* in_;
  const ChromaticComplex* out_;
  const SolveOptions* options_;
  std::uint64_t budget_;
  std::uint64_t nodes_ = 0;

  std::uint32_t n_;
  std::uint32_t m_;
  std::size_t words_;
  std::size_t facet_words_ = 1;

  std::vector<Color> out_colors_;
  std::vector<std::uint64_t> compat_;
  std::vector<std::uint64_t> facet_bits_;

  std::vector<std::uint64_t> domains_;
  std::vector<std::uint32_t> dom_count_;
  std::vector<VertexId> assignment_;

  std::vector<std::uint32_t> face_cls_;
  std::vector<Simplex> cls_carrier_;
  std::vector<bool> pair_needed_;
  std::vector<std::uint32_t> by_vertex_idx_;
  std::vector<std::uint32_t> by_vertex_pool_;
  std::vector<std::uint32_t> nbr_idx_;
  std::vector<Arc> nbr_pool_;
  std::vector<std::vector<std::uint64_t>> pair_;

  std::vector<Item> queue_;
  std::vector<Removed> trail_;
  std::vector<std::uint64_t> snapshots_;
  std::vector<std::uint64_t> scratch_row_;
  std::vector<std::uint64_t> scratch_facets_;
  Simplex image_;
};

}  // namespace

Solvability arena_search(const Task& task, const topo::Arena& arena,
                         const SolveOptions& options,
                         std::vector<VertexId>& decision,
                         std::uint64_t& nodes) {
  WFC_REQUIRE(arena.valid(), "arena_search: invalid arena");
  ArenaSearcher searcher(task, arena, options);
  return searcher.run(decision, nodes);
}

}  // namespace wfc::task
