#include "tasks/canonical.hpp"

#include <algorithm>
#include <set>

#include "common/assert.hpp"

namespace wfc::task {

namespace {

using topo::ChromaticComplex;
using topo::Simplex;
using topo::VertexId;

/// Enumerates all assignments value[0..n-1] in [0, m)^n.
template <typename Fn>
void for_each_assignment(int n, int m, Fn&& fn) {
  std::vector<int> a(static_cast<std::size_t>(n), 0);
  for (;;) {
    fn(a);
    int i = 0;
    while (i < n) {
      if (++a[static_cast<std::size_t>(i)] < m) break;
      a[static_cast<std::size_t>(i)] = 0;
      ++i;
    }
    if (i == n) return;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// ConsensusTask
// ---------------------------------------------------------------------------

ConsensusTask::ConsensusTask(int n_procs, int n_values)
    : n_procs_(n_procs),
      n_values_(n_values),
      input_(n_procs),
      output_(n_procs) {
  WFC_REQUIRE(n_procs >= 1 && n_procs <= kMaxColors, "consensus: bad n_procs");
  WFC_REQUIRE(n_values >= 1, "consensus: need at least one value");

  // Vertices (p, v); input facets = all assignments; output facets =
  // constant assignments.
  std::vector<std::vector<VertexId>> in_v(static_cast<std::size_t>(n_procs));
  std::vector<std::vector<VertexId>> out_v(static_cast<std::size_t>(n_procs));
  for (Color p = 0; p < n_procs; ++p) {
    for (int v = 0; v < n_values; ++v) {
      const std::string key =
          "P" + std::to_string(p) + "=" + std::to_string(v);
      in_v[static_cast<std::size_t>(p)].push_back(
          input_.add_vertex(p, key, ColorSet::single(p)));
      in_value_.push_back(v);
      out_v[static_cast<std::size_t>(p)].push_back(
          output_.add_vertex(p, key, ColorSet::single(p)));
      out_value_.push_back(v);
    }
  }
  for_each_assignment(n_procs, n_values, [&](const std::vector<int>& a) {
    Simplex f;
    for (Color p = 0; p < n_procs; ++p) {
      f.push_back(in_v[static_cast<std::size_t>(p)]
                      [static_cast<std::size_t>(a[static_cast<std::size_t>(p)])]);
    }
    input_.add_facet(topo::make_simplex(std::move(f)));
  });
  for (int v = 0; v < n_values; ++v) {
    Simplex f;
    for (Color p = 0; p < n_procs; ++p) {
      f.push_back(out_v[static_cast<std::size_t>(p)][static_cast<std::size_t>(v)]);
    }
    output_.add_facet(topo::make_simplex(std::move(f)));
  }
}

std::string ConsensusTask::name() const {
  return "consensus(n=" + std::to_string(n_procs_) +
         ",m=" + std::to_string(n_values_) + ")";
}

bool ConsensusTask::allows(const Simplex& in, const Simplex& out) const {
  std::set<int> in_values;
  for (VertexId v : in) in_values.insert(in_value_[v]);
  std::set<int> decided;
  for (VertexId v : out) decided.insert(out_value_[v]);
  if (decided.empty()) return true;
  return decided.size() == 1 && in_values.count(*decided.begin()) > 0;
}

// ---------------------------------------------------------------------------
// KSetConsensusTask
// ---------------------------------------------------------------------------

KSetConsensusTask::KSetConsensusTask(int n_procs, int k)
    : n_procs_(n_procs), k_(k), input_(n_procs), output_(n_procs) {
  WFC_REQUIRE(n_procs >= 1 && n_procs <= kMaxColors,
              "set consensus: bad n_procs");
  WFC_REQUIRE(k >= 1 && k <= n_procs, "set consensus: bad k");

  // Inputs: ids.  One vertex per processor.
  Simplex in_facet;
  for (Color p = 0; p < n_procs; ++p) {
    in_facet.push_back(
        input_.add_vertex(p, "P" + std::to_string(p), ColorSet::single(p)));
  }
  input_.add_facet(std::move(in_facet));

  // Outputs: (p, decided id j).
  std::vector<std::vector<VertexId>> out_v(static_cast<std::size_t>(n_procs));
  for (Color p = 0; p < n_procs; ++p) {
    for (int j = 0; j < n_procs; ++j) {
      out_v[static_cast<std::size_t>(p)].push_back(output_.add_vertex(
          p, "P" + std::to_string(p) + "->" + std::to_string(j),
          ColorSet::single(p)));
      out_id_.push_back(j);
    }
  }
  for_each_assignment(n_procs, n_procs, [&](const std::vector<int>& a) {
    std::set<int> distinct(a.begin(), a.end());
    if (static_cast<int>(distinct.size()) > k) return;
    Simplex f;
    for (Color p = 0; p < n_procs; ++p) {
      f.push_back(out_v[static_cast<std::size_t>(p)]
                      [static_cast<std::size_t>(a[static_cast<std::size_t>(p)])]);
    }
    output_.add_facet(topo::make_simplex(std::move(f)));
  });
}

std::string KSetConsensusTask::name() const {
  return "set-consensus(n=" + std::to_string(n_procs_) +
         ",k=" + std::to_string(k_) + ")";
}

bool KSetConsensusTask::allows(const Simplex& in, const Simplex& out) const {
  ColorSet participating = input_.colors_of(in);  // ids == colors here
  std::set<int> decided;
  for (VertexId v : out) {
    const int id = out_id_[v];
    if (!participating.contains(id)) return false;  // must adopt a participant
    decided.insert(id);
  }
  return static_cast<int>(decided.size()) <= k_;
}

// ---------------------------------------------------------------------------
// RenamingTask
// ---------------------------------------------------------------------------

RenamingTask::RenamingTask(int n_procs, int n_names)
    : n_procs_(n_procs), n_names_(n_names), input_(n_procs), output_(n_procs) {
  WFC_REQUIRE(n_procs >= 1 && n_procs <= kMaxColors, "renaming: bad n_procs");
  WFC_REQUIRE(n_names >= n_procs, "renaming: name space too small to solve");

  Simplex in_facet;
  for (Color p = 0; p < n_procs; ++p) {
    in_facet.push_back(
        input_.add_vertex(p, "P" + std::to_string(p), ColorSet::single(p)));
  }
  input_.add_facet(std::move(in_facet));

  std::vector<std::vector<VertexId>> out_v(static_cast<std::size_t>(n_procs));
  for (Color p = 0; p < n_procs; ++p) {
    for (int name = 0; name < n_names; ++name) {
      out_v[static_cast<std::size_t>(p)].push_back(output_.add_vertex(
          p, "P" + std::to_string(p) + ":" + std::to_string(name),
          ColorSet::single(p)));
      out_name_.push_back(name);
    }
  }
  for_each_assignment(n_procs, n_names, [&](const std::vector<int>& a) {
    std::set<int> names(a.begin(), a.end());
    if (static_cast<int>(names.size()) != n_procs_) return;  // need injective
    Simplex f;
    for (Color p = 0; p < n_procs; ++p) {
      f.push_back(out_v[static_cast<std::size_t>(p)]
                      [static_cast<std::size_t>(a[static_cast<std::size_t>(p)])]);
    }
    output_.add_facet(topo::make_simplex(std::move(f)));
  });
}

std::string RenamingTask::name() const {
  return "renaming(n=" + std::to_string(n_procs_) +
         ",M=" + std::to_string(n_names_) + ")";
}

bool RenamingTask::allows(const Simplex& /*in*/, const Simplex& out) const {
  std::set<int> names;
  for (VertexId v : out) {
    if (!names.insert(out_name_[v]).second) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// SimplexAgreementTask
// ---------------------------------------------------------------------------

SimplexAgreementTask::SimplexAgreementTask(int n_procs,
                                           topo::ChromaticComplex target)
    : n_procs_(n_procs), input_(n_procs), output_(std::move(target)) {
  WFC_REQUIRE(n_procs >= 1 && n_procs <= kMaxColors,
              "simplex agreement: bad n_procs");
  WFC_REQUIRE(output_.n_colors() == n_procs,
              "simplex agreement: target color count mismatch");
  WFC_REQUIRE(output_.dimension() + 1 == n_procs,
              "simplex agreement: target must subdivide s^{n_procs-1}");
  Simplex in_facet;
  for (Color p = 0; p < n_procs; ++p) {
    in_facet.push_back(
        input_.add_vertex(p, "P" + std::to_string(p), ColorSet::single(p)));
  }
  input_.add_facet(std::move(in_facet));
}

std::string SimplexAgreementTask::name() const {
  return "simplex-agreement(n=" + std::to_string(n_procs_) + ")";
}

bool SimplexAgreementTask::allows(const Simplex& in,
                                  const Simplex& out) const {
  // Outputs must form a simplex of A carried by the participants' face:
  // carrier(W, A) subset of the face spanned by participating corners.
  if (out.empty()) return true;
  if (!output_.contains_simplex(out)) return false;
  return output_.carrier_of(out).subset_of(input_.colors_of(in));
}

// ---------------------------------------------------------------------------
// ApproxAgreementTask
// ---------------------------------------------------------------------------

ApproxAgreementTask::ApproxAgreementTask(int n_procs, int grid)
    : n_procs_(n_procs), grid_(grid), input_(n_procs), output_(n_procs) {
  WFC_REQUIRE(n_procs >= 1 && n_procs <= kMaxColors,
              "approx agreement: bad n_procs");
  WFC_REQUIRE(grid >= 1, "approx agreement: grid must be >= 1");

  // Inputs: each processor holds an endpoint, 0 or m.
  std::vector<std::vector<VertexId>> in_v(static_cast<std::size_t>(n_procs));
  for (Color p = 0; p < n_procs; ++p) {
    for (int e = 0; e <= 1; ++e) {
      const int val = e == 0 ? 0 : grid;
      in_v[static_cast<std::size_t>(p)].push_back(input_.add_vertex(
          p, "P" + std::to_string(p) + "=" + std::to_string(val),
          ColorSet::single(p)));
      in_value_.push_back(val);
    }
  }
  for_each_assignment(n_procs, 2, [&](const std::vector<int>& a) {
    Simplex f;
    for (Color p = 0; p < n_procs; ++p) {
      f.push_back(in_v[static_cast<std::size_t>(p)]
                      [static_cast<std::size_t>(a[static_cast<std::size_t>(p)])]);
    }
    input_.add_facet(topo::make_simplex(std::move(f)));
  });

  // Outputs: grid values; a tuple is a simplex iff values pairwise within 1.
  std::vector<std::vector<VertexId>> out_v(static_cast<std::size_t>(n_procs));
  for (Color p = 0; p < n_procs; ++p) {
    for (int g = 0; g <= grid; ++g) {
      out_v[static_cast<std::size_t>(p)].push_back(output_.add_vertex(
          p, "P" + std::to_string(p) + "~" + std::to_string(g),
          ColorSet::single(p)));
      out_value_.push_back(g);
    }
  }
  for_each_assignment(n_procs, grid + 1, [&](const std::vector<int>& a) {
    int lo = a[0], hi = a[0];
    for (int x : a) {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
    if (hi - lo > 1) return;
    Simplex f;
    for (Color p = 0; p < n_procs; ++p) {
      f.push_back(out_v[static_cast<std::size_t>(p)]
                      [static_cast<std::size_t>(a[static_cast<std::size_t>(p)])]);
    }
    output_.add_facet(topo::make_simplex(std::move(f)));
  });
}

std::string ApproxAgreementTask::name() const {
  return "approx-agreement(n=" + std::to_string(n_procs_) +
         ",m=" + std::to_string(grid_) + ")";
}

bool ApproxAgreementTask::allows(const Simplex& in, const Simplex& out) const {
  int in_lo = grid_, in_hi = 0;
  for (VertexId v : in) {
    in_lo = std::min(in_lo, in_value_[v]);
    in_hi = std::max(in_hi, in_value_[v]);
  }
  int out_lo = grid_, out_hi = 0;
  for (VertexId v : out) {
    const int val = out_value_[v];
    if (val < in_lo || val > in_hi) return false;  // range validity
    out_lo = std::min(out_lo, val);
    out_hi = std::max(out_hi, val);
  }
  return out.empty() || out_hi - out_lo <= 1;  // epsilon agreement
}

// ---------------------------------------------------------------------------
// IdentityTask
// ---------------------------------------------------------------------------

IdentityTask::IdentityTask(topo::ChromaticComplex input)
    : input_(std::move(input)) {}

bool IdentityTask::allows(const Simplex& in, const Simplex& out) const {
  // Output vertices mirror input vertices: each decided value must be the
  // decider's own input, i.e. out subset in.
  return std::includes(in.begin(), in.end(), out.begin(), out.end());
}

}  // namespace wfc::task
