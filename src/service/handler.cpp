#include "service/handler.hpp"

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <numeric>
#include <stdexcept>

#include "common/version.hpp"
#include "model/model.hpp"
#include "service/jsonl.hpp"
#include "topology/subdivision.hpp"

namespace wfc::svc {

namespace {

int int_field(const Fields& fields, const std::string& key,
              std::optional<int> fallback = std::nullopt) {
  auto it = fields.find(key);
  if (it == fields.end()) {
    if (fallback) return *fallback;
    throw std::invalid_argument("missing field \"" + key + "\"");
  }
  try {
    std::size_t pos = 0;
    const int value = std::stoi(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument(it->second);
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("field \"" + key + "\" is not an integer: " +
                                it->second);
  }
}

std::string string_field(const Fields& fields, const std::string& key,
                         const std::string& fallback = "") {
  auto it = fields.find(key);
  return it == fields.end() ? fallback : it->second;
}

/// Boolean field: accepts the JSON true/false tokens (parse_flat_json
/// passes them through as bare strings) as well as 0/1 integers.
bool bool_field(const Fields& fields, const std::string& key, bool fallback) {
  auto it = fields.find(key);
  if (it == fields.end()) return fallback;
  if (it->second == "true") return true;
  if (it->second == "false") return false;
  return int_field(fields, key) != 0;
}

/// The optional "model" field (wfc::model wire names).  wait_free -- the
/// default -- normalizes to null so model-less requests stay bit-for-bit
/// on the pre-model code path.  Unknown names throw std::invalid_argument.
std::shared_ptr<const model::Model> model_field(const Fields& fields) {
  const std::string name = string_field(fields, "model");
  if (name.empty()) return nullptr;
  std::shared_ptr<const model::Model> m = model::Model::parse(name);
  return m->is_wait_free() ? nullptr : m;
}

/// Iterated-SDS towers grow exponentially with "depth" and are constructed
/// on the transport thread, so the handler bounds the field at parse time
/// instead of letting one request stall an event loop.
void check_depth_cap(const Fields& fields, int max_depth) {
  if (max_depth <= 0 || fields.count("depth") == 0) return;
  if (int_field(fields, "depth") > max_depth) {
    throw std::invalid_argument("field \"depth\" exceeds the cap of " +
                                std::to_string(max_depth));
  }
}

QueryOptions parse_query_options(const Fields& fields, int default_max_level) {
  QueryOptions options;
  options.max_level = int_field(fields, "max_level", default_max_level);
  if (auto it = fields.find("budget"); it != fields.end()) {
    try {
      options.node_budget = std::stoull(it->second);
    } catch (const std::exception&) {
      throw std::invalid_argument("field \"budget\" is not an integer: " +
                                  it->second);
    }
  }
  if (fields.count("timeout_ms") != 0) {
    options.timeout = std::chrono::milliseconds(
        int_field(fields, "timeout_ms"));
  }
  return options;
}

/// Error record shared by every transport: the offending 1-based line
/// number plus the request "id" whenever it is known.
RequestHandler::Rendered error_record(const std::string& id, int line_no,
                                      const std::string& message) {
  JsonWriter w;
  if (!id.empty()) w.field("id", id);
  w.field("status", to_json_token(Status::kInvalidArgument))
      .field("line", line_no)
      .field("error", message);
  return {w.str(), true};
}

/// The {"op":"metrics"} response: one flat-JSON line whose counters come
/// straight from the obs registry, alongside the ServiceStats intake count
/// -- the reconciliation the chaos soak asserts (submitted == terminal ==
/// sum of the per-status counters) is visible in the line itself.
std::string metrics_line(const std::string& id, QueryService& service) {
  obs::MetricsRegistry& reg = service.observer().metrics();
  const ServiceStats st = service.stats();
  const std::uint64_t submitted =
      reg.counter("wfc_queries_submitted_total").value();
  JsonWriter w;
  if (!id.empty()) w.field("id", id);
  w.field("op", "metrics").field("status", to_json_token(Status::kOk));
  w.field("submitted", submitted);
  std::uint64_t terminal = 0;
  for (int s = 0; s < kNumStatuses; ++s) {
    const std::uint64_t c =
        reg.counter("wfc_queries_terminal_total",
                    std::string(R"(status=")") +
                        to_json_token(static_cast<Status>(s)) + R"(")")
            .value();
    terminal += c;
    w.field(to_json_token(static_cast<Status>(s)), c);
  }
  w.field("terminal", terminal);
  w.field("memo_hits", reg.counter("wfc_result_memo_hits_total").value());
  w.field("stats_submitted", st.submitted);
  w.field("reconciles", submitted == terminal && submitted == st.submitted);
  return w.str();
}

}  // namespace

std::shared_ptr<task::Task> make_canonical_task(const Fields& fields) {
  const std::string kind = string_field(fields, "task");
  if (kind.empty()) throw std::invalid_argument("missing field \"task\"");
  const int procs = int_field(fields, "procs");
  if (kind == "consensus") {
    return std::make_shared<task::ConsensusTask>(procs,
                                                 int_field(fields, "values"));
  }
  if (kind == "set-consensus") {
    return std::make_shared<task::KSetConsensusTask>(procs,
                                                     int_field(fields, "k"));
  }
  if (kind == "renaming") {
    return std::make_shared<task::RenamingTask>(procs,
                                                int_field(fields, "names"));
  }
  if (kind == "approx") {
    return std::make_shared<task::ApproxAgreementTask>(
        procs, int_field(fields, "grid"));
  }
  if (kind == "simplex-agreement") {
    return std::make_shared<task::SimplexAgreementTask>(
        procs, topo::iterated_sds(topo::base_simplex(procs),
                                  int_field(fields, "depth")));
  }
  if (kind == "identity") {
    return std::make_shared<task::IdentityTask>(topo::base_simplex(procs));
  }
  throw std::invalid_argument("unknown task kind \"" + kind + "\"");
}

namespace {

/// Intern-table bound: 0 in the config selects a generous fixed ceiling
/// (the lock-free index has a fixed capacity chosen at construction).
std::size_t intern_bound(std::size_t configured) {
  return configured == 0 ? std::size_t{32768} : configured;
}

}  // namespace

RequestHandler::RequestHandler(QueryService& service, HandlerConfig config)
    : service_(service),
      config_(std::move(config)),
      started_(std::chrono::steady_clock::now()),
      interned_(decltype(interned_)::Options{
          .max_entries = intern_bound(config_.max_interned_tasks),
          .min_slots = 64,
          .segments = 4,
          .keep_hottest = true}) {}

RequestHandler::ParsedLine RequestHandler::parse(std::string_view line,
                                                 int line_no) {
  ParsedLine parsed;
  parsed.line_no = line_no;
  // CRLF framing: a trailing '\r' belongs to the wire, not the request.
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  if (config_.max_line_bytes != 0 && line.size() > config_.max_line_bytes) {
    // Never parse (or even keep) an oversized line: the id is unknowable
    // without parsing, so the record carries only the line number.
    parsed.action = Action::kRespond;
    parsed.immediate = error_record(
        "", line_no,
        "request line exceeds " + std::to_string(config_.max_line_bytes) +
            " bytes");
    return parsed;
  }
  const std::size_t first = line.find_first_not_of(" \t");
  if (first == std::string_view::npos || line[first] == '#') {
    parsed.action = Action::kSkip;
    return parsed;
  }
  try {
    parsed.fields = parse_flat_json(line);
  } catch (const std::exception& e) {
    parsed.action = Action::kRespond;
    parsed.immediate = error_record("", line_no, e.what());
    return parsed;
  }
  // v2 request shape: every line names its "op" and "task" is a parameter
  // of op:"solve".  Legacy bare {"task":...} lines are still routed as
  // solves, with a once-per-run deprecation note.
  if (parsed.fields.count("op") == 0 && parsed.fields.count("task") != 0 &&
      !warned_legacy_task_.exchange(true, std::memory_order_relaxed) &&
      config_.warn) {
    config_.warn(
        "deprecated: bare {\"task\":...} request lines; "
        "use {\"op\":\"solve\",\"task\":...}");
  }
  parsed.op = string_field(parsed.fields, "op", "solve");
  if (parsed.op == "stats" || parsed.op == "metrics" ||
      parsed.op == "trace" || parsed.op == "info" || parsed.op == "store") {
    parsed.action = Action::kControl;
    return parsed;
  }
  if (parsed.op != "solve" && parsed.op != "convergence" &&
      parsed.op != "emulate" && parsed.op != "check") {
    // Reject unknown ops up front with a self-describing record: the
    // field-level errors in submit() would otherwise blame a missing
    // "task" field on a line whose real problem is a misspelled op.
    parsed.action = Action::kRespond;
    JsonWriter w;
    const std::string id = string_field(parsed.fields, "id");
    if (!id.empty()) w.field("id", id);
    w.field("op", parsed.op)
        .field("status", to_json_token(Status::kInvalidArgument))
        .field("line", line_no)
        .field("error", "unknown op \"" + parsed.op + "\"");
    parsed.immediate = {w.str(), true};
    return parsed;
  }
  parsed.action = Action::kSubmit;
  return parsed;
}

std::shared_ptr<task::Task> RequestHandler::intern_task(const Fields& fields) {
  std::string key;
  for (const auto& [k, v] : fields) {
    // Skip fields that do not affect the constructed task.  max_level,
    // budget, and model DO affect the verdict, but they are part of the
    // service's memo key, not the task's -- the same task object under two
    // models is exactly what gives the memo's model_tag separation teeth.
    if (k == "id" || k == "op" || k == "max_level" || k == "budget" ||
        k == "timeout_ms" || k == "model") {
      continue;
    }
    key += k;
    key += '=';
    key += v;
    key += ';';
  }
  std::shared_ptr<task::Task> hit;
  if (interned_.lookup(key, &hit)) return hit;
  // Construct BEFORE touching the index: large tasks (iterated-SDS towers)
  // are expensive to build, and the lock-free insert below keeps the table
  // consistent if concurrent twins race -- the first writer wins and every
  // twin adopts its object, preserving one identity for the result memo.
  std::shared_ptr<task::Task> task = make_canonical_task(fields);
  auto handle = interned_.get_or_insert(key, [&] { return task; });
  return *handle;
}

std::size_t RequestHandler::interned_tasks() { return interned_.size(); }

std::pair<Query, RequestHandler::ResponseMeta> RequestHandler::build_query(
    const ParsedLine& parsed) {
  const Fields& fields = parsed.fields;
  check_depth_cap(fields, config_.max_task_depth);
  ResponseMeta meta;
  meta.id = string_field(fields, "id");
  std::shared_ptr<const model::Model> model = model_field(fields);
  if (model != nullptr) meta.model = model->name();
  Query query;
  query.options = parse_query_options(fields, config_.default_max_level);
  if (parsed.op == "solve") {
    std::shared_ptr<task::Task> task = intern_task(fields);
    meta.label = task->name();
    query.request = SolveRequest{std::move(task), std::move(model)};
  } else if (parsed.op == "convergence") {
    const int procs = int_field(fields, "procs");
    const int depth = int_field(fields, "depth");
    auto agreement = std::make_shared<task::SimplexAgreementTask>(
        procs, topo::iterated_sds(topo::base_simplex(procs), depth));
    meta.label = agreement->name();
    query.request = ConvergenceRequest{std::move(agreement), std::move(model)};
  } else if (parsed.op == "emulate") {
    if (model != nullptr) {
      // The §4 emulation runs a concrete adversary, not a run-set query;
      // restricting it by model is not meaningful.
      throw std::invalid_argument("op \"emulate\" does not take a model");
    }
    EmulateRequest emu;
    emu.procs = int_field(fields, "procs");
    emu.shots = int_field(fields, "shots", 1);
    meta.label = "emulate(procs=" + std::to_string(emu.procs) +
                 ",shots=" + std::to_string(emu.shots) + ")";
    meta.is_emulate = true;
    query.request = emu;
  } else {  // "check" (parse() rejected every other op)
    const std::string target = string_field(fields, "target", "sds");
    CheckRequest check;
    if (target == "sds") {
      check.target = CheckRequest::Target::kSds;
    } else if (target == "emulation") {
      check.target = CheckRequest::Target::kEmulation;
    } else if (target == "linearizability") {
      check.target = CheckRequest::Target::kLinearizability;
    } else {
      throw std::invalid_argument("unknown check target \"" + target + "\"");
    }
    check.procs = int_field(fields, "procs", 2);
    check.rounds = int_field(fields, "rounds", 1);
    check.crashes = int_field(fields, "crashes", 0);
    check.shots = int_field(fields, "shots", 1);
    check.symmetry = bool_field(fields, "symmetry", false);
    if (model != nullptr && check.target != CheckRequest::Target::kSds) {
      throw std::invalid_argument("check target \"" + target +
                                  "\" does not take a model");
    }
    check.model = std::move(model);
    meta.label = "check(" + target + ",procs=" + std::to_string(check.procs) +
                 ",rounds=" + std::to_string(check.rounds) +
                 ",crashes=" + std::to_string(check.crashes) + ")";
    meta.is_check = true;
    query.request = check;
  }
  return {std::move(query), std::move(meta)};
}

std::optional<RequestHandler::Submitted> RequestHandler::submit(
    const ParsedLine& parsed, Rendered* error) {
  try {
    auto [query, meta] = build_query(parsed);
    Submitted submitted;
    submitted.meta = std::move(meta);
    submitted.ticket = service_.submit(std::move(query));
    return submitted;
  } catch (const std::exception& e) {
    *error = error_record(string_field(parsed.fields, "id"), parsed.line_no,
                          e.what());
    return std::nullopt;
  }
}

bool RequestHandler::submit_async(const ParsedLine& parsed,
                                  std::function<void(Rendered&&)> done,
                                  Rendered* error) {
  try {
    auto [query, meta] = build_query(parsed);
    service_.submit(std::move(query),
                    [this, meta = std::move(meta),
                     done = std::move(done)](const QueryResult& result) {
                      done(render(meta, result));
                    });
    return true;
  } catch (const std::exception& e) {
    *error = error_record(string_field(parsed.fields, "id"), parsed.line_no,
                          e.what());
    return false;
  }
}

RequestHandler::Rendered RequestHandler::render(
    const ResponseMeta& meta, const QueryResult& result) const {
  JsonWriter w;
  if (!meta.id.empty()) w.field("id", meta.id);
  w.field("task", meta.label);
  // Echoed only when a non-wait-free model was requested, so model-less
  // responses stay byte-for-byte what they were before wfc::model.
  if (!meta.model.empty()) w.field("model", meta.model);
  if (result.status != Status::kOk) {
    // Non-kOk terminal statuses use the lowercase taxonomy tokens
    // (status.hpp) in BOTH envelopes; retryable ones carry the service's
    // backoff hint.
    w.field("status", to_json_token(result.status));
    if (result.retry_after_ms > 0) {
      w.field("retry_after_ms",
              static_cast<std::uint64_t>(result.retry_after_ms));
    }
    if (!result.error.empty()) w.field("error", result.error);
  } else {
    // v2 envelope (the default since PR 5): "status" stays in the transport
    // taxonomy ("ok") and the domain outcome moves to "verdict".  Legacy
    // envelope (--legacy): the verdict IS the status, as PR 2/3 emitted.
    const bool legacy = config_.legacy_envelope;
    const char* verdict_key = legacy ? "status" : "verdict";
    if (!legacy) w.field("status", to_json_token(Status::kOk));
    if (meta.is_check) {
      w.field(verdict_key, result.check_ok ? "OK" : "VIOLATION");
      w.field("schedules", result.check_schedules)
          .field("histories", result.check_histories)
          .field("max_depth", result.check_max_depth);
      if (!result.check_violation.empty()) {
        w.field("violation", result.check_violation);
      }
    } else if (meta.is_emulate) {
      w.field(verdict_key, "OK")
          .field("rounds", result.emu_rounds)
          .field("iis_steps",
                 std::accumulate(result.emu_steps.begin(),
                                 result.emu_steps.end(), std::int64_t{0}));
    } else {
      w.field(verdict_key, task::to_cstring(result.solve.status));
      if (result.solve.status == task::Solvability::kSolvable) {
        w.field("level", result.solve.level);
      }
      w.field("nodes", result.solve.nodes_explored)
          .field("cache_hit", result.cache_hit);
    }
  }
  if (result.degraded) w.field("degraded", true);
  w.field("micros", result.micros);
  return {w.str(), result.status != Status::kOk};
}

RequestHandler::Rendered RequestHandler::control(const ParsedLine& parsed) {
  const std::string id = string_field(parsed.fields, "id");
  try {
    if (parsed.op == "stats") {
      return {service_.stats().to_string(), false};
    }
    if (parsed.op == "info") {
      // Backend identity for routers and operators: who am I, how long up,
      // how loaded, how warm.  Safe on every transport (no paths, no side
      // effects) and cheap enough for a health probe.
      const ServiceStats stats = service_.stats();
      JsonWriter w;
      if (!id.empty()) w.field("id", id);
      w.field("op", "info")
          .field("status", to_json_token(Status::kOk))
          .field("version", kVersion)
          .field("server_id", config_.server_id)
          .field("pid", static_cast<std::int64_t>(::getpid()))
          .field("uptime_ms",
                 static_cast<std::uint64_t>(
                     std::chrono::duration_cast<std::chrono::milliseconds>(
                         std::chrono::steady_clock::now() - started_)
                         .count()))
          .field("workers", service_.workers())
          .field("queue_depth",
                 static_cast<std::uint64_t>(service_.queue_depth()))
          .field("queries", stats.queries)
          .field("cache_entries", stats.cache.entries)
          .field("cache_resident_vertices", stats.cache.resident_vertices)
          .field("memo_hits", stats.result_hits)
          .field("interned_tasks",
                 static_cast<std::uint64_t>(interned_tasks()));
      return {w.str(), false};
    }
    if (parsed.op == "store") {
      return store_control(parsed, id);
    }
    if (parsed.op == "metrics") {
      if (!service_.observer().enabled()) {
        throw std::invalid_argument(
            "metrics: the observability layer is disabled");
      }
      if (const std::string path = string_field(parsed.fields, "path");
          !path.empty()) {
        if (!config_.allow_control_paths) {
          throw std::invalid_argument(
              "metrics: \"path\" is not allowed on this transport");
        }
        std::ofstream file(path);
        if (!file) {
          throw std::invalid_argument("metrics: cannot open \"" + path +
                                      "\"");
        }
        service_.observer().write_prometheus(file);
      }
      return {metrics_line(id, service_), false};
    }
    // parsed.op == "trace"
    if (!service_.observer().enabled()) {
      throw std::invalid_argument(
          "trace: the observability layer is disabled");
    }
    const std::string path = string_field(parsed.fields, "path");
    if (path.empty()) {
      throw std::invalid_argument("trace: missing field \"path\"");
    }
    if (!config_.allow_control_paths) {
      throw std::invalid_argument(
          "trace: \"path\" is not allowed on this transport");
    }
    std::ofstream file(path);
    if (!file) {
      throw std::invalid_argument("trace: cannot open \"" + path + "\"");
    }
    service_.observer().write_chrome_trace(file);
    const obs::TraceSink* sink = service_.observer().trace();
    JsonWriter w;
    if (!id.empty()) w.field("id", id);
    w.field("op", "trace")
        .field("status", to_json_token(Status::kOk))
        .field("path", path)
        .field("spans", sink != nullptr ? sink->recorded() : 0)
        .field("dropped", sink != nullptr ? sink->dropped() : 0);
    return {w.str(), false};
  } catch (const std::exception& e) {
    return error_record(id, parsed.line_no, e.what());
  }
}

RequestHandler::Rendered RequestHandler::store_control(const ParsedLine& parsed,
                                                       const std::string& id) {
  SdsCache& cache = service_.cache();
  const std::string action = string_field(parsed.fields, "action", "stats");

  JsonWriter w;
  if (!id.empty()) w.field("id", id);
  w.field("op", "store").field("action", action);

  // Shared tail: the gauges operators (and the store-smoke CI job) read.
  // chain_builds == cache misses + extensions is THE warm-start number: it
  // stays 0 across a restart served entirely from the store.
  const auto append_stats = [&] {
    const CacheStats cs = cache.stats();
    const StoreStats ss = cache.store_stats();
    w.field("enabled", ss.enabled)
        .field("readonly", ss.readonly)
        .field("lookups", ss.lookups)
        .field("store_hits", ss.hits)
        .field("store_misses", ss.misses)
        .field("fallbacks", ss.fallbacks)
        .field("publishes", ss.publishes)
        .field("publish_skipped", ss.publish_skipped)
        .field("files", ss.files)
        .field("file_bytes", ss.file_bytes)
        .field("mapped_bytes", ss.mapped_bytes)
        .field("cache_store_hits", cs.store_hits)
        .field("chain_builds", cs.chain_builds())
        .field("pinned", cs.pinned);
  };

  if (action == "stats") {
    w.field("status", to_json_token(Status::kOk));
    append_stats();
    return {w.str(), false};
  }
  if (action == "warm") {
    const std::uint64_t admitted = cache.warm();
    w.field("status", to_json_token(Status::kOk)).field("admitted", admitted);
    append_stats();
    return {w.str(), false};
  }
  if (action == "shed") {
    // frac in percent (flat-JSON fields are integers); default half.
    const int percent = int_field(parsed.fields, "percent", 50);
    if (percent < 0 || percent > 100) {
      throw std::invalid_argument("store shed: \"percent\" not in [0, 100]");
    }
    const std::uint64_t evicted =
        cache.shed(static_cast<double>(percent) / 100.0);
    w.field("status", to_json_token(Status::kOk)).field("evicted", evicted);
    append_stats();
    return {w.str(), false};
  }
  if (action == "pin" || action == "unpin") {
    const std::string hex = string_field(parsed.fields, "fingerprint");
    if (hex.empty()) {
      throw std::invalid_argument("store " + action +
                                  ": missing field \"fingerprint\"");
    }
    char* end = nullptr;
    errno = 0;
    const std::uint64_t fp = std::strtoull(hex.c_str(), &end, 16);
    if (errno != 0 || end == hex.c_str() || *end != '\0') {
      throw std::invalid_argument("store " + action +
                                  ": \"fingerprint\" is not a hex id: " + hex);
    }
    const bool ok = action == "pin" ? cache.pin(fp) : cache.unpin(fp);
    w.field("status", to_json_token(Status::kOk))
        .field("fingerprint", hex)
        .field(action == "pin" ? "pinned" : "unpinned", ok);
    return {w.str(), false};
  }
  if (action == "publish") {
    // Path-bearing: publish writes files under the store directory, so it
    // follows the metrics/trace "path" rule -- operator transports only.
    if (!config_.allow_control_paths) {
      throw std::invalid_argument(
          "store publish: not allowed on this transport");
    }
    const std::uint64_t written = cache.publish_all();
    w.field("status", to_json_token(Status::kOk)).field("written", written);
    append_stats();
    return {w.str(), false};
  }
  throw std::invalid_argument("unknown store action \"" + action + "\"");
}

}  // namespace wfc::svc
