#include "service/admission.hpp"

#include <utility>

#include "common/assert.hpp"

namespace wfc::svc {

AdmissionQueue::AdmissionQueue(Options options) : options_(options) {
  WFC_REQUIRE(options_.max_depth >= 1,
              "AdmissionQueue: max_depth must be >= 1");
}

AdmissionQueue::Outcome AdmissionQueue::offer(Entry entry) {
  WFC_REQUIRE(entry.run != nullptr && entry.abort != nullptr,
              "AdmissionQueue::offer: entry needs both run and abort");
  Entry victim;
  bool have_victim = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return Outcome::kRejected;
    if (queue_.size() >= options_.max_depth) {
      if (options_.policy == Policy::kRejectNew) return Outcome::kRejected;
      victim = std::move(queue_.front());
      queue_.pop_front();
      have_victim = true;
    }
    queue_.push_back(std::move(entry));
    if (queue_.size() > peak_depth_) peak_depth_ = queue_.size();
  }
  cv_.notify_one();
  if (have_victim) victim.abort(Status::kOverloaded);
  return Outcome::kAdmitted;
}

std::optional<AdmissionQueue::Entry> AdmissionQueue::take() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return std::nullopt;  // closed_ && drained
  Entry entry = std::move(queue_.front());
  queue_.pop_front();
  return entry;
}

void AdmissionQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t AdmissionQueue::drain(Status status) {
  std::deque<Entry> drained;
  {
    std::lock_guard<std::mutex> lock(mu_);
    drained.swap(queue_);
  }
  for (Entry& entry : drained) entry.abort(status);
  return drained.size();
}

std::size_t AdmissionQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::size_t AdmissionQueue::peak_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_depth_;
}

bool AdmissionQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

}  // namespace wfc::svc
