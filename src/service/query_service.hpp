// wfc::svc::QueryService -- the library as a concurrent query engine.
//
// A fixed pool of workers (thread_pool.hpp) executes characterization
// queries against a shared, memoized SDS-chain cache (sds_cache.hpp):
//
//   * kSolve       -- the Prop 3.1 decision procedure (task::solve) for any
//                     Task, chains served from the cache;
//   * kConvergence -- §5 simplex agreement solved by convergence-map
//                     compilation (conv::solve_simplex_agreement_by_...);
//   * kEmulate     -- the §4 Figure 2 emulation of the k-shot full-
//                     information protocol, reporting rounds/steps.
//
// Every query gets a cooperative cancel token and an optional deadline
// measured FROM SUBMISSION (so queue time counts against it): a query that
// overstays returns a kCancelled verdict instead of wedging its worker.
// Per-query latency/nodes and cache/service counters are aggregated into
// ServiceStats (stats.hpp).
//
// Two caching layers serve repeated work:
//   * the SdsCache shares subdivision towers across queries over the same
//     input complex (keyed by canonical fingerprint);
//   * a result memo replays definitive kSolve verdicts for the SAME task
//     object (keyed by address, pinned by shared_ptr) at the same
//     max_level/node budget -- resubmitting a task instance is O(1).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "service/sds_cache.hpp"
#include "service/stats.hpp"
#include "service/thread_pool.hpp"
#include "tasks/canonical.hpp"
#include "tasks/solvability.hpp"

namespace wfc::svc {

struct QueryOptions {
  int max_level = 2;
  std::uint64_t node_budget = task::SolveOptions{}.node_budget;
  /// Per-query deadline, measured from submission.
  std::optional<std::chrono::milliseconds> timeout;
};

/// Parameters of a kCheck query (dispatched to wfc::chk).
struct CheckQuery {
  enum class Target {
    kSds,             // view vectors land in SDS^b (Lemmas 3.2/3.3)
    kEmulation,       // §4 emulation histories are legal atomic snapshots
    kLinearizability  // register AtomicSnapshot linearizes under all
                      // step interleavings of a fixed scenario
  };
  Target target = Target::kSds;
  int procs = 2;
  int rounds = 1;   // IIS rounds (kSds) / explored prefix (kEmulation)
  int crashes = 0;  // crash-injection budget
  int shots = 1;    // kEmulation: full-information snapshots per client
  bool symmetry = false;  // kSds: symmetry-reduced exploration
};

struct Query {
  enum class Kind { kSolve, kConvergence, kEmulate, kCheck };
  Kind kind = Kind::kSolve;
  /// kSolve: the task to decide.
  std::shared_ptr<const task::Task> task;
  /// kConvergence: the simplex-agreement instance to compile.
  std::shared_ptr<const task::SimplexAgreementTask> agreement;
  /// kEmulate: emulated processors and full-information shots.
  int emu_procs = 2;
  int emu_shots = 1;
  /// kCheck: what to model-check.
  CheckQuery check;
  QueryOptions options;
};

struct QueryResult {
  /// kSolve / kConvergence: the verdict (status, level, decision, nodes).
  task::SolveResult solve;
  /// True when the query's SDS chains were all served from cache without
  /// any new subdivision work.
  bool cache_hit = false;
  /// True when the whole verdict came from the result memo (no search ran;
  /// nodes are the original run's).  Implies cache_hit.
  bool memoized = false;
  /// Wall latency from submission to completion, microseconds.
  std::uint64_t micros = 0;
  // kEmulate outputs.
  int emu_rounds = 0;
  std::vector<int> emu_steps;
  // kCheck outputs.
  bool is_check = false;
  bool check_ok = false;
  std::uint64_t check_schedules = 0;  // executions / interleavings explored
  std::uint64_t check_histories = 0;  // histories verified
  std::uint64_t check_max_depth = 0;  // deepest linearization search
  std::string check_violation;        // empty when check_ok
  /// Non-empty when the query raised; other fields are then unspecified.
  std::string error;
};

/// Handle returned by submit(): the future plus this query's cancel token
/// (flip it from any thread; the query finishes with kCancelled).
struct QueryTicket {
  std::future<QueryResult> result;
  std::shared_ptr<std::atomic<bool>> cancel;
};

class QueryService {
 public:
  struct Options {
    int workers = 0;  // 0 = std::thread::hardware_concurrency (min 1)
    SdsCache::Options cache;
    /// Definitive kSolve verdicts are memoized by task OBJECT identity
    /// (the shared_ptr pins the object, so the address cannot be reused):
    /// resubmitting the same task instance with the same max_level and
    /// node budget is answered without running the search.  0 disables.
    std::size_t result_memo_entries = 256;
  };

  QueryService();  // default Options
  explicit QueryService(Options options);

  /// Drains in-flight queries (cooperatively cancelling them first) and
  /// joins the pool.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  QueryTicket submit(Query query);

  /// Convenience: submit a kSolve query.
  QueryTicket submit_solve(std::shared_ptr<const task::Task> task,
                           QueryOptions options = {});

  /// Flips the cancel token of every query still in flight or queued.
  void cancel_all();

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] int workers() const noexcept { return pool_.size(); }
  [[nodiscard]] SdsCache& cache() noexcept { return cache_; }

 private:
  /// Result-memo key: the task instance plus every option that can change
  /// the verdict.  Deadlines/cancellation only yield kCancelled, which is
  /// never stored, so they are deliberately not part of the key.
  struct MemoKey {
    const task::Task* task;
    int max_level;
    std::uint64_t node_budget;
    bool operator<(const MemoKey& o) const {
      return std::tie(task, max_level, node_budget) <
             std::tie(o.task, o.max_level, o.node_budget);
    }
  };
  struct MemoEntry {
    std::shared_ptr<const task::Task> pin;  // keeps the key address unique
    task::SolveResult result;
    std::list<MemoKey>::iterator lru;
  };

  QueryResult execute(const Query& query,
                      const std::shared_ptr<std::atomic<bool>>& cancel,
                      std::chrono::steady_clock::time_point submitted);
  void record(const QueryResult& result);
  /// The memoized definitive result for this query, if any.
  [[nodiscard]] std::optional<task::SolveResult> memo_lookup(
      const Query& query);
  void memo_store(const Query& query, const task::SolveResult& result);

  SdsCache cache_;

  mutable std::mutex stats_mu_;
  ServiceStats stats_;

  std::mutex tokens_mu_;
  std::vector<std::weak_ptr<std::atomic<bool>>> live_tokens_;

  std::size_t memo_capacity_;
  std::mutex memo_mu_;
  std::map<MemoKey, MemoEntry> memo_;
  std::list<MemoKey> memo_lru_;  // front = most recent

  ThreadPool pool_;  // last member: workers die before state they touch
};

}  // namespace wfc::svc
