// wfc::svc::QueryService -- the library as a concurrent query engine.
//
// A fixed pool of workers (thread_pool.hpp) drains a BOUNDED admission
// queue (admission.hpp) and executes characterization queries against a
// shared, memoized SDS-chain cache (sds_cache.hpp):
//
//   * kSolve       -- the Prop 3.1 decision procedure (task::solve) for any
//                     Task, chains served from the cache;
//   * kConvergence -- §5 simplex agreement solved by convergence-map
//                     compilation (conv::solve_simplex_agreement_by_...);
//   * kEmulate     -- the §4 Figure 2 emulation of the k-shot full-
//                     information protocol, reporting rounds/steps;
//   * kCheck      -- the wfc::chk model checker.
//
// Resilience layer (PR 3): every query finishes with exactly one structured
// Status (status.hpp).
//
//   * Admission control: at most max_queue_depth queries wait; overflow is
//     answered kOverloaded with a retry_after_ms hint (kRejectNew) or makes
//     room by cancelling the oldest queued query (kDropOldest).  Deadlines
//     are re-checked AT DEQUEUE, so an already-expired query never occupies
//     a worker.
//   * Watchdog (watchdog.hpp): a scanner thread force-flips cancel tokens
//     past Options::hard_timeout and reports workers whose progress
//     heartbeat (bumped per search node / chain build) stops moving.
//   * Fault containment: std::bad_alloc inside a query is contained to that
//     query (kResourceExhausted) and answered with cache shedding;
//     std::invalid_argument maps to kInvalidArgument; anything else to
//     kInternal.  Under queue pressure, Options::degrade_budget_under_load
//     scales down the effective node budget instead of queueing doomed
//     full-size searches.
//
// Every query gets a cooperative cancel token and an optional deadline
// measured FROM SUBMISSION (so queue time counts against it).  Per-query
// latency/nodes, queue wait, and cache/service/watchdog counters are
// aggregated into ServiceStats (stats.hpp); the counters reconcile:
// submitted == sum of terminal statuses once all futures are ready.
//
// Two caching layers serve repeated work:
//   * the SdsCache shares subdivision towers across queries over the same
//     input complex (keyed by canonical fingerprint);
//   * a result memo replays definitive kSolve verdicts for the SAME task
//     object (keyed by address, pinned by shared_ptr) at the same
//     max_level/node budget -- resubmitting a task instance is O(1).
//
// Typed request API (PR 4): a Query is a std::variant of per-kind request
// structs (SolveRequest / ConvergenceRequest / EmulateRequest /
// CheckRequest) plus shared QueryOptions -- submit(Query) is the single
// entry point for every family, with Query::solve(...) etc. as the
// idiomatic constructors.  (The deprecated per-kind submit_solve() wrapper
// was removed in PR 5.)
//
// Completion callbacks (PR 5): submit(Query, CompletionFn) invokes the
// callback with the terminal QueryResult exactly once, from whichever
// thread reaches the terminal status first -- a service worker, the
// watchdog path, or INLINE on the submitting thread (memo hits, admission
// sheds, shutdown).  This is what lets a networked transport complete
// pipelined responses out of order without parking a thread per request;
// the ticket's future remains valid alongside the callback.
//
// Observability (PR 4): when Options::obs.enabled is set, the service owns
// an obs::Observer and every query carries an obs::TraceContext.  Spans
// cover queue wait, chain builds, the Prop 3.1 search (with node-count
// checkpoint samples riding the watchdog heartbeat seam), emulation runs,
// and check sweeps; counters and fixed-bucket histograms mirror
// ServiceStats exactly (submitted == sum of the per-status counters).
// Disabled (the default), the layer costs one branch per site.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <variant>
#include <vector>

#include "model/model.hpp"
#include "obs/obs.hpp"
#include "service/admission.hpp"
#include "service/sds_cache.hpp"
#include "service/stats.hpp"
#include "service/status.hpp"
#include "service/thread_pool.hpp"
#include "service/watchdog.hpp"
#include "tasks/canonical.hpp"
#include "tasks/solvability.hpp"
#include "wf/clock_cache.hpp"
#include "wf/counter.hpp"

namespace wfc::svc {

struct QueryOptions {
  int max_level = 2;
  std::uint64_t node_budget = task::SolveOptions{}.node_budget;
  /// Per-query deadline, measured from submission.
  std::optional<std::chrono::milliseconds> timeout;
};

/// Decide solvability of `task` (Prop 3.1 search).  `model` restricts the
/// admissible IIS runs (wfc::model); null or wait_free leaves the search
/// bit-for-bit identical to the model-less query.
struct SolveRequest {
  std::shared_ptr<const task::Task> task;
  std::shared_ptr<const model::Model> model;
};

/// Compile a §5 convergence map for a simplex-agreement instance.  With a
/// non-wait-free `model` the convergence compiler does not apply (its maps
/// assume the full run set); the service falls back to the restricted
/// Prop 3.1 solve for the same agreement task.
struct ConvergenceRequest {
  std::shared_ptr<const task::SimplexAgreementTask> agreement;
  std::shared_ptr<const model::Model> model;
};

/// Run the §4 Figure 2 emulation of the k-shot full-information protocol.
struct EmulateRequest {
  int procs = 2;
  int shots = 1;
};

/// Model-check a component (dispatched to wfc::chk).
struct CheckRequest {
  enum class Target {
    kSds,             // view vectors land in SDS^b (Lemmas 3.2/3.3)
    kEmulation,       // §4 emulation histories are legal atomic snapshots
    kLinearizability  // register AtomicSnapshot linearizes under all
                      // step interleavings of a fixed scenario
  };
  Target target = Target::kSds;
  int procs = 2;
  int rounds = 1;   // IIS rounds (kSds) / explored prefix (kEmulation)
  int crashes = 0;  // crash-injection budget
  int shots = 1;    // kEmulation: full-information snapshots per client
  bool symmetry = false;  // kSds: symmetry-reduced exploration
  /// kSds: explore only the runs this model admits (null = all runs).
  std::shared_ptr<const model::Model> model;
};

/// Deprecated spelling from the PR-2/3 API; CheckRequest is the same type.
using CheckQuery = CheckRequest;

/// One request of any family.  The variant index IS the query kind (see
/// Query::Kind below); adding a family means adding a struct here and a
/// case in QueryService::execute.
using Request = std::variant<SolveRequest, ConvergenceRequest, EmulateRequest,
                             CheckRequest>;

struct Query {
  /// Kind values deliberately equal the request's variant index.
  enum class Kind { kSolve = 0, kConvergence = 1, kEmulate = 2, kCheck = 3 };

  Request request;  // defaults to an (invalid, task-less) SolveRequest
  QueryOptions options;

  Query() = default;
  explicit Query(Request req, QueryOptions opts = {})
      : request(std::move(req)), options(opts) {}

  [[nodiscard]] Kind kind() const { return static_cast<Kind>(request.index()); }

  /// Typed accessor: null unless the query holds a request of family R.
  template <typename R>
  [[nodiscard]] const R* as() const {
    return std::get_if<R>(&request);
  }

  // Idiomatic constructors, one per family.
  static Query solve(std::shared_ptr<const task::Task> task,
                     QueryOptions opts = {}) {
    return Query(SolveRequest{std::move(task)}, opts);
  }
  static Query convergence(std::shared_ptr<const task::SimplexAgreementTask>
                               agreement,
                           QueryOptions opts = {}) {
    return Query(ConvergenceRequest{std::move(agreement)}, opts);
  }
  static Query emulate(int procs, int shots = 1, QueryOptions opts = {}) {
    return Query(EmulateRequest{procs, shots}, opts);
  }
  static Query check(CheckRequest request, QueryOptions opts = {}) {
    return Query(Request(std::in_place_type<CheckRequest>, request), opts);
  }
};

// Kind <-> variant-index correspondence Query::kind() relies on.
static_assert(std::is_same_v<std::variant_alternative_t<0, Request>,
                             SolveRequest> &&
              std::is_same_v<std::variant_alternative_t<1, Request>,
                             ConvergenceRequest> &&
              std::is_same_v<std::variant_alternative_t<2, Request>,
                             EmulateRequest> &&
              std::is_same_v<std::variant_alternative_t<3, Request>,
                             CheckRequest>,
              "Query::Kind must mirror the Request variant order");

struct QueryResult {
  /// Terminal fate of the query; every other field is meaningful only for
  /// kOk (except `error`, set for kInvalidArgument / kInternal /
  /// kResourceExhausted, and the latency fields, always set).
  Status status = Status::kOk;
  /// Client backoff hint, milliseconds; nonzero only when is_retryable(
  /// status) -- the service estimates when capacity will free up.
  std::uint32_t retry_after_ms = 0;
  /// kSolve / kConvergence: the verdict (status, level, decision, nodes).
  task::SolveResult solve;
  /// True when the query's SDS chains were all served from cache without
  /// any new subdivision work.
  bool cache_hit = false;
  /// True when the whole verdict came from the result memo (no search ran;
  /// nodes are the original run's).  Implies cache_hit.
  bool memoized = false;
  /// True when the search ran with a load-degraded node budget.
  bool degraded = false;
  /// Wall latency from submission to completion, microseconds.
  std::uint64_t micros = 0;
  /// Time spent waiting in the admission queue, microseconds.
  std::uint64_t queue_micros = 0;
  // kEmulate outputs.
  int emu_rounds = 0;
  std::vector<int> emu_steps;
  // kCheck outputs.
  bool is_check = false;
  bool check_ok = false;
  std::uint64_t check_schedules = 0;  // executions / interleavings explored
  std::uint64_t check_histories = 0;  // histories verified
  std::uint64_t check_max_depth = 0;  // deepest linearization search
  std::string check_violation;        // empty when check_ok
  /// Human-readable diagnostic accompanying a non-kOk status.
  std::string error;
};

/// Handle returned by submit(): the future plus this query's cancel token
/// (flip it from any thread; the query finishes with kCancelled).
struct QueryTicket {
  std::future<QueryResult> result;
  std::shared_ptr<std::atomic<bool>> cancel;
};

/// Terminal-status continuation for submit(Query, CompletionFn).  Invoked
/// exactly once with the same QueryResult the ticket's future yields; may
/// run on a service worker thread or inline on the submitting thread (memo
/// hits, admission sheds, shutdown), so it must not block or throw.
using CompletionFn = std::function<void(const QueryResult&)>;

class QueryService {
 public:
  struct Options {
    int workers = 0;  // 0 = std::thread::hardware_concurrency (min 1)
    SdsCache::Options cache;
    /// Definitive kSolve verdicts are memoized by task OBJECT identity
    /// (the shared_ptr pins the object, so the address cannot be reused):
    /// resubmitting the same task instance with the same max_level and
    /// node budget is answered without running the search.  0 disables.
    std::size_t result_memo_entries = 256;

    // --- Admission control -------------------------------------------------
    /// Maximum queries waiting for a worker; excess is shed per `policy`.
    std::size_t max_queue_depth = 1024;
    AdmissionQueue::Policy admission_policy =
        AdmissionQueue::Policy::kRejectNew;
    /// Concurrent executions allowed (0 = one per worker).  Lowering it
    /// below `workers` reserves workers for queue turnover (fast-failing
    /// expired queries) under load.
    int max_inflight = 0;
    /// retry_after_ms hint used before any latency history exists.
    std::uint32_t retry_after_ms_base = 50;
    /// Under queue pressure (>= 1/4 full) run searches at half the node
    /// budget, (>= 1/2 full) at a quarter: overloaded service answers more
    /// queries kUnknown instead of queueing doomed full-size searches.
    bool degrade_budget_under_load = false;

    // --- Watchdog ----------------------------------------------------------
    /// Hard wall-time cap on a query's EXECUTION; the watchdog force-flips
    /// the cancel token past it (terminal status kDeadlineExceeded).
    std::optional<std::chrono::milliseconds> hard_timeout;
    std::chrono::milliseconds watchdog_scan_period{25};
    /// Scans without a progress-heartbeat bump before a stuck-worker
    /// report; 0 disables stall detection.
    int watchdog_stall_scans = 0;

    /// Test seam (chaos harness): runs on the worker immediately before a
    /// query executes; may sleep (stalled worker) or flip `cancel`.
    std::function<void(std::atomic<bool>& cancel)> execute_hook;

    // --- Observability -----------------------------------------------------
    /// Tracing + metrics (obs/obs.hpp).  Disabled by default: the service
    /// behaves exactly as before the obs layer existed.
    obs::ObsConfig obs;
  };

  QueryService();  // default Options
  explicit QueryService(Options options);

  /// Cancels and drains everything in flight (every outstanding future is
  /// fulfilled -- queued queries with kCancelled, running ones as soon as
  /// they poll their token) and joins the pool.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// The single entry point for every query family; build the Query with
  /// Query::solve / ::convergence / ::emulate / ::check.  Never throws for
  /// load reasons: an inadmissible query yields a ticket already completed
  /// with kOverloaded (or kCancelled during shutdown).  When `on_complete`
  /// is set it receives the terminal QueryResult exactly once -- possibly
  /// inline on this thread (memo hits, sheds, shutdown), possibly later on
  /// a worker -- in addition to (and always before) the ticket's future
  /// becoming ready.
  QueryTicket submit(Query query, CompletionFn on_complete = nullptr);

  /// Flips the cancel token of every query still in flight or queued.
  void cancel_all();

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] int workers() const noexcept { return pool_.size(); }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.depth(); }
  [[nodiscard]] SdsCache& cache() noexcept { return cache_; }
  /// The tracing/metrics facade (obs/obs.hpp); inert unless Options::obs
  /// enabled it.
  [[nodiscard]] obs::Observer& observer() noexcept { return observer_; }
  [[nodiscard]] const obs::Observer& observer() const noexcept {
    return observer_;
  }

 private:
  /// Everything a query carries from submission to its terminal status.
  struct Job {
    Query query;
    std::shared_ptr<std::atomic<bool>> cancel;
    std::promise<QueryResult> promise;
    std::chrono::steady_clock::time_point submitted;
    std::optional<std::chrono::steady_clock::time_point> deadline;
    /// Per-query trace handle (disabled context when obs is off).
    obs::TraceContext trace;
    /// Terminal-status continuation (may be empty); see CompletionFn.
    CompletionFn on_complete;
    /// Watchdog heartbeat: bumped at search/subdivision checkpoints.
    std::atomic<std::uint64_t> progress{0};
    /// Exactly-once terminal-status latch.
    std::atomic<bool> finished{false};
  };

  /// Metric series the service resolves once at construction (all null when
  /// obs is disabled, so every instrumentation site is a pointer check).
  struct MetricSet {
    obs::Counter* submitted = nullptr;
    obs::Counter* by_kind[4] = {};          // indexed by Query::Kind
    obs::Counter* by_status[kNumStatuses] = {};
    obs::Counter* memo_hits = nullptr;
    obs::Counter* degraded = nullptr;
    obs::Counter* emu_rounds = nullptr;
    obs::Counter* model_queries = nullptr;       // non-wait_free model set
    obs::Counter* model_runs_admitted = nullptr; // runs kept by restriction
    obs::Counter* model_runs_rejected = nullptr; // runs pruned by restriction
    obs::Histogram* queue_wait_us = nullptr;
    obs::Histogram* exec_us = nullptr;      // execution (dequeue -> done)
    obs::Histogram* e2e_us = nullptr;       // submission -> terminal status
    obs::Histogram* chain_for_us = nullptr; // chain_for incl. build-lock wait
    obs::Histogram* search_nodes = nullptr;
  };

  /// Result-memo key: the task instance plus every option that can change
  /// the verdict -- including the model tag (wfc::model), so the same task
  /// under distinct models never shares a memo entry.  Tag 0 is wait_free
  /// (and a null model), keeping pre-model keys identical.  Deadlines/
  /// cancellation only yield kCancelled, which is never stored, so they are
  /// deliberately not part of the key.
  struct MemoKey {
    const task::Task* task;
    int max_level;
    std::uint64_t node_budget;
    std::uint64_t model_tag;
    bool operator==(const MemoKey& o) const {
      return task == o.task && max_level == o.max_level &&
             node_budget == o.node_budget && model_tag == o.model_tag;
    }
  };
  struct MemoKeyHash {
    std::size_t operator()(const MemoKey& k) const {
      std::size_t h = std::hash<const task::Task*>{}(k.task);
      h ^= std::hash<int>{}(k.max_level) + 0x9e3779b97f4a7c15ull + (h << 6) +
           (h >> 2);
      h ^= std::hash<std::uint64_t>{}(k.node_budget) + 0x9e3779b97f4a7c15ull +
           (h << 6) + (h >> 2);
      h ^= std::hash<std::uint64_t>{}(k.model_tag) + 0x9e3779b97f4a7c15ull +
           (h << 6) + (h >> 2);
      return h;
    }
  };
  struct MemoVal {
    std::shared_ptr<const task::Task> pin;  // keeps the key address unique
    task::SolveResult result;
  };
  /// Lock-free memo: definitive verdicts are copy-out lookups with CLOCK
  /// recency, bounded by result_memo_entries.
  using ResultMemo = wf::ClockCache<MemoKey, MemoVal, MemoKeyHash>;

  /// Hot ServiceStats counters, one wf::StatsShard slot each; workers bump
  /// per-thread shards and stats() folds them, so the completion path never
  /// serializes on a stats mutex.
  enum StatSlot : std::size_t {
    kStatSubmitted,
    kStatQueries,
    kStatStatusBase,  // + kNumStatuses slots, indexed by Status
    kStatSolvable = kStatStatusBase + kNumStatuses,
    kStatUnsolvable,
    kStatUnknown,
    kStatResultHits,
    kStatNodesExplored,
    kStatDegraded,
    kStatTotalMicros,
    kStatQueueTotalMicros,
    kStatCheckRuns,
    kStatCheckSchedules,
    kStatCheckHistories,
    kStatCheckViolations,
    kStatCount
  };

  void worker_loop();
  /// Dequeue-side handling: deadline re-check, chaos hook, inflight gate,
  /// watchdog bracket, execution, terminal status.
  void run_job(const std::shared_ptr<Job>& job);
  /// Completes `job` without running it (shed, shutdown, expired).
  void finish_without_running(const std::shared_ptr<Job>& job, Status status);
  /// Exactly-once: records and fulfils the promise.
  void finish(const std::shared_ptr<Job>& job, QueryResult result);
  QueryResult execute(const Query& query,
                      const std::shared_ptr<std::atomic<bool>>& cancel,
                      std::chrono::steady_clock::time_point submitted,
                      const std::optional<std::chrono::steady_clock::
                                              time_point>& deadline,
                      std::uint64_t effective_budget,
                      std::atomic<std::uint64_t>* progress,
                      const obs::TraceContext& trace);
  /// Resolves MetricSet series and installs the gauge-refresh hook.
  void init_observability();
  void record(const QueryResult& result);
  /// Effective node budget after load degradation; sets *degraded.
  std::uint64_t degraded_budget(std::uint64_t requested, bool* degraded);
  /// Client backoff estimate from queue depth and recent latency.
  std::uint32_t retry_hint();
  void acquire_inflight_slot();
  void release_inflight_slot();
  /// Restrictor for a non-wait-free model: serves each level's admissible
  /// subcomplex from the derived-tower cache (key = mixed fingerprint), so
  /// repeated model queries over the same input prune once.  Null models
  /// and wait_free return an empty function (search untouched).
  task::LevelRestrictor model_restrictor(
      std::shared_ptr<const model::Model> model, bool* any_build);
  /// The memoized definitive result for this query, if any.
  [[nodiscard]] std::optional<task::SolveResult> memo_lookup(
      const Query& query);
  void memo_store(const Query& query, const task::SolveResult& result);

  Options options_;
  obs::Observer observer_;  // before pool_/watchdog_: recorded into at drain
  MetricSet metrics_;
  SdsCache cache_;
  Watchdog watchdog_;
  AdmissionQueue queue_;
  std::atomic<bool> accepting_{true};

  wf::StatsShard<kStatCount> stats_;
  wf::MaxCell max_micros_;
  wf::MaxCell queue_max_micros_;
  wf::MaxCell check_max_depth_;
  std::atomic<std::uint64_t> ewma_exec_micros_{0};

  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
  int inflight_ = 0;
  int max_inflight_ = 1;

  std::mutex tokens_mu_;
  std::vector<std::weak_ptr<std::atomic<bool>>> live_tokens_;

  std::size_t memo_capacity_;
  ResultMemo memo_;

  ThreadPool pool_;  // last member: workers die before state they touch
};

}  // namespace wfc::svc
