// Minimal flat JSON support for the JSON-lines front-end.
//
// The serve protocol only ever exchanges FLAT objects -- string, number and
// boolean values, no nesting, no arrays -- so instead of pulling in a JSON
// dependency we parse exactly that subset (strictly: unknown escapes,
// nesting or trailing garbage raise std::invalid_argument) and emit
// well-formed JSON through a tiny writer.  Numbers and booleans parse to
// their literal text; callers convert as needed.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace wfc::svc {

/// Parses one flat JSON object, e.g. {"task":"consensus","procs":2}.
/// Values are returned as raw text (strings unescaped, numbers/booleans
/// verbatim).  Throws std::invalid_argument on anything else.
std::map<std::string, std::string> parse_flat_json(std::string_view line);

/// JSON string escaping (quotes, backslash, control characters).
std::string json_escape(std::string_view s);

/// Builds one flat JSON object field by field.
class JsonWriter {
 public:
  JsonWriter& field(std::string_view key, std::string_view value);  // string
  JsonWriter& field(std::string_view key, const char* value) {
    return field(key, std::string_view(value));  // keep literals off bool
  }
  JsonWriter& field(std::string_view key, std::int64_t value);
  JsonWriter& field(std::string_view key, std::uint64_t value);
  JsonWriter& field(std::string_view key, int value) {
    return field(key, static_cast<std::int64_t>(value));
  }
  JsonWriter& field(std::string_view key, bool value);

  /// The finished object, e.g. {"status":"SOLVABLE","level":1}.
  [[nodiscard]] std::string str() const { return "{" + body_ + "}"; }

 private:
  JsonWriter& raw(std::string_view key, std::string_view rendered);
  std::string body_;
};

}  // namespace wfc::svc
