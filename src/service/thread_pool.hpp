// Fixed-size worker pool for the query service.
//
// Deliberately minimal: a locked FIFO of type-erased jobs drained by N
// workers.  Queries are coarse (milliseconds to seconds of search), so a
// mutex + condition variable queue is nowhere near the bottleneck; what
// matters is clean shutdown semantics: the destructor stops intake, DRAINS
// every job already queued, and joins.  Pair with the cooperative cancel
// tokens in task::SolveOptions to shed queued work fast instead of killing
// threads.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wfc::svc {

class ThreadPool {
 public:
  /// Spawns `n_threads` workers (>= 1).
  explicit ThreadPool(int n_threads);

  /// Stops intake, runs every queued job to completion, joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job.  Throws std::invalid_argument after shutdown began.
  void submit(std::function<void()> job);

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(workers_.size());
  }

  /// Jobs queued but not yet picked up (monitoring only; racy by nature).
  [[nodiscard]] std::size_t backlog() const;

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace wfc::svc
