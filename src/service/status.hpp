// Structured terminal statuses for the query service (wfc::svc).
//
// Every submitted query finishes with exactly ONE Status.  The taxonomy
// separates three orthogonal questions that the old stringly "error" field
// conflated:
//
//   * did the query run?            kOk vs. everything else;
//   * whose fault was it?           kInvalidArgument (caller) vs. kInternal
//                                   (library bug) vs. load conditions;
//   * should the client retry?      is_retryable(): kOverloaded and
//                                   kResourceExhausted are transient -- the
//                                   front-end attaches a "retry_after_ms"
//                                   hint; deadline/cancellation are the
//                                   caller's own decisions and are final.
//
// kOk does NOT mean "solvable": the domain verdict (SOLVABLE / UNSOLVABLE /
// UNKNOWN for solve queries, OK / VIOLATION for checks) lives in the result
// body.  Status describes the fate of the query, not of the task.
#pragma once

namespace wfc::svc {

enum class Status {
  kOk = 0,             // ran to a domain verdict
  kCancelled,          // cancel token flipped (caller, cancel_all, shutdown)
  kDeadlineExceeded,   // per-query deadline or the watchdog's hard cap hit
  kOverloaded,         // shed by admission control (queue full / drop-oldest)
  kResourceExhausted,  // std::bad_alloc contained; cache pressure was shed
  kInvalidArgument,    // malformed query parameters (WFC_REQUIRE et al.)
  kInternal,           // unexpected exception: a library bug, not load
};

inline constexpr int kNumStatuses = 7;

/// Uppercase rendering for logs: "OK", "DEADLINE_EXCEEDED", ...
[[nodiscard]] constexpr const char* to_cstring(Status s) {
  switch (s) {
    case Status::kOk: return "OK";
    case Status::kCancelled: return "CANCELLED";
    case Status::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case Status::kOverloaded: return "OVERLOADED";
    case Status::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case Status::kInvalidArgument: return "INVALID_ARGUMENT";
    case Status::kInternal: return "INTERNAL";
  }
  return "?";
}

/// Lowercase token used in JSONL result records: {"status":"overloaded",...}.
[[nodiscard]] constexpr const char* to_json_token(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kCancelled: return "cancelled";
    case Status::kDeadlineExceeded: return "deadline_exceeded";
    case Status::kOverloaded: return "overloaded";
    case Status::kResourceExhausted: return "resource_exhausted";
    case Status::kInvalidArgument: return "invalid_argument";
    case Status::kInternal: return "internal";
  }
  return "?";
}

/// True for transient load conditions a client should retry (with backoff,
/// honouring the server's retry_after_ms hint).
[[nodiscard]] constexpr bool is_retryable(Status s) {
  return s == Status::kOverloaded || s == Status::kResourceExhausted;
}

}  // namespace wfc::svc
