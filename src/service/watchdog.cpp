#include "service/watchdog.hpp"

#include <utility>

namespace wfc::svc {

Watchdog::Watchdog(Options options) : options_(options) {
  if (enabled()) scanner_ = std::thread([this] { scan_loop(); });
}

Watchdog::~Watchdog() {
  if (!scanner_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  scanner_.join();
}

std::uint64_t Watchdog::watch(
    std::shared_ptr<std::atomic<bool>> cancel,
    std::shared_ptr<const std::atomic<std::uint64_t>> progress,
    obs::TraceContext trace) {
  if (!enabled()) return 0;
  Watched w;
  w.cancel = std::move(cancel);
  w.progress = std::move(progress);
  w.trace = trace;
  w.started = std::chrono::steady_clock::now();
  if (w.progress != nullptr) {
    w.last_progress = w.progress->load(std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t handle = next_handle_++;
  watched_.emplace(handle, std::move(w));
  return handle;
}

bool Watchdog::unwatch(std::uint64_t handle) {
  if (handle == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = watched_.find(handle);
  if (it == watched_.end()) return false;
  const bool killed = it->second.killed;
  watched_.erase(it);
  return killed;
}

Watchdog::Stats Watchdog::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void Watchdog::scan_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    cv_.wait_for(lock, options_.scan_period, [this] { return stopping_; });
    if (stopping_) return;
    ++stats_.scans;
    const auto now = std::chrono::steady_clock::now();
    for (auto& [handle, w] : watched_) {
      if (!w.killed && options_.hard_timeout &&
          now - w.started >= *options_.hard_timeout) {
        w.cancel->store(true, std::memory_order_relaxed);
        w.killed = true;
        ++stats_.kills;
        w.trace.instant(obs::SpanKind::kWatchdogKill);
      }
      if (options_.stall_scans > 0 && w.progress != nullptr && !w.killed) {
        const std::uint64_t p = w.progress->load(std::memory_order_relaxed);
        if (p == w.last_progress) {
          if (++w.stale_scans >= options_.stall_scans && !w.reported) {
            w.reported = true;
            ++stats_.stuck_reports;
            w.trace.instant(obs::SpanKind::kWatchdogStall,
                            static_cast<std::uint64_t>(w.stale_scans));
          }
        } else {
          w.last_progress = p;
          w.stale_scans = 0;
          w.reported = false;
        }
      }
    }
  }
}

}  // namespace wfc::svc
