#include "service/jsonl.hpp"

#include <cctype>
#include <cstdio>
#include <stdexcept>

namespace wfc::svc {

namespace {

[[noreturn]] void bad(std::string_view line, const char* why) {
  throw std::invalid_argument("parse_flat_json: " + std::string(why) +
                              " in: " + std::string(line));
}

void skip_ws(std::string_view s, std::size_t& i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
}

std::string parse_string(std::string_view line, std::size_t& i) {
  // line[i] == '"' on entry.
  ++i;
  std::string out;
  while (i < line.size() && line[i] != '"') {
    char c = line[i++];
    if (c == '\\') {
      if (i >= line.size()) bad(line, "dangling escape");
      const char esc = line[i++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        default: bad(line, "unsupported escape");
      }
    } else {
      out.push_back(c);
    }
  }
  if (i >= line.size()) bad(line, "unterminated string");
  ++i;  // closing quote
  return out;
}

std::string parse_scalar(std::string_view line, std::size_t& i) {
  // Number / true / false / null, ended by ',' '}' or whitespace.
  const std::size_t start = i;
  while (i < line.size() && line[i] != ',' && line[i] != '}' &&
         !std::isspace(static_cast<unsigned char>(line[i]))) {
    ++i;
  }
  std::string tok(line.substr(start, i - start));
  if (tok.empty()) bad(line, "empty value");
  if (tok == "true" || tok == "false" || tok == "null") return tok;
  // Validate as a JSON number (integers and simple decimals suffice here).
  std::size_t p = 0;
  if (tok[p] == '-') ++p;
  bool digits = false;
  while (p < tok.size() &&
         std::isdigit(static_cast<unsigned char>(tok[p]))) {
    ++p;
    digits = true;
  }
  if (p < tok.size() && tok[p] == '.') {
    ++p;
    while (p < tok.size() &&
           std::isdigit(static_cast<unsigned char>(tok[p]))) {
      ++p;
      digits = true;
    }
  }
  if (!digits || p != tok.size()) bad(line, "malformed value");
  return tok;
}

}  // namespace

std::map<std::string, std::string> parse_flat_json(std::string_view line) {
  std::map<std::string, std::string> out;
  std::size_t i = 0;
  skip_ws(line, i);
  if (i >= line.size() || line[i] != '{') bad(line, "expected '{'");
  ++i;
  skip_ws(line, i);
  if (i < line.size() && line[i] == '}') {
    ++i;
  } else {
    for (;;) {
      skip_ws(line, i);
      if (i >= line.size() || line[i] != '"') bad(line, "expected key");
      std::string key = parse_string(line, i);
      skip_ws(line, i);
      if (i >= line.size() || line[i] != ':') bad(line, "expected ':'");
      ++i;
      skip_ws(line, i);
      if (i >= line.size()) bad(line, "missing value");
      std::string value = line[i] == '"' ? parse_string(line, i)
                                         : parse_scalar(line, i);
      out[std::move(key)] = std::move(value);
      skip_ws(line, i);
      if (i >= line.size()) bad(line, "unterminated object");
      if (line[i] == ',') {
        ++i;
        continue;
      }
      if (line[i] == '}') {
        ++i;
        break;
      }
      bad(line, "expected ',' or '}'");
    }
  }
  skip_ws(line, i);
  if (i != line.size()) bad(line, "trailing garbage");
  return out;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

JsonWriter& JsonWriter::raw(std::string_view key, std::string_view rendered) {
  if (!body_.empty()) body_ += ",";
  body_ += "\"";
  body_ += json_escape(key);
  body_ += "\":";
  body_ += rendered;
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, std::string_view value) {
  return raw(key, "\"" + json_escape(value) + "\"");
}

JsonWriter& JsonWriter::field(std::string_view key, std::int64_t value) {
  return raw(key, std::to_string(value));
}

JsonWriter& JsonWriter::field(std::string_view key, std::uint64_t value) {
  return raw(key, std::to_string(value));
}

JsonWriter& JsonWriter::field(std::string_view key, bool value) {
  return raw(key, value ? "true" : "false");
}

}  // namespace wfc::svc
