// Watchdog: the service's defence against queries that ignore cooperation.
//
// Deadlines and cancel tokens are COOPERATIVE -- the Prop 3.1 search polls
// them per node, the checkers per history.  A query stuck somewhere that
// never polls (a pathological Delta callback, a subdivision blow-up, an
// injected stall) would pin its worker forever.  The watchdog is a single
// background thread that scans every in-flight query each scan_period and
// applies two independent rules:
//
//   * hard wall-time cap: past `hard_timeout` (measured from execution
//     start, not submission -- queue time is the deadline's job), the
//     query's cancel token is force-flipped.  Counted in kills; the service
//     reports the query kDeadlineExceeded as soon as the work next polls.
//   * progress heartbeat: each query exposes a progress counter bumped at
//     search/subdivision checkpoints (task::SolveOptions::progress).  A
//     query whose counter is unchanged for `stall_scans` consecutive scans
//     is reported as a stuck worker (stuck_reports).  Reports are
//     diagnostic: a stalled query is only KILLED by the hard cap, because
//     legitimate long allocations also pause the heartbeat.
//
// watch()/unwatch() bracket execution; unwatch() returns whether the
// watchdog killed the query, so the service can distinguish a hard-cap
// kill (kDeadlineExceeded) from a caller cancellation (kCancelled).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>

#include "obs/trace.hpp"

namespace wfc::svc {

class Watchdog {
 public:
  struct Options {
    std::chrono::milliseconds scan_period{25};
    /// Hard wall-time cap on a single query's EXECUTION (not queue) time.
    /// Unset = never force-kill.
    std::optional<std::chrono::milliseconds> hard_timeout;
    /// Scans without a heartbeat bump before a stuck-worker report.
    /// 0 disables stall detection.
    int stall_scans = 0;
  };

  struct Stats {
    std::uint64_t scans = 0;
    std::uint64_t kills = 0;          // hard-timeout force-cancellations
    std::uint64_t stuck_reports = 0;  // heartbeat stalls detected
  };

  explicit Watchdog(Options options);
  ~Watchdog();  // stops and joins the scanner thread

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// True when either rule is active; an idle watchdog spawns no thread and
  /// watch()/unwatch() are no-ops returning 0/false.
  [[nodiscard]] bool enabled() const {
    return options_.hard_timeout.has_value() || options_.stall_scans > 0;
  }

  /// Registers an in-flight query.  `progress` may be null (heartbeat rule
  /// skipped for this query).  Both pointers are shared so a watched query
  /// outliving its service teardown stays safe to scan.  `trace` (optional)
  /// receives watchdog_kill / watchdog_stall instants when the scanner
  /// intervenes; the context's sink must outlive unwatch().
  std::uint64_t watch(std::shared_ptr<std::atomic<bool>> cancel,
                      std::shared_ptr<const std::atomic<std::uint64_t>>
                          progress,
                      obs::TraceContext trace = {});

  /// Deregisters; returns true iff the watchdog force-cancelled the query.
  bool unwatch(std::uint64_t handle);

  [[nodiscard]] Stats stats() const;

 private:
  struct Watched {
    std::shared_ptr<std::atomic<bool>> cancel;
    std::shared_ptr<const std::atomic<std::uint64_t>> progress;
    obs::TraceContext trace;
    std::chrono::steady_clock::time_point started;
    std::uint64_t last_progress = 0;
    int stale_scans = 0;
    bool killed = false;
    bool reported = false;
  };

  void scan_loop();

  Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::uint64_t next_handle_ = 1;
  std::unordered_map<std::uint64_t, Watched> watched_;
  Stats stats_;
  std::thread scanner_;  // last: joined while the rest is still alive
};

}  // namespace wfc::svc
