#include "service/frontend.hpp"

#include <deque>
#include <fstream>
#include <istream>
#include <ostream>

#include "service/handler.hpp"

namespace wfc::svc {

int run_jsonl_server(std::istream& in, std::ostream& out, std::ostream& err,
                     const ServeConfig& config) {
  QueryService::Options service_options = config.service;
  // The metrics / trace ops answer from the obs layer, so the serve path
  // turns it on by default (QueryService embedded elsewhere keeps the
  // zero-cost disabled default).
  if (config.observability) service_options.obs.enabled = true;
  QueryService service(std::move(service_options));

  HandlerConfig handler_config;
  handler_config.default_max_level = config.default_max_level;
  handler_config.legacy_envelope = config.legacy_envelope;
  handler_config.max_line_bytes = config.max_line_bytes;
  // The stdin transport runs in the operator's own shell, so path-bearing
  // metrics/trace ops may write files; network transports keep this off.
  handler_config.allow_control_paths = true;
  handler_config.warn = [&err](const std::string& note) {
    err << "wfc_serve: " << note << "\n";
  };
  RequestHandler handler(service, handler_config);

  // One submitted query whose result line has not been printed yet.  The
  // stdin transport prints results in SUBMISSION order (queries still
  // execute concurrently), so completed tickets wait in this deque behind
  // earlier ones.
  std::deque<RequestHandler::Submitted> pending;
  int error_lines = 0;

  auto drain = [&](std::size_t keep) {
    while (pending.size() > keep) {
      RequestHandler::Submitted p = std::move(pending.front());
      pending.pop_front();
      RequestHandler::Rendered rendered =
          handler.render(p.meta, p.ticket.result.get());
      if (rendered.error) ++error_lines;
      out << rendered.line << "\n";
    }
  };

  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    RequestHandler::ParsedLine parsed = handler.parse(line, line_no);
    switch (parsed.action) {
      case RequestHandler::Action::kSkip:
        break;
      case RequestHandler::Action::kRespond:
        if (parsed.immediate.error) ++error_lines;
        drain(0);  // keep result lines in input order
        out << parsed.immediate.line << "\n";
        break;
      case RequestHandler::Action::kControl: {
        // Counters must reflect every query submitted before this line
        // (stats), and every submitted query must be terminal so the
        // metrics line reconciles and every span is in the trace ring.
        drain(0);
        RequestHandler::Rendered rendered = handler.control(parsed);
        if (rendered.error) ++error_lines;
        out << rendered.line << "\n";
        break;
      }
      case RequestHandler::Action::kSubmit: {
        RequestHandler::Rendered error;
        if (auto submitted = handler.submit(parsed, &error)) {
          pending.push_back(std::move(*submitted));
        } else {
          // A malformed line answers for itself -- with the line number so
          // the offending record in a big batch is findable -- and NEVER
          // terminates the serve loop.
          ++error_lines;
          drain(0);  // keep result lines in input order
          out << error.line << "\n";
        }
        break;
      }
    }
    // Keep the printed order equal to the submission order without letting
    // the backlog grow unboundedly on huge inputs.
    if (pending.size() >= 4096) drain(2048);
  }
  drain(0);
  if (config.prometheus_at_eof != nullptr && service.observer().enabled()) {
    service.observer().write_prometheus(*config.prometheus_at_eof);
  }
  if (!config.trace_path_at_eof.empty() && service.observer().enabled()) {
    std::ofstream file(config.trace_path_at_eof);
    if (file) {
      service.observer().write_chrome_trace(file);
    } else {
      err << "wfc_serve: cannot open trace path \"" << config.trace_path_at_eof
          << "\"\n";
      ++error_lines;
    }
  }
  if (config.stats_at_eof) {
    err << "wfc_serve: " << service.stats().to_string() << "\n";
  }
  return error_lines;
}

}  // namespace wfc::svc
