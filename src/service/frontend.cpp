#include "service/frontend.hpp"

#include <deque>
#include <fstream>
#include <istream>
#include <numeric>
#include <ostream>
#include <stdexcept>

#include "service/jsonl.hpp"
#include "topology/subdivision.hpp"

namespace wfc::svc {

namespace {

using Fields = std::map<std::string, std::string>;

int int_field(const Fields& fields, const std::string& key,
              std::optional<int> fallback = std::nullopt) {
  auto it = fields.find(key);
  if (it == fields.end()) {
    if (fallback) return *fallback;
    throw std::invalid_argument("missing field \"" + key + "\"");
  }
  try {
    std::size_t pos = 0;
    const int value = std::stoi(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument(it->second);
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("field \"" + key + "\" is not an integer: " +
                                it->second);
  }
}

std::string string_field(const Fields& fields, const std::string& key,
                         const std::string& fallback = "") {
  auto it = fields.find(key);
  return it == fields.end() ? fallback : it->second;
}

QueryOptions parse_query_options(const Fields& fields, int default_max_level) {
  QueryOptions options;
  options.max_level = int_field(fields, "max_level", default_max_level);
  if (auto it = fields.find("budget"); it != fields.end()) {
    try {
      options.node_budget = std::stoull(it->second);
    } catch (const std::exception&) {
      throw std::invalid_argument("field \"budget\" is not an integer: " +
                                  it->second);
    }
  }
  if (fields.count("timeout_ms") != 0) {
    options.timeout = std::chrono::milliseconds(
        int_field(fields, "timeout_ms"));
  }
  return options;
}

/// One submitted query with everything needed to print its result line.
struct Pending {
  std::string id;
  std::string label;  // task name or op
  QueryTicket ticket;
  bool is_emulate = false;
  bool is_check = false;
};

void print_result(std::ostream& out, const Pending& pending,
                  QueryResult result, bool legacy) {
  JsonWriter w;
  if (!pending.id.empty()) w.field("id", pending.id);
  w.field("task", pending.label);
  if (result.status != Status::kOk) {
    // Non-kOk terminal statuses use the lowercase taxonomy tokens
    // (status.hpp) in BOTH envelopes; retryable ones carry the service's
    // backoff hint.
    w.field("status", to_json_token(result.status));
    if (result.retry_after_ms > 0) {
      w.field("retry_after_ms",
              static_cast<std::uint64_t>(result.retry_after_ms));
    }
    if (!result.error.empty()) w.field("error", result.error);
  } else {
    // v2 envelope: "status" stays in the transport taxonomy ("ok") and the
    // domain outcome moves to "verdict".  Legacy envelope (default for one
    // release): the verdict IS the status, as PR 2/3 emitted.
    const char* verdict_key = legacy ? "status" : "verdict";
    if (!legacy) w.field("status", to_json_token(Status::kOk));
    if (pending.is_check) {
      w.field(verdict_key, result.check_ok ? "OK" : "VIOLATION");
      w.field("schedules", result.check_schedules)
          .field("histories", result.check_histories)
          .field("max_depth", result.check_max_depth);
      if (!result.check_violation.empty()) {
        w.field("violation", result.check_violation);
      }
    } else if (pending.is_emulate) {
      w.field(verdict_key, "OK")
          .field("rounds", result.emu_rounds)
          .field("iis_steps",
                 std::accumulate(result.emu_steps.begin(),
                                 result.emu_steps.end(), std::int64_t{0}));
    } else {
      w.field(verdict_key, task::to_cstring(result.solve.status));
      if (result.solve.status == task::Solvability::kSolvable) {
        w.field("level", result.solve.level);
      }
      w.field("nodes", result.solve.nodes_explored)
          .field("cache_hit", result.cache_hit);
    }
  }
  if (result.degraded) w.field("degraded", true);
  w.field("micros", result.micros);
  out << w.str() << "\n";
}

/// The {"op":"metrics"} response: one flat-JSON line whose counters come
/// straight from the obs registry, alongside the ServiceStats intake count
/// -- the reconciliation the chaos soak asserts (submitted == terminal ==
/// sum of the per-status counters) is visible in the line itself.
void print_metrics(std::ostream& out, const std::string& id,
                   QueryService& service) {
  obs::MetricsRegistry& reg = service.observer().metrics();
  const ServiceStats st = service.stats();
  const std::uint64_t submitted =
      reg.counter("wfc_queries_submitted_total").value();
  JsonWriter w;
  if (!id.empty()) w.field("id", id);
  w.field("op", "metrics").field("status", to_json_token(Status::kOk));
  w.field("submitted", submitted);
  std::uint64_t terminal = 0;
  for (int s = 0; s < kNumStatuses; ++s) {
    const std::uint64_t c =
        reg.counter("wfc_queries_terminal_total",
                    std::string(R"(status=")") +
                        to_json_token(static_cast<Status>(s)) + R"(")")
            .value();
    terminal += c;
    w.field(to_json_token(static_cast<Status>(s)), c);
  }
  w.field("terminal", terminal);
  w.field("memo_hits", reg.counter("wfc_result_memo_hits_total").value());
  w.field("stats_submitted", st.submitted);
  w.field("reconciles", submitted == terminal && submitted == st.submitted);
  out << w.str() << "\n";
}

}  // namespace

std::shared_ptr<task::Task> make_canonical_task(const Fields& fields) {
  const std::string kind = string_field(fields, "task");
  if (kind.empty()) throw std::invalid_argument("missing field \"task\"");
  const int procs = int_field(fields, "procs");
  if (kind == "consensus") {
    return std::make_shared<task::ConsensusTask>(procs,
                                                 int_field(fields, "values"));
  }
  if (kind == "set-consensus") {
    return std::make_shared<task::KSetConsensusTask>(procs,
                                                     int_field(fields, "k"));
  }
  if (kind == "renaming") {
    return std::make_shared<task::RenamingTask>(procs,
                                                int_field(fields, "names"));
  }
  if (kind == "approx") {
    return std::make_shared<task::ApproxAgreementTask>(
        procs, int_field(fields, "grid"));
  }
  if (kind == "simplex-agreement") {
    return std::make_shared<task::SimplexAgreementTask>(
        procs, topo::iterated_sds(topo::base_simplex(procs),
                                  int_field(fields, "depth")));
  }
  if (kind == "identity") {
    return std::make_shared<task::IdentityTask>(topo::base_simplex(procs));
  }
  throw std::invalid_argument("unknown task kind \"" + kind + "\"");
}

int run_jsonl_server(std::istream& in, std::ostream& out, std::ostream& err,
                     const ServeConfig& config) {
  QueryService::Options service_options = config.service;
  // The metrics / trace ops answer from the obs layer, so the serve path
  // turns it on by default (QueryService embedded elsewhere keeps the
  // zero-cost disabled default).
  if (config.observability) service_options.obs.enabled = true;
  QueryService service(std::move(service_options));
  std::deque<Pending> pending;
  int error_lines = 0;
  bool warned_legacy_task = false;

  // Canonical tasks are pure functions of their request fields, so repeated
  // lines can share ONE task object -- which is exactly what the service's
  // result memo keys on.  Interning also skips rebuilding input/output
  // complexes (iterated_sds for simplex-agreement is itself costly).
  std::map<std::string, std::shared_ptr<task::Task>> interned;
  auto intern_task = [&interned](const Fields& fields) {
    std::string key;
    for (const auto& [k, v] : fields) {
      // Skip fields that do not affect the constructed task.  max_level and
      // budget DO affect the verdict, but they are part of the service's
      // memo key, not the task's.
      if (k == "id" || k == "op" || k == "max_level" || k == "budget" ||
          k == "timeout_ms") {
        continue;
      }
      key += k;
      key += '=';
      key += v;
      key += ';';
    }
    auto it = interned.find(key);
    if (it == interned.end()) {
      // Construct before inserting: a throwing line must not intern null.
      it = interned.emplace(key, make_canonical_task(fields)).first;
    }
    return it->second;
  };

  auto drain = [&](std::size_t keep) {
    while (pending.size() > keep) {
      Pending p = std::move(pending.front());
      pending.pop_front();
      QueryResult result = p.ticket.result.get();
      if (result.status != Status::kOk) ++error_lines;
      print_result(out, p, std::move(result), config.legacy_envelope);
    }
  };

  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    try {
      const Fields fields = parse_flat_json(line);
      // v2 request shape: every line names its "op" and "task" is a
      // parameter of op:"solve".  Legacy bare {"task":...} lines are still
      // routed as solves, with a once-per-run deprecation note.
      if (fields.count("op") == 0 && fields.count("task") != 0 &&
          !warned_legacy_task) {
        warned_legacy_task = true;
        err << "wfc_serve: deprecated: bare {\"task\":...} request lines; "
               "use {\"op\":\"solve\",\"task\":...}\n";
      }
      const std::string op = string_field(fields, "op", "solve");

      // Reject unknown ops up front with a self-describing record: the
      // field-level errors below would otherwise blame a missing "task"
      // field on a line whose real problem is a misspelled op.
      if (op != "stats" && op != "metrics" && op != "trace" && op != "solve" &&
          op != "convergence" && op != "emulate" && op != "check") {
        ++error_lines;
        drain(0);  // keep result lines in input order
        JsonWriter w;
        const std::string id = string_field(fields, "id");
        if (!id.empty()) w.field("id", id);
        out << w.field("op", op)
                   .field("status", to_json_token(Status::kInvalidArgument))
                   .field("line", line_no)
                   .field("error", "unknown op \"" + op + "\"")
                   .str()
            << "\n";
        continue;
      }

      if (op == "stats") {
        drain(0);  // counters reflect every query submitted before this line
        out << service.stats().to_string() << "\n";
        continue;
      }

      if (op == "metrics") {
        drain(0);  // every submitted query is terminal: counters reconcile
        if (!service.observer().enabled()) {
          throw std::invalid_argument(
              "metrics: the observability layer is disabled");
        }
        if (const std::string path = string_field(fields, "path");
            !path.empty()) {
          std::ofstream file(path);
          if (!file) {
            throw std::invalid_argument("metrics: cannot open \"" + path +
                                        "\"");
          }
          service.observer().write_prometheus(file);
        }
        print_metrics(out, string_field(fields, "id"), service);
        continue;
      }

      if (op == "trace") {
        drain(0);  // flush so every query's spans are in the ring
        if (!service.observer().enabled()) {
          throw std::invalid_argument(
              "trace: the observability layer is disabled");
        }
        const std::string path = string_field(fields, "path");
        if (path.empty()) {
          throw std::invalid_argument("trace: missing field \"path\"");
        }
        std::ofstream file(path);
        if (!file) {
          throw std::invalid_argument("trace: cannot open \"" + path + "\"");
        }
        service.observer().write_chrome_trace(file);
        const obs::TraceSink* sink = service.observer().trace();
        JsonWriter w;
        const std::string id = string_field(fields, "id");
        if (!id.empty()) w.field("id", id);
        out << w.field("op", "trace")
                   .field("status", to_json_token(Status::kOk))
                   .field("path", path)
                   .field("spans", sink != nullptr ? sink->recorded() : 0)
                   .field("dropped", sink != nullptr ? sink->dropped() : 0)
                   .str()
            << "\n";
        continue;
      }

      Pending p;
      p.id = string_field(fields, "id");
      Query query;
      query.options = parse_query_options(fields, config.default_max_level);
      if (op == "solve") {
        std::shared_ptr<task::Task> task = intern_task(fields);
        p.label = task->name();
        query.request = SolveRequest{std::move(task)};
      } else if (op == "convergence") {
        const int procs = int_field(fields, "procs");
        const int depth = int_field(fields, "depth");
        auto agreement = std::make_shared<task::SimplexAgreementTask>(
            procs, topo::iterated_sds(topo::base_simplex(procs), depth));
        p.label = agreement->name();
        query.request = ConvergenceRequest{std::move(agreement)};
      } else if (op == "emulate") {
        EmulateRequest emu;
        emu.procs = int_field(fields, "procs");
        emu.shots = int_field(fields, "shots", 1);
        p.label = "emulate(procs=" + std::to_string(emu.procs) +
                  ",shots=" + std::to_string(emu.shots) + ")";
        p.is_emulate = true;
        query.request = emu;
      } else {  // op == "check" (unknown ops were rejected above)
        const std::string target = string_field(fields, "target", "sds");
        CheckRequest check;
        if (target == "sds") {
          check.target = CheckRequest::Target::kSds;
        } else if (target == "emulation") {
          check.target = CheckRequest::Target::kEmulation;
        } else if (target == "linearizability") {
          check.target = CheckRequest::Target::kLinearizability;
        } else {
          throw std::invalid_argument("unknown check target \"" + target +
                                      "\"");
        }
        check.procs = int_field(fields, "procs", 2);
        check.rounds = int_field(fields, "rounds", 1);
        check.crashes = int_field(fields, "crashes", 0);
        check.shots = int_field(fields, "shots", 1);
        check.symmetry = int_field(fields, "symmetry", 0) != 0;
        p.label = "check(" + target + ",procs=" + std::to_string(check.procs) +
                  ",rounds=" + std::to_string(check.rounds) +
                  ",crashes=" + std::to_string(check.crashes) + ")";
        p.is_check = true;
        query.request = check;
      }
      p.ticket = service.submit(std::move(query));
      pending.push_back(std::move(p));
    } catch (const std::exception& e) {
      // A malformed line answers for itself -- with the line number so the
      // offending record in a big batch is findable -- and NEVER terminates
      // the serve loop.
      ++error_lines;
      drain(0);  // keep result lines in input order
      out << JsonWriter()
                 .field("status", to_json_token(Status::kInvalidArgument))
                 .field("line", line_no)
                 .field("error", e.what())
                 .str()
          << "\n";
    }
    // Keep the printed order equal to the submission order without letting
    // the backlog grow unboundedly on huge inputs.
    if (pending.size() >= 4096) drain(2048);
  }
  drain(0);
  if (config.prometheus_at_eof != nullptr && service.observer().enabled()) {
    service.observer().write_prometheus(*config.prometheus_at_eof);
  }
  if (!config.trace_path_at_eof.empty() && service.observer().enabled()) {
    std::ofstream file(config.trace_path_at_eof);
    if (file) {
      service.observer().write_chrome_trace(file);
    } else {
      err << "wfc_serve: cannot open trace path \"" << config.trace_path_at_eof
          << "\"\n";
      ++error_lines;
    }
  }
  if (config.stats_at_eof) {
    err << "wfc_serve: " << service.stats().to_string() << "\n";
  }
  return error_lines;
}

}  // namespace wfc::svc
