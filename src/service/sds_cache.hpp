// Thread-safe, memory-bounded cache of SDS chains on the wait-free data
// plane (wf::ClockCache).
//
// Iterated subdivision dominates the cost of every solvability query, and
// SDS^k(I) is a pure function of the input complex I -- so the service
// computes each tower once and shares it.  The key is the canonical
// fingerprint of I (topology/hash.hpp); the value is the DEEPEST chain
// built for that input so far, as shared_ptr<const SdsChain>.  A request
// for a shallower depth is a pure hit (SdsChain::level(r) indexes into the
// tower); a deeper request EXTENDS the cached chain, sharing all existing
// levels (SdsChain's prefix-sharing constructor), and re-caches the deeper
// tower.
//
// Concurrency: the index and recency bookkeeping live in a wf::ClockCache
// -- lock-free hash map, CLOCK eviction, pin/evict arbitration in one
// atomic word -- so hits never serialize on a cache-wide mutex (the seed
// design's `mu_` is gone).  The (potentially long) subdivision work still
// happens under a per-entry mutex (BuildSlot::build_mu): queries over
// distinct inputs never wait on each other, while concurrent queries over
// the SAME input build the tower exactly once and share it.
//
// Memory bound: entries are weighted by total vertex count across levels
// (the dominant O(size) term); when the configured budget or entry count
// is exceeded, the coldest (oldest-ticket, reference-bit-clear) entries
// are dropped.  Entries a thread is building or extending hold a pin and
// are structurally un-evictable: dropping them would orphan the tower
// being built.  The most recently touched entry is never evicted.
// In-flight queries keep their chains alive through the shared_ptr
// regardless of eviction.
//
// Under memory pressure (a contained std::bad_alloc in the service),
// shed(frac) evicts coldest-first until roughly `frac` of the resident
// vertex weight is released, leaving hot entries in place -- graceful
// degradation instead of clear()'s scorched earth.
// Persistence: when Options::store names a directory, the cache fronts a
// store::ChainStore.  A first-touch miss consults the store before
// subdividing (an mmap'ed hit counts as a cache hit + store_hit, NOT a
// build), and every build or extension publishes the deepened tower back,
// so the next process -- or the next N processes, sharing the mapping
// read-only -- start warm.  warm() admits every stored chain up front;
// pin()/unpin() hold ClockCache pins so operator-designated towers survive
// eviction and shed().
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "obs/trace.hpp"
#include "protocol/sds_chain.hpp"
#include "service/stats.hpp"
#include "store/chain_store.hpp"
#include "topology/complex.hpp"
#include "wf/clock_cache.hpp"
#include "wf/counter.hpp"

namespace wfc::svc {

class SdsCache {
 public:
  struct Options {
    std::size_t max_entries = 64;
    /// Bound on the summed vertex count of all cached levels.  The default
    /// comfortably holds SDS^3 towers of the canonical small tasks while
    /// staying far below a gigabyte of vertex payloads.
    std::size_t max_resident_vertices = 8'000'000;
    /// Test seam: invoked (under the entry's build lock) immediately before
    /// any subdivision build or extension.  The chaos harness injects
    /// std::bad_alloc here; the exception propagates to the caller with the
    /// cache left consistent (the entry simply stays at its prior depth).
    std::function<void()> build_fault_hook;
    /// Persistent chain store configuration; an empty dir disables it.
    store::ChainStore::Options store;
  };

  SdsCache();  // default Options
  explicit SdsCache(Options options);

  /// Returns a chain for `input` with depth() >= depth.  Hits are lock-free
  /// on the index and never copy; misses build (or extend) under the entry
  /// lock only.
  std::shared_ptr<const proto::SdsChain> chain_for(
      const topo::ChromaticComplex& input, int depth);

  /// Like chain_for, but also reports whether any subdivision work was done
  /// (false = pure cache hit).
  std::shared_ptr<const proto::SdsChain> chain_for(
      const topo::ChromaticComplex& input, int depth, bool* built);

  /// Traced variant: records a chain_build span covering exactly the
  /// subdivision work under the entry's build lock (arg = resulting chain
  /// weight in vertices), or a cache_hit instant when the tower was already
  /// deep enough.  A disabled context makes this identical to the overload
  /// above.
  std::shared_ptr<const proto::SdsChain> chain_for(
      const topo::ChromaticComplex& input, int depth, bool* built,
      const obs::TraceContext& trace);

  /// Builds a non-standard (derived) tower from `prior` (the cached chain
  /// so far, possibly null) to depth `depth`.  Must be a pure function of
  /// (key, depth) -- the cache shares and persists the result.
  using DerivedBuilder =
      std::function<std::shared_ptr<const proto::SdsChain>(
          std::shared_ptr<const proto::SdsChain> prior, int depth)>;

  /// chain_for for model-restricted towers (wfc::model): the entry is
  /// keyed by `key` -- the MIXED fingerprint, model::mix_fingerprint(
  /// complex_fingerprint(input), model_tag) -- so towers restricted under
  /// distinct models never collide with each other or with the full tower
  /// (tag 0 leaves the fingerprint unchanged, i.e. IS the full tower's
  /// key).  Store loads verify the recorded model_tag and publishes record
  /// it; builds and extensions go through `build` instead of plain
  /// subdivision.  Hit/miss/extension/store counters are shared with the
  /// full-tower path.
  std::shared_ptr<const proto::SdsChain> derived_chain_for(
      std::uint64_t key, std::uint64_t model_tag, int depth,
      const DerivedBuilder& build, bool* built);

  /// Evicts cold (unpinned) entries until at least `frac` of the current
  /// resident vertex weight is released or only pinned/hot entries remain.
  /// frac is clamped to [0, 1].  Returns entries evicted.
  std::size_t shed(double frac);

  /// Admits every chain in the persistent store into the cache (lazy,
  /// zero-copy -- admission maps headers, it does not materialize levels).
  /// Returns chains admitted.  No-op without a store.
  std::size_t warm();

  /// Publishes every resident chain to the store (the automatic
  /// after-build publish normally keeps the store current; this catches
  /// chains skipped by a byte budget that has since been raised, or a
  /// store attached in a readonly race).  Returns files written.
  std::size_t publish_all();

  /// Pins the cached entry for `fingerprint` against eviction and shed()
  /// until unpin().  Returns false when the fingerprint is not resident or
  /// already pinned.
  bool pin(std::uint64_t fingerprint);
  bool unpin(std::uint64_t fingerprint);

  [[nodiscard]] CacheStats stats() const;

  /// Persistent-store snapshot (all-zero/disabled when no store).
  [[nodiscard]] StoreStats store_stats() const;

  /// nullptr when Options::store.dir was empty.
  [[nodiscard]] store::ChainStore* store() noexcept { return store_.get(); }

  /// Drops every unpinned entry (stats counters are kept).
  void clear();

 private:
  // The cached value: the per-input build serialization point plus the
  // deepest tower built so far.  Held by shared_ptr so transient duplicate
  // entries from an insert race still converge on one build slot.
  struct BuildSlot {
    std::mutex build_mu;  // serializes building for one input
    std::shared_ptr<const proto::SdsChain> chain;  // guarded by build_mu
    /// Model tag of the tower held here (0 = unrestricted); publish_all
    /// records it so restricted files round-trip their tag.
    std::uint64_t model_tag = 0;
  };
  using Cache = wf::ClockCache<std::uint64_t, std::shared_ptr<BuildSlot>>;

  static std::size_t chain_weight(const proto::SdsChain& chain);

  Options options_;
  Cache cache_;
  std::unique_ptr<store::ChainStore> store_;  // nullptr when disabled
  wf::Counter hits_;
  wf::Counter misses_;
  wf::Counter extensions_;
  wf::Counter sheds_;
  wf::Counter store_hits_;
  // Operator pins: fingerprint -> live ClockCache pin.  Orthogonal to the
  // transient build-time pins taken inside chain_for.
  mutable std::mutex pins_mu_;
  std::unordered_map<std::uint64_t, Cache::Handle> pins_;
  // Every fingerprint ever cached, for publish_all (the ClockCache has no
  // iteration -- by design, its index is lock-free).  Weak: entries do not
  // keep evicted towers alive.
  std::mutex registry_mu_;
  std::unordered_map<std::uint64_t, std::weak_ptr<BuildSlot>> registry_;
};

}  // namespace wfc::svc
