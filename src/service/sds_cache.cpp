#include "service/sds_cache.hpp"

#include <algorithm>
#include <chrono>

#include "common/assert.hpp"
#include "topology/hash.hpp"

namespace wfc::svc {

namespace {

SdsCache::Options checked(SdsCache::Options options) {
  WFC_REQUIRE(options.max_entries >= 1, "SdsCache: max_entries must be >= 1");
  return options;
}

}  // namespace

SdsCache::SdsCache() : SdsCache(Options()) {}

SdsCache::SdsCache(Options options)
    : options_(checked(std::move(options))),
      cache_(Cache::Options{
          .max_entries = options_.max_entries,
          .max_weight = options_.max_resident_vertices,
          .min_slots = 64,
          .segments = 4,
          .keep_hottest = true,
          .announce_after = 8,
      }) {}

std::size_t SdsCache::chain_weight(const proto::SdsChain& chain) {
  std::size_t w = 0;
  for (int r = 0; r <= chain.depth(); ++r) w += chain.level(r).num_vertices();
  return w;
}

std::shared_ptr<const proto::SdsChain> SdsCache::chain_for(
    const topo::ChromaticComplex& input, int depth) {
  bool built = false;
  return chain_for(input, depth, &built);
}

std::shared_ptr<const proto::SdsChain> SdsCache::chain_for(
    const topo::ChromaticComplex& input, int depth, bool* built) {
  return chain_for(input, depth, built, obs::TraceContext());
}

std::shared_ptr<const proto::SdsChain> SdsCache::chain_for(
    const topo::ChromaticComplex& input, int depth, bool* built,
    const obs::TraceContext& trace) {
  WFC_REQUIRE(depth >= 0, "SdsCache::chain_for: negative depth");
  const std::uint64_t key = topo::complex_fingerprint(input);

  // Pin (via the handle) the entry for this input, creating it if absent.
  // While the handle lives, eviction is structurally unable to drop the
  // entry, so the build below can't orphan a tower mid-construction.
  Cache::Handle handle =
      cache_.get_or_insert(key, [] { return std::make_shared<BuildSlot>(); });
  const std::shared_ptr<BuildSlot> slot = *handle;

  // Build or extend under the per-entry lock: only same-input queries wait
  // here, and exactly one of them does the subdivision work.  On exception
  // (injected or genuine bad_alloc) the handle unpins on unwind and the
  // entry stays at its prior depth; the cache remains consistent.
  bool was_empty = false;
  bool did_build = false;
  std::shared_ptr<const proto::SdsChain> chain;
  {
    std::lock_guard<std::mutex> build_lock(slot->build_mu);
    const auto build_start = trace.enabled()
                                 ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point();
    was_empty = slot->chain == nullptr;
    if (was_empty) {
      if (options_.build_fault_hook) options_.build_fault_hook();
      slot->chain = std::make_shared<proto::SdsChain>(input, depth);
      did_build = true;
    } else if (slot->chain->depth() < depth) {
      if (options_.build_fault_hook) options_.build_fault_hook();
      slot->chain = std::make_shared<proto::SdsChain>(*slot->chain, depth);
      did_build = true;
    }
    chain = slot->chain;
    if (trace.enabled()) {
      // Span covers exactly the subdivision work (the build lock section);
      // lock-wait and index bookkeeping are charged to the caller's view.
      if (did_build) {
        trace.complete(obs::SpanKind::kChainBuild, build_start,
                       std::chrono::steady_clock::now(), chain_weight(*chain));
      } else {
        trace.instant(obs::SpanKind::kCacheHit, chain_weight(*chain));
      }
    }
  }
  *built = did_build;

  if (!did_build) {
    hits_.inc();
  } else if (was_empty) {
    misses_.inc();
  } else {
    extensions_.inc();
  }
  // Re-weigh through our own pinned handle, then unpin BEFORE the eviction
  // pass -- matching the historical order, in which a just-finished build
  // is itself fair game for eviction (only the most recent entry is safe).
  cache_.update_weight(handle, chain_weight(*chain));
  handle.release();
  cache_.maybe_evict();
  return chain;
}

std::size_t SdsCache::shed(double frac) {
  frac = std::clamp(frac, 0.0, 1.0);
  sheds_.inc();
  const std::size_t resident = cache_.weight();
  const auto release =
      static_cast<std::size_t>(static_cast<double>(resident) * frac);
  const std::uint64_t before = cache_.evictions();
  cache_.shed_release(release);
  return cache_.evictions() - before;
}

CacheStats SdsCache::stats() const {
  CacheStats out;
  out.hits = hits_.value();
  out.misses = misses_.value();
  out.extensions = extensions_.value();
  out.evictions = cache_.evictions();
  out.sheds = sheds_.value();
  out.entries = cache_.size();
  out.resident_vertices = cache_.weight();
  return out;
}

void SdsCache::clear() { cache_.clear(); }

}  // namespace wfc::svc
