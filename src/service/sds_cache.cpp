#include "service/sds_cache.hpp"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "topology/hash.hpp"

namespace wfc::svc {

namespace {

SdsCache::Options checked(SdsCache::Options options) {
  WFC_REQUIRE(options.max_entries >= 1, "SdsCache: max_entries must be >= 1");
  return options;
}

}  // namespace

SdsCache::SdsCache() : SdsCache(Options()) {}

SdsCache::SdsCache(Options options)
    : options_(checked(std::move(options))),
      cache_(Cache::Options{
          .max_entries = options_.max_entries,
          .max_weight = options_.max_resident_vertices,
          .min_slots = 64,
          .segments = 4,
          .keep_hottest = true,
          .announce_after = 8,
      }) {
  if (!options_.store.dir.empty()) {
    store_ = std::make_unique<store::ChainStore>(options_.store);
  }
}

std::size_t SdsCache::chain_weight(const proto::SdsChain& chain) {
  std::size_t w = 0;
  // level_vertex_count reads arena headers for backed levels -- weighing a
  // warm-loaded chain must not force the materialization it avoided.
  for (int r = 0; r <= chain.depth(); ++r) w += chain.level_vertex_count(r);
  return w;
}

std::shared_ptr<const proto::SdsChain> SdsCache::chain_for(
    const topo::ChromaticComplex& input, int depth) {
  bool built = false;
  return chain_for(input, depth, &built);
}

std::shared_ptr<const proto::SdsChain> SdsCache::chain_for(
    const topo::ChromaticComplex& input, int depth, bool* built) {
  return chain_for(input, depth, built, obs::TraceContext());
}

std::shared_ptr<const proto::SdsChain> SdsCache::chain_for(
    const topo::ChromaticComplex& input, int depth, bool* built,
    const obs::TraceContext& trace) {
  WFC_REQUIRE(depth >= 0, "SdsCache::chain_for: negative depth");
  const std::uint64_t key = topo::complex_fingerprint(input);

  // Pin (via the handle) the entry for this input, creating it if absent.
  // While the handle lives, eviction is structurally unable to drop the
  // entry, so the build below can't orphan a tower mid-construction.
  Cache::Handle handle =
      cache_.get_or_insert(key, [] { return std::make_shared<BuildSlot>(); });
  const std::shared_ptr<BuildSlot> slot = *handle;
  {
    std::lock_guard<std::mutex> reg_lock(registry_mu_);
    registry_[key] = slot;
  }

  // Build or extend under the per-entry lock: only same-input queries wait
  // here, and exactly one of them does the subdivision work.  On exception
  // (injected or genuine bad_alloc) the handle unpins on unwind and the
  // entry stays at its prior depth; the cache remains consistent.
  bool was_empty = false;
  bool did_build = false;
  bool from_store = false;
  std::shared_ptr<const proto::SdsChain> chain;
  {
    std::lock_guard<std::mutex> build_lock(slot->build_mu);
    const auto build_start = trace.enabled()
                                 ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point();
    // First touch in this process: adopt the persisted tower before even
    // considering a build.  An mmap'ed chain is NOT a build -- this is what
    // keeps chain_builds == 0 across a warm restart.
    if (slot->chain == nullptr && store_) {
      if (auto loaded = store_->load(key)) {
        slot->chain = std::move(loaded);
        from_store = true;
      }
    }
    was_empty = slot->chain == nullptr;
    if (was_empty) {
      if (options_.build_fault_hook) options_.build_fault_hook();
      slot->chain = std::make_shared<proto::SdsChain>(input, depth);
      did_build = true;
    } else if (slot->chain->depth() < depth) {
      if (options_.build_fault_hook) options_.build_fault_hook();
      slot->chain = std::make_shared<proto::SdsChain>(*slot->chain, depth);
      did_build = true;
    }
    if (store_ && did_build) store_->publish(key, *slot->chain);
    chain = slot->chain;
    if (trace.enabled()) {
      // Span covers exactly the subdivision work (the build lock section);
      // lock-wait and index bookkeeping are charged to the caller's view.
      if (did_build) {
        trace.complete(obs::SpanKind::kChainBuild, build_start,
                       std::chrono::steady_clock::now(), chain_weight(*chain));
      } else {
        trace.instant(obs::SpanKind::kCacheHit, chain_weight(*chain));
      }
    }
  }
  *built = did_build;

  if (!did_build) {
    hits_.inc();
  } else if (was_empty) {
    misses_.inc();
  } else {
    extensions_.inc();
  }
  if (from_store) store_hits_.inc();
  // Re-weigh through our own pinned handle, then unpin BEFORE the eviction
  // pass -- matching the historical order, in which a just-finished build
  // is itself fair game for eviction (only the most recent entry is safe).
  cache_.update_weight(handle, chain_weight(*chain));
  handle.release();
  cache_.maybe_evict();
  return chain;
}

std::shared_ptr<const proto::SdsChain> SdsCache::derived_chain_for(
    std::uint64_t key, std::uint64_t model_tag, int depth,
    const DerivedBuilder& build, bool* built) {
  WFC_REQUIRE(depth >= 0, "SdsCache::derived_chain_for: negative depth");
  Cache::Handle handle =
      cache_.get_or_insert(key, [] { return std::make_shared<BuildSlot>(); });
  const std::shared_ptr<BuildSlot> slot = *handle;
  {
    std::lock_guard<std::mutex> reg_lock(registry_mu_);
    registry_[key] = slot;
  }

  bool was_empty = false;
  bool did_build = false;
  bool from_store = false;
  std::shared_ptr<const proto::SdsChain> chain;
  {
    std::lock_guard<std::mutex> build_lock(slot->build_mu);
    if (slot->chain == nullptr && store_) {
      // The tag check inside load() keeps a colliding or mislabeled file
      // from ever serving another model's tower.
      if (auto loaded = store_->load(key, model_tag)) {
        slot->chain = std::move(loaded);
        from_store = true;
      }
    }
    was_empty = slot->chain == nullptr;
    slot->model_tag = model_tag;
    if (was_empty || slot->chain->depth() < depth) {
      if (options_.build_fault_hook) options_.build_fault_hook();
      slot->chain = build(was_empty ? nullptr : slot->chain, depth);
      WFC_CHECK(slot->chain != nullptr && slot->chain->depth() >= depth,
                "derived_chain_for: builder returned a short chain");
      did_build = true;
    }
    if (store_ && did_build) store_->publish(key, *slot->chain, model_tag);
    chain = slot->chain;
  }
  *built = did_build;

  if (!did_build) {
    hits_.inc();
  } else if (was_empty) {
    misses_.inc();
  } else {
    extensions_.inc();
  }
  if (from_store) store_hits_.inc();
  cache_.update_weight(handle, chain_weight(*chain));
  handle.release();
  cache_.maybe_evict();
  return chain;
}

std::size_t SdsCache::warm() {
  if (!store_) return 0;
  std::size_t admitted = 0;
  for (const store::ChainStore::Entry& e : store_->list()) {
    Cache::Handle handle = cache_.get_or_insert(
        e.fingerprint, [] { return std::make_shared<BuildSlot>(); });
    const std::shared_ptr<BuildSlot> slot = *handle;
    {
      std::lock_guard<std::mutex> reg_lock(registry_mu_);
      registry_[e.fingerprint] = slot;
    }
    bool loaded = false;
    {
      std::lock_guard<std::mutex> build_lock(slot->build_mu);
      if (slot->chain == nullptr) {
        // Restricted towers warm too: the inventory carries each file's
        // recorded tag, so the load's tag guard is satisfied.
        if (auto chain = store_->load(e.fingerprint, e.model_tag)) {
          slot->chain = std::move(chain);
          slot->model_tag = e.model_tag;
          loaded = true;
        }
      }
    }
    if (loaded) {
      ++admitted;
      store_hits_.inc();
      // Weigh from arena headers only; admission stays O(levels), the
      // kernel pages the tower in on first real use.
      std::size_t w = 0;
      {
        std::lock_guard<std::mutex> build_lock(slot->build_mu);
        if (slot->chain) w = chain_weight(*slot->chain);
      }
      cache_.update_weight(handle, w);
    }
    handle.release();
  }
  cache_.maybe_evict();
  return admitted;
}

std::size_t SdsCache::publish_all() {
  if (!store_) return 0;
  std::vector<std::pair<std::uint64_t, std::shared_ptr<BuildSlot>>> live;
  {
    std::lock_guard<std::mutex> reg_lock(registry_mu_);
    for (auto it = registry_.begin(); it != registry_.end();) {
      if (auto slot = it->second.lock()) {
        live.emplace_back(it->first, std::move(slot));
        ++it;
      } else {
        it = registry_.erase(it);  // tower evicted and gone; drop the stub
      }
    }
  }
  std::size_t written = 0;
  for (auto& [fp, slot] : live) {
    std::lock_guard<std::mutex> build_lock(slot->build_mu);
    if (slot->chain &&
        store_->publish(fp, *slot->chain, slot->model_tag)) {
      ++written;
    }
  }
  return written;
}

bool SdsCache::pin(std::uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(pins_mu_);
  if (pins_.count(fingerprint) != 0) return false;
  Cache::Handle handle = cache_.get(fingerprint);
  if (!handle) return false;
  pins_.emplace(fingerprint, std::move(handle));
  return true;
}

bool SdsCache::unpin(std::uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(pins_mu_);
  return pins_.erase(fingerprint) != 0;
}

std::size_t SdsCache::shed(double frac) {
  frac = std::clamp(frac, 0.0, 1.0);
  sheds_.inc();
  const std::size_t resident = cache_.weight();
  const auto release =
      static_cast<std::size_t>(static_cast<double>(resident) * frac);
  const std::uint64_t before = cache_.evictions();
  cache_.shed_release(release);
  return cache_.evictions() - before;
}

CacheStats SdsCache::stats() const {
  CacheStats out;
  out.hits = hits_.value();
  out.misses = misses_.value();
  out.extensions = extensions_.value();
  out.evictions = cache_.evictions();
  out.sheds = sheds_.value();
  out.entries = cache_.size();
  out.resident_vertices = cache_.weight();
  out.store_hits = store_hits_.value();
  {
    std::lock_guard<std::mutex> lock(pins_mu_);
    out.pinned = pins_.size();
  }
  return out;
}

StoreStats SdsCache::store_stats() const {
  StoreStats out;
  if (!store_) return out;
  out.enabled = store_->enabled();
  out.readonly = store_->options().readonly;
  const store::StoreStats s = store_->stats();
  out.lookups = s.lookups;
  out.hits = s.hits;
  out.misses = s.misses;
  out.fallbacks = s.fallbacks;
  out.publishes = s.publishes;
  out.publish_skipped = s.publish_skipped;
  out.mapped_bytes = s.mapped_bytes;
  out.files = s.files;
  out.file_bytes = s.file_bytes;
  return out;
}

void SdsCache::clear() { cache_.clear(); }

}  // namespace wfc::svc
