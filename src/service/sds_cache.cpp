#include "service/sds_cache.hpp"

#include <algorithm>
#include <chrono>

#include "common/assert.hpp"
#include "topology/hash.hpp"

namespace wfc::svc {

SdsCache::SdsCache() : SdsCache(Options()) {}

SdsCache::SdsCache(Options options) : options_(std::move(options)) {
  WFC_REQUIRE(options_.max_entries >= 1, "SdsCache: max_entries must be >= 1");
}

std::size_t SdsCache::chain_weight(const proto::SdsChain& chain) {
  std::size_t w = 0;
  for (int r = 0; r <= chain.depth(); ++r) w += chain.level(r).num_vertices();
  return w;
}

std::shared_ptr<const proto::SdsChain> SdsCache::chain_for(
    const topo::ChromaticComplex& input, int depth) {
  bool built = false;
  return chain_for(input, depth, &built);
}

std::shared_ptr<const proto::SdsChain> SdsCache::chain_for(
    const topo::ChromaticComplex& input, int depth, bool* built) {
  return chain_for(input, depth, built, obs::TraceContext());
}

std::shared_ptr<const proto::SdsChain> SdsCache::chain_for(
    const topo::ChromaticComplex& input, int depth, bool* built,
    const obs::TraceContext& trace) {
  WFC_REQUIRE(depth >= 0, "SdsCache::chain_for: negative depth");
  const std::uint64_t key = topo::complex_fingerprint(input);

  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      entry = std::make_shared<Entry>();
      entry->key = key;
      lru_.push_front(key);
      entry->lru_pos = lru_.begin();
      index_.emplace(key, entry);
    } else {
      entry = it->second;
      lru_.splice(lru_.begin(), lru_, entry->lru_pos);  // touch
    }
    // Pin: while a thread is inside the build section below, eviction must
    // not drop this entry, or the tower being (re)built would be orphaned.
    ++entry->pins;
  }

  // Build or extend outside the cache lock: only same-input queries wait
  // here, and exactly one of them does the subdivision work.
  bool was_empty = false;
  bool did_build = false;
  std::shared_ptr<const proto::SdsChain> chain;
  try {
    std::lock_guard<std::mutex> build_lock(entry->build_mu);
    const auto build_start = trace.enabled() ? std::chrono::steady_clock::now()
                                             : std::chrono::steady_clock::time_point();
    was_empty = entry->chain == nullptr;
    if (was_empty) {
      if (options_.build_fault_hook) options_.build_fault_hook();
      entry->chain = std::make_shared<proto::SdsChain>(input, depth);
      did_build = true;
    } else if (entry->chain->depth() < depth) {
      if (options_.build_fault_hook) options_.build_fault_hook();
      entry->chain = std::make_shared<proto::SdsChain>(*entry->chain, depth);
      did_build = true;
    }
    chain = entry->chain;
    if (trace.enabled()) {
      // Span covers exactly the subdivision work (the build lock section);
      // lock-wait and index bookkeeping are charged to the caller's view.
      if (did_build) {
        trace.complete(obs::SpanKind::kChainBuild, build_start,
                       std::chrono::steady_clock::now(), chain_weight(*chain));
      } else {
        trace.instant(obs::SpanKind::kCacheHit, chain_weight(*chain));
      }
    }
  } catch (...) {
    // Injected or genuine allocation failure: unpin and leave the entry at
    // its prior depth (possibly still empty); the cache stays consistent.
    std::lock_guard<std::mutex> lock(mu_);
    --entry->pins;
    throw;
  }
  *built = did_build;

  {
    std::lock_guard<std::mutex> lock(mu_);
    --entry->pins;
    if (!did_build) {
      ++stats_.hits;
    } else if (was_empty) {
      ++stats_.misses;
    } else {
      ++stats_.extensions;
    }
    // Re-weigh; pinned entries were skipped by eviction, so a successful
    // build always finds its entry still indexed and re-cacheable.
    auto it = index_.find(key);
    WFC_CHECK(it != index_.end() && it->second == entry,
              "SdsCache: pinned entry was evicted mid-build");
    const std::size_t w = chain_weight(*chain);
    resident_vertices_ += w - entry->weight;
    entry->weight = w;
    evict_while([this] {
      return index_.size() > options_.max_entries ||
             resident_vertices_ > options_.max_resident_vertices;
    });
  }
  return chain;
}

std::size_t SdsCache::evict_while(const std::function<bool()>& needed) {
  std::size_t evicted = 0;
  auto it = lru_.end();
  while (needed() && it != lru_.begin()) {
    auto cand = std::prev(it);
    if (cand == lru_.begin()) break;  // the hottest entry stays resident
    auto vit = index_.find(*cand);
    WFC_CHECK(vit != index_.end(), "SdsCache: LRU/index out of sync");
    if (vit->second->pins > 0) {
      it = cand;  // actively building: skip, keep walking toward the front
      continue;
    }
    resident_vertices_ -= vit->second->weight;
    index_.erase(vit);
    it = lru_.erase(cand);
    ++stats_.evictions;
    ++evicted;
  }
  return evicted;
}

std::size_t SdsCache::shed(double frac) {
  frac = std::clamp(frac, 0.0, 1.0);
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.sheds;
  const std::size_t release =
      static_cast<std::size_t>(static_cast<double>(resident_vertices_) * frac);
  const std::size_t target = resident_vertices_ - release;
  return evict_while([this, target] { return resident_vertices_ > target; });
}

CacheStats SdsCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheStats out = stats_;
  out.entries = index_.size();
  out.resident_vertices = resident_vertices_;
  return out;
}

void SdsCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    auto vit = index_.find(*it);
    WFC_CHECK(vit != index_.end(), "SdsCache: LRU/index out of sync");
    if (vit->second->pins > 0) {  // mid-build: must stay (see chain_for)
      ++it;
      continue;
    }
    resident_vertices_ -= vit->second->weight;
    index_.erase(vit);
    it = lru_.erase(it);
  }
}

}  // namespace wfc::svc
