#include "service/sds_cache.hpp"

#include "common/assert.hpp"
#include "topology/hash.hpp"

namespace wfc::svc {

SdsCache::SdsCache() : SdsCache(Options()) {}

SdsCache::SdsCache(Options options) : options_(options) {
  WFC_REQUIRE(options_.max_entries >= 1, "SdsCache: max_entries must be >= 1");
}

std::size_t SdsCache::chain_weight(const proto::SdsChain& chain) {
  std::size_t w = 0;
  for (int r = 0; r <= chain.depth(); ++r) w += chain.level(r).num_vertices();
  return w;
}

std::shared_ptr<const proto::SdsChain> SdsCache::chain_for(
    const topo::ChromaticComplex& input, int depth) {
  bool built = false;
  return chain_for(input, depth, &built);
}

std::shared_ptr<const proto::SdsChain> SdsCache::chain_for(
    const topo::ChromaticComplex& input, int depth, bool* built) {
  WFC_REQUIRE(depth >= 0, "SdsCache::chain_for: negative depth");
  const std::uint64_t key = topo::complex_fingerprint(input);

  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      entry = std::make_shared<Entry>();
      entry->key = key;
      lru_.push_front(key);
      entry->lru_pos = lru_.begin();
      index_.emplace(key, entry);
    } else {
      entry = it->second;
      lru_.splice(lru_.begin(), lru_, entry->lru_pos);  // touch
    }
  }

  // Build or extend outside the cache lock: only same-input queries wait
  // here, and exactly one of them does the subdivision work.
  bool was_empty = false;
  bool did_build = false;
  std::shared_ptr<const proto::SdsChain> chain;
  {
    std::lock_guard<std::mutex> build_lock(entry->build_mu);
    was_empty = entry->chain == nullptr;
    if (was_empty) {
      entry->chain = std::make_shared<proto::SdsChain>(input, depth);
      did_build = true;
    } else if (entry->chain->depth() < depth) {
      entry->chain = std::make_shared<proto::SdsChain>(*entry->chain, depth);
      did_build = true;
    }
    chain = entry->chain;
  }
  *built = did_build;

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!did_build) {
      ++stats_.hits;
    } else if (was_empty) {
      ++stats_.misses;
    } else {
      ++stats_.extensions;
    }
    // Re-weigh: the entry may have been evicted while we were building, in
    // which case the chain simply lives on with its current holders.
    auto it = index_.find(key);
    if (it != index_.end() && it->second == entry) {
      const std::size_t w = chain_weight(*chain);
      resident_vertices_ += w - entry->weight;
      entry->weight = w;
      while ((index_.size() > options_.max_entries ||
              resident_vertices_ > options_.max_resident_vertices) &&
             lru_.size() > 1) {
        const std::uint64_t victim_key = lru_.back();
        lru_.pop_back();
        auto victim = index_.find(victim_key);
        WFC_CHECK(victim != index_.end(), "SdsCache: LRU/index out of sync");
        resident_vertices_ -= victim->second->weight;
        index_.erase(victim);
        ++stats_.evictions;
      }
    }
  }
  return chain;
}

CacheStats SdsCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheStats out = stats_;
  out.entries = index_.size();
  out.resident_vertices = resident_vertices_;
  return out;
}

void SdsCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  index_.clear();
  lru_.clear();
  resident_vertices_ = 0;
}

}  // namespace wfc::svc
