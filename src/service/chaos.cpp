#include "service/chaos.hpp"

#include <new>
#include <thread>
#include <utility>

namespace wfc::svc {

ChaosMonkey::ChaosMonkey(Options options)
    : options_(options), rng_(options.seed) {}

bool ChaosMonkey::roll(double p) {
  if (p <= 0.0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  return rng_.unit() < p;
}

void ChaosMonkey::arm(QueryService::Options& service_options) {
  auto prior_execute = std::move(service_options.execute_hook);
  service_options.execute_hook =
      [this, prior_execute](std::atomic<bool>& cancel) {
        if (prior_execute) prior_execute(cancel);
        if (roll(options_.stall_prob)) {
          {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.stalls;
          }
          // Sleep without touching the heartbeat: to the watchdog this is
          // indistinguishable from a worker wedged in non-polling code.
          std::this_thread::sleep_for(options_.stall_for);
        }
        if (roll(options_.cancel_prob)) {
          {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.cancels;
          }
          cancel.store(true, std::memory_order_relaxed);
        }
      };

  auto prior_build = std::move(service_options.cache.build_fault_hook);
  service_options.cache.build_fault_hook = [this, prior_build] {
    if (prior_build) prior_build();
    if (roll(options_.build_fault_prob)) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.build_faults;
      }
      throw std::bad_alloc();
    }
  };
}

ChaosMonkey::Stats ChaosMonkey::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace wfc::svc
