#include "service/chaos.hpp"

#include <new>
#include <thread>
#include <utility>

#include "wf/epoch.hpp"

namespace wfc::svc {

namespace {

// SplitMix64 finalizer (same mixer as common/rng.hpp's Rng::next), applied
// both to derive per-lane seeds and to turn a lane state into a draw.
std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

ChaosMonkey::ChaosMonkey(Options options) : options_(options) {}

bool ChaosMonkey::roll(double p) {
  if (p <= 0.0) return false;
  Lane& lane = lanes_[wf::thread_slot() % kLanes];
  std::uint64_t state = lane.state.load(std::memory_order_relaxed);
  if (state == 0) {
    // Lazily seed from the configured seed and the lane index so every
    // lane's stream is distinct but replayable.  Two threads mapped to the
    // same lane may both observe 0 and write the same seed -- idempotent,
    // so the stream stays well defined.
    state = mix(options_.seed + 0x9e3779b97f4a7c15ull *
                                    (wf::thread_slot() % kLanes + 1));
    if (state == 0) state = 0x9e3779b97f4a7c15ull;  // keep 0 as "unseeded"
  }
  state += 0x9e3779b97f4a7c15ull;
  lane.state.store(state, std::memory_order_relaxed);
  const double draw = static_cast<double>(mix(state) >> 11) * 0x1.0p-53;
  return draw < p;
}

void ChaosMonkey::arm(QueryService::Options& service_options) {
  auto prior_execute = std::move(service_options.execute_hook);
  service_options.execute_hook =
      [this, prior_execute](std::atomic<bool>& cancel) {
        if (prior_execute) prior_execute(cancel);
        if (roll(options_.stall_prob)) {
          stalls_.inc();
          // Sleep without touching the heartbeat: to the watchdog this is
          // indistinguishable from a worker wedged in non-polling code.
          std::this_thread::sleep_for(options_.stall_for);
        }
        if (roll(options_.cancel_prob)) {
          cancels_.inc();
          cancel.store(true, std::memory_order_relaxed);
        }
      };

  auto prior_build = std::move(service_options.cache.build_fault_hook);
  service_options.cache.build_fault_hook = [this, prior_build] {
    if (prior_build) prior_build();
    if (roll(options_.build_fault_prob)) {
      build_faults_.inc();
      throw std::bad_alloc();
    }
  };
}

ChaosMonkey::Stats ChaosMonkey::stats() const {
  Stats s;
  s.cancels = cancels_.value();
  s.stalls = stalls_.value();
  s.build_faults = build_faults_.value();
  return s;
}

}  // namespace wfc::svc
