// Bounded admission queue for the query service: the load-shedding seam.
//
// The PR-1 service enqueued unboundedly into the worker pool, so a traffic
// spike turned into an ever-growing backlog of queries whose deadlines had
// long passed.  AdmissionQueue caps the backlog at max_depth and applies a
// configurable overflow policy:
//
//   * kRejectNew  -- the arriving entry is refused (the service answers it
//                    kOverloaded with a retry_after_ms hint).  Keeps queued
//                    clients' ordering intact; best for retrying clients.
//   * kDropOldest -- the OLDEST queued entry is aborted to make room and the
//                    arriving entry admitted.  Best when fresh queries are
//                    worth more than stale ones (the victim's deadline was
//                    the nearest anyway).
//
// Entries are {run, abort} closure pairs: exactly one of the two is invoked
// for every admitted entry, which is how the service guarantees that every
// ticket reaches exactly one terminal status.  take() hands ownership of
// `run` to a worker; drop-oldest and drain(...) hand ownership of `abort`
// to whoever is shedding.  The queue itself never executes queries -- it
// only decides their fate -- so all callbacks run outside its lock.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

#include "service/status.hpp"

namespace wfc::svc {

class AdmissionQueue {
 public:
  enum class Policy { kRejectNew, kDropOldest };

  struct Options {
    std::size_t max_depth = 1024;
    Policy policy = Policy::kRejectNew;
  };

  struct Entry {
    /// Executes the query and completes its ticket.
    std::function<void()> run;
    /// Completes the ticket with the given terminal status instead of
    /// running (shed victim, shutdown drain).
    std::function<void(Status)> abort;
  };

  enum class Outcome { kAdmitted, kRejected };

  explicit AdmissionQueue(Options options);

  /// Admits `entry` or applies the overflow policy.  Under kDropOldest the
  /// victim's abort(kOverloaded) runs on THIS thread before returning.
  /// After close(), entries are always kRejected (the caller decides the
  /// status to answer with).
  Outcome offer(Entry entry);

  /// Blocks for the next entry; std::nullopt once closed AND empty.
  std::optional<Entry> take();

  /// Stops intake and wakes every blocked take().  Queued entries remain
  /// for take()/drain() to consume.
  void close();

  /// Removes every queued entry and aborts each with `status` (outside the
  /// lock).  Returns how many were aborted.
  std::size_t drain(Status status);

  [[nodiscard]] std::size_t depth() const;
  /// High-water mark of depth() over the queue's lifetime -- the headroom
  /// signal the observability layer exports as a gauge (a peak near
  /// max_depth means the overflow policy is about to start firing).
  [[nodiscard]] std::size_t peak_depth() const;
  [[nodiscard]] std::size_t max_depth() const { return options_.max_depth; }
  [[nodiscard]] bool closed() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  Options options_;
  std::deque<Entry> queue_;
  std::size_t peak_depth_ = 0;
  bool closed_ = false;
};

}  // namespace wfc::svc
