// Transport-agnostic request handler for the JSONL v2 protocol.
//
// PR 5 factors the per-line request -> Query -> result-envelope path out of
// the stdin front-end (frontend.cpp) so every transport -- the stdin batch
// loop and the wfc::net TCP server -- speaks exactly the same protocol with
// exactly the same error records.  One RequestHandler wraps one
// QueryService and is safe to share across transport threads.
//
// A transport feeds input lines through four entry points:
//
//   parse(line, n)    classify one line: kSkip (blank / comment), kRespond
//                     (malformed: the rendered error record is ready now),
//                     kControl (stats / metrics / trace -- the transport
//                     must flush ITS OWN in-flight queries first so the
//                     counters reconcile, then call control()), or kSubmit;
//   submit(parsed)    build + submit a kSubmit line's query, returning the
//                     ticket plus the metadata render() needs -- or, when
//                     the request is malformed, the error record instead;
//   submit_async(...) same, but the RENDERED response line is delivered to
//                     a callback exactly once (possibly inline on the
//                     calling thread for memo hits and load sheds, possibly
//                     later on a service worker) -- this is what lets the
//                     TCP server complete pipelined responses out of order
//                     without parking a thread per request;
//   render(meta, r)   the result envelope for a completed query;
//   control(parsed)   the response for a kControl line.
//
// Hardening shared by all transports: request lines longer than
// HandlerConfig::max_line_bytes are rejected with an invalid_argument
// record instead of being buffered without bound; a trailing '\r' (CRLF
// framing) is stripped before parsing; error records echo the request "id"
// whenever the line parsed far enough to know it, so pipelined clients can
// match failures to requests.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "service/query_service.hpp"
#include "wf/clock_cache.hpp"

namespace wfc::svc {

using Fields = std::map<std::string, std::string>;

/// Builds a canonical task from parsed JSON fields ("task" + parameters;
/// see frontend.hpp for the line protocol).  Throws std::invalid_argument
/// on unknown kinds or missing/malformed parameters.
std::shared_ptr<task::Task> make_canonical_task(const Fields& fields);

struct HandlerConfig {
  int default_max_level = 2;
  /// Emit the pre-PR-4 result envelope (domain verdict in "status") instead
  /// of the v2 split (transport "status" + domain "verdict").
  bool legacy_envelope = false;
  /// Request lines longer than this are answered with an invalid_argument
  /// record and never buffered or parsed.  0 disables the cap.
  std::size_t max_line_bytes = 1 << 20;
  /// Let {"op":"metrics"} / {"op":"trace"} requests name a filesystem
  /// "path" that the handler writes as a side effect.  Only an
  /// operator-driven transport (the stdin front-end) may turn this on;
  /// network transports must leave it off -- over TCP it would let any
  /// unauthenticated client create or truncate any server-writable file.
  bool allow_control_paths = false;
  /// Interned canonical tasks kept for result-memo object identity; the
  /// coldest entries are evicted past this bound so a client cannot grow
  /// the table without limit by varying task parameters.  The lock-free
  /// intern index has a fixed capacity chosen at construction, so 0
  /// selects a generous ceiling (32768) rather than a truly unbounded
  /// table.
  std::size_t max_interned_tasks = 1024;
  /// Upper bound on the "depth" request field: iterated-SDS towers grow
  /// exponentially with depth and are constructed on the transport thread,
  /// so requests over the cap answer invalid_argument instead of stalling
  /// the connection's event loop.  0 removes the cap.
  int max_task_depth = 6;
  /// Operator-assigned identity echoed by {"op":"info"} (a shard id in a
  /// cluster, "" for a standalone server).
  std::string server_id;
  /// Sink for one-shot deprecation notes (bare {"task":...} lines); null
  /// discards them.
  std::function<void(const std::string&)> warn;
};

class RequestHandler {
 public:
  RequestHandler(QueryService& service, HandlerConfig config);

  /// A response line (no trailing newline) plus whether the transport
  /// should count it as an error line.
  struct Rendered {
    std::string line;
    bool error = false;
  };

  enum class Action {
    kSkip,     // blank / comment: no response line
    kRespond,  // `immediate` is the response (parse error, unknown op)
    kControl,  // stats / metrics / trace / info: flush pending, control()
    kSubmit,   // a query: submit() / submit_async()
  };

  struct ParsedLine {
    Action action = Action::kSkip;
    Rendered immediate;  // kRespond only
    Fields fields;       // kControl / kSubmit
    std::string op;      // resolved op ("solve" when defaulted)
    int line_no = 0;
  };

  /// Classifies one input line (1-based line_no echoes into error records).
  /// Never throws.
  [[nodiscard]] ParsedLine parse(std::string_view line, int line_no);

  /// Everything render() needs once the query completes.
  struct ResponseMeta {
    std::string id;
    std::string label;  // task name or op description
    /// Canonical model name when a non-wait-free "model" was requested
    /// (echoed back in the response); empty otherwise.
    std::string model;
    bool is_emulate = false;
    bool is_check = false;
  };

  struct Submitted {
    ResponseMeta meta;
    QueryTicket ticket;
  };

  /// Builds and submits a kSubmit line's query.  Returns nullopt -- with
  /// *error set to the rendered error record -- when the request is
  /// malformed (unknown task kind, bad parameters); nothing was submitted.
  std::optional<Submitted> submit(const ParsedLine& parsed, Rendered* error);

  /// Callback flavor of submit(): `done` receives the rendered response
  /// line exactly once.  It may run inline on this thread (memo hits, load
  /// sheds) or later on a service worker thread; it must not throw and
  /// should only enqueue.  Returns false with *error set when the query
  /// could not be built (nothing submitted, `done` never called).
  bool submit_async(const ParsedLine& parsed,
                    std::function<void(Rendered&&)> done, Rendered* error);

  /// Renders a completed query's result envelope (legacy or v2 per config).
  [[nodiscard]] Rendered render(const ResponseMeta& meta,
                                const QueryResult& result) const;

  /// Response for a kControl line.  The caller must have flushed its own
  /// pending queries first; metrics/trace write files as side effects only
  /// when the transport enables allow_control_paths.
  [[nodiscard]] Rendered control(const ParsedLine& parsed);

  [[nodiscard]] const HandlerConfig& config() const { return config_; }
  [[nodiscard]] QueryService& service() { return service_; }

  /// Current interned-task table size (bounded by max_interned_tasks).
  [[nodiscard]] std::size_t interned_tasks();

 private:
  /// {"op":"store"} action family (stats/warm/shed/pin/unpin/publish);
  /// publish is path-bearing and follows the allow_control_paths rule.
  /// Throws std::invalid_argument on bad actions/arguments (control()'s
  /// catch turns that into the shared error record).
  [[nodiscard]] Rendered store_control(const ParsedLine& parsed,
                                       const std::string& id);
  /// Builds the Query + ResponseMeta for a kSubmit line; throws
  /// std::invalid_argument on malformed parameters.
  [[nodiscard]] std::pair<Query, ResponseMeta> build_query(
      const ParsedLine& parsed);
  /// Canonical tasks are pure functions of their request fields, so
  /// repeated lines share ONE task object -- which is what the service's
  /// result memo keys on.  Thread-safe; the table is a lock-free CLOCK
  /// cache bounded by max_interned_tasks, so transport threads never
  /// serialize on an intern mutex.
  [[nodiscard]] std::shared_ptr<task::Task> intern_task(const Fields& fields);

  QueryService& service_;
  HandlerConfig config_;
  /// {"op":"info"} uptime reference: when this handler (in practice, the
  /// transport) came up.
  std::chrono::steady_clock::time_point started_;
  std::atomic<bool> warned_legacy_task_{false};
  wf::ClockCache<std::string, std::shared_ptr<task::Task>> interned_;
};

}  // namespace wfc::svc
