// Chaos harness: seeded fault injection for QueryService soak tests.
//
// The resilience layer (admission control, watchdog, fault containment)
// earns its keep only under misbehaviour that unit tests don't produce
// naturally.  ChaosMonkey arms a QueryService::Options with deterministic,
// seeded faults at the two seams the service exposes for exactly this
// purpose:
//
//   * Options::execute_hook (runs on the worker just before execution):
//       - random cancellation -- the query's cancel token is flipped, so the
//         search must answer kCancelled/kDeadlineExceeded;
//       - stalled worker -- the hook sleeps without bumping the progress
//         heartbeat, exercising the watchdog's stall detector and hard cap.
//   * SdsCache::Options::build_fault_hook (under the entry build lock, right
//     before subdivision work): throws std::bad_alloc, exercising
//     kResourceExhausted containment and cache shedding while the cache must
//     stay consistent.
//
// Concurrency: the hooks run on every worker and, before PR 7, serialized
// every injection decision (and every DISABLED decision's probability
// check) under one mutex -- chaos probes on the hot path measured the
// mutex, not the service.  Decisions now draw from per-thread SplitMix64
// lanes (common/rng.hpp's generator, advanced in place in an atomic cell
// indexed by wf::thread_slot()) and count into wf::Counter shards: the
// armed path is lock-free, and the disabled path (p == 0) is a single
// branch with no shared access at all.
//
// Determinism: every lane is seeded as mix(seed, lane), so each thread's
// fault SEQUENCE is reproducible from WFC_TEST_SEED; which query a fault
// lands on depends on scheduling, exactly as it did when draws were
// serialized (the assignment was always scheduling-dependent).
//
// The ChaosMonkey must outlive every service armed with it (the hooks hold
// a plain pointer).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/rng.hpp"
#include "service/query_service.hpp"
#include "wf/counter.hpp"

namespace wfc::svc {

class ChaosMonkey {
 public:
  struct Options {
    std::uint64_t seed = 0x9e3779b97f4a7c15ull;
    /// P(flip the query's cancel token before execution).
    double cancel_prob = 0.0;
    /// P(worker sleeps `stall_for` before execution, heartbeat silent).
    double stall_prob = 0.0;
    std::chrono::milliseconds stall_for{50};
    /// P(std::bad_alloc out of the SDS-cache build seam).
    double build_fault_prob = 0.0;
  };

  struct Stats {
    std::uint64_t cancels = 0;
    std::uint64_t stalls = 0;
    std::uint64_t build_faults = 0;
  };

  explicit ChaosMonkey(Options options);

  ChaosMonkey(const ChaosMonkey&) = delete;
  ChaosMonkey& operator=(const ChaosMonkey&) = delete;

  /// Installs the fault hooks into `service_options` (chaining onto any
  /// hooks already present).  Call before constructing the QueryService.
  void arm(QueryService::Options& service_options);

  [[nodiscard]] Stats stats() const;

 private:
  static constexpr std::size_t kLanes = 64;

  /// One seeded coin flip with probability p, drawn from the calling
  /// thread's lane.  Lock-free; load-only when p <= 0.
  bool roll(double p);

  Options options_;
  struct alignas(64) Lane {
    /// SplitMix64 state; 0 = not yet seeded (lazily derived from the
    /// configured seed on first use).
    std::atomic<std::uint64_t> state{0};
  };
  Lane lanes_[kLanes];
  wf::Counter cancels_;
  wf::Counter stalls_;
  wf::Counter build_faults_;
};

}  // namespace wfc::svc
