// Chaos harness: seeded fault injection for QueryService soak tests.
//
// The resilience layer (admission control, watchdog, fault containment)
// earns its keep only under misbehaviour that unit tests don't produce
// naturally.  ChaosMonkey arms a QueryService::Options with deterministic,
// seeded faults at the two seams the service exposes for exactly this
// purpose:
//
//   * Options::execute_hook (runs on the worker just before execution):
//       - random cancellation -- the query's cancel token is flipped, so the
//         search must answer kCancelled/kDeadlineExceeded;
//       - stalled worker -- the hook sleeps without bumping the progress
//         heartbeat, exercising the watchdog's stall detector and hard cap.
//   * SdsCache::Options::build_fault_hook (under the entry build lock, right
//     before subdivision work): throws std::bad_alloc, exercising
//     kResourceExhausted containment and cache shedding while the cache must
//     stay consistent.
//
// Determinism: one SplitMix64 stream (common/rng.hpp) seeded from
// WFC_TEST_SEED drives every decision; hooks run concurrently on workers,
// so draws are serialized under a mutex -- the FAULT SEQUENCE is
// reproducible even though its assignment to queries depends on scheduling.
// Injection counters let the soak test assert that faults actually fired.
//
// The ChaosMonkey must outlive every service armed with it (the hooks hold
// a plain pointer).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>

#include "common/rng.hpp"
#include "service/query_service.hpp"

namespace wfc::svc {

class ChaosMonkey {
 public:
  struct Options {
    std::uint64_t seed = 0x9e3779b97f4a7c15ull;
    /// P(flip the query's cancel token before execution).
    double cancel_prob = 0.0;
    /// P(worker sleeps `stall_for` before execution, heartbeat silent).
    double stall_prob = 0.0;
    std::chrono::milliseconds stall_for{50};
    /// P(std::bad_alloc out of the SDS-cache build seam).
    double build_fault_prob = 0.0;
  };

  struct Stats {
    std::uint64_t cancels = 0;
    std::uint64_t stalls = 0;
    std::uint64_t build_faults = 0;
  };

  explicit ChaosMonkey(Options options);

  ChaosMonkey(const ChaosMonkey&) = delete;
  ChaosMonkey& operator=(const ChaosMonkey&) = delete;

  /// Installs the fault hooks into `service_options` (chaining onto any
  /// hooks already present).  Call before constructing the QueryService.
  void arm(QueryService::Options& service_options);

  [[nodiscard]] Stats stats() const;

 private:
  /// One seeded coin flip with probability p (serialized draw).
  bool roll(double p);

  Options options_;
  mutable std::mutex mu_;
  Rng rng_;  // guarded by mu_
  Stats stats_;  // guarded by mu_
};

}  // namespace wfc::svc
