// Observability surface of the query service (wfc::svc).
//
// Counters come in two layers:
//   * CacheStats  -- hit/miss/extension/eviction counts and residency of the
//                    shared SDS-chain cache (sds_cache.hpp);
//   * ServiceStats -- per-service aggregates: queries by verdict, total
//                    search nodes, total and maximum query latency.
// Both are plain snapshot structs: the live objects accumulate atomically
// and hand out consistent-enough copies on demand (counters are
// monotonically increasing; a snapshot may straddle a query boundary, which
// is fine for monitoring).
#pragma once

#include <cstdint>
#include <string>

namespace wfc::svc {

struct CacheStats {
  std::uint64_t hits = 0;        // chain served without any subdivision work
  std::uint64_t misses = 0;      // input seen for the first time
  std::uint64_t extensions = 0;  // cached prefix deepened to a new level
  std::uint64_t evictions = 0;   // entries dropped by the LRU bound
  std::uint64_t entries = 0;     // live cached inputs
  std::uint64_t resident_vertices = 0;  // sum of vertex counts, all levels
};

/// Aggregates over kCheck queries (the wfc::chk model checker).
struct CheckStats {
  std::uint64_t runs = 0;        // completed check queries
  std::uint64_t schedules = 0;   // executions / interleavings explored
  std::uint64_t histories = 0;   // operation histories verified
  std::uint64_t violations = 0;  // checks that found a counterexample
  std::uint64_t max_search_depth = 0;  // deepest linearization search
};

struct ServiceStats {
  std::uint64_t queries = 0;     // completed queries, any verdict
  std::uint64_t solvable = 0;
  std::uint64_t unsolvable = 0;
  std::uint64_t unknown = 0;     // node budget exhausted
  std::uint64_t cancelled = 0;   // deadline passed or token flipped
  std::uint64_t errors = 0;      // query raised (bad task parameters etc.)
  std::uint64_t result_hits = 0;     // queries answered from the result memo
  std::uint64_t nodes_explored = 0;  // summed over queries (fresh work only)
  std::uint64_t total_micros = 0;    // summed wall latency
  std::uint64_t max_micros = 0;      // worst single query
  CacheStats cache;
  CheckStats check;

  /// One-line rendering for front-ends, e.g.
  /// "queries=12 (7 solvable, ...) nodes=... cache hits=.../miss=...".
  [[nodiscard]] std::string to_string() const;
};

}  // namespace wfc::svc
