// Observability surface of the query service (wfc::svc).
//
// Counters come in two layers:
//   * CacheStats  -- hit/miss/extension/eviction counts and residency of the
//                    shared SDS-chain cache (sds_cache.hpp);
//   * ServiceStats -- per-service aggregates: admission and per-Status
//                    counters, queries by verdict, total search nodes, queue
//                    wait, total and maximum query latency, watchdog
//                    interventions.
// Both are plain snapshot structs: the live objects accumulate atomically
// and hand out consistent-enough copies on demand (counters are
// monotonically increasing; a snapshot may straddle a query boundary, which
// is fine for monitoring).
//
// Reconciliation invariant (checked by the chaos soak test): once every
// outstanding future is terminal, submitted == sum over by_status == queries.
// Nothing is double-counted and nothing vanishes, whatever mix of sheds,
// cancellations, contained bad_allocs, and shutdowns occurred.
#pragma once

#include <cstdint>
#include <string>

#include "service/status.hpp"

namespace wfc::svc {

struct CacheStats {
  std::uint64_t hits = 0;        // chain served without any subdivision work
  std::uint64_t misses = 0;      // input seen for the first time
  std::uint64_t extensions = 0;  // cached prefix deepened to a new level
  std::uint64_t evictions = 0;   // entries dropped by the LRU bound or shed()
  std::uint64_t sheds = 0;       // shed() calls (memory-pressure responses)
  std::uint64_t entries = 0;     // live cached inputs
  std::uint64_t resident_vertices = 0;  // sum of vertex counts, all levels
  std::uint64_t store_hits = 0;  // chains adopted from the persistent store
  std::uint64_t pinned = 0;      // entries pinned against eviction
  /// Towers actually subdivided in this process -- the number the
  /// store-smoke CI job asserts is 0 after a warm restart.
  [[nodiscard]] std::uint64_t chain_builds() const {
    return misses + extensions;
  }
};

/// Snapshot of the persistent chain store (store/chain_store.hpp),
/// mirrored here so stats.hpp stays dependency-free.
struct StoreStats {
  bool enabled = false;
  bool readonly = false;
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;            // mmap'ed chains served
  std::uint64_t misses = 0;          // fingerprint not on disk
  std::uint64_t fallbacks = 0;       // corrupt/truncated/skewed -> rebuild
  std::uint64_t publishes = 0;       // chain files written
  std::uint64_t publish_skipped = 0; // readonly / shallower / over budget
  std::uint64_t mapped_bytes = 0;    // live read-only mappings
  std::uint64_t files = 0;           // on-disk inventory
  std::uint64_t file_bytes = 0;
};

/// Aggregates over kCheck queries (the wfc::chk model checker).
struct CheckStats {
  std::uint64_t runs = 0;        // completed check queries
  std::uint64_t schedules = 0;   // executions / interleavings explored
  std::uint64_t histories = 0;   // operation histories verified
  std::uint64_t violations = 0;  // checks that found a counterexample
  std::uint64_t max_search_depth = 0;  // deepest linearization search
};

struct ServiceStats {
  std::uint64_t submitted = 0;   // tickets handed out by submit()
  std::uint64_t queries = 0;     // queries that reached a terminal Status
  /// Terminal statuses, indexed by static_cast<int>(Status).
  std::uint64_t by_status[kNumStatuses] = {};
  // Domain verdicts of kOk solve/convergence queries.
  std::uint64_t solvable = 0;
  std::uint64_t unsolvable = 0;
  std::uint64_t unknown = 0;     // node budget exhausted
  std::uint64_t result_hits = 0;     // queries answered from the result memo
  std::uint64_t nodes_explored = 0;  // summed over queries (fresh work only)
  std::uint64_t total_micros = 0;    // summed wall latency
  std::uint64_t max_micros = 0;      // worst single query
  // Admission control and resilience.
  std::uint64_t queue_total_micros = 0;  // summed time spent queued
  std::uint64_t queue_max_micros = 0;    // worst queue wait
  std::uint64_t queue_peak_depth = 0;    // high-water mark of the backlog
  std::uint64_t degraded = 0;        // queries run with a scaled-down budget
  std::uint64_t watchdog_kills = 0;  // hard-timeout force-cancellations
  std::uint64_t stuck_worker_reports = 0;  // no-progress detections
  CacheStats cache;
  StoreStats store;
  CheckStats check;

  [[nodiscard]] std::uint64_t count(Status s) const {
    return by_status[static_cast<int>(s)];
  }
  /// Legacy aggregates over the status taxonomy.
  [[nodiscard]] std::uint64_t cancelled() const {
    return count(Status::kCancelled) + count(Status::kDeadlineExceeded);
  }
  [[nodiscard]] std::uint64_t errors() const {
    return count(Status::kInvalidArgument) + count(Status::kInternal);
  }
  [[nodiscard]] std::uint64_t shed() const {
    return count(Status::kOverloaded);
  }
  /// True iff every handed-out ticket has reached exactly one terminal
  /// status and the per-status counters add back up to the intake.
  [[nodiscard]] bool reconciles() const {
    std::uint64_t sum = 0;
    for (std::uint64_t c : by_status) sum += c;
    return sum == queries && queries == submitted;
  }

  /// One-line rendering for front-ends, e.g.
  /// "queries=12 (7 solvable, ...) nodes=... cache hits=.../miss=...".
  [[nodiscard]] std::string to_string() const;
};

}  // namespace wfc::svc
