#include "service/query_service.hpp"

#include <algorithm>
#include <new>
#include <sstream>
#include <stdexcept>

#include "check/conformance.hpp"
#include "check/lin_check.hpp"
#include "check/sds_check.hpp"
#include "check/step_driver.hpp"
#include "common/assert.hpp"
#include "convergence/convergence.hpp"
#include "emulation/emulator.hpp"
#include "model/oracle.hpp"
#include "model/restrict.hpp"
#include "registers/atomic_snapshot.hpp"
#include "runtime/adversary.hpp"
#include "topology/hash.hpp"

namespace wfc::svc {

namespace {

int resolve_workers(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Thrown out of a checker callback to honour the query's cancel token.
struct CheckCancelled {};

void bump(std::atomic<std::uint64_t>* progress) {
  if (progress != nullptr) progress->fetch_add(1, std::memory_order_relaxed);
}

struct LinOutcome {
  bool ok = true;
  std::uint64_t schedules = 0;
  std::uint64_t histories = 0;
  std::uint64_t max_depth = 0;
  std::string violation;
};

/// kLinearizability target: drive the register-level AtomicSnapshot through
/// EVERY step interleaving of a fixed scenario (processor 0 performs
/// `rounds` updates; every other processor takes one scan) and verify each
/// recorded history against the sequential snapshot specification.
LinOutcome run_linearizability_target(const CheckQuery& cq,
                                      std::uint64_t max_schedules,
                                      const std::atomic<bool>* cancel,
                                      std::atomic<std::uint64_t>* progress) {
  WFC_REQUIRE(cq.procs >= 2 && cq.procs <= 3,
              "check(linearizability): procs must be 2 or 3");
  WFC_REQUIRE(cq.rounds >= 1 && cq.rounds <= 4,
              "check(linearizability): rounds must be in [1, 4]");
  using Rec = chk::RecordingSnapshot<reg::AtomicSnapshot<int>>;

  LinOutcome out;
  std::shared_ptr<Rec> rec;
  const chk::InterleaveStats stats = chk::for_each_step_interleaving(
      cq.procs,
      [&](chk::StepDriver& driver) {
        rec = std::make_shared<Rec>(cq.procs);
        driver.spawn(0, [rec = rec, rounds = cq.rounds] {
          for (int r = 1; r <= rounds; ++r) rec->update(0, r);
        });
        for (int p = 1; p < cq.procs; ++p) {
          driver.spawn(p, [rec = rec, p] { (void)rec->scan(p); });
        }
      },
      [&](const std::vector<int>&) {
        if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
          throw CheckCancelled{};
        }
        bump(progress);
        const chk::LinearizeReport lr =
            chk::check_linearizable_snapshot(rec->history());
        ++out.histories;
        out.max_depth = std::max(
            out.max_depth, static_cast<std::uint64_t>(lr.max_depth));
        if (!lr.linearizable && out.ok) {
          out.ok = false;
          out.violation = "atomic snapshot: " + lr.violation;
        }
      },
      max_schedules);
  out.schedules = stats.schedules;
  return out;
}

}  // namespace

std::string ServiceStats::to_string() const {
  std::ostringstream os;
  os << "submitted=" << submitted << " queries=" << queries << " (" << solvable
     << " solvable, " << unsolvable << " unsolvable, " << unknown
     << " unknown)";
  os << " status[";
  for (int s = 0; s < kNumStatuses; ++s) {
    if (s != 0) os << " ";
    os << to_json_token(static_cast<Status>(s)) << "=" << by_status[s];
  }
  os << "]";
  os << " result_hits=" << result_hits << " nodes=" << nodes_explored
     << " latency_us total=" << total_micros << " max=" << max_micros
     << " queue_us total=" << queue_total_micros
     << " max=" << queue_max_micros << " peak_depth=" << queue_peak_depth
     << " degraded=" << degraded
     << " watchdog kills=" << watchdog_kills
     << " stuck=" << stuck_worker_reports
     << " | cache hits=" << cache.hits
     << " misses=" << cache.misses << " extensions=" << cache.extensions
     << " evictions=" << cache.evictions << " sheds=" << cache.sheds
     << " entries=" << cache.entries
     << " resident_vertices=" << cache.resident_vertices
     << " store_hits=" << cache.store_hits << " pinned=" << cache.pinned;
  if (store.enabled) {
    os << " | store" << (store.readonly ? " (ro)" : "")
       << " hits=" << store.hits << " misses=" << store.misses
       << " fallbacks=" << store.fallbacks << " publishes=" << store.publishes
       << " skipped=" << store.publish_skipped << " files=" << store.files
       << " file_bytes=" << store.file_bytes
       << " mapped_bytes=" << store.mapped_bytes;
  }
  os << " | check runs=" << check.runs << " schedules=" << check.schedules
     << " histories=" << check.histories
     << " violations=" << check.violations
     << " max_depth=" << check.max_search_depth;
  return os.str();
}

QueryService::QueryService() : QueryService(Options()) {}

QueryService::QueryService(Options options)
    : options_(std::move(options)),
      observer_(options_.obs),
      cache_(options_.cache),
      watchdog_(Watchdog::Options{options_.watchdog_scan_period,
                                  options_.hard_timeout,
                                  options_.watchdog_stall_scans}),
      queue_(AdmissionQueue::Options{options_.max_queue_depth,
                                     options_.admission_policy}),
      memo_capacity_(options_.result_memo_entries),
      memo_(ResultMemo::Options{.max_entries = memo_capacity_,
                                .min_slots = 64,
                                .segments = 4,
                                .keep_hottest = true}),
      pool_(resolve_workers(options_.workers)) {
  if (observer_.enabled()) init_observability();
  max_inflight_ = options_.max_inflight > 0
                      ? std::min(options_.max_inflight, pool_.size())
                      : pool_.size();
  for (int i = 0; i < pool_.size(); ++i) {
    pool_.submit([this] { worker_loop(); });
  }
}

void QueryService::init_observability() {
  obs::MetricsRegistry& reg = observer_.metrics();
  metrics_.submitted = &reg.counter("wfc_queries_submitted_total", "",
                                    "Tickets handed out by submit()");
  static const char* kKindLabels[4] = {
      R"(kind="solve")", R"(kind="convergence")", R"(kind="emulate")",
      R"(kind="check")"};
  for (int k = 0; k < 4; ++k) {
    metrics_.by_kind[k] = &reg.counter("wfc_queries_by_kind_total",
                                       kKindLabels[k],
                                       "Submitted queries by family");
  }
  for (int s = 0; s < kNumStatuses; ++s) {
    metrics_.by_status[s] = &reg.counter(
        "wfc_queries_terminal_total",
        std::string(R"(status=")") + to_json_token(static_cast<Status>(s)) +
            R"(")",
        "Terminal statuses; sums to wfc_queries_submitted_total");
  }
  metrics_.memo_hits = &reg.counter("wfc_result_memo_hits_total", "",
                                    "Queries answered from the result memo");
  metrics_.degraded = &reg.counter(
      "wfc_queries_degraded_total", "",
      "Queries run with a load-degraded node budget");
  metrics_.emu_rounds = &reg.counter("wfc_emulation_rounds_total", "",
                                     "IIS rounds executed by §4 emulations");
  metrics_.model_queries = &reg.counter(
      "wfc_model_queries_total", "",
      "Queries executed under a non-wait-free model");
  metrics_.model_runs_admitted = &reg.counter(
      "wfc_model_runs_admitted_total", "",
      "IIS runs admitted by model restrictions");
  metrics_.model_runs_rejected = &reg.counter(
      "wfc_model_runs_rejected_total", "",
      "IIS runs rejected by model restrictions");
  metrics_.queue_wait_us = &reg.histogram(
      "wfc_queue_wait_us", obs::latency_bounds_us(), "",
      "Admission-queue wait per executed query, microseconds");
  metrics_.exec_us = &reg.histogram(
      "wfc_exec_us", obs::latency_bounds_us(), "",
      "Execution latency (dequeue to verdict), microseconds");
  metrics_.e2e_us = &reg.histogram(
      "wfc_e2e_us", obs::latency_bounds_us(), "",
      "End-to-end latency (submission to terminal status), microseconds");
  metrics_.chain_for_us = &reg.histogram(
      "wfc_chain_for_us", obs::latency_bounds_us(), "",
      "SDS-chain acquisition (cache lookup + any build), microseconds");
  metrics_.search_nodes = &reg.histogram(
      "wfc_search_nodes", obs::size_bounds(), "",
      "Backtracking nodes explored per fresh solve/convergence query");
  // Mirror gauges: refreshed immediately before each export so a scrape
  // sees the same numbers a ServiceStats snapshot would.
  observer_.set_gauge_refresh([this, &reg] {
    reg.gauge("wfc_queue_depth", "", "Queries waiting for a worker")
        .set(queue_.depth());
    reg.gauge("wfc_queue_peak_depth", "", "Backlog high-water mark")
        .set(queue_.peak_depth());
    const CacheStats cs = cache_.stats();
    reg.gauge("wfc_cache_entries", "", "Live cached SDS towers")
        .set(cs.entries);
    reg.gauge("wfc_cache_resident_vertices", "",
              "Summed vertex weight of cached towers")
        .set(cs.resident_vertices);
    reg.gauge("wfc_cache_hits", "", "SDS cache hits").set(cs.hits);
    reg.gauge("wfc_cache_misses", "", "SDS cache misses").set(cs.misses);
    reg.gauge("wfc_cache_extensions", "", "Cached towers deepened")
        .set(cs.extensions);
    reg.gauge("wfc_cache_evictions", "", "Cache entries evicted")
        .set(cs.evictions);
    reg.gauge("wfc_cache_store_hits", "",
              "Chains adopted from the persistent store")
        .set(cs.store_hits);
    reg.gauge("wfc_cache_pinned", "", "Cache entries pinned by operators")
        .set(cs.pinned);
    const StoreStats ss = cache_.store_stats();
    reg.gauge("wfc_store_enabled", "", "1 when a chain store is attached")
        .set(ss.enabled ? 1 : 0);
    reg.gauge("wfc_store_hits", "", "Store loads served from disk")
        .set(ss.hits);
    reg.gauge("wfc_store_misses", "", "Store lookups with no file")
        .set(ss.misses);
    reg.gauge("wfc_store_fallbacks", "",
              "Unusable store files (corrupt/truncated/version-skew)")
        .set(ss.fallbacks);
    reg.gauge("wfc_store_publishes", "", "Chain files written").set(
        ss.publishes);
    reg.gauge("wfc_store_publish_skipped", "",
              "Publishes skipped (readonly/shallower/budget)")
        .set(ss.publish_skipped);
    reg.gauge("wfc_store_files", "", "Chain files on disk").set(ss.files);
    reg.gauge("wfc_store_file_bytes", "", "Bytes of chain files on disk")
        .set(ss.file_bytes);
    reg.gauge("wfc_store_mapped_bytes", "",
              "Bytes in live read-only chain mappings")
        .set(ss.mapped_bytes);
    const Watchdog::Stats wd = watchdog_.stats();
    reg.gauge("wfc_watchdog_kills", "", "Hard-timeout force-cancellations")
        .set(wd.kills);
    reg.gauge("wfc_watchdog_stuck_reports", "", "Heartbeat stalls detected")
        .set(wd.stuck_reports);
    reg.gauge("wfc_result_memo_entries", "", "Memoized definitive verdicts")
        .set(memo_.size());
    // Wait-free data plane contention telemetry (src/wf): how hard the
    // lock-free hot structures are working for their progress guarantees.
    const wf::Telemetry& wt = wf::telemetry();
    reg.gauge("wfc_wf_cas_retries", "",
              "Failed CAS attempts across wf structures")
        .set(wt.cas_retries.value());
    reg.gauge("wfc_wf_announces", "",
              "Inserts that took the announce (helping) slow path")
        .set(wt.announces.value());
    reg.gauge("wfc_wf_help_ops", "",
              "Announced operations completed by helper threads")
        .set(wt.help_ops.value());
    reg.gauge("wfc_wf_epoch_advances", "",
              "Epoch-reclamation grace periods completed")
        .set(wt.epoch_advances.value());
    reg.gauge("wfc_wf_epoch_reclaimed", "",
              "Deferred nodes freed by epoch reclamation")
        .set(wt.epoch_reclaimed.value());
    reg.gauge("wfc_wf_evict_scans", "",
              "Table slots examined by CLOCK eviction laps")
        .set(wt.evict_scans.value());
  });
}

QueryService::~QueryService() {
  accepting_.store(false, std::memory_order_relaxed);
  cancel_all();
  queue_.close();
  // Abort everything still queued so workers only drain the (cancelled)
  // queries they already picked up; every outstanding future is fulfilled.
  queue_.drain(Status::kCancelled);
  // ~ThreadPool joins the workers once their loops observe the closed queue.
}

void QueryService::worker_loop() {
  while (std::optional<AdmissionQueue::Entry> entry = queue_.take()) {
    entry->run();
  }
}

QueryTicket QueryService::submit(Query query, CompletionFn on_complete) {
  if (const auto* solve = query.as<SolveRequest>()) {
    WFC_REQUIRE(solve->task != nullptr,
                "QueryService::submit: solve query without a task");
  }
  if (const auto* conv = query.as<ConvergenceRequest>()) {
    WFC_REQUIRE(conv->agreement != nullptr,
                "QueryService::submit: convergence query without an "
                "agreement task");
  }

  auto job = std::make_shared<Job>();
  job->query = std::move(query);
  job->on_complete = std::move(on_complete);
  job->cancel = std::make_shared<std::atomic<bool>>(false);
  job->submitted = std::chrono::steady_clock::now();
  if (job->query.options.timeout) {
    job->deadline = job->submitted + *job->query.options.timeout;
  }
  job->trace = observer_.begin_trace();
  if (metrics_.submitted != nullptr) {
    metrics_.submitted->inc();
    metrics_.by_kind[static_cast<int>(job->query.kind())]->inc();
  }
  QueryTicket ticket{job->promise.get_future(), job->cancel};
  stats_.inc(kStatSubmitted);

  // Fast path: an identical definitive query was answered before -- reply
  // inline, no worker, no search.
  if (std::optional<task::SolveResult> memo = memo_lookup(job->query)) {
    QueryResult result;
    result.solve = *std::move(memo);
    result.cache_hit = true;
    result.memoized = true;
    job->trace.instant(obs::SpanKind::kMemoHit);
    finish(job, std::move(result));
    return ticket;
  }

  {
    std::lock_guard<std::mutex> lock(tokens_mu_);
    live_tokens_.erase(
        std::remove_if(live_tokens_.begin(), live_tokens_.end(),
                       [](const std::weak_ptr<std::atomic<bool>>& w) {
                         return w.expired();
                       }),
        live_tokens_.end());
    live_tokens_.push_back(job->cancel);
  }

  if (!accepting_.load(std::memory_order_relaxed)) {
    finish_without_running(job, Status::kCancelled);
    return ticket;
  }

  AdmissionQueue::Entry entry;
  entry.run = [this, job] { run_job(job); };
  entry.abort = [this, job](Status status) {
    finish_without_running(job, status);
  };
  if (queue_.offer(std::move(entry)) == AdmissionQueue::Outcome::kRejected) {
    // Shed (queue full under kRejectNew) or shutting down: the ticket is
    // still fulfilled -- load never throws at the submitter.
    finish_without_running(
        job, queue_.closed() ? Status::kCancelled : Status::kOverloaded);
  }
  return ticket;
}

void QueryService::finish_without_running(const std::shared_ptr<Job>& job,
                                          Status status) {
  job->cancel->store(true, std::memory_order_relaxed);
  QueryResult result;
  result.status = status;
  if (status == Status::kCancelled || status == Status::kDeadlineExceeded) {
    // Legacy verdict surface: an unrun cancelled query reads as a cancelled
    // search with zero nodes.
    result.solve.status = task::Solvability::kCancelled;
  }
  if (status == Status::kOverloaded) {
    result.error = "admission queue full";
  }
  finish(job, std::move(result));
}

void QueryService::finish(const std::shared_ptr<Job>& job,
                          QueryResult result) {
  if (job->finished.exchange(true, std::memory_order_acq_rel)) return;
  if (is_retryable(result.status) && result.retry_after_ms == 0) {
    result.retry_after_ms = retry_hint();
  }
  result.micros = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - job->submitted)
          .count());
  record(result);
  if (job->on_complete) {
    // Contractually must not throw; contain a misbehaving continuation so
    // the ticket's future is ALWAYS fulfilled regardless.
    try {
      job->on_complete(result);
    } catch (...) {
    }
    job->on_complete = nullptr;  // release captures promptly
  }
  job->promise.set_value(std::move(result));
}

std::uint64_t QueryService::degraded_budget(std::uint64_t requested,
                                            bool* degraded) {
  *degraded = false;
  if (!options_.degrade_budget_under_load) return requested;
  const std::size_t depth = queue_.depth();
  const std::size_t cap = queue_.max_depth();
  std::uint64_t budget = requested;
  if (depth * 2 >= cap) {
    budget = std::max<std::uint64_t>(1, requested / 4);
  } else if (depth * 4 >= cap) {
    budget = std::max<std::uint64_t>(1, requested / 2);
  }
  *degraded = budget != requested;
  return budget;
}

std::uint32_t QueryService::retry_hint() {
  const std::uint64_t ewma =
      ewma_exec_micros_.load(std::memory_order_relaxed);
  if (ewma == 0) return options_.retry_after_ms_base;
  const std::uint64_t per_query_ms = std::max<std::uint64_t>(1, ewma / 1000);
  const std::uint64_t backlog = queue_.depth() + 1;
  const std::uint64_t parallel =
      static_cast<std::uint64_t>(std::max(1, max_inflight_));
  const std::uint64_t hint = per_query_ms * backlog / parallel;
  return static_cast<std::uint32_t>(
      std::clamp<std::uint64_t>(hint, 1, 10'000));
}

void QueryService::acquire_inflight_slot() {
  std::unique_lock<std::mutex> lock(inflight_mu_);
  inflight_cv_.wait(lock, [this] { return inflight_ < max_inflight_; });
  ++inflight_;
}

void QueryService::release_inflight_slot() {
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    --inflight_;
  }
  inflight_cv_.notify_one();
}

void QueryService::run_job(const std::shared_ptr<Job>& job) {
  const auto dequeued = std::chrono::steady_clock::now();
  const std::uint64_t queue_micros = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          dequeued - job->submitted)
          .count());
  job->trace.complete(obs::SpanKind::kQueueWait, job->submitted, dequeued);
  if (metrics_.queue_wait_us != nullptr) {
    metrics_.queue_wait_us->observe(queue_micros);
  }

  // Deadline check AT DEQUEUE: a query that expired while waiting must not
  // occupy a worker with a search that can only answer kCancelled.
  if (job->deadline && dequeued >= *job->deadline) {
    QueryResult result;
    result.status = Status::kDeadlineExceeded;
    result.solve.status = task::Solvability::kCancelled;
    result.queue_micros = queue_micros;
    result.error = "deadline expired while queued";
    finish(job, std::move(result));
    return;
  }

  if (job->cancel->load(std::memory_order_relaxed)) {
    QueryResult result;
    result.status = Status::kCancelled;
    result.solve.status = task::Solvability::kCancelled;
    result.queue_micros = queue_micros;
    finish(job, std::move(result));
    return;
  }

  bool degraded = false;
  const std::uint64_t budget =
      degraded_budget(job->query.options.node_budget, &degraded);

  acquire_inflight_slot();
  const std::uint64_t watch_handle = watchdog_.watch(
      job->cancel, std::shared_ptr<const std::atomic<std::uint64_t>>(
                       job, &job->progress),
      job->trace);
  // The chaos hook runs INSIDE the watched window, so an injected stall is
  // exactly what the watchdog's heartbeat rule is meant to catch (and an
  // injected cancellation is handled by execute's cooperative checks).
  if (options_.execute_hook) options_.execute_hook(*job->cancel);
  QueryResult result = execute(job->query, job->cancel, job->submitted,
                               job->deadline, budget, &job->progress,
                               job->trace);
  const bool watchdog_killed = watchdog_.unwatch(watch_handle);
  release_inflight_slot();
  if (metrics_.exec_us != nullptr) {
    metrics_.exec_us->observe(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - dequeued)
            .count()));
  }

  if (watchdog_killed && result.status == Status::kCancelled) {
    result.status = Status::kDeadlineExceeded;
    result.error = "hard timeout: watchdog cancelled the query";
  }
  result.degraded = degraded;
  result.queue_micros = queue_micros;
  finish(job, std::move(result));
}

std::optional<task::SolveResult> QueryService::memo_lookup(
    const Query& query) {
  const auto* solve = query.as<SolveRequest>();
  if (memo_capacity_ == 0 || solve == nullptr) return std::nullopt;
  const MemoKey key{solve->task.get(), query.options.max_level,
                    query.options.node_budget,
                    solve->model ? solve->model->tag() : 0};
  MemoVal val;
  if (!memo_.lookup(key, &val)) return std::nullopt;
  return val.result;
}

void QueryService::memo_store(const Query& query,
                              const task::SolveResult& result) {
  const auto* solve = query.as<SolveRequest>();
  if (memo_capacity_ == 0 || solve == nullptr) return;
  // Only definitive verdicts are safe to replay: kUnknown/kCancelled depend
  // on budgets and deadlines, not just the task.
  if (result.status != task::Solvability::kSolvable &&
      result.status != task::Solvability::kUnsolvable) {
    return;
  }
  const MemoKey key{solve->task.get(), query.options.max_level,
                    query.options.node_budget,
                    solve->model ? solve->model->tag() : 0};
  // First writer wins; a concurrent twin's insert converges on the stored
  // value.  The insert's eviction pass keeps the memo at its bound.
  (void)memo_.get_or_insert(key,
                            [&] { return MemoVal{solve->task, result}; });
}

task::LevelRestrictor QueryService::model_restrictor(
    std::shared_ptr<const model::Model> model, bool* any_build) {
  if (model == nullptr || model->is_wait_free()) return nullptr;
  // The restricted tower is itself a pure function of (input, model), so it
  // rides the same cache/store machinery as full towers -- keyed by the
  // MIXED fingerprint, which can never collide with the full tower's key
  // (tag != 0) or another model's (distinct tags).
  return [this, model = std::move(model), any_build](
             const proto::SdsChain& chain,
             int level) -> std::optional<task::LevelRestriction> {
    const std::uint64_t base_fp = topo::complex_fingerprint(chain.level(0));
    const std::uint64_t key = model::mix_fingerprint(base_fp, model->tag());
    bool built = false;
    auto restricted = cache_.derived_chain_for(
        key, model->tag(), level,
        [this, &model, &chain](std::shared_ptr<const proto::SdsChain> prior,
                               int depth) {
          std::uint64_t admitted = 0;
          std::uint64_t rejected = 0;
          auto tower = model::restricted_tower(chain, depth, *model, prior,
                                               &admitted, &rejected);
          if (metrics_.model_runs_admitted != nullptr) {
            metrics_.model_runs_admitted->inc(admitted);
            metrics_.model_runs_rejected->inc(rejected);
          }
          return tower;
        },
        &built);
    *any_build = *any_build || built;
    return task::LevelRestriction{restricted->arena(level), nullptr};
  };
}

void QueryService::cancel_all() {
  std::lock_guard<std::mutex> lock(tokens_mu_);
  for (const std::weak_ptr<std::atomic<bool>>& w : live_tokens_) {
    if (auto token = w.lock()) token->store(true, std::memory_order_relaxed);
  }
}

QueryResult QueryService::execute(
    const Query& query, const std::shared_ptr<std::atomic<bool>>& cancel,
    std::chrono::steady_clock::time_point submitted,
    const std::optional<std::chrono::steady_clock::time_point>& deadline,
    std::uint64_t effective_budget, std::atomic<std::uint64_t>* progress,
    const obs::TraceContext& trace) {
  QueryResult result;
  bool any_build = false;
  bool ran_to_verdict = false;
  try {
    switch (query.kind()) {
      case Query::Kind::kSolve: {
        const SolveRequest& req = std::get<SolveRequest>(query.request);
        task::SolveOptions opts;
        opts.node_budget = effective_budget;
        opts.cancel = cancel.get();
        opts.progress = progress;
        opts.deadline = deadline;
        if (trace.enabled()) {
          opts.checkpoint_every = observer_.config().search_checkpoint_nodes;
          opts.on_checkpoint = [&trace](std::uint64_t nodes) {
            trace.checkpoint(obs::SpanKind::kSearchNodes, nodes);
          };
        }
        opts.chain_provider =
            [this, &any_build, progress, &trace](
                const topo::ChromaticComplex& input, int depth) {
              const auto t0 = std::chrono::steady_clock::now();
              bool built = false;
              auto chain = cache_.chain_for(input, depth, &built, trace);
              if (metrics_.chain_for_us != nullptr) {
                metrics_.chain_for_us->observe(static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count()));
              }
              any_build = any_build || built;
              bump(progress);  // subdivision checkpoint
              return chain;
            };
        if (req.model != nullptr && !req.model->is_wait_free()) {
          if (metrics_.model_queries != nullptr) metrics_.model_queries->inc();
          opts.restrictor = model_restrictor(req.model, &any_build);
        }
        {
          auto span = trace.span(obs::SpanKind::kSearch);
          result.solve =
              task::solve(*req.task, query.options.max_level, opts);
          span.arg = result.solve.nodes_explored;
        }
        ran_to_verdict = true;
        break;
      }
      case Query::Kind::kConvergence: {
        const ConvergenceRequest& req =
            std::get<ConvergenceRequest>(query.request);
        if (req.model != nullptr && !req.model->is_wait_free()) {
          // The §5 convergence compiler assumes the full run set; under a
          // sub-IIS model the agreement task goes through the restricted
          // Prop 3.1 solve instead (same verdict surface).
          if (metrics_.model_queries != nullptr) metrics_.model_queries->inc();
          task::SolveOptions opts;
          opts.node_budget = effective_budget;
          opts.cancel = cancel.get();
          opts.progress = progress;
          opts.deadline = deadline;
          opts.chain_provider =
              [this, &any_build, progress, &trace](
                  const topo::ChromaticComplex& input, int depth) {
                bool built = false;
                auto chain = cache_.chain_for(input, depth, &built, trace);
                any_build = any_build || built;
                bump(progress);
                return chain;
              };
          opts.restrictor = model_restrictor(req.model, &any_build);
          auto span = trace.span(obs::SpanKind::kSearch);
          result.solve =
              task::solve(*req.agreement, query.options.max_level, opts);
          span.arg = result.solve.nodes_explored;
          ran_to_verdict = true;
          break;
        }
        conv::ApproximationOptions opts;
        opts.max_level = query.options.max_level;
        bump(progress);
        {
          auto span = trace.span(obs::SpanKind::kConvergence);
          result.solve = conv::solve_simplex_agreement_by_convergence(
              *req.agreement, opts);
          span.arg = result.solve.nodes_explored;
        }
        ran_to_verdict = true;
        break;
      }
      case Query::Kind::kEmulate: {
        const EmulateRequest& req = std::get<EmulateRequest>(query.request);
        // Generous round bound: the emulation is nonblocking, and the
        // synchronous adversary finishes k-shot clients in O(k) memories.
        const int max_rounds = 16 + 32 * req.shots * req.procs;
        emu::FullInfoClient client(req.shots);
        rt::SynchronousAdversary adversary;
        bump(progress);
        {
          auto span = trace.span(obs::SpanKind::kEmulation);
          emu::EmulationResult emu = emu::run_emulation_simulated(
              req.procs, adversary, max_rounds, client.init(),
              client.on_scan());
          result.emu_rounds = emu.rounds_used;
          result.emu_steps = std::move(emu.iis_steps);
          span.arg = static_cast<std::uint64_t>(emu.rounds_used);
        }
        if (metrics_.emu_rounds != nullptr && result.emu_rounds > 0) {
          metrics_.emu_rounds->inc(
              static_cast<std::uint64_t>(result.emu_rounds));
        }
        result.solve.status = task::Solvability::kSolvable;
        ran_to_verdict = true;
        break;
      }
      case Query::Kind::kCheck: {
        result.is_check = true;
        // Checker sweeps poll only the cancel token (no per-node deadline
        // like the solver's); honour an already-expired deadline up front.
        if (deadline && std::chrono::steady_clock::now() >= *deadline) {
          cancel->store(true, std::memory_order_relaxed);
        }
        const CheckRequest& cq = std::get<CheckRequest>(query.request);
        auto span = trace.span(obs::SpanKind::kCheck);
        switch (cq.target) {
          case CheckQuery::Target::kSds: {
            chk::ExploreOptions opts;
            opts.n_procs = cq.procs;
            opts.rounds = cq.rounds;
            opts.max_crashes = cq.crashes;
            opts.symmetry_reduction = cq.symmetry;
            opts.max_executions = effective_budget;
            opts.cancel = cancel.get();
            opts.run_filter = model::run_filter(cq.model, cq.procs);
            if (opts.run_filter && metrics_.model_queries != nullptr) {
              metrics_.model_queries->inc();
            }
            bump(progress);
            const chk::SdsCheckReport report = chk::check_views_in_sds(opts);
            result.check_ok = report.ok;
            result.check_schedules = report.explored.executions;
            result.check_histories = report.simplices_checked;
            result.check_violation = report.violation;
            if (opts.run_filter && metrics_.model_runs_admitted != nullptr) {
              metrics_.model_runs_admitted->inc(report.explored.executions);
              metrics_.model_runs_rejected->inc(report.explored.filtered);
            }
            break;
          }
          case CheckQuery::Target::kEmulation: {
            chk::ConformanceOptions opts;
            opts.n_procs = cq.procs;
            opts.shots = cq.shots;
            opts.explore_rounds = cq.rounds;
            opts.max_crashes = cq.crashes;
            opts.max_executions = effective_budget;
            bump(progress);
            const chk::ConformanceReport report =
                chk::check_emulation_conformance(opts);
            result.check_ok = report.ok;
            result.check_schedules = report.explored.executions;
            result.check_histories = report.histories_checked;
            result.check_max_depth =
                static_cast<std::uint64_t>(report.max_rounds_used);
            result.check_violation = report.violation;
            break;
          }
          case CheckQuery::Target::kLinearizability: {
            const LinOutcome out = run_linearizability_target(
                cq, effective_budget, cancel.get(), progress);
            result.check_ok = out.ok;
            result.check_schedules = out.schedules;
            result.check_histories = out.histories;
            result.check_max_depth = out.max_depth;
            result.check_violation = out.violation;
            break;
          }
        }
        span.arg = result.check_schedules;
        result.solve.status = cancel->load(std::memory_order_relaxed)
                                  ? task::Solvability::kCancelled
                                  : task::Solvability::kSolvable;
        ran_to_verdict = true;
        break;
      }
    }
  } catch (const CheckCancelled&) {
    result.is_check = true;
    result.solve.status = task::Solvability::kCancelled;
    ran_to_verdict = true;
  } catch (const std::bad_alloc&) {
    // Contain the allocation failure to this query and relieve the largest
    // memory consumer we own: the chain cache sheds a quarter of its cold
    // weight.  The query itself is retryable.
    cache_.shed(0.25);
    result.status = Status::kResourceExhausted;
    result.error = "allocation failure during query execution";
  } catch (const std::invalid_argument& e) {
    result.status = Status::kInvalidArgument;
    result.error = e.what();
  } catch (const std::exception& e) {
    result.status = Status::kInternal;
    result.error = e.what();
  }

  if (ran_to_verdict) {
    if (result.solve.status == task::Solvability::kCancelled) {
      const bool past_deadline =
          deadline && std::chrono::steady_clock::now() >= *deadline;
      result.status =
          past_deadline ? Status::kDeadlineExceeded : Status::kCancelled;
    } else {
      result.status = Status::kOk;
      memo_store(query, result.solve);
    }
  }
  result.cache_hit = query.kind() == Query::Kind::kSolve && !any_build;
  result.micros = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - submitted)
          .count());
  return result;
}

void QueryService::record(const QueryResult& result) {
  if (metrics_.by_status[0] != nullptr) {
    metrics_.by_status[static_cast<int>(result.status)]->inc();
    metrics_.e2e_us->observe(result.micros);
    if (result.memoized) metrics_.memo_hits->inc();
    if (result.degraded) metrics_.degraded->inc();
    if (!result.memoized && !result.is_check &&
        result.solve.nodes_explored > 0) {
      metrics_.search_nodes->observe(result.solve.nodes_explored);
    }
  }
  // Per-thread shard bumps only: the completion path no longer serializes
  // on a stats mutex (kStat* slots fold back together in stats()).
  stats_.inc(kStatQueries);
  stats_.inc(kStatStatusBase + static_cast<std::size_t>(result.status));
  if (result.status == Status::kOk) {
    if (result.is_check) {
      stats_.inc(kStatCheckRuns);
      stats_.inc(kStatCheckSchedules, result.check_schedules);
      stats_.inc(kStatCheckHistories, result.check_histories);
      check_max_depth_.bump(result.check_max_depth);
      if (!result.check_ok) stats_.inc(kStatCheckViolations);
    } else {
      switch (result.solve.status) {
        case task::Solvability::kSolvable: stats_.inc(kStatSolvable); break;
        case task::Solvability::kUnsolvable:
          stats_.inc(kStatUnsolvable);
          break;
        case task::Solvability::kUnknown: stats_.inc(kStatUnknown); break;
        case task::Solvability::kCancelled: break;  // unreachable under kOk
      }
    }
    // Latency history feeds the retry_after hint; only completed work
    // counts (shed/expired queries would drag the estimate toward zero).
    // Racing updates may each fold their own sample in -- the estimate
    // stays an estimate, which is all the hint needs.
    if (!result.memoized) {
      std::uint64_t cur = ewma_exec_micros_.load(std::memory_order_relaxed);
      std::uint64_t next;
      do {
        next = cur == 0 ? result.micros : (7 * cur + result.micros) / 8;
      } while (!ewma_exec_micros_.compare_exchange_weak(
          cur, next, std::memory_order_relaxed));
    }
  }
  if (result.memoized) {
    stats_.inc(kStatResultHits);
  } else {
    stats_.inc(kStatNodesExplored, result.solve.nodes_explored);
  }
  if (result.degraded) stats_.inc(kStatDegraded);
  stats_.inc(kStatQueueTotalMicros, result.queue_micros);
  queue_max_micros_.bump(result.queue_micros);
  stats_.inc(kStatTotalMicros, result.micros);
  max_micros_.bump(result.micros);
}

ServiceStats QueryService::stats() const {
  const std::array<std::uint64_t, kStatCount> c = stats_.fold();
  ServiceStats out;
  out.submitted = c[kStatSubmitted];
  out.queries = c[kStatQueries];
  for (int s = 0; s < kNumStatuses; ++s) {
    out.by_status[s] = c[kStatStatusBase + static_cast<std::size_t>(s)];
  }
  out.solvable = c[kStatSolvable];
  out.unsolvable = c[kStatUnsolvable];
  out.unknown = c[kStatUnknown];
  out.result_hits = c[kStatResultHits];
  out.nodes_explored = c[kStatNodesExplored];
  out.degraded = c[kStatDegraded];
  out.total_micros = c[kStatTotalMicros];
  out.max_micros = max_micros_.value();
  out.queue_total_micros = c[kStatQueueTotalMicros];
  out.queue_max_micros = queue_max_micros_.value();
  out.check.runs = c[kStatCheckRuns];
  out.check.schedules = c[kStatCheckSchedules];
  out.check.histories = c[kStatCheckHistories];
  out.check.violations = c[kStatCheckViolations];
  out.check.max_search_depth = check_max_depth_.value();
  out.cache = cache_.stats();
  out.store = cache_.store_stats();
  out.queue_peak_depth = queue_.peak_depth();
  const Watchdog::Stats wd = watchdog_.stats();
  out.watchdog_kills = wd.kills;
  out.stuck_worker_reports = wd.stuck_reports;
  return out;
}

}  // namespace wfc::svc
