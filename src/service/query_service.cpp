#include "service/query_service.hpp"

#include <algorithm>
#include <sstream>

#include "check/conformance.hpp"
#include "check/lin_check.hpp"
#include "check/sds_check.hpp"
#include "check/step_driver.hpp"
#include "common/assert.hpp"
#include "convergence/convergence.hpp"
#include "emulation/emulator.hpp"
#include "registers/atomic_snapshot.hpp"
#include "runtime/adversary.hpp"

namespace wfc::svc {

namespace {

int resolve_workers(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Thrown out of a checker callback to honour the query's cancel token.
struct CheckCancelled {};

struct LinOutcome {
  bool ok = true;
  std::uint64_t schedules = 0;
  std::uint64_t histories = 0;
  std::uint64_t max_depth = 0;
  std::string violation;
};

/// kLinearizability target: drive the register-level AtomicSnapshot through
/// EVERY step interleaving of a fixed scenario (processor 0 performs
/// `rounds` updates; every other processor takes one scan) and verify each
/// recorded history against the sequential snapshot specification.
LinOutcome run_linearizability_target(const CheckQuery& cq,
                                      std::uint64_t max_schedules,
                                      const std::atomic<bool>* cancel) {
  WFC_REQUIRE(cq.procs >= 2 && cq.procs <= 3,
              "check(linearizability): procs must be 2 or 3");
  WFC_REQUIRE(cq.rounds >= 1 && cq.rounds <= 4,
              "check(linearizability): rounds must be in [1, 4]");
  using Rec = chk::RecordingSnapshot<reg::AtomicSnapshot<int>>;

  LinOutcome out;
  std::shared_ptr<Rec> rec;
  const chk::InterleaveStats stats = chk::for_each_step_interleaving(
      cq.procs,
      [&](chk::StepDriver& driver) {
        rec = std::make_shared<Rec>(cq.procs);
        driver.spawn(0, [rec = rec, rounds = cq.rounds] {
          for (int r = 1; r <= rounds; ++r) rec->update(0, r);
        });
        for (int p = 1; p < cq.procs; ++p) {
          driver.spawn(p, [rec = rec, p] { (void)rec->scan(p); });
        }
      },
      [&](const std::vector<int>&) {
        if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
          throw CheckCancelled{};
        }
        const chk::LinearizeReport lr =
            chk::check_linearizable_snapshot(rec->history());
        ++out.histories;
        out.max_depth = std::max(
            out.max_depth, static_cast<std::uint64_t>(lr.max_depth));
        if (!lr.linearizable && out.ok) {
          out.ok = false;
          out.violation = "atomic snapshot: " + lr.violation;
        }
      },
      max_schedules);
  out.schedules = stats.schedules;
  return out;
}

}  // namespace

std::string ServiceStats::to_string() const {
  std::ostringstream os;
  os << "queries=" << queries << " (" << solvable << " solvable, "
     << unsolvable << " unsolvable, " << unknown << " unknown, " << cancelled
     << " cancelled, " << errors << " errors)"
     << " result_hits=" << result_hits << " nodes=" << nodes_explored
     << " latency_us total=" << total_micros
     << " max=" << max_micros << " | cache hits=" << cache.hits
     << " misses=" << cache.misses << " extensions=" << cache.extensions
     << " evictions=" << cache.evictions << " entries=" << cache.entries
     << " resident_vertices=" << cache.resident_vertices
     << " | check runs=" << check.runs << " schedules=" << check.schedules
     << " histories=" << check.histories
     << " violations=" << check.violations
     << " max_depth=" << check.max_search_depth;
  return os.str();
}

QueryService::QueryService() : QueryService(Options()) {}

QueryService::QueryService(Options options)
    : cache_(options.cache),
      memo_capacity_(options.result_memo_entries),
      pool_(resolve_workers(options.workers)) {}

QueryService::~QueryService() {
  cancel_all();
  // ~ThreadPool drains the queue; cancelled queries finish fast.
}

QueryTicket QueryService::submit(Query query) {
  WFC_REQUIRE(query.kind != Query::Kind::kSolve || query.task != nullptr,
              "QueryService::submit: kSolve query without a task");
  WFC_REQUIRE(
      query.kind != Query::Kind::kConvergence || query.agreement != nullptr,
      "QueryService::submit: kConvergence query without an agreement task");

  auto cancel = std::make_shared<std::atomic<bool>>(false);
  auto promise = std::make_shared<std::promise<QueryResult>>();
  QueryTicket ticket{promise->get_future(), cancel};
  const auto submitted = std::chrono::steady_clock::now();

  // Fast path: an identical definitive query was answered before -- reply
  // inline, no worker, no search.
  if (std::optional<task::SolveResult> memo = memo_lookup(query)) {
    QueryResult result;
    result.solve = *std::move(memo);
    result.cache_hit = true;
    result.memoized = true;
    result.micros = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - submitted)
            .count());
    record(result);
    promise->set_value(std::move(result));
    return ticket;
  }

  {
    std::lock_guard<std::mutex> lock(tokens_mu_);
    live_tokens_.erase(
        std::remove_if(live_tokens_.begin(), live_tokens_.end(),
                       [](const std::weak_ptr<std::atomic<bool>>& w) {
                         return w.expired();
                       }),
        live_tokens_.end());
    live_tokens_.push_back(cancel);
  }

  pool_.submit([this, query = std::move(query), cancel, promise,
                submitted]() mutable {
    QueryResult result = execute(query, cancel, submitted);
    record(result);
    promise->set_value(std::move(result));
  });
  return ticket;
}

std::optional<task::SolveResult> QueryService::memo_lookup(
    const Query& query) {
  if (memo_capacity_ == 0 || query.kind != Query::Kind::kSolve) {
    return std::nullopt;
  }
  const MemoKey key{query.task.get(), query.options.max_level,
                    query.options.node_budget};
  std::lock_guard<std::mutex> lock(memo_mu_);
  auto it = memo_.find(key);
  if (it == memo_.end()) return std::nullopt;
  memo_lru_.splice(memo_lru_.begin(), memo_lru_, it->second.lru);
  return it->second.result;
}

void QueryService::memo_store(const Query& query,
                              const task::SolveResult& result) {
  if (memo_capacity_ == 0 || query.kind != Query::Kind::kSolve) return;
  // Only definitive verdicts are safe to replay: kUnknown/kCancelled depend
  // on budgets and deadlines, not just the task.
  if (result.status != task::Solvability::kSolvable &&
      result.status != task::Solvability::kUnsolvable) {
    return;
  }
  const MemoKey key{query.task.get(), query.options.max_level,
                    query.options.node_budget};
  std::lock_guard<std::mutex> lock(memo_mu_);
  if (memo_.count(key) != 0) return;  // a concurrent twin won the race
  memo_lru_.push_front(key);
  memo_[key] = MemoEntry{query.task, result, memo_lru_.begin()};
  while (memo_.size() > memo_capacity_) {
    memo_.erase(memo_lru_.back());
    memo_lru_.pop_back();
  }
}

QueryTicket QueryService::submit_solve(std::shared_ptr<const task::Task> task,
                                       QueryOptions options) {
  Query q;
  q.kind = Query::Kind::kSolve;
  q.task = std::move(task);
  q.options = options;
  return submit(q);
}

void QueryService::cancel_all() {
  std::lock_guard<std::mutex> lock(tokens_mu_);
  for (const std::weak_ptr<std::atomic<bool>>& w : live_tokens_) {
    if (auto token = w.lock()) token->store(true, std::memory_order_relaxed);
  }
}

QueryResult QueryService::execute(
    const Query& query, const std::shared_ptr<std::atomic<bool>>& cancel,
    std::chrono::steady_clock::time_point submitted) {
  QueryResult result;
  bool any_build = false;
  try {
    switch (query.kind) {
      case Query::Kind::kSolve: {
        task::SolveOptions opts;
        opts.node_budget = query.options.node_budget;
        opts.cancel = cancel.get();
        if (query.options.timeout) {
          opts.deadline = submitted + *query.options.timeout;
        }
        opts.chain_provider =
            [this, &any_build](const topo::ChromaticComplex& input,
                               int depth) {
              bool built = false;
              auto chain = cache_.chain_for(input, depth, &built);
              any_build = any_build || built;
              return chain;
            };
        result.solve =
            task::solve(*query.task, query.options.max_level, opts);
        break;
      }
      case Query::Kind::kConvergence: {
        conv::ApproximationOptions opts;
        opts.max_level = query.options.max_level;
        result.solve =
            conv::solve_simplex_agreement_by_convergence(*query.agreement,
                                                         opts);
        break;
      }
      case Query::Kind::kEmulate: {
        // Generous round bound: the emulation is nonblocking, and the
        // synchronous adversary finishes k-shot clients in O(k) memories.
        const int max_rounds = 16 + 32 * query.emu_shots * query.emu_procs;
        emu::FullInfoClient client(query.emu_shots);
        rt::SynchronousAdversary adversary;
        emu::EmulationResult emu = emu::run_emulation_simulated(
            query.emu_procs, adversary, max_rounds, client.init(),
            client.on_scan());
        result.emu_rounds = emu.rounds_used;
        result.emu_steps = std::move(emu.iis_steps);
        result.solve.status = task::Solvability::kSolvable;
        break;
      }
      case Query::Kind::kCheck: {
        result.is_check = true;
        // Checker sweeps poll only the cancel token (no per-node deadline
        // like the solver's); honour an already-expired deadline up front.
        if (query.options.timeout &&
            std::chrono::steady_clock::now() >=
                submitted + *query.options.timeout) {
          cancel->store(true, std::memory_order_relaxed);
        }
        const CheckQuery& cq = query.check;
        switch (cq.target) {
          case CheckQuery::Target::kSds: {
            chk::ExploreOptions opts;
            opts.n_procs = cq.procs;
            opts.rounds = cq.rounds;
            opts.max_crashes = cq.crashes;
            opts.symmetry_reduction = cq.symmetry;
            opts.max_executions = query.options.node_budget;
            opts.cancel = cancel.get();
            const chk::SdsCheckReport report = chk::check_views_in_sds(opts);
            result.check_ok = report.ok;
            result.check_schedules = report.explored.executions;
            result.check_histories = report.simplices_checked;
            result.check_violation = report.violation;
            break;
          }
          case CheckQuery::Target::kEmulation: {
            chk::ConformanceOptions opts;
            opts.n_procs = cq.procs;
            opts.shots = cq.shots;
            opts.explore_rounds = cq.rounds;
            opts.max_crashes = cq.crashes;
            opts.max_executions = query.options.node_budget;
            const chk::ConformanceReport report =
                chk::check_emulation_conformance(opts);
            result.check_ok = report.ok;
            result.check_schedules = report.explored.executions;
            result.check_histories = report.histories_checked;
            result.check_max_depth =
                static_cast<std::uint64_t>(report.max_rounds_used);
            result.check_violation = report.violation;
            break;
          }
          case CheckQuery::Target::kLinearizability: {
            const LinOutcome out = run_linearizability_target(
                cq, query.options.node_budget, cancel.get());
            result.check_ok = out.ok;
            result.check_schedules = out.schedules;
            result.check_histories = out.histories;
            result.check_max_depth = out.max_depth;
            result.check_violation = out.violation;
            break;
          }
        }
        result.solve.status = cancel->load(std::memory_order_relaxed)
                                  ? task::Solvability::kCancelled
                                  : task::Solvability::kSolvable;
        break;
      }
    }
  } catch (const CheckCancelled&) {
    result.is_check = true;
    result.solve.status = task::Solvability::kCancelled;
  } catch (const std::exception& e) {
    result.error = e.what();
  }
  if (result.error.empty()) memo_store(query, result.solve);
  result.cache_hit = query.kind == Query::Kind::kSolve && !any_build;
  result.micros = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - submitted)
          .count());
  return result;
}

void QueryService::record(const QueryResult& result) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.queries;
  if (result.is_check) {
    ++stats_.check.runs;
    stats_.check.schedules += result.check_schedules;
    stats_.check.histories += result.check_histories;
    stats_.check.max_search_depth =
        std::max(stats_.check.max_search_depth, result.check_max_depth);
    if (!result.error.empty()) {
      ++stats_.errors;
    } else if (result.solve.status == task::Solvability::kCancelled) {
      ++stats_.cancelled;
    } else if (!result.check_ok) {
      ++stats_.check.violations;
    }
  } else if (!result.error.empty()) {
    ++stats_.errors;
  } else {
    switch (result.solve.status) {
      case task::Solvability::kSolvable: ++stats_.solvable; break;
      case task::Solvability::kUnsolvable: ++stats_.unsolvable; break;
      case task::Solvability::kUnknown: ++stats_.unknown; break;
      case task::Solvability::kCancelled: ++stats_.cancelled; break;
    }
  }
  if (result.memoized) {
    ++stats_.result_hits;
  } else {
    stats_.nodes_explored += result.solve.nodes_explored;
  }
  stats_.total_micros += result.micros;
  stats_.max_micros = std::max(stats_.max_micros, result.micros);
}

ServiceStats QueryService::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ServiceStats out = stats_;
  out.cache = cache_.stats();
  return out;
}

}  // namespace wfc::svc
