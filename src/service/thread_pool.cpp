#include "service/thread_pool.hpp"

#include "common/assert.hpp"

namespace wfc::svc {

ThreadPool::ThreadPool(int n_threads) {
  WFC_REQUIRE(n_threads >= 1, "ThreadPool: need at least one worker");
  workers_.reserve(static_cast<std::size_t>(n_threads));
  for (int i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  WFC_REQUIRE(job != nullptr, "ThreadPool::submit: empty job");
  {
    std::lock_guard<std::mutex> lock(mu_);
    WFC_REQUIRE(!stopping_, "ThreadPool::submit: pool is shutting down");
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

std::size_t ThreadPool::backlog() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ && drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();  // jobs are noexcept wrappers (the service catches per-query)
  }
}

}  // namespace wfc::svc
