// JSON-lines batch front-end over QueryService.
//
// Protocol: one flat JSON object per input line, one JSON result line per
// query, in submission order (queries still EXECUTE concurrently on the
// pool; only the printing is ordered).  Blank lines and lines starting with
// '#' are skipped.
//
//   {"task":"consensus","procs":2,"values":2}            solvability query
//   {"task":"set-consensus","procs":3,"k":2,"max_level":1}
//   {"task":"renaming","procs":2,"names":2}
//   {"task":"approx","procs":2,"grid":3,"timeout_ms":500}
//   {"task":"simplex-agreement","procs":2,"depth":1}
//   {"task":"identity","procs":3}
//   {"op":"convergence","procs":2,"depth":1,"max_level":4}
//   {"op":"emulate","procs":2,"shots":2}
//   {"op":"stats"}            flushes outstanding queries, prints counters
//
// Optional fields on every query: "id" (echoed back), "max_level",
// "budget" (search node budget), "timeout_ms" (deadline from submission).
//
// Result lines:
//   {"id":...,"task":"...","status":"SOLVABLE","level":1,"nodes":12,
//    "micros":345,"cache_hit":true}
//   {"op":"emulate",...,"status":"OK","rounds":5,"iis_steps":17,...}
//
// Queries that do not complete normally carry the lowercase status taxonomy
// (service/status.hpp) instead of a verdict: "cancelled",
// "deadline_exceeded", "overloaded" (+ "retry_after_ms" backoff hint),
// "resource_exhausted", "invalid_argument", "internal".  Malformed input
// lines answer {"status":"invalid_argument","line":N,"error":...} -- with
// the offending 1-based line number -- and never terminate the serve loop.
#pragma once

#include <iosfwd>
#include <map>
#include <memory>
#include <string>

#include "service/query_service.hpp"

namespace wfc::svc {

struct ServeConfig {
  QueryService::Options service;
  int default_max_level = 2;
  /// Print a final stats line to `err` when the input is exhausted.
  bool stats_at_eof = true;
};

/// Builds a canonical task from parsed JSON fields ("task" + parameters;
/// see the file comment).  Throws std::invalid_argument on unknown kinds or
/// missing/malformed parameters.
std::shared_ptr<task::Task> make_canonical_task(
    const std::map<std::string, std::string>& fields);

/// Reads queries from `in` until EOF, fans them out to a QueryService, and
/// writes one result line per query to `out`.  Returns the number of lines
/// that produced an error result (0 = clean run).
int run_jsonl_server(std::istream& in, std::ostream& out, std::ostream& err,
                     const ServeConfig& config = {});

}  // namespace wfc::svc
