// JSON-lines batch front-end over QueryService.
//
// Protocol (v2): one flat JSON object per input line, one JSON result line
// per query, in submission order (queries still EXECUTE concurrently on the
// pool; only the printing is ordered).  Blank lines and lines starting with
// '#' are skipped.  Every request names its operation with "op"; "task" is
// a PARAMETER of op:"solve":
//
//   {"op":"solve","task":"consensus","procs":2,"values":2}
//   {"op":"solve","task":"set-consensus","procs":3,"k":2,"max_level":1}
//   {"op":"solve","task":"renaming","procs":2,"names":2}
//   {"op":"solve","task":"approx","procs":2,"grid":3,"timeout_ms":500}
//   {"op":"solve","task":"simplex-agreement","procs":2,"depth":1}
//   {"op":"solve","task":"identity","procs":3}
//   {"op":"convergence","procs":2,"depth":1,"max_level":4}
//   {"op":"emulate","procs":2,"shots":2}
//   {"op":"check","target":"sds|emulation|linearizability",...}
//   {"op":"stats"}            flushes outstanding queries, prints counters
//   {"op":"metrics"}          flushes, prints one flat-JSON counters line
//                             (reconciles exactly with ServiceStats); with
//                             "path":"f" also writes the full Prometheus
//                             text exposition to f
//   {"op":"trace","path":"f"} flushes, writes the span ring as Chrome
//                             trace_event JSON to f (chrome://tracing)
//
// Legacy request shape: a line with "task" but no "op" is still accepted
// and routed as op:"solve" (a one-line deprecation note goes to `err`, once
// per run).
//
// Result envelope (v2, the default since PR 5): "status" is ALWAYS the
// lowercase transport taxonomy of service/status.hpp -- "ok", "cancelled",
// "deadline_exceeded", "overloaded" (+ "retry_after_ms"),
// "resource_exhausted", "invalid_argument", "internal".  The DOMAIN outcome
// of an ok query lives in "verdict":
//
//   {"id":...,"task":"...","status":"ok","verdict":"SOLVABLE","level":1,
//    "nodes":12,"cache_hit":true,"micros":345}
//   {"op":"emulate",...,"status":"ok","verdict":"OK","rounds":5,...}
//   {"op":"check",...,"status":"ok","verdict":"VIOLATION","schedules":...}
//
// Legacy envelope (ServeConfig::legacy_envelope, `wfc_serve --legacy`): ok
// queries put the domain verdict directly in "status" ("SOLVABLE", "OK",
// "VIOLATION", ...) exactly as PR 2/3 emitted; non-ok lines are identical
// in both envelopes.
//
// Malformed input lines answer {"status":"invalid_argument","line":N,
// "error":...} -- with the offending 1-based line number -- and never
// terminate the serve loop.  Lines longer than ServeConfig::max_line_bytes
// are rejected the same way instead of being buffered without bound.
//
// The per-line request -> Query -> envelope machinery lives in
// service/handler.hpp (RequestHandler), shared verbatim with the wfc::net
// TCP transport; this file is only the stdin/batch loop around it.
#pragma once

#include <iosfwd>

#include "service/handler.hpp"
#include "service/query_service.hpp"

namespace wfc::svc {

struct ServeConfig {
  QueryService::Options service;
  int default_max_level = 2;
  /// Print a final stats line to `err` when the input is exhausted.
  bool stats_at_eof = true;
  /// Emit the pre-PR-4 result envelope (domain verdict in "status") instead
  /// of the v2 split (transport "status" + domain "verdict").  OFF by
  /// default since PR 5, as promised "for one release" in PR 4; wfc_serve
  /// --legacy is the escape hatch.
  bool legacy_envelope = false;
  /// Request lines longer than this answer {"status":"invalid_argument"}
  /// instead of being buffered/parsed.  0 disables the cap.
  std::size_t max_line_bytes = 1 << 20;
  /// Force-enable the observability layer for this serve run so the
  /// "metrics" and "trace" ops work out of the box.  Set false to honour
  /// service.obs.enabled as given.
  bool observability = true;
  /// When set, the full Prometheus text exposition is written here once the
  /// input is exhausted (wfc_cli metrics pipes it to stdout).
  std::ostream* prometheus_at_eof = nullptr;
  /// When non-empty, the span ring is written to this path as Chrome
  /// trace_event JSON once the input is exhausted (wfc_cli trace).
  std::string trace_path_at_eof;
};

/// Reads queries from `in` until EOF, fans them out to a QueryService, and
/// writes one result line per query to `out`.  Returns the number of lines
/// that produced an error result (0 = clean run).
int run_jsonl_server(std::istream& in, std::ostream& out, std::ostream& err,
                     const ServeConfig& config = {});

}  // namespace wfc::svc
