// Data-oriented arena form of a chromatic complex.
//
// An Arena is ONE contiguous byte blob: a fixed header followed by
// structure-of-arrays sections addressed by byte offsets.  Everything a
// consumer iterates in a hot loop -- vertex colors, carrier bitmasks, facet
// membership, the deduplicated face table with per-face base carriers -- is
// a flat span of dense uint32_t ids, so the Prop 3.1 backtracking inner
// loop and chain extension walk cache-linearly instead of chasing
// pointer-heavy ChromaticComplex structures.
//
// The same blob is the on-disk format: `build()` lays the sections out
// exactly as `store::ChainStore` writes them, and `view()` adopts a blob
// (typically an mmap'ed span) zero-copy after validating the header and
// section bounds.  `materialize()` reconstructs a ChromaticComplex that is
// byte-for-byte canonical with the original -- same vertex order, keys,
// carriers, coords, base carriers, and facet order -- so
// `complex_fingerprint(materialize(build(c))) == complex_fingerprint(c)`.
//
// Sections (all offsets relative to blob start, 8-byte aligned):
//   colors        u8  [n_vertices]      vertex color
//   carriers      u32 [n_vertices]      ColorSet::mask() of the carrier
//   bc CSR        u32 [n_vertices+1] + u32 pool   per-vertex base carrier
//   facet CSR     u32 [n_facets+1]   + u32 pool   facets, insertion order
//   face CSR      u32 [n_faces+1]    + u32 pool   every canonical face of
//                                                 size >= 2, deduplicated
//   face bc CSR   u32 [n_faces+1]    + u32 pool   base carrier per face
//   key CSR       u32 [n_vertices+1] + char pool  interned vertex keys
//   coord CSR     u32 [n_vertices+1] + f64 pool   barycentric coords
//
// Singleton faces are intentionally absent from the face table: the solver
// folds them into per-vertex domains (tasks/arena_search.cpp), which only
// needs the per-vertex base carrier section.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "topology/complex.hpp"

namespace wfc::topo {

inline constexpr std::uint32_t kArenaMagic = 0x414e5241u;  // "ARNA"
inline constexpr std::uint32_t kArenaVersion = 1;

/// Fixed-size arena header at blob offset 0.  All section offsets are byte
/// offsets from the blob start; `*_len` fields are element counts.
struct ArenaHeader {
  std::uint32_t magic;
  std::uint32_t version;
  std::uint32_t n_colors;
  std::uint32_t n_vertices;
  std::uint32_t n_facets;
  std::uint32_t n_faces;
  std::uint32_t reserved0;
  std::uint32_t reserved1;
  std::uint64_t blob_bytes;

  std::uint64_t off_colors;
  std::uint64_t off_carriers;

  std::uint64_t off_bc_idx;    // u32 [n_vertices + 1]
  std::uint64_t off_bc_pool;   // u32 [bc_pool_len]
  std::uint64_t bc_pool_len;

  std::uint64_t off_facet_idx;   // u32 [n_facets + 1]
  std::uint64_t off_facet_pool;  // u32 [facet_pool_len]
  std::uint64_t facet_pool_len;

  std::uint64_t off_face_idx;   // u32 [n_faces + 1]
  std::uint64_t off_face_pool;  // u32 [face_pool_len]
  std::uint64_t face_pool_len;

  std::uint64_t off_face_bc_idx;   // u32 [n_faces + 1]
  std::uint64_t off_face_bc_pool;  // u32 [face_bc_pool_len]
  std::uint64_t face_bc_pool_len;

  std::uint64_t off_key_idx;   // u32 [n_vertices + 1]
  std::uint64_t off_key_pool;  // char [key_pool_len]
  std::uint64_t key_pool_len;

  std::uint64_t off_coord_idx;   // u32 [n_vertices + 1]
  std::uint64_t off_coord_pool;  // f64 [coord_pool_len]
  std::uint64_t coord_pool_len;
};

/// Flat, immutable, share-by-value view over an arena blob.  Copies are
/// cheap (a pointer, a span, and a shared_ptr keeping the backing alive --
/// a malloc'ed buffer for built arenas, an mmap for store-loaded ones).
class Arena {
 public:
  Arena() = default;

  /// Serializes `c` into a freshly allocated blob.
  [[nodiscard]] static Arena build(const ChromaticComplex& c);

  /// Adopts an existing blob (zero copy).  `backing` keeps the bytes alive
  /// for the lifetime of the arena and all its copies.  Throws
  /// std::invalid_argument if the header or any section is malformed --
  /// every section must land inside the blob and every vertex id must be
  /// dense (< n_vertices).
  [[nodiscard]] static Arena view(std::span<const std::byte> blob,
                                  std::shared_ptr<const void> backing);

  [[nodiscard]] bool valid() const noexcept { return header_ != nullptr; }
  [[nodiscard]] int n_colors() const noexcept {
    return static_cast<int>(header_->n_colors);
  }
  [[nodiscard]] std::uint32_t num_vertices() const noexcept {
    return header_->n_vertices;
  }
  [[nodiscard]] std::uint32_t num_facets() const noexcept {
    return header_->n_facets;
  }
  /// Deduplicated canonical faces of size >= 2 (see file comment).
  [[nodiscard]] std::uint32_t num_faces() const noexcept {
    return header_->n_faces;
  }

  [[nodiscard]] std::span<const std::uint8_t> colors() const noexcept;
  [[nodiscard]] std::span<const std::uint32_t> carrier_masks() const noexcept;
  [[nodiscard]] std::span<const VertexId> base_carrier(VertexId v) const;
  [[nodiscard]] std::span<const VertexId> facet(std::uint32_t f) const;
  [[nodiscard]] std::span<const VertexId> face(std::uint32_t i) const;
  [[nodiscard]] std::span<const VertexId> face_base_carrier(
      std::uint32_t i) const;
  [[nodiscard]] std::string_view key(VertexId v) const;
  [[nodiscard]] std::span<const double> coords(VertexId v) const;

  /// The whole serialized blob (what ChainStore writes to disk).
  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    return blob_;
  }

  /// Reconstructs the ChromaticComplex this arena was built from; the
  /// result fingerprints identically to the original.
  [[nodiscard]] ChromaticComplex materialize() const;

 private:
  template <typename T>
  [[nodiscard]] std::span<const T> section(std::uint64_t off,
                                           std::uint64_t len) const noexcept {
    return {reinterpret_cast<const T*>(blob_.data() + off),
            static_cast<std::size_t>(len)};
  }
  [[nodiscard]] std::span<const std::uint32_t> csr_idx(
      std::uint64_t off, std::uint64_t n) const noexcept {
    return section<std::uint32_t>(off, n + 1);
  }

  const ArenaHeader* header_ = nullptr;
  std::span<const std::byte> blob_;
  std::shared_ptr<const void> backing_;
};

}  // namespace wfc::topo
