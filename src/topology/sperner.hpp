// Sperner-lemma machinery (used by §5's no-holes reasoning and by the
// (n+1, n)-set-consensus impossibility witness in the evaluation).
//
// A Sperner labeling of a subdivided simplex assigns each vertex a color
// drawn from its carrier.  Sperner's lemma: the number of panchromatic
// facets is odd -- in particular nonzero.  A wait-free protocol deciding
// (n+1, n)-set consensus would induce a Sperner labeling of SDS^b(s^n) with
// no panchromatic facet (every processor adopts a participating processor's
// id, at most n distinct), a contradiction.  The impossibility therefore
// holds for *every* level b, which is what bench_sperner demonstrates.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "topology/complex.hpp"

namespace wfc::topo {

/// label[v] is the color assigned to vertex v.
using Labeling = std::vector<Color>;

/// True iff label[v] is in carrier(v) for every vertex.
bool is_sperner_labeling(const ChromaticComplex& c, const Labeling& label);

/// Number of facets whose label multiset covers all base colors.
std::uint64_t count_panchromatic(const ChromaticComplex& c,
                                 const Labeling& label);

/// A uniformly random Sperner labeling.
Labeling random_sperner_labeling(const ChromaticComplex& c, Rng& rng);

/// The labeling induced by "adopt the smallest color you saw": label each
/// vertex by the minimum color of its carrier.  Always Sperner.
Labeling min_carrier_labeling(const ChromaticComplex& c);

/// Sperner's lemma checked exhaustively on `c`: returns true iff the
/// panchromatic count of `label` is odd.
bool sperner_parity_holds(const ChromaticComplex& c, const Labeling& label);

}  // namespace wfc::topo
