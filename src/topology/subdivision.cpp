#include "topology/subdivision.hpp"

#include <algorithm>
#include <array>
#include <sstream>

#include "topology/ordered_partition.hpp"

namespace wfc::topo {

namespace {

/// Barycenter of the base-complex vertices listed in `verts` (coordinates
/// must be present and of equal length).
std::vector<double> barycenter(const ChromaticComplex& c,
                               std::span<const VertexId> verts) {
  WFC_CHECK(!verts.empty(), "barycenter of empty set");
  const std::size_t d = c.vertex(verts.front()).coords.size();
  std::vector<double> out(d, 0.0);
  for (VertexId v : verts) {
    const auto& coords = c.vertex(v).coords;
    WFC_CHECK(coords.size() == d, "barycenter: mixed coordinate dimensions");
    for (std::size_t i = 0; i < d; ++i) out[i] += coords[i];
  }
  for (double& x : out) x /= static_cast<double>(verts.size());
  return out;
}

bool has_embedding(const ChromaticComplex& c) {
  for (VertexId v = 0; v < c.num_vertices(); ++v) {
    if (c.vertex(v).coords.empty()) return false;
  }
  return c.num_vertices() > 0;
}

}  // namespace

std::uint64_t fubini(int k) {
  WFC_REQUIRE(k >= 0 && k <= 20, "fubini: k out of range");
  // a(k) = sum_{j=1..k} C(k, j) a(k-j), a(0) = 1.
  std::vector<std::uint64_t> a(static_cast<std::size_t>(k) + 1, 0);
  a[0] = 1;
  for (int m = 1; m <= k; ++m) {
    std::uint64_t binom = 1;  // C(m, j) built incrementally
    for (int j = 1; j <= m; ++j) {
      binom = binom * static_cast<std::uint64_t>(m - j + 1) /
              static_cast<std::uint64_t>(j);
      a[static_cast<std::size_t>(m)] +=
          binom * a[static_cast<std::size_t>(m - j)];
    }
  }
  return a[static_cast<std::size_t>(k)];
}

std::string sds_vertex_key(Color color, const Simplex& view) {
  std::ostringstream os;
  os << color << '@';
  for (std::size_t i = 0; i < view.size(); ++i) {
    if (i) os << ',';
    os << view[i];
  }
  return os.str();
}

ChromaticComplex standard_chromatic_subdivision(const ChromaticComplex& c) {
  WFC_REQUIRE(c.num_facets() > 0, "SDS: empty complex");
  const bool geom = has_embedding(c);
  ChromaticComplex out(c.n_colors());

  // Interns the SDS vertex (color of base vertex `own`, view `sigma`).
  auto intern = [&](VertexId own, const Simplex& sigma) -> VertexId {
    const Color color = c.vertex(own).color;
    std::string key = sds_vertex_key(color, sigma);
    if (VertexId v = out.find_vertex(key); v != kNoVertex) return v;
    std::vector<double> coords;
    if (geom) {
      if (sigma.size() == 1) {
        coords = c.vertex(own).coords;
      } else {
        // Paper §3.6: midpoint of barycenter(sigma) and the barycenter of
        // the face of sigma opposite the vertex of this color.
        Simplex opposite;
        opposite.reserve(sigma.size() - 1);
        for (VertexId v : sigma) {
          if (v != own) opposite.push_back(v);
        }
        const std::vector<double> a = barycenter(c, sigma);
        const std::vector<double> b = barycenter(c, opposite);
        coords.resize(a.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
          coords[i] = 0.5 * (a[i] + b[i]);
        }
      }
    }
    return out.add_vertex(color, std::move(key), c.carrier_of(sigma),
                          std::move(coords), c.base_carrier_of(sigma));
  };

  for (const Simplex& facet : c.facets()) {
    const int k = static_cast<int>(facet.size());
    for_each_ordered_partition(k, [&](const OrderedPartition& blocks) {
      Simplex sds_facet;
      sds_facet.reserve(facet.size());
      Simplex prefix;  // union of blocks so far, canonical
      for (const std::vector<int>& block : blocks) {
        for (int pos : block) prefix.push_back(facet[static_cast<std::size_t>(pos)]);
        std::sort(prefix.begin(), prefix.end());
        for (int pos : block) {
          sds_facet.push_back(intern(facet[static_cast<std::size_t>(pos)], prefix));
        }
      }
      out.add_facet(make_simplex(std::move(sds_facet)));
    });
  }
  return out;
}

ChromaticComplex iterated_sds(const ChromaticComplex& c, int k) {
  WFC_REQUIRE(k >= 0, "iterated_sds: negative level");
  if (k == 0) return c;
  ChromaticComplex cur = standard_chromatic_subdivision(c);
  for (int i = 1; i < k; ++i) cur = standard_chromatic_subdivision(cur);
  return cur;
}

ChromaticComplex barycentric_subdivision(const ChromaticComplex& c) {
  WFC_REQUIRE(c.num_facets() > 0, "Bsd: empty complex");
  WFC_REQUIRE(c.dimension() + 1 <= c.n_colors(),
              "Bsd: needs n_colors >= dim+1 for the dimension coloring");
  const bool geom = has_embedding(c);
  ChromaticComplex out(c.n_colors());

  auto intern = [&](const Simplex& sigma) -> VertexId {
    // Barycenter vertex of face sigma; colored by dim(sigma).
    std::string key = "b@" + to_string(sigma);
    if (VertexId v = out.find_vertex(key); v != kNoVertex) return v;
    std::vector<double> coords;
    if (geom) coords = barycenter(c, sigma);
    return out.add_vertex(static_cast<Color>(sigma.size() - 1), std::move(key),
                          c.carrier_of(sigma), std::move(coords),
                          c.base_carrier_of(sigma));
  };

  for (const Simplex& facet : c.facets()) {
    // Maximal flags of the face lattice of `facet` <-> permutations of its
    // vertices (prefix chains).
    std::vector<VertexId> perm(facet.begin(), facet.end());
    std::sort(perm.begin(), perm.end());
    do {
      Simplex flag_facet;
      Simplex prefix;
      for (VertexId v : perm) {
        prefix.push_back(v);
        Simplex canon = prefix;
        std::sort(canon.begin(), canon.end());
        flag_facet.push_back(intern(canon));
      }
      out.add_facet(make_simplex(std::move(flag_facet)));
    } while (std::next_permutation(perm.begin(), perm.end()));
  }
  return out;
}

ChromaticComplex iterated_bsd(const ChromaticComplex& c, int k) {
  WFC_REQUIRE(k >= 0, "iterated_bsd: negative level");
  if (k == 0) return c;
  ChromaticComplex cur = barycentric_subdivision(c);
  for (int i = 1; i < k; ++i) cur = barycentric_subdivision(cur);
  return cur;
}

}  // namespace wfc::topo
