#include "topology/complex.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

namespace wfc::topo {

Simplex make_simplex(std::vector<VertexId> verts) {
  std::sort(verts.begin(), verts.end());
  verts.erase(std::unique(verts.begin(), verts.end()), verts.end());
  return verts;
}

std::string to_string(const Simplex& s) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i) os << ' ';
    os << s[i];
  }
  os << ']';
  return os.str();
}

ChromaticComplex::ChromaticComplex(int n_colors) : n_colors_(n_colors) {
  WFC_REQUIRE(n_colors >= 1 && n_colors <= kMaxColors,
              "ChromaticComplex: color count out of range");
}

VertexId ChromaticComplex::add_vertex(Color color, std::string key,
                                      ColorSet carrier,
                                      std::vector<double> coords,
                                      std::optional<Simplex> base_carrier) {
  WFC_REQUIRE(color >= 0 && color < n_colors_, "add_vertex: bad color");
  WFC_REQUIRE(carrier.subset_of(all_colors()), "add_vertex: bad carrier");
  WFC_REQUIRE(!key_index_.contains(key), "add_vertex: duplicate key " + key);
  const VertexId id = static_cast<VertexId>(vertices_.size());
  key_index_.emplace(key, id);
  Simplex bc = base_carrier.has_value() ? std::move(*base_carrier)
                                        : Simplex{id};
  vertices_.push_back(VertexData{color, std::move(key), carrier,
                                 std::move(coords), std::move(bc)});
  vertex_facets_.emplace_back();
  return id;
}

VertexId ChromaticComplex::find_vertex(std::string_view key) const {
  auto it = key_index_.find(std::string(key));
  return it == key_index_.end() ? kNoVertex : it->second;
}

VertexId ChromaticComplex::intern_vertex(Color color, std::string key,
                                         ColorSet carrier,
                                         std::vector<double> coords,
                                         std::optional<Simplex> base_carrier) {
  if (VertexId v = find_vertex(key); v != kNoVertex) {
    WFC_CHECK(vertices_[v].color == color,
              "intern_vertex: color mismatch for key " + key);
    WFC_CHECK(vertices_[v].carrier == carrier,
              "intern_vertex: carrier mismatch for key " + key);
    return v;
  }
  return add_vertex(color, std::move(key), carrier, std::move(coords),
                    std::move(base_carrier));
}

std::size_t ChromaticComplex::add_facet(Simplex facet) {
  WFC_REQUIRE(!facet.empty(), "add_facet: empty facet");
  WFC_REQUIRE(std::is_sorted(facet.begin(), facet.end()) &&
                  std::adjacent_find(facet.begin(), facet.end()) == facet.end(),
              "add_facet: facet must be sorted and duplicate-free");
  ColorSet colors;
  for (VertexId v : facet) {
    WFC_REQUIRE(v < vertices_.size(), "add_facet: unknown vertex");
    const Color c = vertices_[v].color;
    WFC_REQUIRE(!colors.contains(c),
                "add_facet: chromatic complexes need distinct colors");
    colors = colors.with(c);
  }
  std::string key = to_string(facet);
  if (auto it = facet_index_.find(key); it != facet_index_.end()) {
    return it->second;
  }
  const auto idx = static_cast<std::uint32_t>(facets_.size());
  facet_index_.emplace(std::move(key), idx);
  for (VertexId v : facet) vertex_facets_[v].push_back(idx);
  facets_.push_back(std::move(facet));
  return idx;
}

const VertexData& ChromaticComplex::vertex(VertexId v) const {
  WFC_REQUIRE(v < vertices_.size(), "vertex: id out of range");
  return vertices_[v];
}

int ChromaticComplex::dimension() const noexcept {
  int d = -1;
  for (const Simplex& f : facets_) {
    d = std::max(d, static_cast<int>(f.size()) - 1);
  }
  return d;
}

bool ChromaticComplex::is_pure() const noexcept {
  const int d = dimension();
  for (const Simplex& f : facets_) {
    if (static_cast<int>(f.size()) - 1 != d) return false;
  }
  return true;
}

ColorSet ChromaticComplex::colors_of(std::span<const VertexId> s) const {
  ColorSet out;
  for (VertexId v : s) out = out.with(vertex(v).color);
  return out;
}

ColorSet ChromaticComplex::carrier_of(std::span<const VertexId> s) const {
  ColorSet out;
  for (VertexId v : s) out = out.unite(vertex(v).carrier);
  return out;
}

Simplex ChromaticComplex::base_carrier_of(std::span<const VertexId> s) const {
  Simplex out;
  for (VertexId v : s) {
    const Simplex& bc = vertex(v).base_carrier;
    out.insert(out.end(), bc.begin(), bc.end());
  }
  return make_simplex(std::move(out));
}

bool ChromaticComplex::contains_simplex(const Simplex& s) const {
  if (s.empty()) return false;
  for (VertexId v : s) {
    if (v >= vertices_.size()) return false;
  }
  // Scan the facets of the vertex with the fewest incident facets.
  VertexId best = s[0];
  for (VertexId v : s) {
    if (vertex_facets_[v].size() < vertex_facets_[best].size()) best = v;
  }
  for (std::uint32_t fi : vertex_facets_[best]) {
    const Simplex& f = facets_[fi];
    if (std::includes(f.begin(), f.end(), s.begin(), s.end())) return true;
  }
  return false;
}

const std::vector<std::uint32_t>& ChromaticComplex::facets_containing(
    VertexId v) const {
  WFC_REQUIRE(v < vertices_.size(), "facets_containing: id out of range");
  return vertex_facets_[v];
}

ChromaticComplex ChromaticComplex::restrict_to_carrier(ColorSet face) const {
  ChromaticComplex out(n_colors_);
  std::vector<VertexId> remap(vertices_.size(), kNoVertex);
  auto map_vertex = [&](VertexId v) {
    if (remap[v] == kNoVertex) {
      const VertexData& d = vertices_[v];
      remap[v] = out.add_vertex(d.color, d.key, d.carrier, d.coords,
                                d.base_carrier);
    }
    return remap[v];
  };
  // From each facet keep the maximal sub-face carried by `face`, then drop
  // candidates contained in another candidate so the result lists only
  // genuine facets of the restricted subcomplex.
  std::vector<Simplex> candidates;
  for (const Simplex& f : facets_) {
    Simplex kept;
    for (VertexId v : f) {
      if (vertices_[v].carrier.subset_of(face)) kept.push_back(v);
    }
    if (!kept.empty()) candidates.push_back(std::move(kept));
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Simplex& a, const Simplex& b) {
              return a.size() > b.size();
            });
  std::vector<Simplex> maximal;
  for (const Simplex& cand : candidates) {
    bool dominated = false;
    for (const Simplex& big : maximal) {
      if (std::includes(big.begin(), big.end(), cand.begin(), cand.end())) {
        dominated = true;
        break;
      }
    }
    if (!dominated) maximal.push_back(cand);
  }
  for (const Simplex& f : maximal) {
    Simplex mapped;
    mapped.reserve(f.size());
    for (VertexId v : f) mapped.push_back(map_vertex(v));
    out.add_facet(make_simplex(std::move(mapped)));
  }
  return out;
}

std::vector<VertexId> ChromaticComplex::vertices_with_color(Color c) const {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < vertices_.size(); ++v) {
    if (vertices_[v].color == c) out.push_back(v);
  }
  return out;
}

long long ChromaticComplex::euler_characteristic() const {
  long long chi = 0;
  for_each_face([&](const Simplex& s) {
    chi += (s.size() % 2 == 1) ? 1 : -1;
  });
  return chi;
}

ChromaticComplex base_simplex(int n_plus_1) {
  WFC_REQUIRE(n_plus_1 >= 1 && n_plus_1 <= kMaxColors,
              "base_simplex: size out of range");
  ChromaticComplex c(n_plus_1);
  Simplex facet;
  for (Color i = 0; i < n_plus_1; ++i) {
    std::vector<double> coords(static_cast<std::size_t>(n_plus_1), 0.0);
    coords[static_cast<std::size_t>(i)] = 1.0;
    facet.push_back(c.add_vertex(i, "P" + std::to_string(i),
                                 ColorSet::single(i), std::move(coords)));
  }
  c.add_facet(std::move(facet));
  return c;
}

}  // namespace wfc::topo
