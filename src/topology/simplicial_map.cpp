#include "topology/simplicial_map.hpp"

#include <algorithm>

namespace wfc::topo {

SimplicialMap::SimplicialMap(const ChromaticComplex& from,
                             const ChromaticComplex& to)
    : from_(&from), to_(&to), image_(from.num_vertices(), kNoVertex) {}

void SimplicialMap::set(VertexId v, VertexId image) {
  WFC_REQUIRE(v < from_->num_vertices(), "SimplicialMap::set: bad source");
  WFC_REQUIRE(image < to_->num_vertices(), "SimplicialMap::set: bad image");
  image_[v] = image;
}

VertexId SimplicialMap::at(VertexId v) const {
  WFC_REQUIRE(v < from_->num_vertices(), "SimplicialMap::at: bad source");
  return image_[v];
}

bool SimplicialMap::is_total() const noexcept {
  return std::find(image_.begin(), image_.end(), kNoVertex) == image_.end();
}

Simplex SimplicialMap::image_of(const Simplex& s) const {
  Simplex out;
  out.reserve(s.size());
  for (VertexId v : s) {
    WFC_REQUIRE(image_[v] != kNoVertex, "image_of: map not defined on vertex");
    out.push_back(image_[v]);
  }
  return make_simplex(std::move(out));
}

bool SimplicialMap::is_simplicial() const {
  if (!is_total()) return false;
  for (const Simplex& f : from_->facets()) {
    if (!to_->contains_simplex(image_of(f))) return false;
  }
  return true;
}

bool SimplicialMap::is_color_preserving() const {
  for (VertexId v = 0; v < from_->num_vertices(); ++v) {
    if (image_[v] == kNoVertex) return false;
    if (from_->vertex(v).color != to_->vertex(image_[v]).color) return false;
  }
  return true;
}

bool SimplicialMap::is_dimension_preserving() const {
  if (!is_total()) return false;
  for (const Simplex& f : from_->facets()) {
    if (image_of(f).size() != f.size()) return false;
  }
  return true;
}

bool SimplicialMap::is_carrier_monotone() const {
  for (VertexId v = 0; v < from_->num_vertices(); ++v) {
    if (image_[v] == kNoVertex) return false;
    if (!to_->vertex(image_[v]).carrier.subset_of(from_->vertex(v).carrier)) {
      return false;
    }
  }
  return true;
}

bool SimplicialMap::is_carrier_preserving_strict() const {
  for (VertexId v = 0; v < from_->num_vertices(); ++v) {
    if (image_[v] == kNoVertex) return false;
    if (to_->vertex(image_[v]).carrier != from_->vertex(v).carrier) {
      return false;
    }
  }
  return true;
}

SimplicialMap compose(const SimplicialMap& f, const SimplicialMap& g) {
  WFC_REQUIRE(&f.to() == &g.from(),
              "compose: codomain of f must be the domain of g");
  SimplicialMap out(f.from(), g.to());
  for (VertexId v = 0; v < f.from().num_vertices(); ++v) {
    const VertexId mid = f.at(v);
    WFC_REQUIRE(mid != kNoVertex, "compose: f is partial");
    const VertexId img = g.at(mid);
    WFC_REQUIRE(img != kNoVertex, "compose: g is partial");
    out.set(v, img);
  }
  return out;
}

}  // namespace wfc::topo
