// Structural queries from §2: star, link, boundary, pseudomanifold and
// connectivity checks.  These back the paper's Lemma 2.2 ("a subdivided
// simplex is a nice structure") with machine-checkable surrogates:
//   * a subdivided n-simplex is a pseudomanifold-with-boundary: each
//     (n-1)-face lies in exactly 2 facets (interior) or 1 (boundary, i.e.
//     carrier of dimension n-1);
//   * it is connected and has Euler characteristic 1 (contractible);
//   * links of interior vertices in dimension 2 are cycles.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/complex.hpp"

namespace wfc::topo {

/// Subcomplex of facets containing `s` (the closed star).
ChromaticComplex closed_star(const ChromaticComplex& c, const Simplex& s);

/// Link of `s`: for each facet containing s, the face facet \ s.
ChromaticComplex link(const ChromaticComplex& c, const Simplex& s);

struct PseudomanifoldReport {
  bool pure = false;
  bool ridge_degree_ok = false;  // every (n-1)-face in 1 or 2 facets
  bool boundary_matches_carrier = false;  // degree-1 ridges have proper carrier
  std::size_t interior_ridges = 0;
  std::size_t boundary_ridges = 0;

  [[nodiscard]] bool ok() const noexcept {
    return pure && ridge_degree_ok && boundary_matches_carrier;
  }
};

/// Checks that a subdivision of s^n is a pseudomanifold with the expected
/// boundary: interior ridges (full carrier) in exactly two facets, boundary
/// ridges (carrier of size n) in exactly one.
PseudomanifoldReport check_pseudomanifold(const ChromaticComplex& c);

/// Number of connected components (via shared vertices).
int num_connected_components(const ChromaticComplex& c);

/// True if the 1-skeleton of link(v) is a single cycle -- the expected link
/// of an interior vertex of a subdivided 2-simplex.
bool link_is_cycle(const ChromaticComplex& c, VertexId v);

/// The boundary complex of a pure n-dimensional pseudomanifold-with-
/// boundary: the (n-1)-faces contained in exactly one facet (§2's
/// boundary(A(s^n)), an (n-1)-sphere for subdivided simplices).
ChromaticComplex boundary_complex(const ChromaticComplex& c);

/// A copy of `c` without facet `index` (its proper faces survive through
/// neighbouring facets).  Used to build "punctured" targets whose hole
/// makes agreement tasks unsolvable -- the complement of Lemma 2.2.
ChromaticComplex drop_facet(const ChromaticComplex& c, std::size_t index);

}  // namespace wfc::topo
