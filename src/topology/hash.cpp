#include "topology/hash.hpp"

#include <string>

namespace wfc::topo {

std::uint64_t fnv1a(std::uint64_t h, std::string_view bytes) {
  for (unsigned char ch : bytes) {
    h ^= ch;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t complex_fingerprint(const ChromaticComplex& c) {
  // Keep this rendering stable: saved decision maps (tasks/map_io) embed the
  // resulting value and are rejected when it changes.
  std::uint64_t h = kFnvOffset;
  h = fnv1a(h, "colors:" + std::to_string(c.n_colors()));
  for (VertexId v = 0; v < c.num_vertices(); ++v) {
    const VertexData& d = c.vertex(v);
    h = fnv1a(h, "v:" + std::to_string(d.color) + ":" + d.key + ":" +
                     std::to_string(d.carrier.mask()));
  }
  for (const Simplex& f : c.facets()) {
    h = fnv1a(h, "f:" + to_string(f));
  }
  return h;
}

}  // namespace wfc::topo
