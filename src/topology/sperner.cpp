#include "topology/sperner.hpp"

namespace wfc::topo {

bool is_sperner_labeling(const ChromaticComplex& c, const Labeling& label) {
  if (label.size() != c.num_vertices()) return false;
  for (VertexId v = 0; v < c.num_vertices(); ++v) {
    const Color l = label[v];
    if (l < 0 || l >= c.n_colors()) return false;
    if (!c.vertex(v).carrier.contains(l)) return false;
  }
  return true;
}

std::uint64_t count_panchromatic(const ChromaticComplex& c,
                                 const Labeling& label) {
  WFC_REQUIRE(label.size() == c.num_vertices(),
              "count_panchromatic: labeling size mismatch");
  const ColorSet all = c.all_colors();
  std::uint64_t count = 0;
  for (const Simplex& f : c.facets()) {
    ColorSet seen;
    for (VertexId v : f) seen = seen.with(label[v]);
    if (seen == all) ++count;
  }
  return count;
}

Labeling random_sperner_labeling(const ChromaticComplex& c, Rng& rng) {
  Labeling out(c.num_vertices(), 0);
  for (VertexId v = 0; v < c.num_vertices(); ++v) {
    const ColorSet carrier = c.vertex(v).carrier;
    WFC_REQUIRE(!carrier.empty(), "random_sperner_labeling: empty carrier");
    std::vector<Color> options;
    for (Color col : carrier) options.push_back(col);
    out[v] = options[rng.below(options.size())];
  }
  return out;
}

Labeling min_carrier_labeling(const ChromaticComplex& c) {
  Labeling out(c.num_vertices(), 0);
  for (VertexId v = 0; v < c.num_vertices(); ++v) {
    out[v] = c.vertex(v).carrier.min();
  }
  return out;
}

bool sperner_parity_holds(const ChromaticComplex& c, const Labeling& label) {
  return count_panchromatic(c, label) % 2 == 1;
}

}  // namespace wfc::topo
