#include "topology/structure.hpp"

#include <algorithm>
#include <map>
#include <numeric>

namespace wfc::topo {

namespace {

/// Copies the vertices used by `facets` of `c` into a fresh complex and adds
/// the facets; preserves colors/keys/carriers/coords.
ChromaticComplex subcomplex_from_facets(const ChromaticComplex& c,
                                        const std::vector<Simplex>& facets) {
  ChromaticComplex out(c.n_colors());
  std::vector<VertexId> remap(c.num_vertices(), kNoVertex);
  for (const Simplex& f : facets) {
    Simplex mapped;
    mapped.reserve(f.size());
    for (VertexId v : f) {
      if (remap[v] == kNoVertex) {
        const VertexData& d = c.vertex(v);
        remap[v] =
            out.add_vertex(d.color, d.key, d.carrier, d.coords, d.base_carrier);
      }
      mapped.push_back(remap[v]);
    }
    out.add_facet(make_simplex(std::move(mapped)));
  }
  return out;
}

}  // namespace

ChromaticComplex closed_star(const ChromaticComplex& c, const Simplex& s) {
  WFC_REQUIRE(!s.empty(), "closed_star: empty simplex");
  std::vector<Simplex> kept;
  for (const Simplex& f : c.facets()) {
    if (std::includes(f.begin(), f.end(), s.begin(), s.end())) kept.push_back(f);
  }
  WFC_REQUIRE(!kept.empty(), "closed_star: simplex not in complex");
  return subcomplex_from_facets(c, kept);
}

ChromaticComplex link(const ChromaticComplex& c, const Simplex& s) {
  WFC_REQUIRE(!s.empty(), "link: empty simplex");
  std::vector<Simplex> kept;
  for (const Simplex& f : c.facets()) {
    if (!std::includes(f.begin(), f.end(), s.begin(), s.end())) continue;
    Simplex rest;
    std::set_difference(f.begin(), f.end(), s.begin(), s.end(),
                        std::back_inserter(rest));
    if (!rest.empty()) kept.push_back(std::move(rest));
  }
  WFC_REQUIRE(!kept.empty(), "link: simplex not in complex or is a facet");
  return subcomplex_from_facets(c, kept);
}

PseudomanifoldReport check_pseudomanifold(const ChromaticComplex& c) {
  PseudomanifoldReport rep;
  rep.pure = c.is_pure();
  if (!rep.pure) return rep;
  const int n = c.dimension();
  const ColorSet all = c.all_colors();

  // Count, for every ridge ((n-1)-face), how many facets contain it.
  std::map<Simplex, int> ridge_count;
  for (const Simplex& f : c.facets()) {
    for (std::size_t drop = 0; drop < f.size(); ++drop) {
      Simplex ridge;
      ridge.reserve(f.size() - 1);
      for (std::size_t i = 0; i < f.size(); ++i) {
        if (i != drop) ridge.push_back(f[i]);
      }
      ++ridge_count[ridge];
    }
  }

  rep.ridge_degree_ok = true;
  rep.boundary_matches_carrier = true;
  for (const auto& [ridge, count] : ridge_count) {
    if (count != 1 && count != 2) {
      rep.ridge_degree_ok = false;
      continue;
    }
    const ColorSet carrier = c.carrier_of(ridge);
    if (count == 2) {
      ++rep.interior_ridges;
    } else {
      ++rep.boundary_ridges;
      // A degree-1 ridge must lie on the geometric boundary: its carrier is
      // a proper face (at most n of the n+1 base colors).
      if (carrier == all && n + 1 == c.n_colors()) {
        rep.boundary_matches_carrier = false;
      }
    }
  }
  return rep;
}

int num_connected_components(const ChromaticComplex& c) {
  const std::size_t n = c.num_vertices();
  std::vector<std::size_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const Simplex& f : c.facets()) {
    for (std::size_t i = 1; i < f.size(); ++i) {
      parent[find(f[i])] = find(f[0]);
    }
  }
  int components = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (find(v) == v) ++components;
  }
  return components;
}

ChromaticComplex boundary_complex(const ChromaticComplex& c) {
  WFC_REQUIRE(c.is_pure(), "boundary_complex: complex must be pure");
  std::map<Simplex, int> ridge_count;
  for (const Simplex& f : c.facets()) {
    for (std::size_t drop = 0; drop < f.size(); ++drop) {
      Simplex ridge;
      ridge.reserve(f.size() - 1);
      for (std::size_t i = 0; i < f.size(); ++i) {
        if (i != drop) ridge.push_back(f[i]);
      }
      ++ridge_count[ridge];
    }
  }
  std::vector<Simplex> boundary;
  for (const auto& [ridge, count] : ridge_count) {
    if (count == 1) boundary.push_back(ridge);
  }
  WFC_REQUIRE(!boundary.empty(), "boundary_complex: complex is closed");
  return subcomplex_from_facets(c, boundary);
}

ChromaticComplex drop_facet(const ChromaticComplex& c, std::size_t index) {
  WFC_REQUIRE(index < c.num_facets(), "drop_facet: index out of range");
  std::vector<Simplex> kept;
  kept.reserve(c.num_facets() - 1);
  for (std::size_t i = 0; i < c.num_facets(); ++i) {
    if (i != index) kept.push_back(c.facets()[i]);
  }
  WFC_REQUIRE(!kept.empty(), "drop_facet: complex would become empty");
  return subcomplex_from_facets(c, kept);
}

bool link_is_cycle(const ChromaticComplex& c, VertexId v) {
  const ChromaticComplex lk = link(c, Simplex{v});
  if (lk.dimension() != 1 || !lk.is_pure()) return false;
  // A cycle: connected, and every vertex has degree exactly 2.
  std::vector<int> degree(lk.num_vertices(), 0);
  for (const Simplex& e : lk.facets()) {
    ++degree[e[0]];
    ++degree[e[1]];
  }
  for (int d : degree) {
    if (d != 2) return false;
  }
  return num_connected_components(lk) == 1;
}

}  // namespace wfc::topo
