// Chromatic simplicial complexes (paper §2).
//
// A complex stores an interned vertex table and a facet list.  Faces are
// implicit: a simplex belongs to the complex iff it is a subset of a facet.
// Every vertex carries:
//   * a color          -- processor id, identified with a corner of the base
//                         simplex s^n (paper §3.1);
//   * a string key     -- canonical identity used for interning.  The
//                         protocol runtime (src/protocol) generates the same
//                         keys from actual executions, which lets a running
//                         processor locate its own vertex in SDS^b(I);
//   * a carrier        -- the face of the *base* complex (as a ColorSet of
//                         base colors) that contains the vertex.  carrier()
//                         is the paper's carrier(v, s^n) for subdivisions of
//                         a simplex, and carrier colors for general inputs;
//   * coordinates      -- optional geometric embedding, barycentric with
//                         respect to the base simplex s^n.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/assert.hpp"
#include "common/color_set.hpp"

namespace wfc::topo {

using VertexId = std::uint32_t;
inline constexpr VertexId kNoVertex = std::numeric_limits<VertexId>::max();

/// A simplex is a sorted vector of distinct vertex ids.
using Simplex = std::vector<VertexId>;

/// Sorts and deduplicates a vertex list into canonical simplex form.
Simplex make_simplex(std::vector<VertexId> verts);

struct VertexData {
  Color color = 0;
  std::string key;
  ColorSet carrier;
  std::vector<double> coords;  // empty when the complex has no embedding
  // The carrier as a simplex of the ORIGINAL base complex (vertex ids of
  // that complex), maintained across iterated subdivisions.  For a base
  // complex this is {self}.  Needed when the base has several vertices per
  // color (general input complexes I^n): the ColorSet carrier only records
  // colors, but task maps Delta are indexed by input simplices (§3.2).
  Simplex base_carrier;
};

class ChromaticComplex {
 public:
  /// `n_colors` is the number of base colors (processors); vertices may use
  /// colors 0 .. n_colors-1 and carriers are subsets of full(n_colors).
  explicit ChromaticComplex(int n_colors);

  [[nodiscard]] int n_colors() const noexcept { return n_colors_; }

  /// All base colors, {0, ..., n_colors-1}.
  [[nodiscard]] ColorSet all_colors() const { return ColorSet::full(n_colors_); }

  /// Adds a vertex; `key` must be unique within the complex.  When
  /// `base_carrier` is omitted it defaults to {self} (the vertex is its own
  /// carrier -- correct for base complexes, wrong for subdivisions, which
  /// always pass it explicitly).
  VertexId add_vertex(Color color, std::string key, ColorSet carrier,
                      std::vector<double> coords = {},
                      std::optional<Simplex> base_carrier = std::nullopt);

  /// Interned lookup: returns the vertex with this key, or kNoVertex.
  [[nodiscard]] VertexId find_vertex(std::string_view key) const;

  /// Like add_vertex but returns the existing vertex if the key is taken
  /// (asserting that color and carrier agree).
  VertexId intern_vertex(Color color, std::string key, ColorSet carrier,
                         std::vector<double> coords = {},
                         std::optional<Simplex> base_carrier = std::nullopt);

  /// Registers a maximal simplex.  Vertices must exist and have pairwise
  /// distinct colors (chromatic complexes only contain rainbow simplices).
  /// Duplicate facets are ignored.  Returns the facet index.
  std::size_t add_facet(Simplex facet);

  [[nodiscard]] std::size_t num_vertices() const noexcept {
    return vertices_.size();
  }
  [[nodiscard]] std::size_t num_facets() const noexcept {
    return facets_.size();
  }
  [[nodiscard]] const VertexData& vertex(VertexId v) const;
  [[nodiscard]] const std::vector<Simplex>& facets() const noexcept {
    return facets_;
  }

  /// Largest facet dimension (|facet| - 1); -1 for an empty complex.
  [[nodiscard]] int dimension() const noexcept;

  /// True if every facet has exactly dim+1 vertices.
  [[nodiscard]] bool is_pure() const noexcept;

  /// Set of colors appearing in `s`.
  [[nodiscard]] ColorSet colors_of(std::span<const VertexId> s) const;

  /// Union of the carriers of the vertices of `s` -- the paper's
  /// carrier(s, base) for subdivision complexes.
  [[nodiscard]] ColorSet carrier_of(std::span<const VertexId> s) const;

  /// Union of the base carriers of the vertices of `s`: the carrier of `s`
  /// as a simplex of the original input complex.
  [[nodiscard]] Simplex base_carrier_of(std::span<const VertexId> s) const;

  /// True iff `s` (canonical form) is a face of some facet.
  [[nodiscard]] bool contains_simplex(const Simplex& s) const;

  /// Indices of facets containing vertex v.
  [[nodiscard]] const std::vector<std::uint32_t>& facets_containing(
      VertexId v) const;

  /// Enumerates every nonempty face of every facet exactly once, in
  /// canonical form.  fn(const Simplex&).  Cost is exponential in the
  /// dimension, which is <= 7 throughout this library.
  template <typename Fn>
  void for_each_face(Fn&& fn) const;

  /// The subcomplex of simplices whose carrier is contained in `face`
  /// (the paper's A(s^q), the face of a subdivided simplex).
  [[nodiscard]] ChromaticComplex restrict_to_carrier(ColorSet face) const;

  /// Returns ids of all vertices with the given color.
  [[nodiscard]] std::vector<VertexId> vertices_with_color(Color c) const;

  /// Euler characteristic over all faces (used by sanity tests: a subdivided
  /// simplex is contractible, so chi == 1).
  [[nodiscard]] long long euler_characteristic() const;

 private:
  int n_colors_;
  std::vector<VertexData> vertices_;
  std::vector<Simplex> facets_;
  std::unordered_map<std::string, VertexId> key_index_;
  std::unordered_map<std::string, std::uint32_t> facet_index_;  // dedupe
  std::vector<std::vector<std::uint32_t>> vertex_facets_;
};

/// The base chromatic simplex s^n with n_plus_1 vertices: vertex i has color
/// i, key "P<i>", carrier {i}, and unit barycentric coordinates e_i.
ChromaticComplex base_simplex(int n_plus_1);

/// Serializes a simplex's vertex ids, e.g. "[0 3 7]" (debugging aid).
std::string to_string(const Simplex& s);

template <typename Fn>
void ChromaticComplex::for_each_face(Fn&& fn) const {
  // Each face is emitted from the lexicographically-least facet containing
  // it; a hash set would also work but this avoids allocation churn.
  std::unordered_map<std::string, bool> seen;
  for (const Simplex& f : facets_) {
    const std::size_t k = f.size();
    WFC_CHECK(k <= 24, "for_each_face: facet too large to enumerate");
    for (std::uint32_t mask = 1; mask < (1u << k); ++mask) {
      Simplex face;
      face.reserve(static_cast<std::size_t>(std::popcount(mask)));
      for (std::size_t i = 0; i < k; ++i) {
        if ((mask >> i) & 1u) face.push_back(f[i]);
      }
      std::string key = to_string(face);
      if (seen.emplace(std::move(key), true).second) fn(face);
    }
  }
}

}  // namespace wfc::topo
