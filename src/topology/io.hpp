// Serialization of chromatic complexes: a line-oriented text format with
// exact round-tripping, and SVG rendering of 2-dimensional embedded
// complexes (the pictures of SDS^b(s^2) the literature draws by hand).
//
// Text format:
//   wfc-complex 1
//   colors <n>
//   vertex <color> <carrier-mask> <key> [bc <id>...] [at <coord>...]
//   facet <id> <id> ...
// Keys are percent-encoded so arbitrary key strings survive whitespace.
#pragma once

#include <iosfwd>
#include <string>

#include "topology/complex.hpp"
#include "topology/simplicial_map.hpp"

namespace wfc::topo {

/// Writes `c` to `os` in the wfc-complex text format.
void write_complex(std::ostream& os, const ChromaticComplex& c);

/// Parses a complex; throws std::invalid_argument on malformed input.
ChromaticComplex read_complex(std::istream& is);

/// Convenience round-trip through strings.
std::string to_text(const ChromaticComplex& c);
ChromaticComplex from_text(const std::string& text);

struct SvgOptions {
  double size = 640.0;          // canvas edge in px
  double vertex_radius = 4.0;
  bool label_vertices = false;
  /// Optional per-vertex fill override keyed by vertex id; empty = default
  /// color-by-chromatic-color palette.
  std::vector<std::string> vertex_fill;
};

/// Renders a 2-dimensional embedded complex (barycentric coordinates over
/// s^2) as an SVG drawing: filled facets, edges, colored vertices.
/// Requires every vertex to carry 3 coordinates.
std::string render_svg(const ChromaticComplex& c, const SvgOptions& options = {});

}  // namespace wfc::topo
