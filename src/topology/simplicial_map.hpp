// Vertex maps between complexes and the predicates of §2: simplicial,
// color-preserving, dimension-preserving, and carrier-preserving maps.
//
// A decision function of a wait-free protocol *is* such a map (paper §3.6,
// Proposition 3.1), so this type is the bridge between topology and
// computation: the solvability checker produces a SimplicialMap, and the
// runtime executes one.
#pragma once

#include <vector>

#include "topology/complex.hpp"

namespace wfc::topo {

class SimplicialMap {
 public:
  /// Creates an unassigned map; every vertex starts at kNoVertex.
  SimplicialMap(const ChromaticComplex& from, const ChromaticComplex& to);

  [[nodiscard]] const ChromaticComplex& from() const noexcept { return *from_; }
  [[nodiscard]] const ChromaticComplex& to() const noexcept { return *to_; }

  void set(VertexId v, VertexId image);
  [[nodiscard]] VertexId at(VertexId v) const;
  [[nodiscard]] bool is_total() const noexcept;

  /// Image of a simplex, in canonical (sorted, deduplicated) form.
  [[nodiscard]] Simplex image_of(const Simplex& s) const;

  /// Every facet of `from` maps to a simplex of `to`.  Requires totality.
  [[nodiscard]] bool is_simplicial() const;

  /// X(v) == X(phi(v)) for all v.
  [[nodiscard]] bool is_color_preserving() const;

  /// |phi(s)| == |s| for every facet (no collapsing).
  [[nodiscard]] bool is_dimension_preserving() const;

  /// carrier(phi(v)) is a subset of carrier(v) for all v.  This is the
  /// operative form of the paper's carrier preservation for maps between
  /// subdivisions of the same base: the image vertex may not leave the face
  /// that carries the source vertex.
  [[nodiscard]] bool is_carrier_monotone() const;

  /// carrier(phi(v)) == carrier(v) for all v (the strict §2 definition).
  [[nodiscard]] bool is_carrier_preserving_strict() const;

 private:
  const ChromaticComplex* from_;
  const ChromaticComplex* to_;
  std::vector<VertexId> image_;
};

/// Composition g after f; requires f.to() and g.from() to be the same object.
SimplicialMap compose(const SimplicialMap& f, const SimplicialMap& g);

}  // namespace wfc::topo
