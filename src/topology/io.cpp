#include "topology/io.hpp"

#include <cmath>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

namespace wfc::topo {

namespace {

std::string percent_encode(const std::string& s) {
  std::ostringstream os;
  for (unsigned char ch : s) {
    if (std::isalnum(ch) || ch == '-' || ch == '_' || ch == '.' || ch == '@' ||
        ch == ',' || ch == '[' || ch == ']' || ch == '=' || ch == ':' ||
        ch == '~' || ch == '>') {
      os << ch;
    } else {
      os << '%' << std::hex << std::uppercase << std::setw(2)
         << std::setfill('0') << static_cast<int>(ch) << std::dec;
    }
  }
  return os.str();
}

std::string percent_decode(const std::string& s) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      out += static_cast<char>(std::stoi(s.substr(i + 1, 2), nullptr, 16));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

}  // namespace

void write_complex(std::ostream& os, const ChromaticComplex& c) {
  os << "wfc-complex 1\n";
  os << "colors " << c.n_colors() << "\n";
  os << std::setprecision(17);
  for (VertexId v = 0; v < c.num_vertices(); ++v) {
    const VertexData& d = c.vertex(v);
    os << "vertex " << d.color << ' ' << d.carrier.mask() << ' '
       << percent_encode(d.key);
    if (!d.base_carrier.empty() &&
        !(d.base_carrier.size() == 1 && d.base_carrier[0] == v)) {
      os << " bc";
      for (VertexId b : d.base_carrier) os << ' ' << b;
    }
    if (!d.coords.empty()) {
      os << " at";
      for (double x : d.coords) os << ' ' << x;
    }
    os << "\n";
  }
  for (const Simplex& f : c.facets()) {
    os << "facet";
    for (VertexId v : f) os << ' ' << v;
    os << "\n";
  }
}

ChromaticComplex read_complex(std::istream& is) {
  std::string line;
  WFC_REQUIRE(std::getline(is, line) && line == "wfc-complex 1",
              "read_complex: bad header");
  WFC_REQUIRE(std::getline(is, line) && line.rfind("colors ", 0) == 0,
              "read_complex: missing colors line");
  const int n_colors = std::stoi(line.substr(7));
  ChromaticComplex c(n_colors);
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "vertex") {
      int color = 0;
      std::uint32_t carrier_mask = 0;
      std::string key;
      ls >> color >> carrier_mask >> key;
      WFC_REQUIRE(static_cast<bool>(ls), "read_complex: malformed vertex");
      Simplex base_carrier;
      std::vector<double> coords;
      std::string tag;
      while (ls >> tag) {
        if (tag == "bc") {
          VertexId b;
          while (ls >> b) base_carrier.push_back(b);
          // `at` may follow; recover from the failed extraction.
          ls.clear();
        } else if (tag == "at") {
          double x;
          while (ls >> x) coords.push_back(x);
          ls.clear();
        } else {
          WFC_REQUIRE(false, "read_complex: unknown vertex tag " + tag);
        }
      }
      c.add_vertex(color, percent_decode(key), ColorSet(carrier_mask),
                   std::move(coords),
                   base_carrier.empty()
                       ? std::nullopt
                       : std::optional<Simplex>(std::move(base_carrier)));
    } else if (kind == "facet") {
      Simplex f;
      VertexId v;
      while (ls >> v) f.push_back(v);
      WFC_REQUIRE(!f.empty(), "read_complex: empty facet");
      c.add_facet(make_simplex(std::move(f)));
    } else {
      WFC_REQUIRE(false, "read_complex: unknown line kind " + kind);
    }
  }
  return c;
}

std::string to_text(const ChromaticComplex& c) {
  std::ostringstream os;
  write_complex(os, c);
  return os.str();
}

ChromaticComplex from_text(const std::string& text) {
  std::istringstream is(text);
  return read_complex(is);
}

namespace {

/// Projects barycentric coordinates over s^2 to 2-D canvas points: an
/// equilateral triangle with corner 0 bottom-left, 1 bottom-right, 2 top.
std::pair<double, double> project(const std::vector<double>& bary,
                                  double size) {
  WFC_REQUIRE(bary.size() == 3, "render_svg: needs 3 barycentric coords");
  const double margin = 0.06 * size;
  const double w = size - 2 * margin;
  const double h = w * std::sqrt(3.0) / 2.0;
  const double x0 = margin, y0 = margin + h;           // corner 0
  const double x1 = margin + w, y1 = margin + h;       // corner 1
  const double x2 = margin + w / 2.0, y2 = margin;     // corner 2
  return {bary[0] * x0 + bary[1] * x1 + bary[2] * x2,
          bary[0] * y0 + bary[1] * y1 + bary[2] * y2};
}

const char* palette(Color c) {
  static const char* kColors[] = {"#d62728", "#1f77b4", "#2ca02c", "#9467bd",
                                  "#ff7f0e", "#8c564b", "#e377c2", "#7f7f7f"};
  return kColors[static_cast<std::size_t>(c) % 8];
}

}  // namespace

std::string render_svg(const ChromaticComplex& c, const SvgOptions& options) {
  WFC_REQUIRE(c.dimension() <= 2, "render_svg: only 2-dimensional complexes");
  std::ostringstream os;
  os << std::setprecision(7);
  os << "<svg xmlns='http://www.w3.org/2000/svg' width='" << options.size
     << "' height='" << options.size << "'>\n";

  std::vector<std::pair<double, double>> pts(c.num_vertices());
  for (VertexId v = 0; v < c.num_vertices(); ++v) {
    pts[v] = project(c.vertex(v).coords, options.size);
  }

  // Facets (triangles) as translucent fills.
  for (const Simplex& f : c.facets()) {
    if (f.size() != 3) continue;
    os << "<polygon points='";
    for (VertexId v : f) os << pts[v].first << ',' << pts[v].second << ' ';
    os << "' fill='#f2efe9' stroke='none'/>\n";
  }
  // Edges.
  c.for_each_face([&](const Simplex& s) {
    if (s.size() != 2) return;
    os << "<line x1='" << pts[s[0]].first << "' y1='" << pts[s[0]].second
       << "' x2='" << pts[s[1]].first << "' y2='" << pts[s[1]].second
       << "' stroke='#555' stroke-width='1'/>\n";
  });
  // Vertices, colored by chromatic color (or caller override).
  for (VertexId v = 0; v < c.num_vertices(); ++v) {
    const std::string fill =
        v < options.vertex_fill.size() && !options.vertex_fill[v].empty()
            ? options.vertex_fill[v]
            : palette(c.vertex(v).color);
    os << "<circle cx='" << pts[v].first << "' cy='" << pts[v].second
       << "' r='" << options.vertex_radius << "' fill='" << fill
       << "' stroke='#222' stroke-width='0.75'/>\n";
    if (options.label_vertices) {
      os << "<text x='" << pts[v].first + 6 << "' y='" << pts[v].second - 6
         << "' font-size='10' fill='#333'>" << c.vertex(v).key << "</text>\n";
    }
  }
  os << "</svg>\n";
  return os.str();
}

}  // namespace wfc::topo
