// Ordered partitions of a finite set.
//
// An execution of a one-shot immediate snapshot is exactly an ordered
// partition of the participating set (paper §3.4-3.5): each block is a set
// of processors that WriteRead together.  The facets of the standard
// chromatic subdivision SDS(s^n) are in bijection with the ordered
// partitions of {0..n} (Lemma 3.2), so this enumeration is the common core
// of both the topology layer and the scheduler.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace wfc::topo {

/// An ordered partition of positions {0..k-1}: a sequence of disjoint,
/// non-empty blocks whose union is the whole set.
using OrderedPartition = std::vector<std::vector<int>>;

namespace detail {

template <typename Fn>
void ordered_partitions_rec(std::uint32_t remaining, OrderedPartition& acc,
                            Fn& fn) {
  if (remaining == 0) {
    const OrderedPartition& done = acc;
    fn(done);
    return;
  }
  // Enumerate every non-empty subset of `remaining` as the next block.
  for (std::uint32_t sub = remaining;; sub = (sub - 1) & remaining) {
    if (sub != 0) {
      std::vector<int> block;
      for (std::uint32_t m = sub; m != 0; m &= m - 1) {
        block.push_back(std::countr_zero(m));
      }
      acc.push_back(std::move(block));
      ordered_partitions_rec(remaining & ~sub, acc, fn);
      acc.pop_back();
    }
    if (sub == 0) break;
  }
}

}  // namespace detail

/// Invokes fn(const OrderedPartition&) once per ordered partition of
/// {0..k-1}.  There are Fubini(k) of them (1, 1, 3, 13, 75, 541, ...).
template <typename Fn>
void for_each_ordered_partition(int k, Fn&& fn) {
  WFC_REQUIRE(k >= 0 && k <= 20, "for_each_ordered_partition: k out of range");
  if (k == 0) {
    const OrderedPartition empty;
    fn(empty);
    return;
  }
  OrderedPartition acc;
  const std::uint32_t all = (k == 32) ? ~0u : ((1u << k) - 1);
  detail::ordered_partitions_rec(all, acc, fn);
}

/// Fubini number (number of ordered partitions of a k-set).
std::uint64_t fubini(int k);

}  // namespace wfc::topo
