// Standard chromatic subdivision (SDS) and barycentric subdivision (Bsd).
//
// SDS(s^n) is the one-shot immediate snapshot protocol complex (Lemma 3.2):
// a vertex is a pair (P_i, S_i) with P_i in S_i; a set of such pairs is a
// simplex iff the S_i satisfy the immediate-snapshot properties
//   (1) self-inclusion, (2) total order by containment, (3) immediacy.
// We generate its facets from ordered partitions: the facet for ordered
// partition (B_1, ..., B_m) of the participating vertices assigns to each
// vertex v in B_j the view S_v = B_1 u ... u B_j.
//
// The geometric embedding follows the paper's §3.6 construction: the vertex
// (i, sigma) is planted at the midpoint of the barycenter of sigma and the
// barycenter of the face of sigma opposite the vertex colored i (equivalently
// at e_i itself when sigma = {i}).
//
// Bsd is the classical barycentric subdivision used by the simplicial
// approximation machinery of §5; its vertices are barycenters of faces and
// its facets are maximal flags.  Bsd vertices are colored by face dimension,
// which makes Bsd(C) a valid ChromaticComplex but NOT color-compatible with
// C -- §5 only ever asks Bsd for carrier-preserving (non-chromatic) maps.
#pragma once

#include "topology/complex.hpp"

namespace wfc::topo {

/// Standard chromatic subdivision of a pure chromatic complex with geometric
/// embedding (coordinates optional; propagated when present).
ChromaticComplex standard_chromatic_subdivision(const ChromaticComplex& c);

/// SDS^k: k-fold iterated standard chromatic subdivision (Lemma 3.3).
/// k == 0 returns a copy of c.
ChromaticComplex iterated_sds(const ChromaticComplex& c, int k);

/// Classical barycentric subdivision.  Requires n_colors >= dimension+1.
ChromaticComplex barycentric_subdivision(const ChromaticComplex& c);

/// Bsd^k.
ChromaticComplex iterated_bsd(const ChromaticComplex& c, int k);

/// Key of the SDS(C) vertex with color `color` and view `view` (a canonical
/// simplex of C).  The protocol runtime uses this to map live executions to
/// vertices of the combinatorial complex.
std::string sds_vertex_key(Color color, const Simplex& view);

}  // namespace wfc::topo
