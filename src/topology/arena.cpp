#include "topology/arena.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "common/assert.hpp"
#include "topology/hash.hpp"

namespace wfc::topo {

namespace {

constexpr std::uint64_t align8(std::uint64_t n) { return (n + 7) & ~7ull; }

/// Content hash for face dedup during build (never serialized).
struct SimplexHash {
  std::size_t operator()(const Simplex& s) const noexcept {
    std::uint64_t h = kFnvOffset;
    for (VertexId v : s) {
      for (int b = 0; b < 4; ++b) {
        h = (h ^ ((v >> (8 * b)) & 0xffu)) * kFnvPrime;
      }
    }
    return static_cast<std::size_t>(h);
  }
};

/// CSR accumulator: an index array of element offsets plus a flat pool.
template <typename T>
struct Csr {
  std::vector<std::uint32_t> idx{0};
  std::vector<T> pool;

  void add(std::span<const T> row) {
    pool.insert(pool.end(), row.begin(), row.end());
    WFC_CHECK(pool.size() <= 0xffffffffull, "arena: CSR pool overflow");
    idx.push_back(static_cast<std::uint32_t>(pool.size()));
  }
};

void bounds_check(const char* what, std::uint64_t off, std::uint64_t len,
                  std::uint64_t elem_size, std::uint64_t blob_bytes) {
  if (off % 8 != 0 || off > blob_bytes || len > (blob_bytes - off) / elem_size) {
    throw std::invalid_argument(std::string("arena: section out of bounds: ") +
                                what);
  }
}

void csr_check(const char* what, std::span<const std::uint32_t> idx,
               std::uint64_t pool_len) {
  if (idx.empty() || idx.front() != 0 || idx.back() != pool_len) {
    throw std::invalid_argument(std::string("arena: bad CSR bounds: ") + what);
  }
  for (std::size_t i = 1; i < idx.size(); ++i) {
    if (idx[i] < idx[i - 1]) {
      throw std::invalid_argument(
          std::string("arena: CSR index not monotone: ") + what);
    }
  }
}

void ids_check(const char* what, std::span<const std::uint32_t> pool,
               std::uint32_t n_vertices) {
  for (std::uint32_t v : pool) {
    if (v >= n_vertices) {
      throw std::invalid_argument(std::string("arena: vertex id out of range: ") +
                                  what);
    }
  }
}

}  // namespace

Arena Arena::build(const ChromaticComplex& c) {
  const std::uint32_t n = static_cast<std::uint32_t>(c.num_vertices());
  const std::uint32_t nf = static_cast<std::uint32_t>(c.num_facets());

  std::vector<std::uint8_t> colors(n);
  std::vector<std::uint32_t> carriers(n);
  Csr<std::uint32_t> bc;
  Csr<char> keys;
  Csr<double> coords;
  for (VertexId v = 0; v < n; ++v) {
    const VertexData& vd = c.vertex(v);
    WFC_CHECK(vd.color >= 0 && vd.color < 256, "arena: color out of range");
    colors[v] = static_cast<std::uint8_t>(vd.color);
    carriers[v] = vd.carrier.mask();
    bc.add(std::span<const std::uint32_t>(vd.base_carrier));
    keys.add(std::span<const char>(vd.key.data(), vd.key.size()));
    coords.add(std::span<const double>(vd.coords));
  }

  Csr<std::uint32_t> facets;
  for (const Simplex& f : c.facets()) {
    facets.add(std::span<const std::uint32_t>(f));
  }

  // Deduplicated face table, size >= 2 only (singletons live in the
  // per-vertex sections).  Facets are sorted, so every submask is already
  // in canonical order; first-emission order is deterministic.
  Csr<std::uint32_t> faces;
  Csr<std::uint32_t> face_bcs;
  std::unordered_map<Simplex, std::uint32_t, SimplexHash> seen;
  Simplex face;
  for (const Simplex& f : c.facets()) {
    const std::size_t k = f.size();
    WFC_CHECK(k <= 24, "arena: facet too large to enumerate");
    for (std::uint32_t mask = 1; mask < (1u << k); ++mask) {
      if (std::popcount(mask) < 2) continue;
      face.clear();
      for (std::size_t i = 0; i < k; ++i) {
        if ((mask >> i) & 1u) face.push_back(f[i]);
      }
      if (!seen.emplace(face, static_cast<std::uint32_t>(seen.size())).second) {
        continue;
      }
      faces.add(std::span<const std::uint32_t>(face));
      face_bcs.add(std::span<const std::uint32_t>(c.base_carrier_of(face)));
    }
  }
  const std::uint32_t n_faces = static_cast<std::uint32_t>(faces.idx.size() - 1);

  ArenaHeader h{};
  h.magic = kArenaMagic;
  h.version = kArenaVersion;
  h.n_colors = static_cast<std::uint32_t>(c.n_colors());
  h.n_vertices = n;
  h.n_facets = nf;
  h.n_faces = n_faces;

  std::uint64_t off = align8(sizeof(ArenaHeader));
  const auto place = [&off](std::uint64_t count, std::uint64_t elem) {
    const std::uint64_t at = off;
    off = align8(off + count * elem);
    return at;
  };
  h.off_colors = place(n, 1);
  h.off_carriers = place(n, 4);
  h.off_bc_idx = place(n + 1, 4);
  h.off_bc_pool = place(bc.pool.size(), 4);
  h.bc_pool_len = bc.pool.size();
  h.off_facet_idx = place(nf + 1, 4);
  h.off_facet_pool = place(facets.pool.size(), 4);
  h.facet_pool_len = facets.pool.size();
  h.off_face_idx = place(n_faces + 1, 4);
  h.off_face_pool = place(faces.pool.size(), 4);
  h.face_pool_len = faces.pool.size();
  h.off_face_bc_idx = place(n_faces + 1, 4);
  h.off_face_bc_pool = place(face_bcs.pool.size(), 4);
  h.face_bc_pool_len = face_bcs.pool.size();
  h.off_key_idx = place(n + 1, 4);
  h.off_key_pool = place(keys.pool.size(), 1);
  h.key_pool_len = keys.pool.size();
  h.off_coord_idx = place(n + 1, 4);
  h.off_coord_pool = place(coords.pool.size(), 8);
  h.coord_pool_len = coords.pool.size();
  h.blob_bytes = off;

  auto blob = std::make_shared<std::vector<std::byte>>(
      static_cast<std::size_t>(off), std::byte{0});
  std::byte* base = blob->data();
  const auto emit = [base](std::uint64_t at, const void* src,
                           std::uint64_t bytes) {
    if (bytes > 0) std::memcpy(base + at, src, bytes);
  };
  emit(0, &h, sizeof(h));
  emit(h.off_colors, colors.data(), colors.size());
  emit(h.off_carriers, carriers.data(), carriers.size() * 4);
  emit(h.off_bc_idx, bc.idx.data(), bc.idx.size() * 4);
  emit(h.off_bc_pool, bc.pool.data(), bc.pool.size() * 4);
  emit(h.off_facet_idx, facets.idx.data(), facets.idx.size() * 4);
  emit(h.off_facet_pool, facets.pool.data(), facets.pool.size() * 4);
  emit(h.off_face_idx, faces.idx.data(), faces.idx.size() * 4);
  emit(h.off_face_pool, faces.pool.data(), faces.pool.size() * 4);
  emit(h.off_face_bc_idx, face_bcs.idx.data(), face_bcs.idx.size() * 4);
  emit(h.off_face_bc_pool, face_bcs.pool.data(), face_bcs.pool.size() * 4);
  emit(h.off_key_idx, keys.idx.data(), keys.idx.size() * 4);
  emit(h.off_key_pool, keys.pool.data(), keys.pool.size());
  emit(h.off_coord_idx, coords.idx.data(), coords.idx.size() * 4);
  emit(h.off_coord_pool, coords.pool.data(), coords.pool.size() * 8);

  std::span<const std::byte> span(blob->data(), blob->size());
  return view(span, std::move(blob));
}

Arena Arena::view(std::span<const std::byte> blob,
                  std::shared_ptr<const void> backing) {
  if (blob.size() < sizeof(ArenaHeader)) {
    throw std::invalid_argument("arena: blob smaller than header");
  }
  if (reinterpret_cast<std::uintptr_t>(blob.data()) % 8 != 0) {
    throw std::invalid_argument("arena: blob not 8-byte aligned");
  }
  const auto* h = reinterpret_cast<const ArenaHeader*>(blob.data());
  if (h->magic != kArenaMagic) {
    throw std::invalid_argument("arena: bad magic");
  }
  if (h->version != kArenaVersion) {
    throw std::invalid_argument("arena: unsupported version " +
                                std::to_string(h->version));
  }
  if (h->blob_bytes != blob.size()) {
    throw std::invalid_argument("arena: blob size mismatch");
  }
  if (h->n_colors > static_cast<std::uint32_t>(kMaxColors)) {
    throw std::invalid_argument("arena: color count out of range");
  }
  const std::uint64_t bytes = blob.size();
  const std::uint32_t n = h->n_vertices;
  bounds_check("colors", h->off_colors, n, 1, bytes);
  bounds_check("carriers", h->off_carriers, n, 4, bytes);
  bounds_check("bc_idx", h->off_bc_idx, n + 1, 4, bytes);
  bounds_check("bc_pool", h->off_bc_pool, h->bc_pool_len, 4, bytes);
  bounds_check("facet_idx", h->off_facet_idx, h->n_facets + 1, 4, bytes);
  bounds_check("facet_pool", h->off_facet_pool, h->facet_pool_len, 4, bytes);
  bounds_check("face_idx", h->off_face_idx, h->n_faces + 1, 4, bytes);
  bounds_check("face_pool", h->off_face_pool, h->face_pool_len, 4, bytes);
  bounds_check("face_bc_idx", h->off_face_bc_idx, h->n_faces + 1, 4, bytes);
  bounds_check("face_bc_pool", h->off_face_bc_pool, h->face_bc_pool_len, 4,
               bytes);
  bounds_check("key_idx", h->off_key_idx, n + 1, 4, bytes);
  bounds_check("key_pool", h->off_key_pool, h->key_pool_len, 1, bytes);
  bounds_check("coord_idx", h->off_coord_idx, n + 1, 4, bytes);
  bounds_check("coord_pool", h->off_coord_pool, h->coord_pool_len, 8, bytes);

  Arena a;
  a.header_ = h;
  a.blob_ = blob;
  a.backing_ = std::move(backing);

  csr_check("bc", a.csr_idx(h->off_bc_idx, n), h->bc_pool_len);
  csr_check("facet", a.csr_idx(h->off_facet_idx, h->n_facets),
            h->facet_pool_len);
  csr_check("face", a.csr_idx(h->off_face_idx, h->n_faces), h->face_pool_len);
  csr_check("face_bc", a.csr_idx(h->off_face_bc_idx, h->n_faces),
            h->face_bc_pool_len);
  csr_check("key", a.csr_idx(h->off_key_idx, n), h->key_pool_len);
  csr_check("coord", a.csr_idx(h->off_coord_idx, n), h->coord_pool_len);
  ids_check("bc", a.section<std::uint32_t>(h->off_bc_pool, h->bc_pool_len), n);
  ids_check("facet",
            a.section<std::uint32_t>(h->off_facet_pool, h->facet_pool_len), n);
  ids_check("face", a.section<std::uint32_t>(h->off_face_pool, h->face_pool_len),
            n);
  ids_check("face_bc",
            a.section<std::uint32_t>(h->off_face_bc_pool, h->face_bc_pool_len),
            n);
  return a;
}

std::span<const std::uint8_t> Arena::colors() const noexcept {
  return section<std::uint8_t>(header_->off_colors, header_->n_vertices);
}

std::span<const std::uint32_t> Arena::carrier_masks() const noexcept {
  return section<std::uint32_t>(header_->off_carriers, header_->n_vertices);
}

std::span<const VertexId> Arena::base_carrier(VertexId v) const {
  const auto idx = csr_idx(header_->off_bc_idx, header_->n_vertices);
  return section<std::uint32_t>(header_->off_bc_pool, header_->bc_pool_len)
      .subspan(idx[v], idx[v + 1] - idx[v]);
}

std::span<const VertexId> Arena::facet(std::uint32_t f) const {
  const auto idx = csr_idx(header_->off_facet_idx, header_->n_facets);
  return section<std::uint32_t>(header_->off_facet_pool,
                                header_->facet_pool_len)
      .subspan(idx[f], idx[f + 1] - idx[f]);
}

std::span<const VertexId> Arena::face(std::uint32_t i) const {
  const auto idx = csr_idx(header_->off_face_idx, header_->n_faces);
  return section<std::uint32_t>(header_->off_face_pool, header_->face_pool_len)
      .subspan(idx[i], idx[i + 1] - idx[i]);
}

std::span<const VertexId> Arena::face_base_carrier(std::uint32_t i) const {
  const auto idx = csr_idx(header_->off_face_bc_idx, header_->n_faces);
  return section<std::uint32_t>(header_->off_face_bc_pool,
                                header_->face_bc_pool_len)
      .subspan(idx[i], idx[i + 1] - idx[i]);
}

std::string_view Arena::key(VertexId v) const {
  const auto idx = csr_idx(header_->off_key_idx, header_->n_vertices);
  const auto pool =
      section<char>(header_->off_key_pool, header_->key_pool_len);
  return {pool.data() + idx[v], idx[v + 1] - idx[v]};
}

std::span<const double> Arena::coords(VertexId v) const {
  const auto idx = csr_idx(header_->off_coord_idx, header_->n_vertices);
  return section<double>(header_->off_coord_pool, header_->coord_pool_len)
      .subspan(idx[v], idx[v + 1] - idx[v]);
}

ChromaticComplex Arena::materialize() const {
  WFC_CHECK(valid(), "arena: materialize on empty arena");
  ChromaticComplex out(n_colors());
  const auto cols = colors();
  const auto masks = carrier_masks();
  for (VertexId v = 0; v < num_vertices(); ++v) {
    const auto bc = base_carrier(v);
    const auto xyz = coords(v);
    out.add_vertex(static_cast<Color>(cols[v]), std::string(key(v)),
                   ColorSet(masks[v]),
                   std::vector<double>(xyz.begin(), xyz.end()),
                   Simplex(bc.begin(), bc.end()));
  }
  for (std::uint32_t f = 0; f < num_facets(); ++f) {
    const auto fv = facet(f);
    out.add_facet(Simplex(fv.begin(), fv.end()));
  }
  return out;
}

}  // namespace wfc::topo
