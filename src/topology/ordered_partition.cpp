// fubini() lives in subdivision.cpp alongside its only in-library user; this
// translation unit exists so the header is self-checking at build time.
#include "topology/ordered_partition.hpp"
