// Geometric realization utilities: point location inside an embedded
// complex and numerical validation that a complex really is a subdivision
// (paper §2, conditions 1-2 of the definition).
//
// Coordinates throughout are barycentric with respect to the base simplex
// s^n: every embedded vertex has n+1 coordinates that are non-negative and
// sum to 1.  This makes "the convex hull of B equals A" checkable with
// volume accounting and sampling, with no exact arithmetic needed at the
// scales this library runs (dimension <= 7).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "topology/complex.hpp"

namespace wfc::topo {

struct PointLocation {
  std::uint32_t facet = 0;             // index into complex.facets()
  std::vector<double> facet_coords;    // barycentric w.r.t. that facet
};

/// Finds a facet whose convex hull contains `point` (barycentric coords
/// w.r.t. the base simplex).  Returns nullopt if no facet contains it.
/// `tol` bounds how far outside a face a coordinate may dip.
std::optional<PointLocation> locate_point(const ChromaticComplex& c,
                                          const std::vector<double>& point,
                                          double tol = 1e-9);

/// Total n-dimensional volume of all facets (n = c.dimension()).
double total_facet_volume(const ChromaticComplex& c);

/// Mesh of the complex: the largest Euclidean diameter of any facet
/// (max vertex-pair distance).  Simplicial approximation levels are
/// governed by how fast iterated subdivision drives this to zero: SDS
/// shrinks the mesh geometrically, Bsd only by n/(n+1) per level.
double mesh_diameter(const ChromaticComplex& c);

/// Draws a uniform random point in the convex hull of the given facet.
std::vector<double> random_point_in_facet(const ChromaticComplex& c,
                                          std::uint32_t facet, Rng& rng);

struct SubdivisionReport {
  bool volume_matches = false;       // sum of sub-facet volumes == base volume
  bool covers_samples = false;       // every sampled base point is located
  bool interiors_disjoint = false;   // no sample strictly inside 2 facets
  bool carriers_match_support = false;  // carrier(v) == support(coords(v))
  double volume_ratio = 0.0;
  int samples_tested = 0;

  [[nodiscard]] bool ok() const noexcept {
    return volume_matches && covers_samples && interiors_disjoint &&
           carriers_match_support;
  }
};

/// Numerically validates that `sub` is a geometric subdivision of `base`
/// (both embedded in the same barycentric coordinate system).
SubdivisionReport check_subdivision(const ChromaticComplex& sub,
                                    const ChromaticComplex& base,
                                    int samples = 512,
                                    std::uint64_t seed = 1);

}  // namespace wfc::topo
