// Canonical fingerprints of chromatic complexes.
//
// A fingerprint is a 64-bit FNV-1a hash over a canonical rendering of the
// complex (color count, then every vertex as (color, key, carrier mask),
// then every facet).  Two complexes built the same way -- same vertices in
// the same order, same facets -- hash equal; the rendering includes the
// interned keys, so complexes of different provenance practically never
// collide.  Used as
//   * the task-binding fingerprint of saved decision maps (tasks/map_io);
//   * the cache key of the service layer's SDS-chain cache (service/):
//     SDS^k is a pure function of the input complex, so the input's
//     fingerprint indexes the memoized chain.
#pragma once

#include <cstdint>

#include "topology/complex.hpp"

namespace wfc::topo {

/// FNV-1a accumulator primitives, exposed so callers can extend a complex
/// fingerprint with their own fields (e.g. a task name or level).
inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

[[nodiscard]] std::uint64_t fnv1a(std::uint64_t h, std::string_view bytes);

/// Canonical fingerprint of `c` (vertex colors/keys/carriers + facets).
[[nodiscard]] std::uint64_t complex_fingerprint(const ChromaticComplex& c);

}  // namespace wfc::topo
