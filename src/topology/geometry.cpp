#include "topology/geometry.hpp"

#include <cmath>

#include "common/linalg.hpp"

namespace wfc::topo {

namespace {

std::vector<std::vector<double>> facet_vertex_coords(const ChromaticComplex& c,
                                                     const Simplex& f) {
  std::vector<std::vector<double>> out;
  out.reserve(f.size());
  for (VertexId v : f) {
    const auto& coords = c.vertex(v).coords;
    WFC_REQUIRE(!coords.empty(), "facet_vertex_coords: complex not embedded");
    out.push_back(coords);
  }
  return out;
}

}  // namespace

std::optional<PointLocation> locate_point(const ChromaticComplex& c,
                                          const std::vector<double>& point,
                                          double tol) {
  for (std::uint32_t fi = 0; fi < c.num_facets(); ++fi) {
    const Simplex& f = c.facets()[fi];
    std::vector<double> coords;
    if (!linalg::barycentric_coords(facet_vertex_coords(c, f), point, coords)) {
      continue;  // degenerate or point outside the affine hull
    }
    if (linalg::coords_nonnegative(coords, tol)) {
      return PointLocation{fi, std::move(coords)};
    }
  }
  return std::nullopt;
}

double total_facet_volume(const ChromaticComplex& c) {
  double total = 0.0;
  for (const Simplex& f : c.facets()) {
    total += linalg::simplex_volume(facet_vertex_coords(c, f));
  }
  return total;
}

double mesh_diameter(const ChromaticComplex& c) {
  double worst = 0.0;
  for (const Simplex& f : c.facets()) {
    for (std::size_t a = 0; a < f.size(); ++a) {
      for (std::size_t b = a + 1; b < f.size(); ++b) {
        const auto& pa = c.vertex(f[a]).coords;
        const auto& pb = c.vertex(f[b]).coords;
        WFC_REQUIRE(!pa.empty() && pa.size() == pb.size(),
                    "mesh_diameter: complex not embedded");
        double d2 = 0.0;
        for (std::size_t i = 0; i < pa.size(); ++i) {
          const double diff = pa[i] - pb[i];
          d2 += diff * diff;
        }
        worst = std::max(worst, d2);
      }
    }
  }
  return std::sqrt(worst);
}

std::vector<double> random_point_in_facet(const ChromaticComplex& c,
                                          std::uint32_t facet, Rng& rng) {
  WFC_REQUIRE(facet < c.num_facets(), "random_point_in_facet: bad facet");
  const Simplex& f = c.facets()[facet];
  // Uniform barycentric weights via normalized exponentials.
  std::vector<double> w(f.size());
  double sum = 0.0;
  for (double& x : w) {
    x = -std::log(1.0 - rng.unit());
    sum += x;
  }
  const auto& first = c.vertex(f[0]).coords;
  std::vector<double> out(first.size(), 0.0);
  for (std::size_t i = 0; i < f.size(); ++i) {
    const auto& coords = c.vertex(f[i]).coords;
    for (std::size_t d = 0; d < out.size(); ++d) {
      out[d] += (w[i] / sum) * coords[d];
    }
  }
  return out;
}

SubdivisionReport check_subdivision(const ChromaticComplex& sub,
                                    const ChromaticComplex& base, int samples,
                                    std::uint64_t seed) {
  WFC_REQUIRE(samples > 0, "check_subdivision: samples must be positive");
  SubdivisionReport rep;

  const double base_vol = total_facet_volume(base);
  const double sub_vol = total_facet_volume(sub);
  rep.volume_ratio = base_vol > 0 ? sub_vol / base_vol : 0.0;
  rep.volume_matches = std::abs(rep.volume_ratio - 1.0) < 1e-7;

  // carrier(v) must be exactly the support of v's barycentric coordinates:
  // a vertex carried by face F has zero weight outside F.
  rep.carriers_match_support = true;
  for (VertexId v = 0; v < sub.num_vertices(); ++v) {
    const VertexData& d = sub.vertex(v);
    ColorSet support;
    for (std::size_t i = 0; i < d.coords.size(); ++i) {
      if (d.coords[i] > 1e-12) support = support.with(static_cast<Color>(i));
    }
    if (support != d.carrier) {
      rep.carriers_match_support = false;
      break;
    }
  }

  // Sampling: draw points in base facets; each must be covered, and no point
  // may be strictly interior to two sub-facets.
  Rng rng(seed);
  rep.covers_samples = true;
  rep.interiors_disjoint = true;
  rep.samples_tested = samples;
  for (int s = 0; s < samples; ++s) {
    const auto base_facet =
        static_cast<std::uint32_t>(rng.below(base.num_facets()));
    const std::vector<double> p = random_point_in_facet(base, base_facet, rng);
    int strictly_inside = 0;
    bool covered = false;
    for (std::uint32_t fi = 0; fi < sub.num_facets(); ++fi) {
      const Simplex& f = sub.facets()[fi];
      std::vector<std::vector<double>> verts;
      verts.reserve(f.size());
      for (VertexId v : f) verts.push_back(sub.vertex(v).coords);
      std::vector<double> coords;
      if (!linalg::barycentric_coords(verts, p, coords)) continue;
      if (linalg::coords_nonnegative(coords, 1e-9)) covered = true;
      bool strict = true;
      for (double x : coords) {
        if (x < 1e-7) strict = false;
      }
      if (strict) ++strictly_inside;
    }
    if (!covered) rep.covers_samples = false;
    if (strictly_inside > 1) rep.interiors_disjoint = false;
  }
  return rep;
}

}  // namespace wfc::topo
