#include "check/explorer.hpp"

namespace wfc::chk {

CrashAdversary::CrashAdversary(rt::Adversary& base, CrashPlan plan)
    : base_(&base), plan_(std::move(plan)) {
  ColorSet seen;
  for (const auto& [round, proc] : plan_) {
    WFC_REQUIRE(round >= 0, "CrashAdversary: negative crash round");
    WFC_REQUIRE(proc >= 0 && proc < kMaxColors, "CrashAdversary: bad proc");
    WFC_REQUIRE(!seen.contains(proc),
                "CrashAdversary: processor crashes twice");
    seen = seen.with(proc);
  }
}

ColorSet CrashAdversary::crashes_at(int round) const {
  ColorSet out;
  for (const auto& [r, proc] : plan_) {
    if (r == round) out = out.with(proc);
  }
  return out;
}

ColorSet CrashAdversary::crashed_by(int round) const {
  ColorSet out;
  for (const auto& [r, proc] : plan_) {
    if (r <= round) out = out.with(proc);
  }
  return out;
}

rt::Partition CrashAdversary::partition(int round, ColorSet active) {
  const ColorSet live = active.minus(crashed_by(round));
  if (live.empty()) return {};
  return base_->partition(round, live);
}

}  // namespace wfc::chk
