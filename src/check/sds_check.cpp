#include "check/sds_check.hpp"

#include <sstream>
#include <stdexcept>

#include "topology/complex.hpp"

namespace wfc::chk {

namespace {

std::string schedule_to_string(const std::vector<rt::Partition>& schedule,
                               const std::vector<ColorSet>& crashes) {
  std::ostringstream os;
  for (std::size_t r = 0; r < schedule.size(); ++r) {
    if (r != 0) os << " ; ";
    os << "r" << r << ":";
    for (const ColorSet& block : schedule[r]) os << block.to_string();
    if (r < crashes.size() && !crashes[r].empty()) {
      os << " crash" << crashes[r].to_string();
    }
  }
  return os.str();
}

topo::VertexId base_vertex_of_color(const topo::ChromaticComplex& base,
                                    Color c) {
  for (topo::VertexId v = 0; v < base.num_vertices(); ++v) {
    if (base.vertex(v).color == c) return v;
  }
  WFC_CHECK(false, "check_views_in_sds: base simplex missing a color");
}

}  // namespace

SdsCheckReport check_views_in_sds(const ExploreOptions& options) {
  const proto::SdsChain chain(topo::base_simplex(options.n_procs),
                              options.rounds);
  return check_views_in_sds(options, chain);
}

SdsCheckReport check_views_in_sds(const ExploreOptions& options,
                                  const proto::SdsChain& chain) {
  WFC_REQUIRE(chain.depth() >= options.rounds,
              "check_views_in_sds: chain shallower than the explored depth");
  WFC_REQUIRE(chain.level(0).num_vertices() ==
                  static_cast<std::size_t>(options.n_procs),
              "check_views_in_sds: chain is not over base_simplex(n_procs)");

  SdsCheckReport report;
  const std::size_t n = static_cast<std::size_t>(options.n_procs);

  // Per round, per processor: the located SDS vertex.  The DFS overwrites a
  // round's row before re-descending, so rows 0..r-1 always describe the
  // current branch when at_end fires.
  std::vector<std::vector<topo::VertexId>> located(
      static_cast<std::size_t>(options.rounds),
      std::vector<topo::VertexId>(n, topo::kNoVertex));

  // explore_iis cannot be aborted from callbacks directly; route both our
  // abort-on-violation and the caller's cancel through one local token.
  std::atomic<bool> abort{false};
  ExploreOptions opt = options;
  const std::atomic<bool>* caller_cancel = options.cancel;
  opt.cancel = &abort;

  auto fail = [&](std::string message) {
    if (report.violation.empty()) report.violation = std::move(message);
    abort.store(true, std::memory_order_relaxed);
  };

  std::function<topo::VertexId(int)> init = [&](int p) {
    return base_vertex_of_color(chain.level(0), p);
  };

  std::function<rt::Step<topo::VertexId>(
      int, int, const rt::IisSnapshot<topo::VertexId>&)>
      on_view = [&](int p, int round,
                    const rt::IisSnapshot<topo::VertexId>& snap) {
        if (abort.load(std::memory_order_relaxed)) {
          return rt::Step<topo::VertexId>::halt();
        }
        std::vector<topo::VertexId> seen;
        seen.reserve(snap.size());
        for (const auto& [q, v] : snap) seen.push_back(v);
        topo::VertexId v = topo::kNoVertex;
        try {
          v = chain.locate(round + 1, p, topo::make_simplex(std::move(seen)));
        } catch (const std::logic_error& e) {
          fail("view of P" + std::to_string(p) + " after round " +
               std::to_string(round) +
               " is not a vertex of SDS^" + std::to_string(round + 1) +
               " (contradicts Lemma 3.3): " + e.what());
          return rt::Step<topo::VertexId>::halt();
        }
        ++report.vertices_located;
        located[static_cast<std::size_t>(round)][static_cast<std::size_t>(p)] =
            v;
        return rt::Step<topo::VertexId>::cont(v);
      };

  std::function<void(const Execution<topo::VertexId>&)> at_end =
      [&](const Execution<topo::VertexId>& e) {
        if (caller_cancel != nullptr &&
            caller_cancel->load(std::memory_order_relaxed)) {
          abort.store(true, std::memory_order_relaxed);
          return;
        }
        if (abort.load(std::memory_order_relaxed)) return;
        // Lemma 3.2: the views co-produced by round r form a simplex of
        // SDS^{r+1} (a facet when everyone acted, a proper face under
        // crashes and at lower depths).
        for (std::size_t r = 0; r < e.schedule.size(); ++r) {
          std::vector<topo::VertexId> verts;
          for (const ColorSet& block : e.schedule[r]) {
            for (Color p : block) {
              verts.push_back(located[r][static_cast<std::size_t>(p)]);
            }
          }
          if (verts.empty()) continue;  // final all-crash round
          const topo::Simplex s = topo::make_simplex(std::move(verts));
          ++report.simplices_checked;
          if (!chain.level(static_cast<int>(r) + 1).contains_simplex(s)) {
            fail("round-" + std::to_string(r) +
                 " view vector is not a simplex of SDS^" +
                 std::to_string(r + 1) + " (contradicts Lemma 3.2); schedule " +
                 schedule_to_string(e.schedule, e.crashes));
            return;
          }
        }
      };

  report.explored = explore_iis<topo::VertexId>(opt, init, on_view, at_end);
  // Abort-on-violation shows up as truncation; don't report a violating
  // sweep as merely truncated.
  if (!report.violation.empty()) report.explored.truncated = false;
  if (caller_cancel != nullptr &&
      caller_cancel->load(std::memory_order_relaxed)) {
    report.explored.truncated = true;
  }
  report.ok = report.violation.empty();
  return report;
}

DeltaCheckReport check_decision_against_delta(const task::Task& task,
                                              const task::SolveResult& solved,
                                              int max_crashes,
                                              std::uint64_t max_executions) {
  WFC_REQUIRE(solved.status == task::Solvability::kSolvable,
              "check_decision_against_delta: result is not kSolvable");
  WFC_REQUIRE(solved.chain != nullptr,
              "check_decision_against_delta: result carries no chain");
  WFC_REQUIRE(solved.chain->depth() >= solved.level,
              "check_decision_against_delta: chain shallower than level");

  DeltaCheckReport report;
  const proto::SdsChain& chain = *solved.chain;
  const topo::ChromaticComplex& input = task.input();

  auto decide = [&](topo::VertexId v) {
    WFC_CHECK(static_cast<std::size_t>(v) < solved.decision.size(),
              "check_decision_against_delta: decision map too small");
    return solved.decision[static_cast<std::size_t>(v)];
  };

  auto fail = [&](std::string message) {
    if (report.violation.empty()) report.violation = std::move(message);
  };

  if (solved.level == 0) {
    // No communication: every face of every facet decides its own vertices'
    // images directly.
    input.for_each_face([&](const topo::Simplex& face) {
      if (!report.violation.empty()) return;
      std::vector<topo::VertexId> out;
      out.reserve(face.size());
      for (topo::VertexId v : face) out.push_back(decide(v));
      ++report.decisions_checked;
      if (!task.allows(face, topo::make_simplex(std::move(out)))) {
        fail("level-0 decision violates Delta on input face " +
             topo::to_string(face));
      }
    });
    report.ok = report.violation.empty();
    return report;
  }

  for (const topo::Simplex& facet : input.facets()) {
    if (!report.violation.empty()) break;
    const int k = static_cast<int>(facet.size());

    std::atomic<bool> abort{false};
    ExploreOptions opt;
    opt.n_procs = k;
    opt.rounds = solved.level;
    opt.max_crashes = std::min(max_crashes, k);
    opt.max_executions = max_executions;
    opt.cancel = &abort;

    // Explorer position -> color of the facet vertex it plays.
    std::vector<Color> color_of(static_cast<std::size_t>(k));
    for (int pos = 0; pos < k; ++pos) {
      color_of[static_cast<std::size_t>(pos)] =
          input.vertex(facet[static_cast<std::size_t>(pos)]).color;
    }

    std::function<topo::VertexId(int)> init = [&](int pos) {
      return facet[static_cast<std::size_t>(pos)];
    };

    std::function<rt::Step<topo::VertexId>(
        int, int, const rt::IisSnapshot<topo::VertexId>&)>
        on_view = [&](int pos, int round,
                      const rt::IisSnapshot<topo::VertexId>& snap) {
          if (abort.load(std::memory_order_relaxed)) {
            return rt::Step<topo::VertexId>::halt();
          }
          std::vector<topo::VertexId> seen;
          seen.reserve(snap.size());
          for (const auto& [q, v] : snap) seen.push_back(v);
          topo::VertexId v = topo::kNoVertex;
          try {
            v = chain.locate(round + 1, color_of[static_cast<std::size_t>(pos)],
                             topo::make_simplex(std::move(seen)));
          } catch (const std::logic_error& e) {
            fail(std::string("decision replay hit an illegal view: ") +
                 e.what());
            abort.store(true, std::memory_order_relaxed);
            return rt::Step<topo::VertexId>::halt();
          }
          return rt::Step<topo::VertexId>::cont(v);
        };

    std::function<void(const Execution<topo::VertexId>&)> at_end =
        [&](const Execution<topo::VertexId>& e) {
          if (abort.load(std::memory_order_relaxed)) return;
          // Participants took at least one step; survivors completed all
          // `level` rounds and decide delta_b of their final vertex.
          std::vector<topo::VertexId> in;
          std::vector<topo::VertexId> out;
          for (int pos = 0; pos < k; ++pos) {
            const auto upos = static_cast<std::size_t>(pos);
            if (e.rounds_taken[upos] >= 1) in.push_back(facet[upos]);
            if (e.rounds_taken[upos] == solved.level) {
              out.push_back(decide(e.value[upos]));
            }
          }
          if (out.empty()) return;  // nobody survived to decide
          ++report.decisions_checked;
          if (!task.allows(topo::make_simplex(std::move(in)),
                           topo::make_simplex(std::move(out)))) {
            fail("decision violates Delta on facet " + topo::to_string(facet) +
                 "; schedule " + schedule_to_string(e.schedule, e.crashes));
            abort.store(true, std::memory_order_relaxed);
          }
        };

    ExploreStats stats =
        explore_iis<topo::VertexId>(opt, init, on_view, at_end);
    report.explored.executions += stats.executions;
    report.explored.crashy_executions += stats.crashy_executions;
    report.explored.symmetry_pruned += stats.symmetry_pruned;
    if (stats.truncated && report.violation.empty()) {
      report.explored.truncated = true;
    }
  }

  report.ok = report.violation.empty();
  return report;
}

}  // namespace wfc::chk
