// History recording and linearizability checking for snapshot objects
// (registers/atomic_snapshot.hpp and test doubles with the same shape).
//
// RecordingSnapshot wraps any object exposing update(i, value) and
// scan() -> vector<optional<int>> and stamps every operation with
// invocation/response times from one global logical clock -- valid for
// real-thread runs and for StepDriver-controlled runs alike (the clock is a
// single atomic counter, so cross-thread real-time order is exactly counter
// order).
//
// check_linearizable_snapshot decides whether a completed history is
// linearizable against the sequential SWMR snapshot specification (cell i
// holds the last value updated by processor i; a scan returns all cells
// atomically), using the Wing & Gong search: repeatedly pick a pending
// operation that is minimal in real-time order, apply it to the sequential
// state, and backtrack on mismatch.  States are memoized by the per-
// processor progress vector -- for SWMR snapshots the sequential state is a
// function of that vector, so a revisited vector can never succeed if it
// failed before.  This turns the worst case from factorial to the product
// of per-processor op counts.
//
// check_is_axioms verifies the three §3.5 immediate-snapshot properties
// (self-inclusion, containment, immediacy) on a set of write_read outputs.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace wfc::chk {

struct RecordedOp {
  int proc = 0;
  bool is_update = false;
  int value = 0;                          // updates only
  std::vector<std::optional<int>> view;   // scans only
  std::uint64_t invoked = 0;
  std::uint64_t responded = 0;
};

struct SnapshotHistory {
  int n_procs = 0;
  std::vector<RecordedOp> ops;  // sorted by invocation time
};

struct LinearizeReport {
  bool linearizable = false;
  std::uint64_t states_explored = 0;  // search nodes visited
  std::uint64_t memo_hits = 0;        // revisited progress vectors cut
  int max_depth = 0;                  // longest linearized prefix reached
  std::string violation;              // why not (or why malformed)
};

/// Decides linearizability of a complete history (every op responded)
/// against the sequential SWMR snapshot specification.
LinearizeReport check_linearizable_snapshot(const SnapshotHistory& history);

struct IsAxiomsReport {
  bool self_inclusion = true;
  bool containment = true;
  bool immediacy = true;
  std::string violation;

  [[nodiscard]] bool ok() const noexcept {
    return self_inclusion && containment && immediacy;
  }
};

/// Per participant: (id, write_read output as (id, value) pairs).  Outputs
/// of processors that did not finish may simply be absent; immediacy is
/// then checked only across present outputs.
using IsOutputs = std::vector<std::pair<int, std::vector<std::pair<int, int>>>>;

IsAxiomsReport check_is_axioms(const IsOutputs& outputs);

/// Wraps a snapshot-shaped object and records a timestamped history.
/// Thread-safe: per-processor logs, one atomic clock.  Call history() only
/// after every recording thread has quiesced (joined or driver-finished).
template <typename Snapshot>
class RecordingSnapshot {
 public:
  explicit RecordingSnapshot(int n_procs)
      : inner_(n_procs), per_proc_(static_cast<std::size_t>(n_procs)) {}

  void update(int proc, int value) {
    RecordedOp op;
    op.proc = proc;
    op.is_update = true;
    op.value = value;
    op.invoked = tick();
    inner_.update(proc, value);
    op.responded = tick();
    log(std::move(op));
  }

  std::vector<std::optional<int>> scan(int proc) {
    RecordedOp op;
    op.proc = proc;
    op.invoked = tick();
    op.view = inner_.scan();
    op.responded = tick();
    std::vector<std::optional<int>> view = op.view;
    log(std::move(op));
    return view;
  }

  [[nodiscard]] SnapshotHistory history() const {
    SnapshotHistory h;
    h.n_procs = static_cast<int>(per_proc_.size());
    for (const auto& ops : per_proc_) {
      h.ops.insert(h.ops.end(), ops.begin(), ops.end());
    }
    std::sort(h.ops.begin(), h.ops.end(),
              [](const RecordedOp& a, const RecordedOp& b) {
                return a.invoked < b.invoked;
              });
    return h;
  }

  [[nodiscard]] Snapshot& object() noexcept { return inner_; }

 private:
  std::uint64_t tick() {
    return clock_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

  void log(RecordedOp op) {
    const auto p = static_cast<std::size_t>(op.proc);
    WFC_REQUIRE(p < per_proc_.size(), "RecordingSnapshot: bad processor id");
    per_proc_[p].push_back(std::move(op));
  }

  Snapshot inner_;
  std::atomic<std::uint64_t> clock_{0};
  std::vector<std::vector<RecordedOp>> per_proc_;
};

}  // namespace wfc::chk
