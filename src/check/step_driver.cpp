#include "check/step_driver.hpp"

#include <atomic>
#include <bit>

#include "registers/step_point.hpp"

namespace wfc::chk {

namespace {

// Worker threads find their driver through thread-locals, so the installed
// process-wide hook is a plain function and unregistered threads (the
// controller, production code) fall through immediately.
thread_local StepDriver* tl_driver = nullptr;
thread_local int tl_proc = -1;
std::atomic<int> g_installed{0};

}  // namespace

void StepDriver::hook_trampoline() {
  if (tl_driver != nullptr) tl_driver->yield(tl_proc);
}

StepDriver::StepDriver(int n_procs) : procs_(static_cast<std::size_t>(n_procs)) {
  WFC_REQUIRE(n_procs >= 1 && n_procs <= 32, "StepDriver: bad n_procs");
  if (g_installed.fetch_add(1, std::memory_order_acq_rel) == 0) {
    reg::detail::step_hook.store(&StepDriver::hook_trampoline,
                                 std::memory_order_release);
  }
}

StepDriver::~StepDriver() {
  for (std::size_t p = 0; p < procs_.size(); ++p) {
    if (!procs_[p].is_spawned) continue;
    try {
      finish(static_cast<int>(p));
    } catch (...) {
      // The body's exception was already observable via step()/finish();
      // a destructor must not rethrow.
    }
    procs_[p].thread.join();
  }
  if (g_installed.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    reg::detail::step_hook.store(nullptr, std::memory_order_release);
  }
}

void StepDriver::check_proc(int p) const {
  WFC_REQUIRE(p >= 0 && p < static_cast<int>(procs_.size()),
              "StepDriver: bad processor id");
}

void StepDriver::spawn(int p, std::function<void()> body) {
  check_proc(p);
  Proc& proc = procs_[static_cast<std::size_t>(p)];
  {
    std::lock_guard<std::mutex> lock(mu_);
    WFC_REQUIRE(!proc.is_spawned, "StepDriver: processor spawned twice");
    proc.is_spawned = true;
  }
  proc.thread = std::thread([this, p, body = std::move(body)] {
    tl_driver = this;
    tl_proc = p;
    Proc& me = procs_[static_cast<std::size_t>(p)];
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return me.granted; });
      // The grant stays live; the first step point consumes it.
    }
    std::exception_ptr error;
    try {
      body();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      me.error = error;
      me.is_done = true;
      me.granted = false;
    }
    cv_.notify_all();
  });
}

void StepDriver::yield(int p) {
  Proc& me = procs_[static_cast<std::size_t>(p)];
  std::unique_lock<std::mutex> lock(mu_);
  ++me.steps;
  me.granted = false;
  cv_.notify_all();
  cv_.wait(lock, [&] { return me.granted; });
}

void StepDriver::rethrow_locked(Proc& proc) {
  if (proc.error != nullptr) {
    std::exception_ptr error = proc.error;
    proc.error = nullptr;
    std::rethrow_exception(error);
  }
}

bool StepDriver::step(int p) {
  check_proc(p);
  Proc& proc = procs_[static_cast<std::size_t>(p)];
  std::unique_lock<std::mutex> lock(mu_);
  WFC_REQUIRE(proc.is_spawned, "StepDriver: step on unspawned processor");
  if (proc.is_done) {
    rethrow_locked(proc);
    return false;
  }
  proc.granted = true;
  cv_.notify_all();
  cv_.wait(lock, [&] { return !proc.granted || proc.is_done; });
  rethrow_locked(proc);
  return !proc.is_done;
}

bool StepDriver::run_until(int p, const std::function<bool()>& pred) {
  for (;;) {
    if (pred()) return true;
    if (!step(p)) return false;
  }
}

void StepDriver::finish(int p) {
  while (step(p)) {
  }
}

void StepDriver::finish_all() {
  for (std::size_t p = 0; p < procs_.size(); ++p) {
    if (procs_[p].is_spawned) finish(static_cast<int>(p));
  }
}

bool StepDriver::spawned(int p) const {
  check_proc(p);
  std::lock_guard<std::mutex> lock(mu_);
  return procs_[static_cast<std::size_t>(p)].is_spawned;
}

bool StepDriver::done(int p) const {
  check_proc(p);
  std::lock_guard<std::mutex> lock(mu_);
  return procs_[static_cast<std::size_t>(p)].is_done;
}

int StepDriver::steps_taken(int p) const {
  check_proc(p);
  std::lock_guard<std::mutex> lock(mu_);
  return procs_[static_cast<std::size_t>(p)].steps;
}

InterleaveStats for_each_step_interleaving(
    int n_procs, const std::function<void(StepDriver&)>& spawn_all,
    const std::function<void(const std::vector<int>&)>& at_end,
    std::uint64_t max_schedules) {
  WFC_REQUIRE(n_procs >= 1 && n_procs <= 32,
              "for_each_step_interleaving: bad n_procs");
  InterleaveStats stats;
  std::vector<int> prefix;

  for (;;) {
    if (max_schedules != 0 && stats.schedules >= max_schedules) {
      stats.truncated = true;
      return stats;
    }

    StepDriver driver(n_procs);
    spawn_all(driver);
    for (int p = 0; p < n_procs; ++p) {
      WFC_REQUIRE(driver.spawned(p),
                  "for_each_step_interleaving: spawn_all must spawn every "
                  "processor");
    }

    std::vector<int> trace;
    std::vector<std::uint32_t> runnable_before;
    auto runnable_mask = [&] {
      std::uint32_t mask = 0;
      for (int p = 0; p < n_procs; ++p) {
        if (!driver.done(p)) mask |= std::uint32_t{1} << p;
      }
      return mask;
    };

    // Replay the committed choices, then extend lowest-runnable-first.
    for (int choice : prefix) {
      const std::uint32_t mask = runnable_mask();
      WFC_CHECK(((mask >> choice) & 1u) != 0,
                "for_each_step_interleaving: replay diverged (scenario not "
                "deterministic?)");
      runnable_before.push_back(mask);
      trace.push_back(choice);
      driver.step(choice);
    }
    for (;;) {
      const std::uint32_t mask = runnable_mask();
      if (mask == 0) break;
      const int choice = std::countr_zero(mask);
      runnable_before.push_back(mask);
      trace.push_back(choice);
      driver.step(choice);
    }

    ++stats.schedules;
    stats.steps += trace.size();
    at_end(trace);

    // Backtrack: find the latest step with an untried larger alternative.
    bool advanced = false;
    for (std::size_t i = trace.size(); i-- > 0;) {
      const std::uint32_t higher =
          runnable_before[i] &
          ~((std::uint32_t{2} << trace[i]) - 1);  // bits > trace[i]
      if (higher != 0) {
        prefix.assign(trace.begin(),
                      trace.begin() + static_cast<std::ptrdiff_t>(i));
        prefix.push_back(std::countr_zero(higher));
        advanced = true;
        break;
      }
    }
    if (!advanced) return stats;
  }
}

}  // namespace wfc::chk
