// Exhaustive bounded proofs of the paper's structural lemmas.
//
// check_views_in_sds: for EVERY bounded IIS execution (all ordered-partition
// schedules, all crash placements within the budget) of the full-information
// protocol, every processor's view after round r is a vertex of SDS^r(s^n)
// (SdsChain::locate succeeds -- Lemma 3.3) and the views co-produced by one
// round form a simplex of that level (Lemma 3.2's bijection, crashed
// executions landing on proper faces).  A failure would be a counterexample
// to the lemmas as implemented -- the subdivision, the runtime, or the
// locate logic disagreeing about what a legal view is.
//
// check_decision_against_delta: replays a compiled decision map delta_b
// (tasks/solvability.hpp) over every bounded schedule of every input facet,
// with crash injection, and checks each surviving decision tuple against the
// task's Delta.  This is the operational half of Proposition 3.1: the
// simplicial-map certificate must translate into a protocol whose every
// execution -- not just the sampled ones -- decides legally.
#pragma once

#include <cstdint>
#include <string>

#include "check/explorer.hpp"
#include "protocol/sds_chain.hpp"
#include "tasks/solvability.hpp"
#include "tasks/task.hpp"

namespace wfc::chk {

struct SdsCheckReport {
  /// True iff no violation was found.  An incomplete sweep (truncated) can
  /// still report ok=true; callers needing exhaustiveness must also check
  /// explored.truncated.
  bool ok = false;
  ExploreStats explored;
  std::uint64_t vertices_located = 0;   // successful SdsChain::locate calls
  std::uint64_t simplices_checked = 0;  // per-round view vectors tested
  std::string violation;                // first violation, human-readable
};

/// Explores every (schedule, crash placement) of `options` for the
/// full-information protocol on s^{n-1} and checks views against a freshly
/// built SDS chain of depth options.rounds.
SdsCheckReport check_views_in_sds(const ExploreOptions& options);

/// Same, against a caller-supplied chain (must be built over
/// base_simplex(options.n_procs) with depth >= options.rounds) -- the
/// service layer passes its cached tower here.
SdsCheckReport check_views_in_sds(const ExploreOptions& options,
                                  const proto::SdsChain& chain);

struct DeltaCheckReport {
  bool ok = false;
  ExploreStats explored;                // summed over input facets
  std::uint64_t decisions_checked = 0;  // decision tuples tested against Delta
  std::string violation;
};

/// Checks a kSolvable result's decision map against Delta over every bounded
/// schedule with up to `max_crashes` crashes per execution, for every input
/// facet.  Crashing j processors at round 0 exercises participation by the
/// corresponding (k-j)-faces; a level-0 map is instead checked directly on
/// every face of every facet.  `max_executions` bounds the sweep per facet
/// (0 = unlimited).
DeltaCheckReport check_decision_against_delta(const task::Task& task,
                                              const task::SolveResult& solved,
                                              int max_crashes,
                                              std::uint64_t max_executions = 0);

}  // namespace wfc::chk
