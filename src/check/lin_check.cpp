#include "check/lin_check.hpp"

#include <limits>
#include <unordered_set>

#include "common/color_set.hpp"

namespace wfc::chk {

namespace {

std::string describe(const RecordedOp& op) {
  std::string s = "P" + std::to_string(op.proc) +
                  (op.is_update ? " update(" + std::to_string(op.value) + ")"
                                : " scan");
  s += " [" + std::to_string(op.invoked) + "," + std::to_string(op.responded) +
       "]";
  return s;
}

/// Hashable key for the per-processor progress vector.
std::string pos_key(const std::vector<std::size_t>& pos) {
  std::string key;
  key.reserve(pos.size() * sizeof(std::size_t));
  for (std::size_t v : pos) {
    key.append(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  return key;
}

}  // namespace

LinearizeReport check_linearizable_snapshot(const SnapshotHistory& history) {
  LinearizeReport report;
  const auto n = static_cast<std::size_t>(history.n_procs);

  // Validate and split into per-processor program order.
  std::vector<std::vector<const RecordedOp*>> per(n);
  for (const RecordedOp& op : history.ops) {
    if (op.proc < 0 || static_cast<std::size_t>(op.proc) >= n) {
      report.violation = "malformed history: bad processor id in " +
                         describe(op);
      return report;
    }
    if (op.responded <= op.invoked) {
      report.violation = "malformed history: incomplete or unordered op " +
                         describe(op);
      return report;
    }
    if (!op.is_update && op.view.size() != n) {
      report.violation = "malformed history: scan view has wrong width in " +
                         describe(op);
      return report;
    }
    per[static_cast<std::size_t>(op.proc)].push_back(&op);
  }
  for (auto& ops : per) {
    std::sort(ops.begin(), ops.end(),
              [](const RecordedOp* a, const RecordedOp* b) {
                return a->invoked < b->invoked;
              });
    for (std::size_t i = 1; i < ops.size(); ++i) {
      if (ops[i]->invoked <= ops[i - 1]->responded) {
        report.violation = "malformed history: overlapping ops on one "
                           "processor: " + describe(*ops[i]);
        return report;
      }
    }
  }

  // Wing-Gong search.  The sequential state (cell p = value of p's last
  // applied update) is a pure function of `pos`, so memoizing failed pos
  // vectors is sound.
  std::vector<std::size_t> pos(n, 0);
  std::vector<std::optional<int>> state(n);
  std::unordered_set<std::string> failed;

  auto all_done = [&] {
    for (std::size_t p = 0; p < n; ++p) {
      if (pos[p] < per[p].size()) return false;
    }
    return true;
  };

  auto dfs = [&](auto&& self, int depth) -> bool {
    ++report.states_explored;
    report.max_depth = std::max(report.max_depth, depth);
    if (all_done()) return true;
    if (!failed.insert(pos_key(pos)).second) {
      ++report.memo_hits;
      return false;
    }
    for (std::size_t p = 0; p < n; ++p) {
      if (pos[p] >= per[p].size()) continue;
      const RecordedOp& op = *per[p][pos[p]];
      // Real-time order: op may be linearized next only if no other pending
      // op responded before op was invoked.
      bool minimal = true;
      for (std::size_t q = 0; q < n && minimal; ++q) {
        if (q == p || pos[q] >= per[q].size()) continue;
        if (per[q][pos[q]]->responded < op.invoked) minimal = false;
      }
      if (!minimal) continue;
      if (op.is_update) {
        const std::optional<int> saved = state[p];
        state[p] = op.value;
        ++pos[p];
        if (self(self, depth + 1)) return true;
        --pos[p];
        state[p] = saved;
      } else {
        if (op.view != state) continue;  // scan must return the exact state
        ++pos[p];
        if (self(self, depth + 1)) return true;
        --pos[p];
      }
    }
    return false;
  };

  report.linearizable = dfs(dfs, 0);
  if (!report.linearizable) {
    report.violation =
        "no linearization exists (deepest consistent prefix: " +
        std::to_string(report.max_depth) + " of " +
        std::to_string(history.ops.size()) + " ops)";
  }
  return report;
}

IsAxiomsReport check_is_axioms(const IsOutputs& outputs) {
  IsAxiomsReport report;
  auto fail = [&](bool& flag, std::string what) {
    if (report.violation.empty()) report.violation = std::move(what);
    flag = false;
  };

  // Output sets as id masks, indexed by participant.
  std::vector<std::pair<int, ColorSet>> sets;
  sets.reserve(outputs.size());
  for (const auto& [id, out] : outputs) {
    WFC_REQUIRE(id >= 0 && id < kMaxColors, "check_is_axioms: bad id");
    ColorSet s;
    for (const auto& [j, value] : out) {
      WFC_REQUIRE(j >= 0 && j < kMaxColors, "check_is_axioms: bad seen id");
      s = s.with(j);
    }
    sets.emplace_back(id, s);
  }

  for (const auto& [id, s] : sets) {
    if (!s.contains(id)) {
      fail(report.self_inclusion,
           "self-inclusion violated: " + std::to_string(id) + " not in S_" +
               std::to_string(id) + " = " + s.to_string());
    }
  }
  for (std::size_t a = 0; a < sets.size(); ++a) {
    for (std::size_t b = a + 1; b < sets.size(); ++b) {
      const auto& [ia, sa] = sets[a];
      const auto& [ib, sb] = sets[b];
      if (!sa.subset_of(sb) && !sb.subset_of(sa)) {
        fail(report.containment,
             "containment violated: S_" + std::to_string(ia) + " = " +
                 sa.to_string() + " vs S_" + std::to_string(ib) + " = " +
                 sb.to_string());
      }
    }
  }
  for (const auto& [ia, sa] : sets) {
    for (const auto& [ib, sb] : sets) {
      if (sa.contains(ib) && !sb.subset_of(sa)) {
        fail(report.immediacy,
             "immediacy violated: " + std::to_string(ib) + " in S_" +
                 std::to_string(ia) + " but S_" + std::to_string(ib) + " = " +
                 sb.to_string() + " not in S_" + std::to_string(ia) + " = " +
                 sa.to_string());
      }
    }
  }
  return report;
}

}  // namespace wfc::chk
