// Cooperative step-interleaving driver for the real register code, plus an
// exhaustive enumerator over step interleavings.
//
// StepDriver runs each "processor" as a worker thread that parks at every
// shared-memory access of the register layer (reg::detail::step_point(),
// called at the top of every SwmrRegister access and at every level
// store/load of ImmediateSnapshot).  Exactly one thread runs at a time, and
// only when granted:
//
//   StepDriver d(2);
//   d.spawn(0, [&] { view = snap.scan(); });
//   d.step(0);   // run P0 up to (not into) its 1st shared access
//   d.step(0);   // perform access 1, park before access 2
//   ...          // interleave other processors / controller-thread calls
//   d.finish(0); // run P0 to completion
//
// After step(p) has returned k times, P0 has performed exactly k-1 shared
// accesses and is parked immediately before its k-th (steps to completion =
// accesses + 1).  Tests rarely count accesses directly; run_until(p, pred)
// advances until an observable predicate holds.  The controlling thread and
// any thread the driver did not spawn pass through step points untouched, so
// a test can freely call register operations "atomically" between steps.
//
// All handoff goes through one mutex/condvar pair, so TSan sees every
// cross-thread edge; the registers' own atomics still provide the orderings
// under test.  Exceptions thrown by a body are captured and rethrown from
// the next step()/finish() call for that processor.
//
// for_each_step_interleaving turns the driver into a stateless model
// checker: it re-executes a deterministic multi-processor scenario once per
// schedule, enumerating ALL step interleavings by DFS with replay --
// lowest-runnable-first default extension, then backtracking the latest
// choice point.  Scenario bodies must be deterministic functions of the
// schedule (no time, no randomness), or the replay diverges.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/assert.hpp"

namespace wfc::chk {

class StepDriver {
 public:
  explicit StepDriver(int n_procs);
  ~StepDriver();  // runs every spawned processor to completion, then joins

  StepDriver(const StepDriver&) = delete;
  StepDriver& operator=(const StepDriver&) = delete;

  /// Launches `body` as processor `p`'s thread; it stays parked until the
  /// first step(p).
  void spawn(int p, std::function<void()> body);

  /// Advances processor p to its next step point (or to completion).
  /// Returns false iff p had already finished.  Rethrows p's exception, if
  /// its body threw.
  bool step(int p);

  /// Steps p until pred() holds (checked before each step, on the calling
  /// thread, with p parked) or p finishes.  Returns true iff pred held.
  bool run_until(int p, const std::function<bool()>& pred);

  /// Runs p to completion.
  void finish(int p);

  /// Runs every spawned processor to completion, lowest id first.
  void finish_all();

  [[nodiscard]] bool spawned(int p) const;
  [[nodiscard]] bool done(int p) const;
  /// Times p has been granted a step so far.
  [[nodiscard]] int steps_taken(int p) const;

 private:
  struct Proc {
    std::thread thread;
    bool is_spawned = false;
    bool granted = false;
    bool is_done = false;
    int steps = 0;
    std::exception_ptr error;
  };

  static void hook_trampoline();
  void yield(int p);  // called from worker threads at step points
  void check_proc(int p) const;
  void rethrow_locked(Proc& proc);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Proc> procs_;
};

struct InterleaveStats {
  std::uint64_t schedules = 0;  // complete interleavings executed
  std::uint64_t steps = 0;      // total steps across all schedules
  bool truncated = false;       // max_schedules hit
};

/// Executes `spawn_all` (which must spawn ALL n_procs processors on the
/// driver it is given) once per step interleaving, exhaustively.  After each
/// complete run, at_end receives the schedule (the processor id granted at
/// each step).  Cost is the number of interleavings, roughly
/// (sum steps)! / prod(steps_p!) -- keep scenarios to 2-3 processors and a
/// handful of operations, and cap with max_schedules (0 = unlimited).
InterleaveStats for_each_step_interleaving(
    int n_procs, const std::function<void(StepDriver&)>& spawn_all,
    const std::function<void(const std::vector<int>&)>& at_end,
    std::uint64_t max_schedules = 0);

}  // namespace wfc::chk
