// §4 emulation conformance under exhaustive scheduling and crash injection.
//
// Runs the Figure-2 emulation of the k-shot full-information client over
// EVERY (ordered partition, crash placement) choice for the first
// `explore_rounds` IIS memories, then completes each execution
// deterministically with the synchronous schedule, and checks every produced
// operation history against emu::check_history -- the machine-checkable form
// of Proposition 4.1 / Claim 4.1 / Corollary 4.1 (for SWMR snapshot memory,
// equivalent to linearizability of the emulated object).
//
// Crashed emulators leave partial logs (their completed operations only),
// which the history checker accepts: a correct emulation must stay correct
// for the survivors no matter which emulators die when.  EmulatorCore is
// copyable, so the DFS forks mid-execution states directly instead of
// replaying prefixes.
#pragma once

#include <cstdint>
#include <string>

#include "check/explorer.hpp"

namespace wfc::chk {

struct ConformanceOptions {
  int n_procs = 2;        // emulated processors (= emulators)
  int shots = 1;          // full-information snapshots per client
  int explore_rounds = 2; // exhaustively explored schedule prefix
  int max_crashes = 0;    // total crash budget across each execution
  /// Completion bound for the deterministic tail; 0 picks a generous bound
  /// from shots and n_procs (the emulation is nonblocking, so survivors
  /// always finish under the synchronous tail).
  int max_rounds = 0;
  std::uint64_t max_executions = 0;  // 0 = unlimited
};

struct ConformanceReport {
  bool ok = false;
  ExploreStats explored;
  std::uint64_t histories_checked = 0;
  int max_rounds_used = 0;  // worst completion depth over all executions
  std::string violation;
};

ConformanceReport check_emulation_conformance(const ConformanceOptions& options);

}  // namespace wfc::chk
