#include "check/conformance.hpp"

#include <algorithm>
#include <sstream>

#include "emulation/emulator.hpp"
#include "emulation/history.hpp"
#include "topology/ordered_partition.hpp"

namespace wfc::chk {

namespace {

/// Mid-execution emulation state; copyable, so the DFS forks it per branch.
struct EmuFrame {
  std::vector<emu::EmulatorCore> cores;
  std::vector<emu::TupleSet> value;  // next submission per live emulator
  ColorSet active;                   // neither halted nor crashed
  ColorSet crashed;
  std::vector<int> steps;            // WriteReads per emulator
};

/// Applies one IIS round with the given partition of (a subset of) the
/// active emulators.
void apply_round(EmuFrame& frame, int round, const rt::Partition& part) {
  rt::IisSnapshot<emu::TupleSet> written;
  for (const ColorSet& block : part) {
    for (Color p : block) {
      written.emplace_back(p, frame.value[static_cast<std::size_t>(p)]);
    }
    std::sort(written.begin(), written.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (Color p : block) {
      const auto up = static_cast<std::size_t>(p);
      ++frame.steps[up];
      std::optional<emu::TupleSet> next =
          frame.cores[up].on_round(round, written);
      if (next.has_value()) {
        frame.value[up] = std::move(*next);
      } else {
        frame.active = frame.active.without(p);
      }
    }
  }
}

std::string describe_prefix(const std::vector<rt::Partition>& schedule,
                            const std::vector<ColorSet>& crashes) {
  std::ostringstream os;
  for (std::size_t r = 0; r < schedule.size(); ++r) {
    if (r != 0) os << " ; ";
    os << "r" << r << ":";
    for (const ColorSet& block : schedule[r]) os << block.to_string();
    if (!crashes[r].empty()) os << " crash" << crashes[r].to_string();
  }
  return os.str();
}

}  // namespace

ConformanceReport check_emulation_conformance(
    const ConformanceOptions& opt) {
  WFC_REQUIRE(opt.n_procs >= 1 && opt.n_procs <= kMaxColors,
              "check_emulation_conformance: bad n_procs");
  WFC_REQUIRE(opt.shots >= 1, "check_emulation_conformance: bad shots");
  WFC_REQUIRE(opt.explore_rounds >= 0,
              "check_emulation_conformance: negative explore_rounds");
  WFC_REQUIRE(opt.max_crashes >= 0 && opt.max_crashes <= opt.n_procs,
              "check_emulation_conformance: bad crash budget");
  const int bound = opt.max_rounds > 0
                        ? opt.max_rounds
                        : opt.explore_rounds + 16 + 32 * opt.shots * opt.n_procs;

  ConformanceReport report;
  std::vector<rt::Partition> schedule;  // explored prefix, for diagnostics
  std::vector<ColorSet> crashes;
  bool stop = false;

  emu::FullInfoClient client(opt.shots);
  const std::function<int(int)> init = client.init();
  const emu::EmulatorCore::OnScan on_scan = client.on_scan();

  auto make_root = [&] {
    EmuFrame root;
    root.active = ColorSet::full(opt.n_procs);
    root.steps.assign(static_cast<std::size_t>(opt.n_procs), 0);
    for (int p = 0; p < opt.n_procs; ++p) {
      root.cores.emplace_back(p, opt.n_procs, init, on_scan);
      root.value.push_back(root.cores.back().initial_submission());
    }
    return root;
  };

  auto finalize = [&](EmuFrame frame, int round) {
    if (stop) return;
    if (opt.max_executions != 0 &&
        report.explored.executions >= opt.max_executions) {
      report.explored.truncated = true;
      stop = true;
      return;
    }
    // Deterministic synchronous tail until every survivor halts.
    while (!frame.active.empty() && round < bound) {
      apply_round(frame, round, {frame.active});
      ++round;
    }
    ++report.explored.executions;
    if (!frame.crashed.empty()) ++report.explored.crashy_executions;
    report.max_rounds_used = std::max(report.max_rounds_used, round);
    if (!frame.active.empty()) {
      report.violation = "survivors still running after " +
                         std::to_string(bound) + " rounds (prefix " +
                         describe_prefix(schedule, crashes) + ")";
      stop = true;
      return;
    }
    emu::EmulationResult result;
    result.rounds_used = round;
    result.iis_steps = frame.steps;
    result.ops.reserve(frame.cores.size());
    for (const emu::EmulatorCore& core : frame.cores) {
      result.ops.push_back(core.log());
      // A crashed emulator's in-flight write may have been adopted by
      // survivors before the crash; append it so its value is not a ghost.
      if (auto pend = core.pending(); pend.has_value() && pend->is_write) {
        result.ops.back().push_back(std::move(*pend));
      }
    }
    ++report.histories_checked;
    const emu::HistoryReport hr = emu::check_history(result);
    if (!hr.ok()) {
      report.violation = "emulated history illegal: " + hr.violation +
                         " (prefix " + describe_prefix(schedule, crashes) +
                         ")";
      stop = true;
    }
  };

  auto rec = [&](auto&& self, const EmuFrame& frame, int round) -> void {
    if (stop) return;
    if (frame.active.empty() || round == opt.explore_rounds) {
      finalize(frame, round);
      return;
    }

    auto try_round = [&](ColorSet crash_set, const rt::Partition& part) {
      if (stop) return;
      EmuFrame next = frame;
      next.active = frame.active.minus(crash_set);
      next.crashed = frame.crashed.unite(crash_set);
      apply_round(next, round, part);
      schedule.push_back(part);
      crashes.push_back(crash_set);
      self(self, next, round + 1);
      crashes.pop_back();
      schedule.pop_back();
    };

    auto with_crash_set = [&](ColorSet crash_set) {
      const ColorSet live = frame.active.minus(crash_set);
      if (live.empty()) {
        try_round(crash_set, rt::Partition{});
        return;
      }
      std::vector<Color> procs(live.begin(), live.end());
      topo::for_each_ordered_partition(
          static_cast<int>(procs.size()),
          [&](const topo::OrderedPartition& op) {
            rt::Partition part;
            part.reserve(op.size());
            for (const std::vector<int>& block : op) {
              ColorSet b;
              for (int pos : block) {
                b = b.with(procs[static_cast<std::size_t>(pos)]);
              }
              part.push_back(b);
            }
            try_round(crash_set, part);
          });
    };

    with_crash_set(ColorSet{});
    const int budget = opt.max_crashes - frame.crashed.size();
    if (budget > 0) {
      for_each_nonempty_subset(frame.active, [&](ColorSet crash_set) {
        if (crash_set.size() <= budget) with_crash_set(crash_set);
      });
    }
  };

  rec(rec, make_root(), 0);
  report.ok = report.violation.empty();
  return report;
}

}  // namespace wfc::chk
