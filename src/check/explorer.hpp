// wfc::chk -- deterministic schedule explorer for the IIS model with crash
// fault injection and symmetry reduction.
//
// The paper quantifies over ALL schedules: Lemma 3.2/3.3 say the protocol
// complex of b IIS rounds is exactly SDS^b(s^n), and the wait-free reading
// of the model is that up to t = n processors may crash.  The runtime's
// for_each_iis_execution (runtime/sim_iis.hpp) enumerates the crash-free
// schedules; this explorer closes the gap:
//
//   * per round it first chooses a set of processors to SILENCE (a crash:
//     the processor performs no WriteRead at that round or later), bounded
//     by max_crashes in total, then an ordered partition of the remaining
//     live processors;
//   * a crashed processor is indistinguishable -- to every survivor -- from
//     one scheduled alone in the last block of every later round, which is
//     why crashed executions still land inside SDS^b (sds_check.hpp turns
//     that into an assertion);
//   * crash granularity is complete at the model level: an IIS WriteRead is
//     atomic, so "crashed mid-operation" is either "took the step, crashed
//     before the next round" (enumerated as a crash one round later) or
//     "never took the step" (enumerated as a crash this round).
//
// Symmetry reduction keeps only the lexicographically minimal execution in
// each orbit of the color group S_n acting on (crash set, partition) round
// signatures.  This is SOUND ONLY for color-symmetric protocols and
// properties (the full-information protocol and the SDS membership check
// are; a decision map generally is not) -- callers opt in explicitly.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/color_set.hpp"
#include "runtime/adversary.hpp"
#include "runtime/sim_iis.hpp"

namespace wfc::chk {

struct ExploreOptions {
  int n_procs = 2;
  /// Depth b: every execution runs exactly this many rounds unless all
  /// processors crash or halt first.
  int rounds = 1;
  /// Total crash budget t across the whole execution (0 = crash-free).
  int max_crashes = 0;
  /// Keep only lex-minimal orbit representatives under color permutations.
  /// Sound only for color-symmetric protocols/properties; see header.
  bool symmetry_reduction = false;
  /// Stop after this many executions (0 = unlimited); sets truncated.
  std::uint64_t max_executions = 0;
  /// Cooperative cancellation (service layer); checked per execution.
  const std::atomic<bool>* cancel = nullptr;
  /// Run-subset gate (the wfc::model adapter plugs in here): a complete
  /// execution whose (schedule, crashes) the filter rejects is counted in
  /// ExploreStats::filtered and never reaches at_end.  Null admits every
  /// execution.  Combining with symmetry_reduction is sound only when the
  /// filter is color-symmetric (the built-in adversary models are; an
  /// explicit affine window set generally is not).
  std::function<bool(const std::vector<rt::Partition>&,
                     const std::vector<ColorSet>&)>
      run_filter;
};

struct ExploreStats {
  std::uint64_t executions = 0;        // complete executions emitted
  std::uint64_t crashy_executions = 0; // emitted executions with >= 1 crash
  std::uint64_t symmetry_pruned = 0;   // DFS branches cut as non-minimal
  std::uint64_t filtered = 0;          // executions rejected by run_filter
  bool truncated = false;              // max_executions or cancel hit
};

/// One complete bounded execution, valid only during the at_end callback.
template <typename Value>
struct Execution {
  /// Per executed round, the ordered partition of the processors that
  /// acted.  A round in which every remaining processor crashed is an empty
  /// partition (and is always the last round).
  const std::vector<rt::Partition>& schedule;
  /// Per executed round, the processors silenced at that round.
  const std::vector<ColorSet>& crashes;
  /// Union of `crashes`.
  ColorSet crashed;
  /// Final per-processor values (crashed processors hold their last value).
  const std::vector<Value>& value;
  /// WriteReads performed per processor.
  const std::vector<int>& rounds_taken;
};

namespace detail {

inline std::uint32_t permute_mask(std::uint32_t mask,
                                  const std::vector<int>& perm) {
  std::uint32_t out = 0;
  while (mask != 0) {
    const int c = std::countr_zero(mask);
    mask &= mask - 1;
    out |= std::uint32_t{1} << perm[static_cast<std::size_t>(c)];
  }
  return out;
}

/// A round's identity for the symmetry order: crash mask then block masks.
using RoundSig = std::vector<std::uint32_t>;

inline RoundSig permute_sig(const RoundSig& sig, const std::vector<int>& perm) {
  RoundSig out;
  out.reserve(sig.size());
  for (std::uint32_t m : sig) out.push_back(permute_mask(m, perm));
  return out;
}

}  // namespace detail

/// Enumerates every execution of `opt.rounds` IIS rounds of a deterministic
/// protocol, with every placement of up to `opt.max_crashes` crashes,
/// invoking at_end once per complete execution.  Cost without crashes is
/// prod_r Fubini(n_r); crashes multiply it by the number of crash placements
/// -- keep n <= 4 and rounds <= 3 (the paper's arguments never need more).
template <typename Value>
ExploreStats explore_iis(
    const ExploreOptions& opt, const std::function<Value(int)>& init,
    const std::function<rt::Step<Value>(int, int, const rt::IisSnapshot<Value>&)>&
        on_view,
    const std::function<void(const Execution<Value>&)>& at_end) {
  WFC_REQUIRE(opt.n_procs >= 1 && opt.n_procs <= kMaxColors,
              "explore_iis: bad n_procs");
  WFC_REQUIRE(opt.rounds >= 0, "explore_iis: negative rounds");
  WFC_REQUIRE(opt.max_crashes >= 0 && opt.max_crashes <= opt.n_procs,
              "explore_iis: bad crash budget");

  struct Frame {
    std::vector<Value> value;
    ColorSet active;
  };

  ExploreStats stats;
  std::vector<rt::Partition> schedule;
  std::vector<ColorSet> crashes;
  std::vector<int> rounds_taken(static_cast<std::size_t>(opt.n_procs), 0);
  int crashed_count = 0;
  bool stop = false;

  // Color permutations for symmetry reduction (identity excluded); `tied`
  // carries the indices of permutations that fix the current prefix.
  std::vector<std::vector<int>> perms;
  std::vector<int> all_tied;
  if (opt.symmetry_reduction) {
    std::vector<int> p(static_cast<std::size_t>(opt.n_procs));
    for (int i = 0; i < opt.n_procs; ++i) p[static_cast<std::size_t>(i)] = i;
    while (std::next_permutation(p.begin(), p.end())) perms.push_back(p);
    all_tied.resize(perms.size());
    for (std::size_t i = 0; i < perms.size(); ++i) {
      all_tied[i] = static_cast<int>(i);
    }
  }

  auto emit = [&](const Frame& frame) {
    if (opt.cancel != nullptr && opt.cancel->load(std::memory_order_relaxed)) {
      stats.truncated = true;
      stop = true;
      return;
    }
    if (opt.max_executions != 0 && stats.executions >= opt.max_executions) {
      stats.truncated = true;
      stop = true;
      return;
    }
    if (opt.run_filter && !opt.run_filter(schedule, crashes)) {
      ++stats.filtered;
      return;
    }
    ++stats.executions;
    ColorSet crashed;
    for (ColorSet c : crashes) crashed = crashed.unite(c);
    if (!crashed.empty()) ++stats.crashy_executions;
    at_end(Execution<Value>{schedule, crashes, crashed, frame.value,
                            rounds_taken});
  };

  auto rec = [&](auto&& self, const Frame& frame, int round,
                 const std::vector<int>& tied) -> void {
    if (stop) return;
    if (round == opt.rounds || frame.active.empty()) {
      emit(frame);
      return;
    }

    // One branch per (crash set, ordered partition of the survivors).
    auto try_round = [&](ColorSet crash_set, const rt::Partition& part) {
      if (stop) return;
      // Symmetry: compare this round's signature against every still-tied
      // permutation of it.
      std::vector<int> tied2;
      if (!tied.empty()) {
        detail::RoundSig sig;
        sig.push_back(crash_set.mask());
        for (ColorSet block : part) sig.push_back(block.mask());
        for (int pi : tied) {
          const detail::RoundSig permuted =
              detail::permute_sig(sig, perms[static_cast<std::size_t>(pi)]);
          if (permuted < sig) {
            ++stats.symmetry_pruned;
            return;  // an equivalent smaller execution will be explored
          }
          if (permuted == sig) tied2.push_back(pi);
        }
      }

      Frame next = frame;
      next.active = frame.active.minus(crash_set);
      rt::IisSnapshot<Value> written;
      for (ColorSet block : part) {
        for (Color p : block) {
          written.emplace_back(p, next.value[static_cast<std::size_t>(p)]);
        }
        std::sort(written.begin(), written.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
        for (Color p : block) {
          ++rounds_taken[static_cast<std::size_t>(p)];
          rt::Step<Value> step = on_view(p, round, written);
          if (step.kind == rt::Step<Value>::Kind::kContinue) {
            next.value[static_cast<std::size_t>(p)] = std::move(step.next);
          } else {
            next.active = next.active.without(p);
          }
        }
      }

      schedule.push_back(part);
      crashes.push_back(crash_set);
      crashed_count += crash_set.size();
      self(self, next, round + 1, tied2);
      crashed_count -= crash_set.size();
      crashes.pop_back();
      schedule.pop_back();
      for (ColorSet block : part) {
        for (Color p : block) --rounds_taken[static_cast<std::size_t>(p)];
      }
    };

    auto with_crash_set = [&](ColorSet crash_set) {
      ColorSet live = frame.active.minus(crash_set);
      if (live.empty()) {
        // Everyone remaining crashed: the execution ends with an empty round.
        try_round(crash_set, rt::Partition{});
        return;
      }
      std::vector<Color> procs(live.begin(), live.end());
      topo::for_each_ordered_partition(
          static_cast<int>(procs.size()),
          [&](const topo::OrderedPartition& op) {
            rt::Partition part;
            part.reserve(op.size());
            for (const std::vector<int>& block : op) {
              ColorSet b;
              for (int pos : block) {
                b = b.with(procs[static_cast<std::size_t>(pos)]);
              }
              part.push_back(b);
            }
            try_round(crash_set, part);
          });
    };

    with_crash_set(ColorSet{});  // crash-free branches first
    const int budget = opt.max_crashes - crashed_count;
    if (budget > 0) {
      for_each_nonempty_subset(frame.active, [&](ColorSet crash_set) {
        if (crash_set.size() <= budget) with_crash_set(crash_set);
      });
    }
  };

  Frame root;
  root.value.resize(static_cast<std::size_t>(opt.n_procs));
  root.active = ColorSet::full(opt.n_procs);
  for (Color p : root.active) {
    root.value[static_cast<std::size_t>(p)] = init(p);
  }
  rec(rec, root, 0, all_tied);
  return stats;
}

/// A crash plan: (round, processor) pairs -- the processor performs no
/// WriteRead at that round or later.
using CrashPlan = std::vector<std::pair<int, Color>>;

/// Crash-fault injector: wraps a base adversary and silences the planned
/// processors.  rt::Adversary's contract requires partitions to cover the
/// active set exactly, so crash-AWARE executors (run_iis_crashing below, the
/// conformance runner) remove crashes_at(round) from the active set first;
/// partition() also subtracts them defensively so the injector composes with
/// any base adversary.
class CrashAdversary final : public rt::Adversary {
 public:
  CrashAdversary(rt::Adversary& base, CrashPlan plan);

  /// Processors newly silenced at `round`.
  [[nodiscard]] ColorSet crashes_at(int round) const;
  /// Processors silenced at any round <= `round`.
  [[nodiscard]] ColorSet crashed_by(int round) const;
  [[nodiscard]] int planned_crashes() const noexcept {
    return static_cast<int>(plan_.size());
  }

  rt::Partition partition(int round, ColorSet active) override;

 private:
  rt::Adversary* base_;
  CrashPlan plan_;
};

struct CrashRunStats {
  rt::IisRunStats iis;  // schedule of live partitions, rounds per processor
  ColorSet crashed;     // processors silenced during the run
};

/// run_iis with crash injection: before each round the processors in
/// adversary.crashes_at(round) stop for good; survivors follow the base
/// schedule.  Throws std::logic_error if a SURVIVOR is still running after
/// max_rounds (crashed processors are exempt from the halting requirement).
template <typename Value>
CrashRunStats run_iis_crashing(
    int n_procs, CrashAdversary& adversary, int max_rounds,
    const std::function<Value(int)>& init,
    const std::function<rt::Step<Value>(int, int, const rt::IisSnapshot<Value>&)>&
        on_view) {
  WFC_REQUIRE(n_procs >= 1 && n_procs <= kMaxColors,
              "run_iis_crashing: bad n_procs");
  WFC_REQUIRE(max_rounds >= 0, "run_iis_crashing: negative max_rounds");

  CrashRunStats stats;
  stats.iis.rounds_taken.assign(static_cast<std::size_t>(n_procs), 0);
  std::vector<Value> value(static_cast<std::size_t>(n_procs));
  ColorSet active = ColorSet::full(n_procs);
  for (Color p : active) value[static_cast<std::size_t>(p)] = init(p);

  for (int round = 0; round < max_rounds && !active.empty(); ++round) {
    const ColorSet newly = adversary.crashes_at(round).intersect(active);
    stats.crashed = stats.crashed.unite(newly);
    active = active.minus(newly);
    if (active.empty()) break;

    rt::Partition part = adversary.partition(round, active);
    rt::validate_partition(part, active);
    stats.iis.schedule.push_back(part);
    ++stats.iis.rounds_executed;

    rt::IisSnapshot<Value> written;
    ColorSet halted;
    for (ColorSet block : part) {
      for (Color p : block) {
        written.emplace_back(p, value[static_cast<std::size_t>(p)]);
      }
      std::sort(written.begin(), written.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      for (Color p : block) {
        ++stats.iis.rounds_taken[static_cast<std::size_t>(p)];
        rt::Step<Value> step = on_view(p, round, written);
        if (step.kind == rt::Step<Value>::Kind::kContinue) {
          value[static_cast<std::size_t>(p)] = std::move(step.next);
        } else {
          halted = halted.with(p);
        }
      }
    }
    active = active.minus(halted);
  }
  WFC_CHECK(active.empty(),
            "run_iis_crashing: survivors still running after max_rounds");
  return stats;
}

}  // namespace wfc::chk
