#include "wf/telemetry.hpp"

namespace wfc::wf {

Telemetry& telemetry() {
  static Telemetry instance;
  return instance;
}

}  // namespace wfc::wf
