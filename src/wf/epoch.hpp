// Epoch-based memory reclamation for the wait-free data plane (wfc::wf).
//
// The lock-free structures in this directory unlink nodes that concurrent
// readers may still be traversing.  Freeing such a node immediately would
// hand a reader a dangling pointer; holding it forever leaks.  Epoch-based
// reclamation (EBR) threads the needle with three global "epochs":
//
//   * every reader brackets its traversal in a Guard, which publishes the
//     global epoch it entered under (one relaxed store + one fence);
//   * retire(p) stamps p with the current epoch and defers it on a
//     per-thread limbo list -- no lock, no shared write;
//   * the epoch advances only when every pinned thread has observed the
//     current value, so anything retired two epochs ago is unreachable by
//     every live guard and can be freed.
//
// This is the classic grace-period argument: a node unlinked and retired
// in epoch e can only be held by guards that entered at e or earlier; once
// the epoch has advanced twice, every such guard has exited.
//
// One global domain (`Epoch::global()`) serves the whole process -- the
// structures here share threads, so separate domains would only multiply
// bookkeeping.  Thread records self-register on first use and hand their
// pending retirees to a lock-free orphan stack on thread exit, so no
// memory is stranded (the domain destructor frees whatever remains, which
// keeps LeakSanitizer green).
//
// Progress: pin/unpin are wait-free (constant work).  retire is wait-free
// (a local list push) and every 64th call attempts an amortized collect().
// collect() is lock-free: a stalled *quiescent* thread costs nothing, and
// a stalled *pinned* thread only pauses reclamation, never readers or
// writers -- memory grows until it resumes, the data plane keeps serving.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace wfc::wf {

/// Small dense id for the calling thread (assigned on first use, recycled
/// on thread exit).  Shared by the epoch domain, the sharded counters, and
/// the announce arrays so "which shard am I" is one thread-local read.
[[nodiscard]] std::uint32_t thread_slot();

class Epoch {
 public:
  /// Upper bound on concurrently *live* registered threads (slots are
  /// recycled when a thread exits).
  static constexpr std::size_t kMaxThreads = 512;

  /// The process-wide reclamation domain.  All wf structures use it.
  static Epoch& global();

  /// RAII read-side critical section.  Cheap and reentrant: nested guards
  /// on one thread only bump a thread-local depth.
  class Guard {
   public:
    explicit Guard(Epoch& epoch) : epoch_(epoch) { epoch_.enter(); }
    ~Guard() { epoch_.exit(); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    Epoch& epoch_;
  };

  [[nodiscard]] Guard pin() { return Guard(*this); }

  /// Defers `deleter(p)` until every guard live at the time of this call
  /// has exited.  Wait-free; safe to call while holding a Guard.
  void retire(void* p, void (*deleter)(void*));

  template <typename T>
  void retire(T* p) {
    retire(p, [](void* q) { delete static_cast<T*>(q); });
  }

  /// Amortized maintenance: tries to advance the epoch, adopts orphaned
  /// retirees, and frees everything past its grace period.  Runs
  /// automatically every 64th retire(); callable directly by tests and
  /// shutdown paths.  Lock-free.
  void collect();

  /// Times the global epoch has advanced (mirrors wf telemetry).
  [[nodiscard]] std::uint64_t advances() const {
    return advances_.load(std::memory_order_relaxed);
  }
  /// Retired-but-not-yet-freed nodes, approximate.
  [[nodiscard]] std::uint64_t pending() const {
    return pending_.load(std::memory_order_relaxed);
  }

  ~Epoch();
  Epoch(const Epoch&) = delete;
  Epoch& operator=(const Epoch&) = delete;

 private:
  friend std::uint32_t thread_slot();

  // Slot states: a registered thread is either quiescent or pinned at the
  // epoch value it last observed.
  static constexpr std::uint64_t kFree = ~std::uint64_t{0};
  static constexpr std::uint64_t kQuiescent = ~std::uint64_t{0} - 1;

  struct Deferred {
    void* p;
    void (*del)(void*);
    std::uint64_t epoch;
    Deferred* next;
  };

  struct alignas(64) Slot {
    std::atomic<std::uint64_t> state{kFree};
  };

  struct ThreadRec;

  Epoch() = default;

  ThreadRec& rec();
  void enter();
  void exit();
  void try_advance();
  /// Frees `list` entries whose grace period has passed; returns survivors.
  Deferred* reclaim_list(Deferred* list, std::uint64_t cur);
  void reclaim_local(ThreadRec& r);
  void adopt_orphans();
  void push_orphans(Deferred* head);

  std::atomic<std::uint64_t> epoch_{2};  // >= 2 keeps the e-2 math unsigned
  std::atomic<std::uint64_t> advances_{0};
  std::atomic<std::int64_t> pending_{0};
  Slot slots_[kMaxThreads];
  std::atomic<Deferred*> orphans_{nullptr};  // Treiber stack of exited
                                             // threads' limbo lists
};

}  // namespace wfc::wf
