#include "wf/epoch.hpp"

#include "common/assert.hpp"
#include "wf/telemetry.hpp"

namespace wfc::wf {

namespace {

// Registry of dense thread ids shared by the epoch domain and the sharded
// counters.  A slot is claimed on a thread's first wf call and recycled
// when the thread exits, so ids stay < Epoch::kMaxThreads even across
// many short-lived threads (the test suites spawn thousands).
struct alignas(64) IdSlot {
  std::atomic<bool> taken{false};
};
IdSlot g_ids[Epoch::kMaxThreads];

std::uint32_t claim_id() {
  for (std::uint32_t i = 0; i < Epoch::kMaxThreads; ++i) {
    bool expect = false;
    if (!g_ids[i].taken.load(std::memory_order_relaxed) &&
        g_ids[i].taken.compare_exchange_strong(expect, true,
                                               std::memory_order_acq_rel)) {
      return i;
    }
  }
  WFC_CHECK(false, "wf: more than Epoch::kMaxThreads live threads");
  return 0;  // unreachable
}

struct ThreadId {
  std::uint32_t id = claim_id();
  ~ThreadId() { g_ids[id].taken.store(false, std::memory_order_release); }
};

}  // namespace

std::uint32_t thread_slot() {
  thread_local ThreadId tid;
  return tid.id;
}

// Per-thread epoch state.  Lives as a thread_local inside Epoch::rec(), so
// it is constructed on a thread's first retire/pin and destroyed at thread
// exit -- at which point any still-deferred nodes are handed to the
// domain's orphan stack (another thread's collect(), or the domain
// destructor, frees them).
struct Epoch::ThreadRec {
  Epoch* owner = nullptr;
  std::uint32_t id = 0;
  int depth = 0;                  // guard nesting
  Deferred* limbo = nullptr;      // this thread's deferred frees
  std::size_t since_collect = 0;  // amortization counter

  ~ThreadRec() {
    if (owner == nullptr) return;
    if (limbo != nullptr) {
      owner->push_orphans(limbo);
      limbo = nullptr;
    }
    owner->slots_[id].state.store(kFree, std::memory_order_release);
  }
};

Epoch& Epoch::global() {
  // Constructed on first use, before any thread's ThreadRec, and destroyed
  // after the main thread's thread_locals -- so ~Epoch sees every orphaned
  // limbo list and the process exits leak-free.
  static Epoch instance;
  return instance;
}

Epoch::ThreadRec& Epoch::rec() {
  thread_local ThreadRec r;
  if (r.owner == nullptr) {
    r.owner = this;
    r.id = thread_slot();
    slots_[r.id].state.store(kQuiescent, std::memory_order_release);
  }
  WFC_CHECK(r.owner == this, "wf: one Epoch domain per process");
  return r;
}

void Epoch::enter() {
  ThreadRec& r = rec();
  if (++r.depth > 1) return;
  // Publish the epoch we are entering under, then fence so the store is
  // visible to try_advance() before any of our subsequent shared loads.
  slots_[r.id].state.store(epoch_.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

void Epoch::exit() {
  ThreadRec& r = rec();
  WFC_CHECK(r.depth > 0, "wf: Guard underflow");
  if (--r.depth == 0) {
    slots_[r.id].state.store(kQuiescent, std::memory_order_release);
  }
}

void Epoch::retire(void* p, void (*deleter)(void*)) {
  ThreadRec& r = rec();
  r.limbo = new Deferred{p, deleter, epoch_.load(std::memory_order_acquire),
                         r.limbo};
  pending_.fetch_add(1, std::memory_order_relaxed);
  if (++r.since_collect >= 64) {
    r.since_collect = 0;
    collect();
  }
}

void Epoch::try_advance() {
  const std::uint64_t e = epoch_.load(std::memory_order_acquire);
  for (const Slot& s : slots_) {
    const std::uint64_t st = s.state.load(std::memory_order_acquire);
    if (st != kFree && st != kQuiescent && st != e) {
      return;  // a pinned thread has not yet observed epoch e
    }
  }
  std::uint64_t expect = e;
  if (epoch_.compare_exchange_strong(expect, e + 1,
                                     std::memory_order_acq_rel)) {
    advances_.fetch_add(1, std::memory_order_relaxed);
    telemetry().epoch_advances.inc();
  }
}

Epoch::Deferred* Epoch::reclaim_list(Deferred* list, std::uint64_t cur) {
  Deferred* keep = nullptr;
  std::uint64_t freed = 0;
  while (list != nullptr) {
    Deferred* next = list->next;
    if (list->epoch + 2 <= cur) {
      list->del(list->p);
      delete list;
      ++freed;
    } else {
      list->next = keep;
      keep = list;
    }
    list = next;
  }
  if (freed != 0) {
    pending_.fetch_sub(static_cast<std::int64_t>(freed),
                       std::memory_order_relaxed);
    telemetry().epoch_reclaimed.inc(freed);
  }
  return keep;
}

void Epoch::reclaim_local(ThreadRec& r) {
  r.limbo = reclaim_list(r.limbo, epoch_.load(std::memory_order_acquire));
}

void Epoch::adopt_orphans() {
  Deferred* head = orphans_.exchange(nullptr, std::memory_order_acq_rel);
  if (head == nullptr) return;
  Deferred* keep =
      reclaim_list(head, epoch_.load(std::memory_order_acquire));
  if (keep != nullptr) push_orphans(keep);
}

void Epoch::push_orphans(Deferred* head) {
  Deferred* tail = head;
  while (tail->next != nullptr) tail = tail->next;
  Deferred* top = orphans_.load(std::memory_order_relaxed);
  do {
    tail->next = top;
  } while (!orphans_.compare_exchange_weak(top, head,
                                           std::memory_order_release,
                                           std::memory_order_relaxed));
}

void Epoch::collect() {
  try_advance();
  adopt_orphans();
  reclaim_local(rec());
}

Epoch::~Epoch() {
  // Static destruction: thread_locals (including every ThreadRec) are gone,
  // so whatever is left -- local limbo lists were flushed to orphans_ --
  // can be freed unconditionally.
  Deferred* list = orphans_.exchange(nullptr, std::memory_order_acq_rel);
  while (list != nullptr) {
    Deferred* next = list->next;
    list->del(list->p);
    delete list;
    list = next;
  }
}

}  // namespace wfc::wf
