// Sharded relaxed-atomic statistics primitives (wfc::wf).
//
// The service bumps a dozen counters on every completion; doing that under
// one mutex (or even on one shared atomic) serializes every worker and io
// thread on a single cache line.  These types spread the writes across
// cache-line-padded shards indexed by wf::thread_slot() -- an increment is
// one uncontended relaxed fetch_add -- and fold on the (rare) read side.
//
// Folding is a plain sum of relaxed loads, so a snapshot taken *during* a
// write burst may be momentarily behind; once writers are quiescent it is
// exact, which is the invariant the stats-reconciliation tests assert.
// All operations are wait-free.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

#include "wf/epoch.hpp"  // thread_slot()

namespace wfc::wf {

/// Monotone counter, sharded 16 ways.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    cells_[thread_slot() & (kShards - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  static constexpr std::size_t kShards = 16;
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  Cell cells_[kShards];
};

/// Monotone maximum (e.g. worst-case latency).  A single cell: bumps are a
/// load plus a CAS only when the maximum actually grows, which is rare by
/// definition, so sharding would buy nothing.
class MaxCell {
 public:
  void bump(std::uint64_t x) noexcept {
    std::uint64_t cur = v_.load(std::memory_order_relaxed);
    while (x > cur && !v_.compare_exchange_weak(cur, x,
                                                std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// N parallel counters sharing one shard layout -- the whole-struct
/// replacement for a mutex-guarded stats block.  inc(i) touches only the
/// calling thread's shard; fold() sums every shard into one snapshot.
template <std::size_t N>
class StatsShard {
 public:
  void inc(std::size_t i, std::uint64_t n = 1) noexcept {
    shards_[thread_slot() & (kShards - 1)].c[i].fetch_add(
        n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value(std::size_t i) const noexcept {
    std::uint64_t sum = 0;
    for (const Shard& s : shards_) sum += s.c[i].load(std::memory_order_relaxed);
    return sum;
  }

  [[nodiscard]] std::array<std::uint64_t, N> fold() const noexcept {
    std::array<std::uint64_t, N> out{};
    for (const Shard& s : shards_) {
      for (std::size_t i = 0; i < N; ++i) {
        out[i] += s.c[i].load(std::memory_order_relaxed);
      }
    }
    return out;
  }

 private:
  static constexpr std::size_t kShards = 16;
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> c[N] = {};
  };
  Shard shards_[kShards] = {};
};

}  // namespace wfc::wf
