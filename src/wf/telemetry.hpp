// Process-wide contention telemetry for the wait-free data plane.
//
// Lock-free code hides its contention: there is no mutex to profile, just
// CAS loops that retry a little more often.  These counters make that
// visible.  They are exported as `wfc_wf_*` gauges through the service
// metrics registry (see QueryService::init_observability) so a Prometheus
// scrape shows whether the data plane is cruising or thrashing.
#pragma once

#include "wf/counter.hpp"

namespace wfc::wf {

struct Telemetry {
  /// Failed compare-exchange attempts across wf structures (slot claims,
  /// pin/unpin races).  The lock-free analogue of mutex contention.
  Counter cas_retries;
  /// Inserts that exhausted their fast-path budget and published an
  /// operation in the announce array.
  Counter announces;
  /// Announced operations completed on behalf of *another* thread -- the
  /// helping scheme doing its job.
  Counter help_ops;
  /// Global epoch advances (reclamation grace periods completed).
  Counter epoch_advances;
  /// Deferred nodes actually freed by epoch reclamation.
  Counter epoch_reclaimed;
  /// Table slots examined by CLOCK eviction laps.
  Counter evict_scans;
};

/// The process-wide instance.
Telemetry& telemetry();

}  // namespace wfc::wf
