// Lock-free open-addressed hash map with operation helping (wfc::wf).
//
// Layout: a fixed power-of-two array of atomic slots, each holding null
// (never occupied), a tombstone sentinel (erased; probes continue past
// it, inserts may reuse it), or a heap-allocated Node{key, value}.
// Linear probing from hash(key); a probe may stop at the first null
// because erasure writes tombstones, never nulls, so the "null terminates
// the cluster" invariant only ever gets more conservative.
//
// Concurrency model:
//   * find() is wait-free: a bounded scan of acquire loads, no writes.
//   * insert claims a free slot by CAS.  Two threads inserting the same
//     key can transiently both install; the "smallest probe index wins"
//     rule resolves it -- after installing, a writer rescans the prefix of
//     its probe window, and if an earlier same-key node exists it unlinks
//     its own copy and adopts the earlier one.  Only the later copy ever
//     self-unlinks, so exactly one survives and find() (which returns the
//     first match in probe order) always agrees with the winner.
//   * After `announce_after` failed CASes an insert publishes itself in a
//     fixed announce array and every subsequent writer (which polls one
//     announce cell per operation, and any writer that collides on a
//     cell) helps complete it.  This is the BG-simulation idea from the
//     source paper applied to a data structure: a slow or preempted
//     process's pending operation is finished by whoever is making
//     progress, so one stalled writer cannot wedge the structure.  With
//     helping, an insert completes within a bounded number of *system*
//     steps -- the structure is non-blocking for writers and readers
//     never wait at all.
//   * Unlinked nodes are retired through wf::Epoch (callers hold a Guard
//     across every call), so readers can keep dereferencing a node that
//     lost a race until their guard closes.
//
// The table does not resize: capacity is fixed at construction and
// callers size it for their bound (ClockCache keeps occupancy low by
// evicting).  Value types must be copy-constructible -- helpers install
// *copies* of the announced prototype -- but the copy may be shallow
// (ClockCache's Entry copies the payload and resets its bookkeeping).
//
// The `unlink` hook is how a layer above vetoes reclamation: when a
// losing duplicate must be removed, the map calls unlink(slot, node)
// instead of freeing directly, and the hook may decline (e.g. the node is
// pinned); a declined duplicate is unreachable through find() and is
// collected by that layer later.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "wf/epoch.hpp"
#include "wf/telemetry.hpp"

namespace wfc::wf {

template <typename K, typename V, typename Hash = std::hash<K>,
          typename Eq = std::equal_to<K>>
class HashMap {
 public:
  struct Node {
    K key;
    V value;
  };

  struct Options {
    /// Slot count is the smallest power of two >= max(64, min_slots).
    std::size_t min_slots = 64;
    /// Failed slot-claim CAS attempts before an insert publishes itself
    /// in the announce array.  0 = announce immediately (tests use this
    /// to force the helping path).
    unsigned announce_after = 8;
    /// Invoked to remove a losing duplicate: unlink(slot_index, node).
    /// May decline and leave the node in place.  Default: tombstone the
    /// slot and epoch-retire the node.
    std::function<void(std::size_t, Node*)> unlink;
  };

  explicit HashMap(Options options = {}) : options_(std::move(options)) {
    std::size_t want = options_.min_slots < 64 ? 64 : options_.min_slots;
    std::size_t cap = 64;
    while (cap < want) cap <<= 1;
    mask_ = cap - 1;
    slots_ = std::make_unique<std::atomic<Node*>[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      slots_[i].store(nullptr, std::memory_order_relaxed);
    }
    if (!options_.unlink) {
      options_.unlink = [this](std::size_t i, Node* n) {
        if (erase_at(i, n)) Epoch::global().retire(n);
      };
    }
  }

  ~HashMap() {
    // Callers must be quiescent; live nodes are freed directly.
    for (std::size_t i = 0; i <= mask_; ++i) {
      Node* n = slots_[i].load(std::memory_order_relaxed);
      if (n != nullptr && n != tomb()) delete n;
    }
  }

  HashMap(const HashMap&) = delete;
  HashMap& operator=(const HashMap&) = delete;

  /// First node matching `key` in probe order, or null.  Wait-free.
  /// Caller must hold an Epoch guard.
  [[nodiscard]] Node* find(const K& key) const {
    const std::size_t home = Hash{}(key) & mask_;
    for (std::size_t step = 0; step <= mask_; ++step) {
      Node* n = slots_[(home + step) & mask_].load(std::memory_order_acquire);
      if (n == nullptr) return nullptr;
      if (n == tomb()) continue;
      if (Eq{}(n->key, key)) return n;
    }
    return nullptr;
  }

  /// Returns the node for `key`, inserting `make()` (a Node*) if absent.
  /// Sets *inserted iff this call's operation created the surviving node
  /// (possibly installed on its behalf by a helper).  Returns null only
  /// if the table is full of live keys.  Caller must hold an Epoch guard.
  template <typename MakeNode>
  Node* insert_or_get(const K& key, MakeNode&& make, bool* inserted) {
    *inserted = false;
    help_someone();
    if (Node* n = find(key)) return n;

    const std::size_t home = Hash{}(key) & mask_;
    Node* cand = make();
    if (options_.announce_after != 0) {
      unsigned budget = options_.announce_after;
      ProbeResult pr = probe_install(home, key, cand, &budget);
      switch (pr.outcome) {
        case ProbeOutcome::kFound:
          delete cand;
          return pr.node;
        case ProbeOutcome::kInstalled: {
          Node* winner = resolve_dup(home, pr.idx, cand);
          *inserted = (winner == cand);
          return winner;
        }
        case ProbeOutcome::kFull:
          delete cand;
          return nullptr;
        case ProbeOutcome::kBudget:
          break;  // fall through to the announce path
      }
    }
    return announce_insert(home, cand, inserted);
  }

  /// Tombstones slot `i` iff it still holds `expected`.  Does NOT retire
  /// the node -- the caller owns that (it usually holds an evict claim).
  bool erase_at(std::size_t i, Node* expected) {
    if (slots_[i].compare_exchange_strong(expected, tomb(),
                                          std::memory_order_acq_rel)) {
      size_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// Removes `key` if present (no claim protocol -- for plain-map use;
  /// ClockCache evicts through erase_at instead).
  bool erase(const K& key) {
    while (true) {
      const std::size_t home = Hash{}(key) & mask_;
      bool retry = false;
      for (std::size_t step = 0; step <= mask_ && !retry; ++step) {
        const std::size_t i = (home + step) & mask_;
        Node* n = slots_[i].load(std::memory_order_acquire);
        if (n == nullptr) return false;
        if (n == tomb()) continue;
        if (!Eq{}(n->key, key)) continue;
        if (erase_at(i, n)) {
          Epoch::global().retire(n);
          return true;
        }
        telemetry().cas_retries.inc();
        retry = true;  // slot changed under us; rescan
      }
      if (!retry) return false;
    }
  }

  /// Live node at slot `i`, or null (empty / tombstone).  For scanners
  /// (eviction laps) holding an Epoch guard.
  [[nodiscard]] Node* peek(std::size_t i) const {
    Node* n = slots_[i].load(std::memory_order_acquire);
    return n == tomb() ? nullptr : n;
  }

  [[nodiscard]] std::size_t slots() const { return mask_ + 1; }

  /// Live-node count.  Slot-based: transient duplicates are counted until
  /// their unlink; exact whenever writers are quiescent.
  [[nodiscard]] std::size_t size() const {
    return size_.load(std::memory_order_relaxed);
  }

 private:
  enum class ProbeOutcome { kFound, kInstalled, kFull, kBudget };
  struct ProbeResult {
    Node* node;
    std::size_t idx;
    ProbeOutcome outcome;
  };

  // A pending insert published for helping.  `result` is a tagged Node*
  // (bit 0 set = the key already existed) so outcome and provenance
  // commit in one CAS; tomb() as result encodes "table full".
  struct AnnounceOp {
    std::size_t home;
    const Node* proto;  // owned by the announcer; helpers install copies
    std::atomic<std::uintptr_t> result{0};
  };
  static constexpr std::size_t kAnnounceSlots = 64;
  static constexpr std::uintptr_t kFoundTag = 1;

  // Sentinel distinct from every real allocation; compared by identity,
  // never dereferenced.
  Node* tomb() const {
    return const_cast<Node*>(reinterpret_cast<const Node*>(&tomb_storage_));
  }

  // Claims the first reusable slot for `cand`, or finds `key`.  Each CAS
  // failure re-examines the same slot (it may now hold our key).  With a
  // budget, gives up after that many failed CASes so the caller can
  // announce instead.
  ProbeResult probe_install(std::size_t home, const K& key, Node* cand,
                            unsigned* budget) {
    for (std::size_t step = 0; step <= mask_; ++step) {
      const std::size_t i = (home + step) & mask_;
      std::atomic<Node*>& slot = slots_[i];
      Node* n = slot.load(std::memory_order_acquire);
      while (true) {
        if (n != nullptr && n != tomb()) {
          if (Eq{}(n->key, key)) return {n, i, ProbeOutcome::kFound};
          break;  // occupied by another key; next slot
        }
        if (slot.compare_exchange_strong(n, cand, std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
          size_.fetch_add(1, std::memory_order_relaxed);
          return {cand, i, ProbeOutcome::kInstalled};
        }
        // CAS updated n; loop to re-examine this slot.
        telemetry().cas_retries.inc();
        if (budget != nullptr && --*budget == 0) {
          return {nullptr, 0, ProbeOutcome::kBudget};
        }
      }
    }
    return {nullptr, 0, ProbeOutcome::kFull};
  }

  // After installing `cand` at `idx`, adopt any same-key node earlier in
  // the probe window ("smallest probe index wins"): unlink our copy and
  // return the winner.  Only later copies self-unlink, so this cannot
  // erase the surviving node.
  Node* resolve_dup(std::size_t home, std::size_t idx, Node* cand) {
    for (std::size_t step = 0; step <= mask_; ++step) {
      const std::size_t i = (home + step) & mask_;
      if (i == idx) break;
      Node* n = slots_[i].load(std::memory_order_acquire);
      if (n == nullptr || n == tomb()) continue;
      if (Eq{}(n->key, cand->key)) {
        options_.unlink(idx, cand);
        return n;
      }
    }
    return cand;
  }

  // Runs `op` to completion (idempotent; any thread may call).  Returns
  // the winning node (null = table full) and sets *found_existing from
  // the committed tag.
  Node* help(AnnounceOp* op, bool helping_other,
             bool* found_existing = nullptr) {
    while (true) {
      std::uintptr_t r = op->result.load(std::memory_order_acquire);
      if (r != 0) return decode(r, found_existing);

      Node* fresh = new Node(*op->proto);
      ProbeResult pr = probe_install(op->home, fresh->key, fresh, nullptr);
      Node* outcome = nullptr;
      bool found = false;
      bool installed = false;
      switch (pr.outcome) {
        case ProbeOutcome::kFound:
          delete fresh;
          outcome = pr.node;
          found = true;
          break;
        case ProbeOutcome::kInstalled: {
          Node* winner = resolve_dup(op->home, pr.idx, fresh);
          if (winner == fresh) {
            outcome = fresh;
            installed = true;
          } else {
            outcome = winner;  // our copy already unlinked by resolve_dup
            found = true;
          }
          break;
        }
        case ProbeOutcome::kFull:
          delete fresh;
          outcome = tomb();
          break;
        case ProbeOutcome::kBudget:
          continue;  // unreachable (no budget), but keeps -Werror happy
      }

      std::uintptr_t tagged =
          reinterpret_cast<std::uintptr_t>(outcome) | (found ? kFoundTag : 0);
      std::uintptr_t expect = 0;
      if (op->result.compare_exchange_strong(expect, tagged,
                                             std::memory_order_acq_rel)) {
        if (helping_other) telemetry().help_ops.inc();
        if (found_existing != nullptr) *found_existing = found;
        return outcome == tomb() ? nullptr : outcome;
      }
      // Someone else committed first; retract our redundant copy.
      if (installed) options_.unlink(pr.idx, outcome);
      return decode(expect, found_existing);
    }
  }

  Node* decode(std::uintptr_t r, bool* found_existing) const {
    if (found_existing != nullptr) *found_existing = (r & kFoundTag) != 0;
    Node* n = reinterpret_cast<Node*>(r & ~kFoundTag);
    return n == tomb() ? nullptr : n;
  }

  Node* announce_insert(std::size_t home, Node* proto, bool* inserted) {
    telemetry().announces.inc();
    auto* op = new AnnounceOp{home, proto, {}};
    std::size_t a = thread_slot() % kAnnounceSlots;
    while (true) {
      AnnounceOp* expect = nullptr;
      if (announce_[a].compare_exchange_strong(expect, op,
                                               std::memory_order_acq_rel)) {
        break;
      }
      if (expect != nullptr) help(expect, /*helping_other=*/true);
      a = (a + 1) % kAnnounceSlots;
    }
    bool found = false;
    Node* winner = help(op, /*helping_other=*/false, &found);
    announce_[a].store(nullptr, std::memory_order_release);
    // Laggard helpers may still hold op / read proto: epoch-retire both.
    Epoch::global().retire(op);
    Epoch::global().retire(proto);
    *inserted = (winner != nullptr && !found);
    return winner;
  }

  // One announce-array poll per write operation: the global progress
  // guarantee.  Rotates so every cell is eventually checked.
  void help_someone() {
    thread_local std::size_t rotor = thread_slot();
    AnnounceOp* op =
        announce_[rotor++ % kAnnounceSlots].load(std::memory_order_acquire);
    if (op != nullptr) help(op, /*helping_other=*/true);
  }

  std::size_t mask_;
  std::unique_ptr<std::atomic<Node*>[]> slots_;
  std::atomic<std::size_t> size_{0};
  std::atomic<AnnounceOp*> announce_[kAnnounceSlots] = {};
  Options options_;
  struct alignas(alignof(Node)) TombStorage {
    char pad[sizeof(Node)];
  };
  static inline const TombStorage tomb_storage_{};
};

}  // namespace wfc::wf
