// Concurrent CLOCK (second-chance) cache over wf::HashMap (wfc::wf).
//
// Replaces the mutex-guarded exact-LRU lists the service grew up with.
// Exact LRU is fundamentally serial -- every hit must splice one shared
// list, so the *read* path writes to one contended structure.  CLOCK keeps
// the hit path wait-free (two relaxed stores: a reference bit and a coarse
// age ticket) and moves all ordering work to the rare eviction path.
//
// Recency is approximate two ways, and deliberately so:
//   * the classic CLOCK reference bit gives each entry one "second
//     chance" per eviction lap;
//   * a global age ticket (one relaxed fetch_add per touch) breaks ties,
//     so an eviction lap picks the *oldest-touched* candidate rather than
//     whatever the hand happens to reach -- sequential workloads therefore
//     see exact-LRU victim choice (which is what the seed test suite
//     pins down), while concurrent workloads get "old enough".
//
// Semantics carried over from the mutex SdsCache index:
//   * pin/evict arbitration: an entry's state word packs a pin count with
//     an evict-claim bit (bit 63).  Pinning CAS-fails once a claim is
//     set; claiming CAS-fails unless the count is zero.  One atomic word
//     makes "evicted while pinned" structurally impossible.
//   * keep_hottest: the entry with the globally newest ticket is never
//     evicted (the seed never evicts the LRU head), so a one-entry cache
//     under churn still keeps its most recent tower.
//   * shed(target): evict coldest-first until ~target weight is released.
//   * clear(): drop every unpinned entry without counting evictions.
//
// Handles returned by get/get_or_insert hold a pin: the entry cannot be
// reclaimed while a handle lives, so callers may block on the payload's
// own build mutex without holding any epoch guard.  lookup() is the
// cheaper copy-out path (memo/intern): no pin, just an epoch-guarded
// payload copy.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "wf/epoch.hpp"
#include "wf/hashmap.hpp"
#include "wf/telemetry.hpp"

namespace wfc::wf {

template <typename K, typename V, typename Hash = std::hash<K>,
          typename Eq = std::equal_to<K>>
class ClockCache {
 public:
  struct Options {
    /// Evict while size() exceeds this (0 = unbounded).
    std::size_t max_entries = 0;
    /// Evict while weight() exceeds this (0 = unbounded).
    std::size_t max_weight = 0;
    /// Lower bound on table slots (also sized to 2x max_entries).
    std::size_t min_slots = 64;
    /// Independent clock hands; eviction laps start from the calling
    /// thread's hand so concurrent evictors spread over the table.
    std::size_t segments = 4;
    /// Never evict the most recently touched entry.
    bool keep_hottest = true;
    /// Announce-array threshold passed through to the underlying map.
    unsigned announce_after = 8;
  };

  // Per-entry bookkeeping wrapped around the payload.  The copy/move
  // constructors copy only the payload: helper-installed copies and the
  // surviving original must each start with private, zeroed metadata.
  struct Entry {
    V payload;
    std::atomic<std::uint64_t> state{0};  // bit 63 evict claim, rest pins
    std::atomic<std::uint64_t> tick{0};   // age ticket (0 = never touched)
    std::atomic<std::size_t> weight{0};
    std::atomic<bool> ref{false};  // CLOCK second-chance bit

    explicit Entry(V p) : payload(std::move(p)) {}
    Entry(const Entry& o) : payload(o.payload) {}
    Entry(Entry&& o) noexcept : payload(std::move(o.payload)) {}
    Entry& operator=(const Entry&) = delete;
  };

  using Map = HashMap<K, Entry, Hash, Eq>;
  using Node = typename Map::Node;

  /// Pinned reference to a cache entry.  The pin blocks eviction (and
  /// therefore reclamation) for the handle's lifetime.  A *detached*
  /// handle owns a private uncached entry -- the overflow path when the
  /// table is saturated with pinned entries.
  class Handle {
   public:
    Handle() = default;
    ~Handle() { release(); }
    Handle(Handle&& o) noexcept
        : node_(o.node_), detached_(o.detached_) {
      o.node_ = nullptr;
    }
    Handle& operator=(Handle&& o) noexcept {
      if (this != &o) {
        release();
        node_ = o.node_;
        detached_ = o.detached_;
        o.node_ = nullptr;
      }
      return *this;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

    explicit operator bool() const { return node_ != nullptr; }
    [[nodiscard]] V& value() const { return node_->value.payload; }
    V& operator*() const { return value(); }
    V* operator->() const { return &value(); }

    void release() {
      if (node_ == nullptr) return;
      if (detached_) {
        delete node_;
      } else {
        node_->value.state.fetch_sub(1, std::memory_order_acq_rel);
      }
      node_ = nullptr;
    }

   private:
    friend class ClockCache;
    Handle(Node* n, bool detached) : node_(n), detached_(detached) {}
    Node* node_ = nullptr;
    bool detached_ = false;
  };

  explicit ClockCache(Options options = {}) : options_(options) {
    typename Map::Options mo;
    std::size_t want = options_.min_slots;
    if (options_.max_entries != 0 && want < 2 * options_.max_entries) {
      want = 2 * options_.max_entries;
    }
    mo.min_slots = want;
    mo.announce_after = options_.announce_after;
    mo.unlink = [this](std::size_t i, Node* n) { unlink_loser(i, n); };
    map_ = std::make_unique<Map>(std::move(mo));
    segments_ = options_.segments == 0 ? 1 : options_.segments;
    hands_ = std::make_unique<std::atomic<std::size_t>[]>(segments_);
    for (std::size_t s = 0; s < segments_; ++s) {
      hands_[s].store(0, std::memory_order_relaxed);
    }
  }

  /// Pinned lookup.  Counts a hit or miss; a null handle means absent.
  [[nodiscard]] Handle get(const K& key) {
    auto guard = Epoch::global().pin();
    for (int tries = 0; tries < 16; ++tries) {
      Node* n = map_->find(key);
      if (n == nullptr) break;
      if (try_pin(n->value)) {
        touch(n->value, /*is_hit=*/true);
        hits_.inc();
        return Handle(n, /*detached=*/false);
      }
      // Evict-claimed under us; it is about to vanish -- re-find.
    }
    misses_.inc();
    return Handle();
  }

  /// Copy-out lookup: no pin, payload copied under the epoch guard.
  /// The cheap path for small immutable payloads (memo results, interned
  /// pointers).
  bool lookup(const K& key, V* out) {
    auto guard = Epoch::global().pin();
    Node* n = map_->find(key);
    if (n == nullptr) {
      misses_.inc();
      return false;
    }
    touch(n->value, /*is_hit=*/true);
    *out = n->value.payload;
    hits_.inc();
    return true;
  }

  /// Pinned get-or-create.  `make()` produces the payload; if a
  /// concurrent twin wins the race the twin's entry is returned instead
  /// (*inserted=false).  On a genuine insert, enforces max_entries (the
  /// returned handle's pin protects the new entry itself).
  template <typename Make>
  [[nodiscard]] Handle get_or_insert(const K& key, Make&& make,
                                     bool* inserted = nullptr) {
    auto guard = Epoch::global().pin();
    while (true) {
      bool did = false;
      Node* n = map_->insert_or_get(
          key, [&] { return new Node{key, Entry(make())}; }, &did);
      if (n == nullptr) {
        // Table saturated with live pinned keys: serve an uncached entry
        // rather than fail or wait.
        auto* d = new Node{key, Entry(make())};
        touch(d->value, /*is_hit=*/false);
        if (inserted != nullptr) *inserted = true;
        misses_.inc();
        return Handle(d, /*detached=*/true);
      }
      if (try_pin(n->value)) {
        touch(n->value, /*is_hit=*/!did);
        (did ? misses_ : hits_).inc();
        if (inserted != nullptr) *inserted = did;
        if (did) maybe_evict();
        return Handle(n, /*detached=*/false);
      }
      // The winner got evict-claimed before we pinned; try again.
    }
  }

  /// Re-weighs the entry behind `h` and updates the cache total.  Safe
  /// only through a live (pinned) handle.
  void update_weight(const Handle& h, std::size_t w) {
    if (h.node_ == nullptr) return;
    std::size_t old = h.node_->value.weight.exchange(
        w, std::memory_order_relaxed);
    if (!h.detached_) {
      weight_.fetch_add(w - old, std::memory_order_relaxed);  // mod 2^64
    }
  }

  /// Evicts until both bounds hold or no candidate remains.
  void maybe_evict() {
    while (over_bound()) {
      if (!evict_one(nullptr)) break;
    }
  }

  /// Evicts coldest-first until ~target weight is released; returns the
  /// weight actually released.
  std::size_t shed_release(std::size_t target) {
    std::size_t released = 0;
    while (released < target) {
      if (!evict_one(&released)) break;
    }
    return released;
  }

  /// Drops every unpinned entry (the hottest included).  Not counted as
  /// evictions, matching the historical clear() semantics.
  std::size_t clear() {
    auto guard = Epoch::global().pin();
    std::size_t removed = 0;
    const std::size_t n = map_->slots();
    for (std::size_t i = 0; i < n; ++i) {
      Node* node = map_->peek(i);
      if (node == nullptr) continue;
      if (!try_claim(node->value)) continue;
      if (map_->erase_at(i, node)) {
        weight_.fetch_sub(node->value.weight.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
        ++removed;
        Epoch::global().retire(node);
      } else {
        node->value.state.store(0, std::memory_order_release);
      }
    }
    return removed;
  }

  [[nodiscard]] std::size_t size() const { return map_->size(); }
  [[nodiscard]] std::size_t weight() const {
    return weight_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t hits() const { return hits_.value(); }
  [[nodiscard]] std::uint64_t misses() const { return misses_.value(); }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_.value(); }

 private:
  static constexpr std::uint64_t kEvictBit = std::uint64_t{1} << 63;

  bool try_pin(Entry& e) {
    std::uint64_t w = e.state.load(std::memory_order_relaxed);
    while (true) {
      if ((w & kEvictBit) != 0) return false;
      if (e.state.compare_exchange_weak(w, w + 1, std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
        return true;
      }
      telemetry().cas_retries.inc();
    }
  }

  bool try_claim(Entry& e) {
    std::uint64_t expect = 0;
    return e.state.compare_exchange_strong(expect, kEvictBit,
                                           std::memory_order_acq_rel);
  }

  void touch(Entry& e, bool is_hit) {
    e.tick.store(ticket_.fetch_add(1, std::memory_order_relaxed) + 1,
                 std::memory_order_relaxed);
    if (is_hit) e.ref.store(true, std::memory_order_relaxed);
  }

  [[nodiscard]] bool over_bound() const {
    if (options_.max_entries != 0 && map_->size() > options_.max_entries) {
      return true;
    }
    if (options_.max_weight != 0 && weight() > options_.max_weight) {
      return true;
    }
    return false;
  }

  // One eviction: up to two CLOCK laps from this thread's hand.  Lap one
  // spends reference bits; lap two sees them cleared.  Among unpinned,
  // unreffed entries the minimum age ticket wins (exact-LRU choice when
  // sequential), except the globally hottest entry when keep_hottest.
  bool evict_one(std::size_t* released) {
    auto guard = Epoch::global().pin();
    const std::size_t n = map_->slots();
    std::atomic<std::size_t>& hand = hands_[thread_slot() % segments_];
    const std::size_t start = hand.load(std::memory_order_relaxed);
    for (int lap = 0; lap < 2; ++lap) {
      Node* best = nullptr;
      std::size_t best_idx = 0;
      std::uint64_t best_tick = ~std::uint64_t{0};
      Node* hottest = nullptr;
      std::uint64_t hottest_tick = 0;
      std::uint64_t scanned = 0;
      for (std::size_t step = 0; step < n; ++step) {
        const std::size_t i = (start + step) & (n - 1);
        Node* node = map_->peek(i);
        if (node == nullptr) continue;
        ++scanned;
        Entry& e = node->value;
        const std::uint64_t t = e.tick.load(std::memory_order_relaxed);
        if (t >= hottest_tick) {
          hottest_tick = t;
          hottest = node;
        }
        if (e.state.load(std::memory_order_relaxed) != 0) continue;
        if (e.ref.exchange(false, std::memory_order_relaxed)) continue;
        if (t < best_tick) {
          best_tick = t;
          best = node;
          best_idx = i;
        }
      }
      telemetry().evict_scans.inc(scanned);
      if (best != nullptr && options_.keep_hottest && best == hottest) {
        best = nullptr;
      }
      if (best == nullptr) continue;
      Entry& e = best->value;
      if (!try_claim(e)) {
        telemetry().cas_retries.inc();
        continue;  // pinned between scan and claim; next lap
      }
      if (map_->erase_at(best_idx, best)) {
        const std::size_t w = e.weight.load(std::memory_order_relaxed);
        weight_.fetch_sub(w, std::memory_order_relaxed);
        evictions_.inc();
        if (released != nullptr) *released += w;
        hand.store((best_idx + 1) & (n - 1), std::memory_order_relaxed);
        Epoch::global().retire(best);
        return true;
      }
      e.state.store(0, std::memory_order_release);  // defensive un-claim
    }
    return false;
  }

  // Removal hook for losing duplicates from the map's insert race: claim
  // like an evictor, decline if pinned (a pinned loser is unreachable via
  // find() and gets evicted once unpinned).
  void unlink_loser(std::size_t i, Node* n) {
    if (!try_claim(n->value)) return;
    if (map_->erase_at(i, n)) {
      weight_.fetch_sub(n->value.weight.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
      Epoch::global().retire(n);
    } else {
      n->value.state.store(0, std::memory_order_release);
    }
  }

  Options options_;
  std::unique_ptr<Map> map_;
  std::size_t segments_ = 1;
  std::unique_ptr<std::atomic<std::size_t>[]> hands_;
  std::atomic<std::size_t> weight_{0};
  std::atomic<std::uint64_t> ticket_{0};
  Counter hits_;
  Counter misses_;
  Counter evictions_;
};

}  // namespace wfc::wf
