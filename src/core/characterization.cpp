#include "core/characterization.hpp"

#include <sstream>

#include "tasks/two_proc.hpp"
#include "topology/simplicial_map.hpp"

namespace wfc {

std::string CharacterizationReport::summary(
    const std::string& task_name) const {
  std::ostringstream os;
  os << task_name << ": ";
  switch (status) {
    case task::Solvability::kSolvable:
      os << "wait-free SOLVABLE at level b=" << level
         << " (map simplicial=" << (map_simplicial ? "yes" : "NO")
         << ", color-preserving=" << (map_color_preserving ? "yes" : "NO");
      if (executions_validated > 0) {
        os << ", " << executions_validated << " executions validated";
      }
      os << ")";
      break;
    case task::Solvability::kUnsolvable:
      os << "wait-free UNSOLVABLE at every level tried";
      break;
    case task::Solvability::kUnknown:
      os << "UNKNOWN (node budget exhausted)";
      break;
    case task::Solvability::kCancelled:
      os << "CANCELLED (deadline or cancel token)";
      break;
  }
  os << " [" << nodes_explored << " search nodes]";
  if (two_proc_checked) {
    os << (two_proc_agrees ? " [2-proc criterion agrees]"
                           : " [2-PROC CRITERION DISAGREES -- BUG]");
  }
  return os.str();
}

CharacterizationReport characterize(const task::Task& task,
                                    const CharacterizeOptions& options) {
  CharacterizationReport report;
  task::SolveResult result =
      task::solve(task, options.max_level, options.solve);
  report.status = result.status;
  report.nodes_explored = result.nodes_explored;

  // Independent oracle for 2-processor tasks: the connectivity criterion
  // must agree with the search wherever the search gave a definite answer.
  if (task.input().n_colors() == 2 &&
      (report.status == task::Solvability::kSolvable ||
       report.status == task::Solvability::kUnsolvable)) {
    report.two_proc_checked = true;
    const task::TwoProcVerdict fast = task::decide_two_processors(task);
    if (report.status == task::Solvability::kSolvable) {
      report.two_proc_agrees =
          fast.solvable && fast.level_lower_bound <= result.level;
    } else {
      report.two_proc_agrees =
          !fast.solvable || fast.level_lower_bound > options.max_level;
    }
  }

  if (result.status != task::Solvability::kSolvable) return report;

  report.level = result.level;

  // Cross-check the witness against the theorem's statement.
  const topo::ChromaticComplex& top = result.chain->top();
  topo::SimplicialMap map(top, task.output());
  for (topo::VertexId v = 0; v < top.num_vertices(); ++v) {
    map.set(v, result.decision[v]);
  }
  report.map_simplicial = map.is_simplicial();
  report.map_color_preserving = map.is_color_preserving();

  if (options.validate_runs) {
    task::DecisionProtocol proto(task, std::move(result));
    std::size_t executions = 0;
    task.input().for_each_face([&](const topo::Simplex& face) {
      executions += proto.validate_exhaustively(face);
    });
    report.executions_validated = executions;
  }
  return report;
}

const char* version() { return "wfc 1.0.0 (Borowsky-Gafni PODC'97)"; }

}  // namespace wfc
