// The Characterization facade: the paper's main theorem as a library entry
// point.
//
//   Task T is wait-free solvable in read/write shared memory
//     <=>  T is wait-free solvable in the IIS model            (§4 emulation)
//     <=>  exists b, a color-preserving simplicial map
//          SDS^b(I) -> O respecting Delta                      (Prop 3.1)
//
// characterize() runs the per-level decision procedure and reports what it
// finds, including cross-checks that the witness map is what the theorem
// promises (simplicial, color-preserving, Delta-respecting on all faces)
// and, on request, exhaustive execution of the compiled protocol.
#pragma once

#include <optional>
#include <string>

#include "tasks/decision_protocol.hpp"
#include "tasks/solvability.hpp"

namespace wfc {

struct CharacterizationReport {
  task::Solvability status = task::Solvability::kUnknown;
  int level = -1;                  // witness level b (solvable only)
  std::uint64_t nodes_explored = 0;
  // Witness map cross-checks (solvable only).
  bool map_simplicial = false;
  bool map_color_preserving = false;
  // Exhaustive run results (solvable + validate_runs only).
  std::size_t executions_validated = 0;
  // For 2-processor tasks the independent connectivity criterion
  // (tasks/two_proc.hpp) is also evaluated; `two_proc_checked` says it ran
  // and `two_proc_agrees` that it reached the same verdict.  A disagreement
  // would be a library bug and is also surfaced via the summary.
  bool two_proc_checked = false;
  bool two_proc_agrees = false;

  [[nodiscard]] std::string summary(const std::string& task_name) const;
};

struct CharacterizeOptions {
  int max_level = 2;
  task::SolveOptions solve;
  /// Also compile and run the decision protocol on every IIS execution of
  /// every input facet (exhaustive behavioural validation of the witness).
  bool validate_runs = true;
};

/// Decides wait-free solvability of `task` up to SDS level max_level and
/// cross-checks any witness found.
CharacterizationReport characterize(const task::Task& task,
                                    const CharacterizeOptions& options = {});

/// Library version string.
const char* version();

}  // namespace wfc
