// Umbrella header: the public API of the wait-free characterization
// library.  Include this to get every subsystem:
//
//   topology    -- chromatic complexes, SDS/Bsd subdivisions, Sperner
//   registers   -- SWMR registers, atomic & immediate snapshot objects
//   runtime     -- IIS / snapshot-model executors, adversaries
//   protocol    -- protocol complexes, SdsChain (Lemmas 3.2/3.3)
//   tasks       -- tasks, the Prop 3.1 solvability checker, runnable maps
//   emulation   -- the §4 Figure 2 emulation + history checker
//   convergence -- §5 simplicial approximation and convergence protocols
//   core        -- the Characterization facade below
//
// The query-serving layer (wfc::svc -- worker pool, shared SDS-chain cache,
// JSON-lines front-end) sits ABOVE this umbrella: include
// service/query_service.hpp or service/frontend.hpp and link wfc_svc.
#pragma once

#include "bg/safe_agreement.hpp"
#include "bg/simulation.hpp"
#include "common/color_set.hpp"
#include "common/rng.hpp"
#include "convergence/approximation.hpp"
#include "convergence/convergence.hpp"
#include "core/characterization.hpp"
#include "emulation/emulator.hpp"
#include "emulation/figure1.hpp"
#include "emulation/iis_in_snapshot.hpp"
#include "emulation/history.hpp"
#include "protocol/protocol_complex.hpp"
#include "protocol/sds_chain.hpp"
#include "registers/atomic_snapshot.hpp"
#include "registers/immediate_from_snapshot.hpp"
#include "registers/immediate_snapshot.hpp"
#include "registers/swmr_register.hpp"
#include "runtime/adversary.hpp"
#include "runtime/sim_iis.hpp"
#include "runtime/sim_is.hpp"
#include "runtime/sim_snapshot.hpp"
#include "runtime/thread_iis.hpp"
#include "tasks/canonical.hpp"
#include "tasks/decision_protocol.hpp"
#include "tasks/extraction.hpp"
#include "tasks/map_io.hpp"
#include "tasks/solvability.hpp"
#include "tasks/renaming_protocol.hpp"
#include "tasks/resilience.hpp"
#include "tasks/two_proc.hpp"
#include "topology/complex.hpp"
#include "topology/geometry.hpp"
#include "topology/io.hpp"
#include "topology/simplicial_map.hpp"
#include "topology/sperner.hpp"
#include "topology/structure.hpp"
#include "topology/subdivision.hpp"
