// The Borowsky-Gafni simulation: a set of S wait-free SIMULATORS jointly
// executes the k-shot full-information atomic-snapshot protocol (Figure 1)
// of M SIMULATED processors, such that
//
//   * every resolved simulated step is agreed by all simulators (they see
//     one common simulated execution),
//   * the simulated execution is a legal atomic-snapshot execution (views
//     totally ordered, self-inclusive, per-writer monotone), and
//   * a crashed simulator permanently blocks AT MOST ONE simulated
//     processor (the one whose safe-agreement window it died in).
//
// This reduction is how wait-free impossibilities lift to t-resilient ones
// (e.g. 1-resilient consensus for 3 processors from wait-free consensus
// for 2): the paper's §1 credits exactly this machinery ([7]) and its §6
// points at the resiliency generalizations [10, 11] built on it.
//
// Mechanics per simulated step (j, t):
//   * the write of round t is DETERMINISTIC (full information: the value is
//     round 0's input or the encoding of the agreed view of round t-1), so
//     simulators just mark it performed on their shared "board";
//   * the snapshot of round t is timing-dependent, so each simulator scans
//     the boards, derives the simulated memory (freshest performed write
//     per cell) and PROPOSES it to the step's SafeAgreement object; the
//     agreed proposal becomes THE view of (j, t).
// Because every proposal is derived from an atomic scan of one shared
// object, any two resolved views are comparable -- that is the legality
// argument, and the harness re-verifies it on every run.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "common/color_set.hpp"

namespace wfc::bg {

/// A simulated memory view: per simulated cell, (round, value) of the
/// freshest write observed, or nullopt.
using SimView = std::vector<std::optional<std::pair<int, int>>>;

struct BgConfig {
  int n_simulators = 2;
  int n_simulated = 3;
  int rounds = 2;  // k of the simulated Figure 1 protocol
  /// Per simulator: crash inside the unsafe window of its c-th safe
  /// agreement proposal (1-based); -1 = run to completion.
  std::vector<int> crash_in_sa;
  /// Consecutive no-progress sweeps (with yields) before a live simulator
  /// concludes the remaining processors are blocked by crashes.
  int patience = 600;
};

struct BgOutcome {
  /// Resolved rounds per simulated processor (== rounds when completed).
  std::vector<int> rounds_completed;
  /// views[j][t] = agreed view of P_j's t-th snapshot (resolved ones only).
  std::vector<std::vector<SimView>> views;
  /// Simulated write values, write_value[j][t] (determined ones only).
  std::vector<std::vector<int>> write_values;

  // Legality checks, filled by the harness:
  bool views_comparable = false;      // total order across ALL views
  bool self_inclusive = false;        // view (j,t) contains write (j,t)
  bool per_writer_monotone = false;   // per j, views grow with t
  int blocked = 0;                    // simulated procs that never finished

  [[nodiscard]] bool legal() const noexcept {
    return views_comparable && self_inclusive && per_writer_monotone;
  }
};

/// Runs the simulation on real threads (one per simulator).
BgOutcome run_bg_simulation(const BgConfig& config);

}  // namespace wfc::bg
