#include "bg/simulation.hpp"

#include <map>
#include <mutex>
#include <thread>

#include "bg/safe_agreement.hpp"
#include "common/assert.hpp"
#include "registers/atomic_snapshot.hpp"

namespace wfc::bg {

namespace {

/// A simulator's published knowledge: per simulated processor, the writes
/// it knows were performed (with values) and the views it knows resolved.
struct Board {
  // performed[j] = values of writes 0..performed[j].size()-1
  std::vector<std::vector<int>> performed;
  // resolved[j] = agreed views for rounds 0..resolved[j].size()-1
  std::vector<std::vector<SimView>> resolved;
};

/// Thread-safe intern table turning agreed views into write values for the
/// next round (full-information encoding).
class ViewEncoder {
 public:
  int encode(const SimView& view) {
    std::scoped_lock lock(mu_);
    auto [it, inserted] =
        index_.emplace(view, static_cast<int>(index_.size()) + 10'000);
    return it->second;
  }

 private:
  std::mutex mu_;
  std::map<SimView, int> index_;
};

}  // namespace

BgOutcome run_bg_simulation(const BgConfig& config) {
  const int S = config.n_simulators;
  const int M = config.n_simulated;
  const int K = config.rounds;
  WFC_REQUIRE(S >= 1 && S <= 16, "bg: simulator count out of range");
  WFC_REQUIRE(M >= 1 && M <= 16, "bg: simulated count out of range");
  WFC_REQUIRE(K >= 1, "bg: rounds must be positive");
  WFC_REQUIRE(config.crash_in_sa.empty() ||
                  config.crash_in_sa.size() == static_cast<std::size_t>(S),
              "bg: crash_in_sa must be empty or one entry per simulator");

  reg::AtomicSnapshot<Board> boards(S);
  std::vector<std::unique_ptr<SafeAgreement<SimView>>> agreements;
  agreements.reserve(static_cast<std::size_t>(M * K));
  for (int i = 0; i < M * K; ++i) {
    agreements.push_back(std::make_unique<SafeAgreement<SimView>>(S));
  }
  auto sa_for = [&](int j, int t) -> SafeAgreement<SimView>& {
    return *agreements[static_cast<std::size_t>(j * K + t)];
  };
  ViewEncoder encoder;

  auto simulator = [&](int s) {
    const int crash_at = config.crash_in_sa.empty()
                             ? -1
                             : config.crash_in_sa[static_cast<std::size_t>(s)];
    int sa_started = 0;
    Board board;
    board.performed.resize(static_cast<std::size_t>(M));
    board.resolved.resize(static_cast<std::size_t>(M));
    std::vector<std::vector<char>> proposed(
        static_cast<std::size_t>(M),
        std::vector<char>(static_cast<std::size_t>(K), 0));

    auto merge_knowledge = [&] {
      const auto view = boards.scan();
      for (const auto& cell : view) {
        if (!cell.has_value()) continue;
        const Board& other = *cell;
        for (int j = 0; j < M; ++j) {
          const auto uj = static_cast<std::size_t>(j);
          if (other.performed[uj].size() > board.performed[uj].size()) {
            board.performed[uj] = other.performed[uj];
          }
          if (other.resolved[uj].size() > board.resolved[uj].size()) {
            board.resolved[uj] = other.resolved[uj];
          }
        }
      }
    };

    auto derive_view = [&]() -> SimView {
      // Freshest performed write per cell, from an atomic scan of boards.
      const auto view = boards.scan();
      SimView out(static_cast<std::size_t>(M));
      for (const auto& cell : view) {
        if (!cell.has_value()) continue;
        const Board& other = *cell;
        for (int j = 0; j < M; ++j) {
          const auto uj = static_cast<std::size_t>(j);
          if (other.performed[uj].empty()) continue;
          const int t = static_cast<int>(other.performed[uj].size()) - 1;
          if (!out[uj].has_value() || out[uj]->first < t) {
            out[uj] = std::make_pair(t, other.performed[uj].back());
          }
        }
      }
      return out;
    };

    int idle_sweeps = 0;
    for (;;) {
      bool progress = false;
      bool all_done = true;
      merge_knowledge();
      for (int j = 0; j < M; ++j) {
        const auto uj = static_cast<std::size_t>(j);
        const int t = static_cast<int>(board.resolved[uj].size());
        if (t == K) continue;
        all_done = false;
        SafeAgreement<SimView>& sa = sa_for(j, t);

        // Adopt a resolution if one exists.
        if (auto agreed = sa.try_resolve()) {
          board.resolved[uj].push_back(std::move(*agreed));
          boards.update(s, board);
          progress = true;
          continue;
        }
        if (proposed[uj][static_cast<std::size_t>(t)]) continue;

        // Perform the (deterministic) write of round t if still missing.
        if (static_cast<int>(board.performed[uj].size()) <= t) {
          WFC_CHECK(static_cast<int>(board.performed[uj].size()) == t,
                    "bg: write gap in simulated history");
          const int value =
              t == 0 ? j : encoder.encode(board.resolved[uj][
                               static_cast<std::size_t>(t - 1)]);
          board.performed[uj].push_back(value);
          boards.update(s, board);
        }

        // Propose the snapshot view for (j, t).
        SimView proposal = derive_view();
        // Self-inclusion: our board already carries (j, t)'s write, and the
        // scan above includes our own board.
        WFC_CHECK(proposal[uj].has_value() && proposal[uj]->first >= t,
                  "bg: proposal missing the simulated processor's own write");
        proposed[uj][static_cast<std::size_t>(t)] = 1;
        ++sa_started;
        if (crash_at >= 0 && sa_started == crash_at) {
          sa.propose_enter(s, std::move(proposal));
          return;  // crash inside the unsafe window
        }
        sa.propose(s, std::move(proposal));
        if (auto agreed = sa.try_resolve()) {
          board.resolved[uj].push_back(std::move(*agreed));
          boards.update(s, board);
        }
        progress = true;
      }
      if (all_done) return;
      if (progress) {
        idle_sweeps = 0;
      } else if (++idle_sweeps >= config.patience) {
        return;  // remaining processors are blocked by crashed simulators
      } else {
        std::this_thread::yield();
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(S));
  for (int s = 0; s < S; ++s) threads.emplace_back(simulator, s);
  for (auto& t : threads) t.join();

  // Collect the agreed execution from the safe-agreement objects.
  BgOutcome out;
  out.rounds_completed.assign(static_cast<std::size_t>(M), 0);
  out.views.resize(static_cast<std::size_t>(M));
  out.write_values.resize(static_cast<std::size_t>(M));
  for (int j = 0; j < M; ++j) {
    const auto uj = static_cast<std::size_t>(j);
    for (int t = 0; t < K; ++t) {
      auto agreed = sa_for(j, t).try_resolve();
      if (!agreed.has_value()) break;
      if (t == 0) out.write_values[uj].push_back(j);
      out.views[uj].push_back(std::move(*agreed));
      ++out.rounds_completed[uj];
      if (t + 1 < K) {
        out.write_values[uj].push_back(
            encoder.encode(out.views[uj].back()));
      }
    }
    if (out.rounds_completed[uj] < K) ++out.blocked;
  }

  // Legality checks.
  out.views_comparable = true;
  out.self_inclusive = true;
  out.per_writer_monotone = true;
  std::vector<const SimView*> all;
  for (const auto& per : out.views) {
    for (const auto& v : per) all.push_back(&v);
  }
  auto le = [&](const SimView& a, const SimView& b) {
    for (std::size_t c = 0; c < a.size(); ++c) {
      const int ta = a[c].has_value() ? a[c]->first : -1;
      const int tb = b[c].has_value() ? b[c]->first : -1;
      if (ta > tb) return false;
    }
    return true;
  };
  for (std::size_t x = 0; x < all.size(); ++x) {
    for (std::size_t y = x + 1; y < all.size(); ++y) {
      if (!le(*all[x], *all[y]) && !le(*all[y], *all[x])) {
        out.views_comparable = false;
      }
    }
  }
  for (int j = 0; j < M; ++j) {
    const auto uj = static_cast<std::size_t>(j);
    for (int t = 0; t < out.rounds_completed[uj]; ++t) {
      const SimView& v = out.views[uj][static_cast<std::size_t>(t)];
      const auto& own = v[uj];
      if (!own.has_value() || own->first < t) out.self_inclusive = false;
      if (own.has_value() && own->first == t &&
          own->second != out.write_values[uj][static_cast<std::size_t>(t)]) {
        out.self_inclusive = false;  // wrong value for the own write
      }
      if (t > 0 &&
          !le(out.views[uj][static_cast<std::size_t>(t - 1)], v)) {
        out.per_writer_monotone = false;
      }
    }
  }
  return out;
}

}  // namespace wfc::bg
