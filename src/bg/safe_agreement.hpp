// Safe agreement -- the coordination primitive of the Borowsky-Gafni
// simulation ([7]'s t-resilient reduction, the construction this paper's
// techniques seeded; §1 and §6 point to the resiliency follow-ups [10,11]).
//
// Semantics: processors propose values; all resolutions return the SAME
// proposed value (agreement + validity), and the object is wait-free
// EXCEPT for a bounded "unsafe window" inside propose(): a processor that
// crashes between announcing its proposal and publishing its commit/defer
// decision may leave the object forever unresolved.  Resolution is
// therefore a NON-BLOCKING query (try_resolve), and the BG simulation
// charges each crashed simulator at most one permanently-blocked object.
//
// Construction (two-level, on an atomic snapshot object):
//   propose(i, v):  post (v, LEVEL_RAISED); scan;
//                   post (v, saw LEVEL_COMMITTED ? LEVEL_DEFERRED
//                                                : LEVEL_COMMITTED)
//   try_resolve():  scan; if anyone is at LEVEL_RAISED -> unresolved;
//                   else decide the value of the smallest id at
//                   LEVEL_COMMITTED (one must exist).
//
// Agreement: once no one is RAISED, the COMMITTED set is frozen (DEFERRED
// and COMMITTED are terminal), so all resolvers pick the same minimum.
// Non-emptiness: the first proposer to finish its scan cannot have seen a
// COMMITTED entry, so it commits.
#pragma once

#include <optional>

#include "registers/atomic_snapshot.hpp"

namespace wfc::bg {

template <typename V>
class SafeAgreement {
 public:
  explicit SafeAgreement(int n_procs)
      : mem_(n_procs),
        entered_(static_cast<std::size_t>(n_procs), 0),
        pending_(static_cast<std::size_t>(n_procs)) {}

  [[nodiscard]] int n_procs() const noexcept { return mem_.n_procs(); }

  /// Full proposal; the unsafe window lies between the two updates.
  void propose(int i, V value) {
    propose_enter(i, value);
    propose_finish(i);
  }

  /// First half: announce the proposal (enters the unsafe window).  Exposed
  /// separately so tests and the simulation's crash injection can model a
  /// processor failing INSIDE the window.
  void propose_enter(int i, V value) {
    check(i);
    WFC_REQUIRE(!entered_[static_cast<std::size_t>(i)],
                "SafeAgreement: propose called twice");
    entered_[static_cast<std::size_t>(i)] = true;
    pending_[static_cast<std::size_t>(i)] = value;
    mem_.update(i, Cell{std::move(value), kRaised});
  }

  /// Second half: leave the unsafe window by committing or deferring.
  void propose_finish(int i) {
    check(i);
    WFC_REQUIRE(entered_[static_cast<std::size_t>(i)],
                "SafeAgreement: finish before enter");
    const auto view = mem_.scan();
    bool saw_committed = false;
    for (const auto& cell : view) {
      if (cell.has_value() && cell->level == kCommitted) saw_committed = true;
    }
    mem_.update(i, Cell{pending_[static_cast<std::size_t>(i)],
                        saw_committed ? kDeferred : kCommitted});
  }

  /// Non-blocking resolution: the agreed value, or nullopt while some
  /// proposer is still (or forever) inside the unsafe window -- or before
  /// anyone proposed.
  [[nodiscard]] std::optional<V> try_resolve() const {
    const auto view = mem_.scan();
    std::optional<V> committed;
    bool any = false;
    for (const auto& cell : view) {
      if (!cell.has_value()) continue;
      any = true;
      if (cell->level == kRaised) return std::nullopt;
      if (cell->level == kCommitted && !committed.has_value()) {
        committed = cell->value;  // smallest id wins (scan is id-ordered)
      }
    }
    if (!any) return std::nullopt;
    WFC_CHECK(committed.has_value(),
              "SafeAgreement: settled object with no committed proposal");
    return committed;
  }

 private:
  static constexpr int kRaised = 1;
  static constexpr int kCommitted = 2;
  static constexpr int kDeferred = 3;

  struct Cell {
    V value{};
    int level = 0;
  };

  void check(int i) const {
    WFC_REQUIRE(i >= 0 && i < n_procs(), "SafeAgreement: bad id");
  }

  reg::AtomicSnapshot<Cell> mem_;
  // Writer-local bookkeeping (each index touched by one thread only).
  std::vector<char> entered_;  // char, not bool: distinct threads touch distinct indices
  std::vector<V> pending_;
};

}  // namespace wfc::bg
