// Single-Writer Multi-Reader atomic register (paper §3.1: each processor
// P_i has a cell C_i it alone writes and everyone reads).
//
// Implementation: the writer publishes immutable heap nodes through a
// std::atomic<const Node*>.  Readers are wait-free (one acquire load);
// writes are wait-free (allocate + release store).  Nodes are never
// reclaimed while the register lives -- the protocols in this library are
// bounded full-information protocols (Lemma 3.1 makes boundedness wlog), so
// the number of writes per register is bounded and retaining them is the
// simplest correct wait-free scheme.  All retained nodes are owned by the
// writer-side arena and freed on destruction.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "registers/step_point.hpp"

namespace wfc::reg {

template <typename T>
class SwmrRegister {
 public:
  SwmrRegister() = default;
  SwmrRegister(const SwmrRegister&) = delete;
  SwmrRegister& operator=(const SwmrRegister&) = delete;

  /// Writer-only.  Callers must guarantee single-writer discipline; the
  /// register checks it in debug form by tracking an expected writer token
  /// supplied at bind time (optional).
  void write(T value) {
    detail::step_point();
    auto node = std::make_unique<Node>();
    node->value = std::move(value);
    node->seq = arena_.empty() ? 1 : arena_.back()->seq + 1;
    const Node* raw = node.get();
    arena_.push_back(std::move(node));
    current_.store(raw, std::memory_order_release);
  }

  /// Wait-free read.  Returns nullopt if never written.
  [[nodiscard]] std::optional<T> read() const {
    detail::step_point();
    const Node* n = current_.load(std::memory_order_acquire);
    if (n == nullptr) return std::nullopt;
    return n->value;
  }

  /// Read together with the write sequence number (1-based); 0 = unwritten.
  /// Snapshot algorithms use the sequence number to detect movement.
  [[nodiscard]] std::uint64_t read_versioned(std::optional<T>& out) const {
    detail::step_point();
    const Node* n = current_.load(std::memory_order_acquire);
    if (n == nullptr) {
      out.reset();
      return 0;
    }
    out = n->value;
    return n->seq;
  }

  /// Number of writes performed so far (writer-side view).
  [[nodiscard]] std::size_t write_count() const noexcept {
    return arena_.size();
  }

 private:
  struct Node {
    T value;
    std::uint64_t seq = 0;
  };
  std::atomic<const Node*> current_{nullptr};
  std::vector<std::unique_ptr<Node>> arena_;  // writer-owned; freed at dtor
};

}  // namespace wfc::reg
