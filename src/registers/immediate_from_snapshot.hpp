// One-shot immediate snapshot built ON TOP of an atomic snapshot object --
// the layering of [8] (Borowsky-Gafni 1993) referenced throughout §3: the
// immediate snapshot model is implementable from atomic snapshots, hence no
// stronger.  Identical descending-levels algorithm to ImmediateSnapshot,
// but each collect is a genuine atomic scan() instead of a register-by-
// register collect -- demonstrating that the algorithm needs nothing more
// than regularity, while letting tests cross-validate the two stacks.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "registers/atomic_snapshot.hpp"

namespace wfc::reg {

template <typename T>
class ImmediateSnapshotFromAtomic {
 public:
  using Output = std::vector<std::pair<int, T>>;

  explicit ImmediateSnapshotFromAtomic(int n_procs) : mem_(n_procs) {}

  [[nodiscard]] int n_procs() const noexcept { return mem_.n_procs(); }

  /// P_i's single WriteRead.  Wait-free: at most n+1 level descents, each a
  /// wait-free update + scan.
  Output write_read(int i, T value) {
    WFC_REQUIRE(i >= 0 && i < n_procs(),
                "ImmediateSnapshotFromAtomic: bad id");
    const int n_plus_1 = n_procs();
    for (int level = n_plus_1; level >= 1; --level) {
      mem_.update(i, Cell{value, level});
      const auto view = mem_.scan();
      std::vector<int> seen;
      for (int j = 0; j < n_plus_1; ++j) {
        const auto& cell = view[static_cast<std::size_t>(j)];
        if (cell.has_value() && cell->level <= level) seen.push_back(j);
      }
      if (static_cast<int>(seen.size()) >= level) {
        Output out;
        out.reserve(seen.size());
        for (int j : seen) {
          out.emplace_back(j, view[static_cast<std::size_t>(j)]->value);
        }
        return out;
      }
    }
    WFC_CHECK(false, "ImmediateSnapshotFromAtomic: descended below level 1");
  }

 private:
  struct Cell {
    T value{};
    int level = 0;
  };
  AtomicSnapshot<Cell> mem_;
};

}  // namespace wfc::reg
