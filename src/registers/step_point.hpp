// Shared-memory preemption points for the register layer.
//
// The model checker (src/check) drives the REAL register code through chosen
// interleavings: every shared-memory access in swmr_register.hpp and
// immediate_snapshot.hpp first calls detail::step_point(), where a
// cooperative scheduler (chk::StepDriver) can park the calling thread until
// the schedule grants it the next step.  This is the usual stateless-model-
// checking instrumentation seam, kept deliberately tiny:
//
//   * production / plain tests: the hook is null -- one relaxed load, no
//     branch taken, no synchronization added (the registers' own atomics
//     carry all ordering);
//   * under the checker: the hook is a plain function pointer; it consults a
//     thread_local registration, so only threads the driver spawned ever
//     block -- the controlling test thread and unrelated threads fall
//     through even while a driver is installed.
#pragma once

#include <atomic>

namespace wfc::reg::detail {

using StepHook = void (*)();

/// The installed preemption hook, or null.  Install/uninstall is owned by
/// chk::StepDriver (src/check/step_driver.cpp).
inline std::atomic<StepHook> step_hook{nullptr};

/// Called by the registers immediately before each shared-memory access.
inline void step_point() {
  StepHook hook = step_hook.load(std::memory_order_acquire);
  if (hook != nullptr) hook();
}

}  // namespace wfc::reg::detail
