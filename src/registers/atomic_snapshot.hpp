// Wait-free SWMR atomic snapshot object (paper §3.1, model of [1] = Afek,
// Attiya, Dolev, Gafni, Merritt, Shavit 1990).
//
// Each of the n+1 processors owns one component; update(i, v) writes P_i's
// component, scan() returns an atomic view of all components.
//
// Algorithm (the classic unbounded-sequence-number construction):
//   * every update embeds the result of a scan in the written register;
//   * scan() repeatedly double-collects; if two consecutive collects are
//     identical (no sequence number moved) the collect is a valid snapshot;
//   * otherwise, if some register moved TWICE since the scan began, its
//     second write started after our scan started, so its embedded scan is
//     linearizable inside our interval -- borrow it.
// Each scan terminates after at most n+2 collects: with n+1 writers, after
// n+2 unsuccessful double collects some writer moved twice (pigeonhole).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "registers/swmr_register.hpp"

namespace wfc::reg {

template <typename T>
class AtomicSnapshot {
 public:
  /// A snapshot view: component i is nullopt until P_i's first update.
  using View = std::vector<std::optional<T>>;

  explicit AtomicSnapshot(int n_procs) : regs_(static_cast<std::size_t>(n_procs)) {
    WFC_REQUIRE(n_procs >= 1, "AtomicSnapshot: need at least one processor");
  }

  [[nodiscard]] int n_procs() const noexcept {
    return static_cast<int>(regs_.size());
  }

  /// P_i replaces its component with `value`.  Wait-free; embeds a scan.
  void update(int i, T value) {
    check_proc(i);
    Cell cell;
    cell.value = std::move(value);
    cell.embedded = scan();
    regs_[static_cast<std::size_t>(i)].write(std::move(cell));
  }

  /// Returns an atomic view of all components.  Wait-free.
  [[nodiscard]] View scan() const {
    int collects = 0;
    return scan_counting(collects);
  }

  /// scan() variant reporting how many collects the wait-freedom argument
  /// consumed: with n+1 writers at most n+2 collects happen before either a
  /// clean double collect or a double mover (pigeonhole) -- tests assert
  /// the bound.
  [[nodiscard]] View scan_counting(int& collects) const {
    const std::size_t n = regs_.size();
    std::vector<std::uint64_t> first(n, 0);
    std::vector<std::uint64_t> prev(n, 0);
    std::vector<std::optional<Cell>> cells(n);
    collect(cells, prev);
    collects = 1;
    first = prev;
    for (;;) {
      std::vector<std::optional<Cell>> cells2(n);
      std::vector<std::uint64_t> seqs2(n, 0);
      collect(cells2, seqs2);
      ++collects;
      if (seqs2 == prev) {
        // Clean double collect: the repeated collect is a snapshot.
        View out(n);
        for (std::size_t j = 0; j < n; ++j) {
          if (cells2[j].has_value()) out[j] = cells2[j]->value;
        }
        return out;
      }
      for (std::size_t j = 0; j < n; ++j) {
        if (seqs2[j] >= first[j] + 2) {
          // P_j wrote at least twice during our scan; its latest embedded
          // scan began after our scan began.  Borrow it.
          return cells2[j]->embedded;
        }
      }
      prev = seqs2;
      cells = std::move(cells2);
    }
  }

  /// Total writes to component i (for tests/benchmarks).
  [[nodiscard]] std::size_t write_count(int i) const {
    check_proc(i);
    return regs_[static_cast<std::size_t>(i)].write_count();
  }

 private:
  struct Cell {
    T value;
    View embedded;
  };

  void check_proc(int i) const {
    WFC_REQUIRE(i >= 0 && i < n_procs(), "AtomicSnapshot: bad processor id");
  }

  void collect(std::vector<std::optional<Cell>>& cells,
               std::vector<std::uint64_t>& seqs) const {
    for (std::size_t j = 0; j < regs_.size(); ++j) {
      std::optional<Cell> c;
      seqs[j] = regs_[j].read_versioned(c);
      cells[j] = std::move(c);
    }
  }

  std::vector<SwmrRegister<Cell>> regs_;
};

}  // namespace wfc::reg
