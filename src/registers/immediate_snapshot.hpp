// One-shot immediate snapshot object (paper §3.4-3.5), built from SWMR
// registers with the Borowsky-Gafni descending-levels ("participating set")
// algorithm [8]:
//
//   level_i := n+2
//   repeat
//     level_i := level_i - 1;  announce (value_i, level_i)
//     collect all announcements; S := { j : level_j <= level_i }
//   until |S| >= level_i
//   return { (j, value_j) : j in S }
//
// The returned sets satisfy the three §3.5 properties:
//   (1) self-inclusion:  v_i in S_i
//   (2) containment:     S_i subset S_j or S_j subset S_i
//   (3) immediacy:       v_i in S_j  =>  S_i subset S_j
//
// Wait-freedom: a processor descends at most n+1 levels; each iteration is a
// write plus a collect.  One-shot: each processor may write_read() once.
#pragma once

#include <atomic>
#include <memory>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "registers/step_point.hpp"
#include "registers/swmr_register.hpp"

namespace wfc::reg {

template <typename T>
class ImmediateSnapshot {
 public:
  /// One participant's output: the (id, value) pairs it saw, id-sorted.
  using Output = std::vector<std::pair<int, T>>;

  explicit ImmediateSnapshot(int n_procs)
      : values_(static_cast<std::size_t>(n_procs)),
        levels_(static_cast<std::size_t>(n_procs)) {
    WFC_REQUIRE(n_procs >= 1, "ImmediateSnapshot: need at least one processor");
    for (auto& l : levels_) {
      l.store(kUnset, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] int n_procs() const noexcept {
    return static_cast<int>(levels_.size());
  }

  /// The single WriteRead operation of P_i (§3.4).  May be called at most
  /// once per processor id; concurrent calls by distinct ids are the point.
  Output write_read(int i, T value) {
    WFC_REQUIRE(i >= 0 && i < n_procs(), "ImmediateSnapshot: bad id");
    const auto ui = static_cast<std::size_t>(i);
    WFC_REQUIRE(levels_[ui].load(std::memory_order_relaxed) == kUnset,
                "ImmediateSnapshot: write_read called twice by one id");
    values_[ui].write(std::move(value));
    const int n_plus_1 = n_procs();
    for (int level = n_plus_1; level >= 1; --level) {
      detail::step_point();
      levels_[ui].store(level, std::memory_order_release);
      std::vector<int> seen;
      seen.reserve(static_cast<std::size_t>(n_plus_1));
      for (int j = 0; j < n_plus_1; ++j) {
        detail::step_point();
        const int lj =
            levels_[static_cast<std::size_t>(j)].load(std::memory_order_acquire);
        if (lj != kUnset && lj <= level) seen.push_back(j);
      }
      if (static_cast<int>(seen.size()) >= level) {
        Output out;
        out.reserve(seen.size());
        for (int j : seen) {
          auto v = values_[static_cast<std::size_t>(j)].read();
          WFC_CHECK(v.has_value(),
                    "ImmediateSnapshot: level published before value");
          out.emplace_back(j, std::move(*v));
        }
        return out;
      }
    }
    WFC_CHECK(false, "ImmediateSnapshot: descended below level 1");
  }

  /// True if processor i already executed its write_read.
  [[nodiscard]] bool participated(int i) const {
    WFC_REQUIRE(i >= 0 && i < n_procs(), "ImmediateSnapshot: bad id");
    return levels_[static_cast<std::size_t>(i)].load(
               std::memory_order_acquire) != kUnset;
  }

 private:
  static constexpr int kUnset = 1 << 20;

  std::vector<SwmrRegister<T>> values_;
  std::vector<std::atomic<int>> levels_;
};

/// A growable sequence of one-shot immediate snapshot memories
/// M_0, M_1, ... (paper §3.5).  Capacity is fixed at construction: bounded
/// protocols know their depth (Lemma 3.1), and a fixed array keeps every
/// access wait-free.
template <typename T>
class IteratedMemory {
 public:
  IteratedMemory(int n_procs, std::size_t capacity) : n_procs_(n_procs) {
    WFC_REQUIRE(n_procs >= 1, "IteratedMemory: need at least one processor");
    WFC_REQUIRE(capacity >= 1, "IteratedMemory: capacity must be positive");
    memories_.reserve(capacity);
    for (std::size_t m = 0; m < capacity; ++m) {
      memories_.push_back(std::make_unique<ImmediateSnapshot<T>>(n_procs));
    }
  }

  [[nodiscard]] int n_procs() const noexcept { return n_procs_; }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return memories_.size();
  }

  /// P_i's WriteRead against memory M_index.
  typename ImmediateSnapshot<T>::Output write_read(std::size_t index, int i,
                                                   T value) {
    WFC_REQUIRE(index < memories_.size(),
                "IteratedMemory: memory index beyond capacity");
    return memories_[index]->write_read(i, std::move(value));
  }

  [[nodiscard]] const ImmediateSnapshot<T>& memory(std::size_t index) const {
    WFC_REQUIRE(index < memories_.size(), "IteratedMemory: bad index");
    return *memories_[index];
  }

 private:
  int n_procs_;
  std::vector<std::unique_ptr<ImmediateSnapshot<T>>> memories_;
};

}  // namespace wfc::reg
