// Metrics registry for the observability layer (wfc::obs).
//
// Three instrument kinds, all updated with relaxed atomics so the hot path
// of the query service costs a handful of uncontended atomic adds:
//
//   * Counter   -- monotonically increasing u64 (queries, cache hits, ...);
//   * Gauge     -- last-write-wins u64 (queue depth, resident vertices);
//   * Histogram -- FIXED upper-bound buckets (latency in microseconds, sizes
//                  in nodes/vertices).  Bounds are chosen at registration and
//                  never change, so observation is two atomic adds (bucket +
//                  sum) after a short linear scan of <= 16 bounds.
//
// The registry owns every instrument and hands out stable references: the
// query service resolves its series ONCE at construction and never touches
// the registry mutex again.  Series are identified by (name, labels) where
// labels is a raw Prometheus label body, e.g. `status="ok"`; the same name
// may appear with many label sets (one series each).
//
// write_prometheus() renders the whole registry in the Prometheus text
// exposition format (# HELP / # TYPE once per family, histograms with
// cumulative `_bucket{le=...}`, `_sum`, `_count`).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace wfc::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(std::uint64_t v) { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Histogram {
 public:
  /// `bounds` are strictly increasing inclusive upper bounds; an implicit
  /// +Inf bucket is appended.
  explicit Histogram(std::vector<std::uint64_t> bounds);

  void observe(std::uint64_t value);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::vector<std::uint64_t>& bounds() const {
    return bounds_;
  }
  /// Non-cumulative count of bucket i (i == bounds().size() is +Inf).
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::vector<std::uint64_t> bounds_;
  std::deque<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Latency bounds in microseconds: 10us .. 10s, roughly half-decade steps.
[[nodiscard]] const std::vector<std::uint64_t>& latency_bounds_us();
/// Size bounds (search nodes, vertices): powers of ten, 1 .. 10^8.
[[nodiscard]] const std::vector<std::uint64_t>& size_bounds();

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or finds) the series (name, labels).  `help` is recorded the
  /// first time a family is seen.  References stay valid for the registry's
  /// lifetime.
  Counter& counter(const std::string& name, const std::string& labels = "",
                   const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& labels = "",
               const std::string& help = "");
  Histogram& histogram(const std::string& name,
                       const std::vector<std::uint64_t>& bounds,
                       const std::string& labels = "",
                       const std::string& help = "");

  /// Prometheus text exposition of every registered series.
  void write_prometheus(std::ostream& out) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Series {
    Kind kind;
    std::string name;
    std::string labels;  // raw label body, e.g. status="ok"
    std::string help;
    Counter counter;
    Gauge gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Series& find_or_add(Kind kind, const std::string& name,
                      const std::string& labels, const std::string& help);

  mutable std::mutex mu_;
  std::deque<Series> series_;  // deque: stable addresses
};

}  // namespace wfc::obs
