// Per-query tracing for the observability layer (wfc::obs).
//
// Every query the service admits carries a TraceContext: a (sink, trace_id)
// pair whose span helpers record fixed-size Span records into a bounded,
// LOCK-FREE ring buffer.  The buffer is sharded: each recording thread is
// assigned a shard on first use (thread_local), so in the steady state every
// worker appends to its own single-producer ring and never contends.
//
// Concurrency protocol (TSan-clean by construction): a writer claims a slot
// with a relaxed fetch_add ticket, invalidates the slot's sequence word,
// stores the span fields as relaxed atomics, then publishes the ticket with
// a release store.  A concurrent snapshot() validates each slot by reading
// the sequence word before and after the field loads (acquire / relaxed) and
// discards slots that changed underneath it.  Rings are bounded: once a
// shard wraps, the oldest spans are overwritten and counted as dropped.
//
// Disabled tracing is near-zero cost: a default TraceContext has a null
// sink, every helper returns before reading the clock, and ScopedSpan's
// destructor is a branch on a null pointer.
//
// Export: write_chrome_trace() renders the buffer as a Chrome trace_event
// JSON file (chrome://tracing, Perfetto).  Spans are laid out one row (tid)
// per query, so each query's queue / chain-build / search timeline reads
// left to right; search-node checkpoints render as counter tracks.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

namespace wfc::obs {

/// What a span measures.  Names are exported verbatim into Chrome traces.
enum class SpanKind : std::uint8_t {
  kQueueWait = 0,    // admission enqueue -> dequeue
  kMemoHit,          // result memo answered inline (instant)
  kCacheHit,         // SDS chain served without subdivision work (instant)
  kChainBuild,       // subdivision tower built or extended
  kSearch,           // the Prop 3.1 decision search (task::solve)
  kConvergence,      // §5 convergence-map compilation
  kEmulation,        // §4 Figure 2 emulation run (arg = rounds)
  kCheck,            // wfc::chk model-check sweep (arg = schedules)
  kSearchNodes,      // node-count checkpoint (counter sample, arg = nodes)
  kWatchdogKill,     // hard-timeout force-cancellation (instant)
  kWatchdogStall,    // heartbeat-stall report (instant)
  kNetRead,          // wfc::net: one readable-socket drain (arg = bytes)
  kNetWrite,         // wfc::net: one writable-socket flush (arg = bytes)
};

[[nodiscard]] const char* to_cstring(SpanKind kind);
inline constexpr int kNumSpanKinds = 13;

struct Span {
  std::uint64_t trace_id = 0;  // query id; 0 = untraced
  SpanKind kind = SpanKind::kQueueWait;
  std::uint16_t shard = 0;     // recording shard (roughly: worker)
  std::uint64_t start_us = 0;  // since the sink's epoch
  std::uint64_t dur_us = 0;    // 0 for instants / counter samples
  std::uint64_t arg = 0;       // kind-specific payload (nodes, rounds, ...)
};

class TraceSink {
 public:
  /// `capacity` spans are retained in total (rounded up per shard to a power
  /// of two); the oldest are overwritten once a shard wraps.
  explicit TraceSink(std::size_t capacity = 1 << 16, int shards = 8);

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  void record(std::uint64_t trace_id, SpanKind kind, std::uint64_t start_us,
              std::uint64_t dur_us, std::uint64_t arg);

  /// Microseconds since this sink's construction (the trace epoch).
  [[nodiscard]] std::uint64_t now_us() const;
  [[nodiscard]] std::uint64_t to_epoch_us(
      std::chrono::steady_clock::time_point tp) const;

  /// Consistent copies of every live span, sorted by (trace_id, start).
  [[nodiscard]] std::vector<Span> snapshot() const;
  /// Spans overwritten by ring wrap-around since construction.
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::uint64_t recorded() const;

  /// Chrome trace_event JSON ("X" complete events, one tid per trace_id,
  /// counter tracks for kSearchNodes checkpoints).
  void write_chrome_trace(std::ostream& out) const;

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  // 0 = empty; else ticket + 1
    std::atomic<std::uint64_t> trace_id{0};
    std::atomic<std::uint64_t> start_us{0};
    std::atomic<std::uint64_t> dur_us{0};
    std::atomic<std::uint64_t> arg{0};
    std::atomic<std::uint16_t> kind{0};
  };
  struct Shard {
    std::unique_ptr<Slot[]> slots;
    std::atomic<std::uint64_t> next{0};
  };

  [[nodiscard]] Shard& my_shard();

  std::chrono::steady_clock::time_point epoch_;
  std::size_t slots_per_shard_;  // power of two
  std::vector<Shard> shards_;
  std::atomic<std::uint32_t> next_shard_{0};
};

/// The per-query handle threaded through the service stack.  Copyable and
/// cheap; a default-constructed context is disabled.
class TraceContext {
 public:
  TraceContext() = default;
  TraceContext(TraceSink* sink, std::uint64_t trace_id)
      : sink_(sink), trace_id_(trace_id) {}

  [[nodiscard]] bool enabled() const { return sink_ != nullptr; }
  [[nodiscard]] std::uint64_t trace_id() const { return trace_id_; }

  /// Zero-duration event at "now".
  void instant(SpanKind kind, std::uint64_t arg = 0) const;
  /// Completed span over an explicit steady_clock interval.
  void complete(SpanKind kind, std::chrono::steady_clock::time_point start,
                std::chrono::steady_clock::time_point end,
                std::uint64_t arg = 0) const;
  /// Counter sample (search-node checkpoints).
  void checkpoint(SpanKind kind, std::uint64_t value) const;

  /// RAII span: measures construction -> destruction.  `arg` may be set
  /// after construction (e.g. to a node count known only at the end).
  class Scoped {
   public:
    explicit Scoped(const TraceContext& ctx, SpanKind kind)
        : sink_(ctx.sink_), trace_id_(ctx.trace_id_), kind_(kind) {
      if (sink_ != nullptr) start_us_ = sink_->now_us();
    }
    ~Scoped() {
      if (sink_ != nullptr) {
        sink_->record(trace_id_, kind_, start_us_,
                      sink_->now_us() - start_us_, arg);
      }
    }
    Scoped(const Scoped&) = delete;
    Scoped& operator=(const Scoped&) = delete;
    std::uint64_t arg = 0;

   private:
    TraceSink* sink_;
    std::uint64_t trace_id_;
    SpanKind kind_;
    std::uint64_t start_us_ = 0;
  };

  [[nodiscard]] Scoped span(SpanKind kind) const { return Scoped(*this, kind); }

 private:
  TraceSink* sink_ = nullptr;
  std::uint64_t trace_id_ = 0;
};

}  // namespace wfc::obs
