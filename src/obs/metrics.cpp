#include "obs/metrics.hpp"

#include <algorithm>
#include <map>
#include <ostream>

#include "common/assert.hpp"

namespace wfc::obs {

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  WFC_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                  std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                      bounds_.end(),
              "Histogram: bounds must be strictly increasing");
}

void Histogram::observe(std::uint64_t value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

const std::vector<std::uint64_t>& latency_bounds_us() {
  static const std::vector<std::uint64_t> bounds = {
      10,      50,      100,     500,       1'000,     5'000,
      10'000,  50'000,  100'000, 500'000,   1'000'000, 5'000'000,
      10'000'000};
  return bounds;
}

const std::vector<std::uint64_t>& size_bounds() {
  static const std::vector<std::uint64_t> bounds = {
      1,       10,        100,        1'000,      10'000,
      100'000, 1'000'000, 10'000'000, 100'000'000};
  return bounds;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& labels,
                                  const std::string& help) {
  return find_or_add(Kind::kCounter, name, labels, help).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& labels,
                              const std::string& help) {
  return find_or_add(Kind::kGauge, name, labels, help).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::vector<std::uint64_t>& bounds,
                                      const std::string& labels,
                                      const std::string& help) {
  Series& s = find_or_add(Kind::kHistogram, name, labels, help);
  if (s.histogram == nullptr) s.histogram = std::make_unique<Histogram>(bounds);
  return *s.histogram;
}

MetricsRegistry::Series& MetricsRegistry::find_or_add(
    Kind kind, const std::string& name, const std::string& labels,
    const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Series& s : series_) {
    if (s.name == name && s.labels == labels) {
      WFC_REQUIRE(s.kind == kind,
                  "MetricsRegistry: series re-registered with another kind: " +
                      name);
      return s;
    }
  }
  series_.emplace_back();
  Series& s = series_.back();
  s.kind = kind;
  s.name = name;
  s.labels = labels;
  s.help = help;
  return s;
}

void MetricsRegistry::write_prometheus(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Group series into families (same name) so HELP/TYPE render once, in the
  // order families were first registered.
  std::vector<const Series*> ordered;
  ordered.reserve(series_.size());
  for (const Series& s : series_) ordered.push_back(&s);
  std::map<std::string, std::vector<const Series*>> families;
  std::vector<std::string> family_order;
  for (const Series* s : ordered) {
    auto [it, fresh] = families.try_emplace(s->name);
    if (fresh) family_order.push_back(s->name);
    it->second.push_back(s);
  }

  auto with_labels = [](const Series& s, const std::string& extra = "") {
    std::string body = s.labels;
    if (!extra.empty()) body += (body.empty() ? "" : ",") + extra;
    return body.empty() ? s.name : s.name + "{" + body + "}";
  };

  for (const std::string& name : family_order) {
    const std::vector<const Series*>& members = families[name];
    const Series& head = *members.front();
    if (!head.help.empty()) {
      out << "# HELP " << name << " " << head.help << "\n";
    }
    const char* type = head.kind == Kind::kCounter   ? "counter"
                       : head.kind == Kind::kGauge   ? "gauge"
                                                     : "histogram";
    out << "# TYPE " << name << " " << type << "\n";
    for (const Series* s : members) {
      switch (s->kind) {
        case Kind::kCounter:
          out << with_labels(*s) << " " << s->counter.value() << "\n";
          break;
        case Kind::kGauge:
          out << with_labels(*s) << " " << s->gauge.value() << "\n";
          break;
        case Kind::kHistogram: {
          const Histogram& h = *s->histogram;
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < h.bounds().size(); ++i) {
            cumulative += h.bucket(i);
            out << s->name << "_bucket{"
                << (s->labels.empty() ? "" : s->labels + ",")
                << "le=\"" << h.bounds()[i] << "\"} " << cumulative << "\n";
          }
          cumulative += h.bucket(h.bounds().size());
          out << s->name << "_bucket{"
              << (s->labels.empty() ? "" : s->labels + ",") << "le=\"+Inf\"} "
              << cumulative << "\n";
          out << s->name << "_sum"
              << (s->labels.empty() ? "" : "{" + s->labels + "}") << " "
              << h.sum() << "\n";
          out << s->name << "_count"
              << (s->labels.empty() ? "" : "{" + s->labels + "}") << " "
              << h.count() << "\n";
          break;
        }
      }
    }
  }
}

}  // namespace wfc::obs
