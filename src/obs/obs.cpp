#include "obs/obs.hpp"

#include <ostream>

namespace wfc::obs {

Observer::Observer(ObsConfig config) : config_(config) {
  if (config_.search_checkpoint_nodes == 0) {
    config_.search_checkpoint_nodes = ObsConfig{}.search_checkpoint_nodes;
  }
  if (config_.enabled) {
    trace_ = std::make_unique<TraceSink>(config_.trace_capacity,
                                         config_.trace_shards);
  }
}

TraceContext Observer::begin_trace() {
  if (!config_.enabled) return {};
  return TraceContext(trace_.get(),
                      next_trace_id_.fetch_add(1, std::memory_order_relaxed));
}

void Observer::write_prometheus(std::ostream& out) const {
  if (gauge_refresh_) gauge_refresh_();
  metrics_.write_prometheus(out);
}

void Observer::write_chrome_trace(std::ostream& out) const {
  if (trace_ != nullptr) {
    trace_->write_chrome_trace(out);
  } else {
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}";
  }
}

}  // namespace wfc::obs
