// wfc::obs -- the observability facade: one Observer per QueryService tying
// together the metrics registry (metrics.hpp) and the per-query trace sink
// (trace.hpp).
//
// Lifecycle: the service constructs an Observer from ObsConfig.  With
// enabled == false (the default) the Observer allocates nothing beyond the
// empty registry, begin_trace() returns a disabled TraceContext, and every
// instrumentation site in the service reduces to a null/bool check --
// current behavior is preserved bit-for-bit and the hot path pays no clock
// reads.  With enabled == true, begin_trace() assigns monotonically
// increasing trace ids and spans/metrics flow.
//
// Exporters:
//   * write_prometheus(out)    -- text exposition of every metric series;
//   * write_chrome_trace(out)  -- trace_event JSON of the span ring.
// Both are reachable through the JSONL ops {"op":"metrics"} /
// {"op":"trace","path":...} and the wfc_cli metrics|trace subcommands
// (service/frontend.hpp).
//
// Gauges that mirror another subsystem's state (queue depth, cache
// residency) are refreshed just before export through a caller-installed
// refresh hook, so a Prometheus scrape observes the same numbers a
// ServiceStats snapshot would.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace wfc::obs {

struct ObsConfig {
  /// Master switch.  Off (default): no spans, no metric updates, near-zero
  /// overhead -- the service behaves exactly as without the obs layer.
  bool enabled = false;
  /// Total spans retained across the trace ring's shards.
  std::size_t trace_capacity = 1 << 16;
  /// Trace-ring shards; sized to the worker count or above to keep the ring
  /// single-producer per worker.
  int trace_shards = 8;
  /// Emit a search-node checkpoint (counter sample) every this many explored
  /// nodes, so a long Prop 3.1 search has an in-flight timeline.  0 uses the
  /// default; checkpoints only exist while tracing is enabled.
  std::uint64_t search_checkpoint_nodes = 4096;
};

class Observer {
 public:
  explicit Observer(ObsConfig config = {});

  Observer(const Observer&) = delete;
  Observer& operator=(const Observer&) = delete;

  [[nodiscard]] bool enabled() const { return config_.enabled; }
  [[nodiscard]] const ObsConfig& config() const { return config_; }

  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  /// Null when tracing is disabled.
  [[nodiscard]] TraceSink* trace() { return trace_.get(); }
  [[nodiscard]] const TraceSink* trace() const { return trace_.get(); }

  /// A fresh per-query context (disabled context when the layer is off).
  [[nodiscard]] TraceContext begin_trace();

  /// Installed by the service: refreshes mirror gauges (queue depth, cache
  /// residency, watchdog counters) immediately before an export.
  void set_gauge_refresh(std::function<void()> refresh) {
    gauge_refresh_ = std::move(refresh);
  }

  void write_prometheus(std::ostream& out) const;
  void write_chrome_trace(std::ostream& out) const;

 private:
  ObsConfig config_;
  MetricsRegistry metrics_;
  std::unique_ptr<TraceSink> trace_;
  std::atomic<std::uint64_t> next_trace_id_{1};
  std::function<void()> gauge_refresh_;
};

}  // namespace wfc::obs
