#include "obs/trace.hpp"

#include <algorithm>
#include <ostream>

#include "common/assert.hpp"

namespace wfc::obs {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

const char* to_cstring(SpanKind kind) {
  switch (kind) {
    case SpanKind::kQueueWait: return "queue_wait";
    case SpanKind::kMemoHit: return "memo_hit";
    case SpanKind::kCacheHit: return "cache_hit";
    case SpanKind::kChainBuild: return "chain_build";
    case SpanKind::kSearch: return "search";
    case SpanKind::kConvergence: return "convergence";
    case SpanKind::kEmulation: return "emulation";
    case SpanKind::kCheck: return "check";
    case SpanKind::kSearchNodes: return "search_nodes";
    case SpanKind::kWatchdogKill: return "watchdog_kill";
    case SpanKind::kWatchdogStall: return "watchdog_stall";
    case SpanKind::kNetRead: return "net_read";
    case SpanKind::kNetWrite: return "net_write";
  }
  return "?";
}

TraceSink::TraceSink(std::size_t capacity, int shards)
    : epoch_(std::chrono::steady_clock::now()),
      shards_(static_cast<std::size_t>(std::max(1, shards))) {
  const std::size_t per_shard =
      std::max<std::size_t>(1, capacity / shards_.size());
  slots_per_shard_ = round_up_pow2(per_shard);
  for (Shard& shard : shards_) {
    shard.slots = std::make_unique<Slot[]>(slots_per_shard_);
  }
}

std::uint64_t TraceSink::now_us() const {
  return to_epoch_us(std::chrono::steady_clock::now());
}

std::uint64_t TraceSink::to_epoch_us(
    std::chrono::steady_clock::time_point tp) const {
  if (tp <= epoch_) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(tp - epoch_)
          .count());
}

TraceSink::Shard& TraceSink::my_shard() {
  // One shard per recording thread while threads <= shards; extra threads
  // share round-robin (slot tickets keep concurrent writers on distinct
  // slots, and snapshot()'s sequence validation discards torn reads).
  thread_local std::uint32_t assigned = 0xffffffffu;
  if (assigned == 0xffffffffu) {
    assigned = next_shard_.fetch_add(1, std::memory_order_relaxed);
  }
  return shards_[assigned % shards_.size()];
}

void TraceSink::record(std::uint64_t trace_id, SpanKind kind,
                       std::uint64_t start_us, std::uint64_t dur_us,
                       std::uint64_t arg) {
  Shard& shard = my_shard();
  const std::uint64_t ticket =
      shard.next.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = shard.slots[ticket & (slots_per_shard_ - 1)];
  // Invalidate, write fields, publish: a concurrent snapshot() either sees
  // the published ticket with a fully-written span or discards the slot.
  slot.seq.store(0, std::memory_order_release);
  slot.trace_id.store(trace_id, std::memory_order_relaxed);
  slot.start_us.store(start_us, std::memory_order_relaxed);
  slot.dur_us.store(dur_us, std::memory_order_relaxed);
  slot.arg.store(arg, std::memory_order_relaxed);
  slot.kind.store(static_cast<std::uint16_t>(kind),
                  std::memory_order_relaxed);
  slot.seq.store(ticket + 1, std::memory_order_release);
}

std::vector<Span> TraceSink::snapshot() const {
  std::vector<Span> spans;
  for (std::size_t si = 0; si < shards_.size(); ++si) {
    const Shard& shard = shards_[si];
    for (std::size_t i = 0; i < slots_per_shard_; ++i) {
      const Slot& slot = shard.slots[i];
      const std::uint64_t seq1 = slot.seq.load(std::memory_order_acquire);
      if (seq1 == 0) continue;
      Span span;
      span.trace_id = slot.trace_id.load(std::memory_order_relaxed);
      span.start_us = slot.start_us.load(std::memory_order_relaxed);
      span.dur_us = slot.dur_us.load(std::memory_order_relaxed);
      span.arg = slot.arg.load(std::memory_order_relaxed);
      span.kind =
          static_cast<SpanKind>(slot.kind.load(std::memory_order_relaxed));
      span.shard = static_cast<std::uint16_t>(si);
      const std::uint64_t seq2 = slot.seq.load(std::memory_order_acquire);
      if (seq1 != seq2) continue;  // torn by a concurrent writer: discard
      if (static_cast<int>(span.kind) >= kNumSpanKinds) continue;
      spans.push_back(span);
    }
  }
  std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
    if (a.trace_id != b.trace_id) return a.trace_id < b.trace_id;
    if (a.start_us != b.start_us) return a.start_us < b.start_us;
    return a.dur_us > b.dur_us;  // enclosing spans first (Chrome nesting)
  });
  return spans;
}

std::uint64_t TraceSink::recorded() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.next.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t TraceSink::dropped() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    const std::uint64_t n = shard.next.load(std::memory_order_relaxed);
    if (n > slots_per_shard_) total += n - slots_per_shard_;
  }
  return total;
}

void TraceSink::write_chrome_trace(std::ostream& out) const {
  const std::vector<Span> spans = snapshot();
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out << ",";
    first = false;
  };
  for (const Span& span : spans) {
    sep();
    if (span.kind == SpanKind::kSearchNodes) {
      // Counter track: the search's node count over time, one track per
      // query so concurrent searches do not sum.
      out << "{\"name\":\"search_nodes/q" << span.trace_id
          << "\",\"ph\":\"C\",\"pid\":1,\"tid\":" << span.trace_id
          << ",\"ts\":" << span.start_us << ",\"args\":{\"nodes\":"
          << span.arg << "}}";
      continue;
    }
    const bool instant = span.dur_us == 0 &&
                         (span.kind == SpanKind::kMemoHit ||
                          span.kind == SpanKind::kCacheHit ||
                          span.kind == SpanKind::kWatchdogKill ||
                          span.kind == SpanKind::kWatchdogStall);
    if (instant) {
      out << "{\"name\":\"" << to_cstring(span.kind)
          << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":"
          << span.trace_id << ",\"ts\":" << span.start_us
          << ",\"args\":{\"arg\":" << span.arg << "}}";
    } else {
      out << "{\"name\":\"" << to_cstring(span.kind)
          << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << span.trace_id
          << ",\"ts\":" << span.start_us << ",\"dur\":" << span.dur_us
          << ",\"args\":{\"arg\":" << span.arg << ",\"shard\":" << span.shard
          << "}}";
    }
  }
  // Name the rows after their queries so the timeline reads "query 7".
  std::uint64_t last_tid = ~std::uint64_t{0};
  for (const Span& span : spans) {
    if (span.trace_id == last_tid) continue;
    last_tid = span.trace_id;
    sep();
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
        << span.trace_id << ",\"args\":{\"name\":\"query "
        << span.trace_id << "\"}}";
  }
  out << "]}";
}

void TraceContext::instant(SpanKind kind, std::uint64_t arg) const {
  if (sink_ == nullptr) return;
  sink_->record(trace_id_, kind, sink_->now_us(), 0, arg);
}

void TraceContext::complete(SpanKind kind,
                            std::chrono::steady_clock::time_point start,
                            std::chrono::steady_clock::time_point end,
                            std::uint64_t arg) const {
  if (sink_ == nullptr) return;
  const std::uint64_t s = sink_->to_epoch_us(start);
  const std::uint64_t e = sink_->to_epoch_us(end);
  sink_->record(trace_id_, kind, s, e > s ? e - s : 0, arg);
}

void TraceContext::checkpoint(SpanKind kind, std::uint64_t value) const {
  if (sink_ == nullptr) return;
  sink_->record(trace_id_, kind, sink_->now_us(), 0, value);
}

}  // namespace wfc::obs
