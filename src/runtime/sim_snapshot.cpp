#include "runtime/sim_snapshot.hpp"

namespace wfc::rt {

std::vector<Color> fair_schedule(int n_procs, int appearances) {
  WFC_REQUIRE(n_procs >= 1, "fair_schedule: bad n_procs");
  WFC_REQUIRE(appearances >= 0, "fair_schedule: negative appearances");
  std::vector<Color> out;
  out.reserve(static_cast<std::size_t>(n_procs) *
              static_cast<std::size_t>(appearances));
  for (int round = 0; round < appearances; ++round) {
    for (Color p = 0; p < n_procs; ++p) out.push_back(p);
  }
  return out;
}

void for_each_interleaving(
    int n_procs, int ops_per_proc,
    const std::function<void(const std::vector<Color>&)>& fn) {
  WFC_REQUIRE(n_procs >= 1 && n_procs <= 8, "for_each_interleaving: n_procs");
  WFC_REQUIRE(ops_per_proc >= 0 && n_procs * ops_per_proc <= 24,
              "for_each_interleaving: instance too large to enumerate");
  std::vector<int> remaining(static_cast<std::size_t>(n_procs), ops_per_proc);
  std::vector<Color> seq;
  auto rec = [&](auto&& self) -> void {
    bool any = false;
    for (Color p = 0; p < n_procs; ++p) {
      if (remaining[static_cast<std::size_t>(p)] > 0) {
        any = true;
        --remaining[static_cast<std::size_t>(p)];
        seq.push_back(p);
        self(self);
        seq.pop_back();
        ++remaining[static_cast<std::size_t>(p)];
      }
    }
    if (!any) fn(seq);
  };
  rec(rec);
}

}  // namespace wfc::rt
