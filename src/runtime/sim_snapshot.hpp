// Simulated SWMR atomic snapshot memory model (paper §3.1) with explicit
// operation schedules, plus exhaustive enumeration of interleavings.
//
// An execution of the full-information protocol is a sequence of processor
// ids; a processor's 1st, 3rd, 5th ... appearances are writes of its cell,
// its 2nd, 4th, ... appearances are atomic snapshots of all cells (Figure 1).
// Because writes and snapshots are atomic, simulation is sequential replay.
//
// Protocol shape:
//   init(p)              -> first value P_p writes
//   on_scan(p, k, view)  -> after P_p's k-th snapshot (k >= 1):
//                           Continue{next value to write} or Halt.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "common/color_set.hpp"
#include "runtime/sim_iis.hpp"

namespace wfc::rt {

template <typename Value>
using MemoryView = std::vector<std::optional<Value>>;

struct SnapshotRunStats {
  std::vector<int> ops_taken;   // appearances per processor
  std::vector<Color> schedule;  // the id sequence actually consumed
};

/// Replays `schedule` (a sequence of processor ids).  Appearances of halted
/// processors are skipped.  Throws std::logic_error if a processor is still
/// active when the schedule ends -- callers must supply enough appearances
/// (use `fair_schedule` or enumeration helpers below).
template <typename Value>
SnapshotRunStats run_snapshot_model(
    int n_procs, const std::vector<Color>& schedule,
    const std::function<Value(int)>& init,
    const std::function<Step<Value>(int, int, const MemoryView<Value>&)>&
        on_scan) {
  WFC_REQUIRE(n_procs >= 1 && n_procs <= kMaxColors,
              "run_snapshot_model: bad n_procs");

  MemoryView<Value> cells(static_cast<std::size_t>(n_procs));
  std::vector<Value> pending(static_cast<std::size_t>(n_procs));
  std::vector<int> appearances(static_cast<std::size_t>(n_procs), 0);
  std::vector<int> scans_done(static_cast<std::size_t>(n_procs), 0);
  std::vector<bool> halted(static_cast<std::size_t>(n_procs), false);
  ColorSet active = ColorSet::full(n_procs);
  for (Color p : active) pending[static_cast<std::size_t>(p)] = init(p);

  SnapshotRunStats stats;
  stats.ops_taken.assign(static_cast<std::size_t>(n_procs), 0);

  for (Color p : schedule) {
    WFC_REQUIRE(p >= 0 && p < n_procs, "run_snapshot_model: bad id in schedule");
    const auto up = static_cast<std::size_t>(p);
    if (halted[up]) continue;
    stats.schedule.push_back(p);
    ++appearances[up];
    ++stats.ops_taken[up];
    if (appearances[up] % 2 == 1) {
      cells[up] = pending[up];  // write
    } else {
      ++scans_done[up];  // atomic snapshot
      Step<Value> step = on_scan(p, scans_done[up], cells);
      if (step.kind == Step<Value>::Kind::kHalt) {
        halted[up] = true;
        active = active.without(p);
      } else {
        pending[up] = std::move(step.next);
      }
    }
  }
  WFC_CHECK(active.empty(),
            "run_snapshot_model: schedule exhausted with active processors");
  return stats;
}

/// A round-robin schedule giving each processor `appearances` turns --
/// enough for any protocol halting within appearances/2 scans.
std::vector<Color> fair_schedule(int n_procs, int appearances);

/// Enumerates every interleaving of exactly `ops_per_proc` appearances per
/// processor (C(total; ops, ops, ...) sequences) and invokes
/// fn(const std::vector<Color>&).  Keep n_procs * ops_per_proc small.
void for_each_interleaving(int n_procs, int ops_per_proc,
                           const std::function<void(const std::vector<Color>&)>& fn);

}  // namespace wfc::rt
