// The (non-iterated) immediate snapshot model of §3.4: the restriction of
// the atomic-snapshot model to executions where each maximal run of writes
// is followed by a maximal run of snapshots by the same processors.  An
// execution is a sequence of CONCURRENCY CLASSES (sets of processors); the
// members of a class write together and then all snapshot the same memory
// state, so the class condenses to a single WriteRead.
//
// This sits between the two models the paper connects:
//   * restricting every processor to ONE WriteRead gives the one-shot
//     object (and its protocol complex, SDS -- Lemma 3.2);
//   * chaining fresh memories per step gives the iterated model of §3.5.
// [8] showed the atomic snapshot model simulates this one; tests here check
// the structural signature: same-class views are EQUAL, across classes
// views are ordered by containment.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "common/color_set.hpp"
#include "common/rng.hpp"
#include "runtime/sim_iis.hpp"
#include "runtime/sim_snapshot.hpp"

namespace wfc::rt {

/// A schedule for the IS model: one ColorSet per concurrency class, in
/// order.  Processors may appear in any number of classes (multi-shot).
using BlockSchedule = std::vector<ColorSet>;

struct IsRunStats {
  std::vector<int> steps_taken;  // WriteReads per processor
};

/// Replays `schedule`.  on_step(p, k, view) runs after P_p's k-th WriteRead
/// (k >= 1) with the memory view (cells unwritten so far are nullopt);
/// Continue supplies the value of P_p's next write, Halt retires it (later
/// appearances are skipped).  Throws std::logic_error if the schedule ends
/// with someone still active.
template <typename Value>
IsRunStats run_is_model(
    int n_procs, const BlockSchedule& schedule,
    const std::function<Value(int)>& init,
    const std::function<Step<Value>(int, int, const MemoryView<Value>&)>&
        on_step) {
  WFC_REQUIRE(n_procs >= 1 && n_procs <= kMaxColors, "run_is_model: n_procs");
  MemoryView<Value> cells(static_cast<std::size_t>(n_procs));
  std::vector<Value> pending(static_cast<std::size_t>(n_procs));
  std::vector<int> steps(static_cast<std::size_t>(n_procs), 0);
  ColorSet active = ColorSet::full(n_procs);
  for (Color p : active) pending[static_cast<std::size_t>(p)] = init(p);

  IsRunStats stats;
  stats.steps_taken.assign(static_cast<std::size_t>(n_procs), 0);
  for (ColorSet block : schedule) {
    ColorSet live = block.intersect(active);
    if (live.empty()) continue;
    // Maximal run of writes...
    for (Color p : live) {
      cells[static_cast<std::size_t>(p)] = pending[static_cast<std::size_t>(p)];
    }
    // ...followed by a maximal run of snapshots by the same processors.
    const MemoryView<Value> view = cells;
    for (Color p : live) {
      const auto up = static_cast<std::size_t>(p);
      ++steps[up];
      ++stats.steps_taken[up];
      Step<Value> step = on_step(p, steps[up], view);
      if (step.kind == Step<Value>::Kind::kHalt) {
        active = active.without(p);
      } else {
        pending[up] = std::move(step.next);
      }
    }
  }
  WFC_CHECK(active.empty(), "run_is_model: schedule ended with active procs");
  return stats;
}

/// A fair block schedule: `rounds` repetitions of an ordered partition per
/// round drawn from `rng` (each round every processor appears exactly once,
/// like an IIS round but on the shared memory).
BlockSchedule random_block_schedule(int n_procs, int rounds, Rng& rng);

}  // namespace wfc::rt
