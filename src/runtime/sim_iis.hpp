// Deterministic simulated executor for the iterated immediate snapshot
// model, plus exhaustive enumeration of all IIS executions of bounded depth.
//
// The executor realizes the §3.5 full-information semantics directly: in
// round r the adversary picks an ordered partition (B_1, ..., B_m) of the
// active processors; every P_i in B_j submits its value and receives the
// snapshot S_i = all (id, value) pairs from B_1 u ... u B_j -- exactly the
// one-shot immediate snapshot outputs realized by that partition.
//
// Protocols are expressed as two callables:
//   init(proc)                  -> Value submitted to M_0
//   on_view(proc, round, snap)  -> Step: Continue{next value} or Halt
// A processor that Halts stops appearing in later rounds (its decision, if
// any, is the protocol's business -- typically recorded in the closure).
#pragma once

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "runtime/adversary.hpp"
#include "topology/ordered_partition.hpp"

namespace wfc::rt {

/// The (id, value) pairs a processor receives from one WriteRead, id-sorted.
template <typename Value>
using IisSnapshot = std::vector<std::pair<int, Value>>;

template <typename Value>
struct Step {
  enum class Kind { kContinue, kHalt };
  Kind kind = Kind::kHalt;
  Value next{};

  static Step cont(Value v) {
    return Step{Kind::kContinue, std::move(v)};
  }
  static Step halt() { return Step{}; }
};

struct IisRunStats {
  int rounds_executed = 0;            // memories consumed
  std::vector<int> rounds_taken;      // per processor, WriteReads performed
  std::vector<Partition> schedule;    // the partitions actually used
};

/// Runs at most `max_rounds` rounds (memories M_0 .. M_{max_rounds-1}).
/// Stops early when every processor has halted.  Throws std::logic_error if
/// some processor is still active after max_rounds (protocols are bounded;
/// see Lemma 3.1).
template <typename Value>
IisRunStats run_iis(
    int n_procs, Adversary& adversary, int max_rounds,
    const std::function<Value(int)>& init,
    const std::function<Step<Value>(int, int, const IisSnapshot<Value>&)>&
        on_view) {
  WFC_REQUIRE(n_procs >= 1 && n_procs <= kMaxColors, "run_iis: bad n_procs");
  WFC_REQUIRE(max_rounds >= 0, "run_iis: negative max_rounds");

  IisRunStats stats;
  stats.rounds_taken.assign(static_cast<std::size_t>(n_procs), 0);
  std::vector<Value> value(static_cast<std::size_t>(n_procs));
  ColorSet active = ColorSet::full(n_procs);
  for (Color p : active) value[static_cast<std::size_t>(p)] = init(p);

  for (int round = 0; round < max_rounds && !active.empty(); ++round) {
    Partition part = adversary.partition(round, active);
    validate_partition(part, active);
    stats.schedule.push_back(part);
    ++stats.rounds_executed;

    // One-shot immediate snapshot semantics: prefix views.
    IisSnapshot<Value> written;
    ColorSet halted;
    for (ColorSet block : part) {
      for (Color p : block) {
        written.emplace_back(p, value[static_cast<std::size_t>(p)]);
      }
      std::sort(written.begin(), written.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      for (Color p : block) {
        ++stats.rounds_taken[static_cast<std::size_t>(p)];
        Step<Value> step = on_view(p, round, written);
        if (step.kind == Step<Value>::Kind::kContinue) {
          value[static_cast<std::size_t>(p)] = std::move(step.next);
        } else {
          halted = halted.with(p);
        }
      }
    }
    active = active.minus(halted);
  }
  WFC_CHECK(active.empty(),
            "run_iis: processors still running after max_rounds");
  return stats;
}

/// Enumerates ALL IIS executions of depth <= max_rounds for a deterministic
/// protocol, invoking `at_end(stats)` for each complete execution (all
/// processors halted or max_rounds reached).  Cost is
/// prod_r Fubini(|active_r|); keep n_procs <= 3-4 and max_rounds small.
template <typename Value>
void for_each_iis_execution(
    int n_procs, int max_rounds, const std::function<Value(int)>& init,
    const std::function<Step<Value>(int, int, const IisSnapshot<Value>&)>&
        on_view,
    const std::function<void(const std::vector<Partition>&)>& at_end) {
  WFC_REQUIRE(n_procs >= 1 && n_procs <= kMaxColors,
              "for_each_iis_execution: bad n_procs");

  struct Frame {
    std::vector<Value> value;
    ColorSet active;
  };

  std::vector<Partition> schedule;

  // Recursive DFS over ordered partitions of the active set per round.
  auto rec = [&](auto&& self, const Frame& frame, int round) -> void {
    if (frame.active.empty() || round == max_rounds) {
      at_end(schedule);
      return;
    }
    std::vector<Color> procs(frame.active.begin(), frame.active.end());
    topo::for_each_ordered_partition(
        static_cast<int>(procs.size()),
        [&](const topo::OrderedPartition& op) {
          Partition part;
          part.reserve(op.size());
          for (const std::vector<int>& block : op) {
            ColorSet b;
            for (int pos : block) b = b.with(procs[static_cast<std::size_t>(pos)]);
            part.push_back(b);
          }
          // Apply this round.
          Frame next = frame;
          IisSnapshot<Value> written;
          for (ColorSet block : part) {
            for (Color p : block) {
              written.emplace_back(p, next.value[static_cast<std::size_t>(p)]);
            }
            std::sort(written.begin(), written.end(),
                      [](const auto& a, const auto& b) {
                        return a.first < b.first;
                      });
            for (Color p : block) {
              Step<Value> step = on_view(p, round, written);
              if (step.kind == Step<Value>::Kind::kContinue) {
                next.value[static_cast<std::size_t>(p)] = std::move(step.next);
              } else {
                next.active = next.active.without(p);
              }
            }
          }
          schedule.push_back(std::move(part));
          self(self, next, round + 1);
          schedule.pop_back();
        });
  };

  Frame root;
  root.value.resize(static_cast<std::size_t>(n_procs));
  root.active = ColorSet::full(n_procs);
  for (Color p : root.active) root.value[static_cast<std::size_t>(p)] = init(p);
  rec(rec, root, 0);
}

}  // namespace wfc::rt
