// Scheduling adversaries for the iterated immediate snapshot model.
//
// A full-information IIS execution is an infinite sequence of ordered
// partitions of the processor set (paper §3.5).  An Adversary produces, for
// each memory M_r, the ordered partition of the processors still active in
// that round.  Processors in earlier blocks see less; processors in the same
// block see each other (they "WriteRead together").
//
// The asynchronous adversary of the real shared-memory model is simulated:
// we cannot summon a malicious OS scheduler on demand, so we provide
// enumeration (all schedules, small instances), randomized schedules, and
// the canonical deterministic extremes -- which together exercise every code
// path the paper's arguments depend on.  Real-thread executions (see
// thread_iis.hpp) complement these with genuine preemption.
#pragma once

#include <algorithm>
#include <memory>
#include <vector>

#include "common/color_set.hpp"
#include "common/rng.hpp"

namespace wfc::rt {

/// An ordered partition of a set of processors, earliest block first.
using Partition = std::vector<ColorSet>;

class Adversary {
 public:
  virtual ~Adversary() = default;

  /// Produces the ordered partition of `active` used by memory M_round.
  /// Must return non-empty disjoint blocks whose union is `active`.
  virtual Partition partition(int round, ColorSet active) = 0;
};

/// All active processors in one block: the fully synchronous schedule.
/// Every processor sees everyone -- the "largest views" corner of SDS.
class SynchronousAdversary final : public Adversary {
 public:
  Partition partition(int /*round*/, ColorSet active) override {
    return {active};
  }
};

/// Each processor alone in its own block, in increasing id order: the fully
/// sequential schedule -- the "smallest views" corner of SDS.
class SequentialAdversary final : public Adversary {
 public:
  Partition partition(int /*round*/, ColorSet active) override {
    Partition p;
    for (Color c : active) p.push_back(ColorSet::single(c));
    return p;
  }
};

/// Sequential, but the order rotates by one position each round; stresses
/// asymmetric progress (every processor is periodically "slowest").
class RotatingAdversary final : public Adversary {
 public:
  Partition partition(int round, ColorSet active) override {
    std::vector<Color> order(active.begin(), active.end());
    if (order.empty()) return {};
    const std::size_t shift =
        static_cast<std::size_t>(round) % order.size();
    std::rotate(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(shift),
                order.end());
    Partition p;
    for (Color c : order) p.push_back(ColorSet::single(c));
    return p;
  }
};

/// Delays one chosen victim maximally: every round the victim sits alone in
/// the LAST block (sees everyone, is seen by no one mid-round), the rest run
/// synchronously ahead of it.  The harshest schedule for the victim's
/// progress in the Figure 2 emulation.
class LateAdversary final : public Adversary {
 public:
  explicit LateAdversary(Color victim) : victim_(victim) {}

  Partition partition(int /*round*/, ColorSet active) override {
    if (!active.contains(victim_) || active.size() == 1) return {active};
    return {active.without(victim_), ColorSet::single(victim_)};
  }

 private:
  Color victim_;
};

/// Uniformly random ordered partition each round.
class RandomAdversary final : public Adversary {
 public:
  explicit RandomAdversary(std::uint64_t seed) : rng_(seed) {}

  Partition partition(int /*round*/, ColorSet active) override {
    std::vector<Color> order(active.begin(), active.end());
    rng_.shuffle(order);
    Partition p;
    std::size_t i = 0;
    while (i < order.size()) {
      // Random block size among the remaining processors.
      const std::size_t len =
          1 + static_cast<std::size_t>(rng_.below(order.size() - i));
      ColorSet block;
      for (std::size_t k = 0; k < len; ++k) block = block.with(order[i + k]);
      p.push_back(block);
      i += len;
    }
    return p;
  }

 private:
  Rng rng_;
};

/// Replays an explicit list of partitions; used by the exhaustive
/// enumerator and by regression tests for specific executions.  If a listed
/// partition mentions processors no longer active they are dropped; rounds
/// beyond the list fall back to synchronous.
class FixedAdversary final : public Adversary {
 public:
  explicit FixedAdversary(std::vector<Partition> rounds)
      : rounds_(std::move(rounds)) {}

  Partition partition(int round, ColorSet active) override {
    if (static_cast<std::size_t>(round) >= rounds_.size()) return {active};
    Partition out;
    for (ColorSet block : rounds_[static_cast<std::size_t>(round)]) {
      ColorSet trimmed = block.intersect(active);
      if (!trimmed.empty()) out.push_back(trimmed);
    }
    // Anyone the fixed schedule forgot goes in a final block.
    ColorSet mentioned;
    for (ColorSet b : out) mentioned = mentioned.unite(b);
    ColorSet rest = active.minus(mentioned);
    if (!rest.empty()) out.push_back(rest);
    return out;
  }

 private:
  std::vector<Partition> rounds_;
};

/// Validates the adversary contract; throws std::logic_error on violation.
/// Executors call this on every partition they consume.
void validate_partition(const Partition& p, ColorSet active);

}  // namespace wfc::rt
