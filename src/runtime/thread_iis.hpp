// Real-thread executor for the iterated immediate snapshot model.
//
// Runs the same (init, on_view) protocol shape as sim_iis.hpp, but each
// processor is a std::thread and every WriteRead goes through a genuine
// register-based one-shot immediate snapshot (registers/immediate_snapshot.hpp).
// The schedule is whatever the OS provides; properties proven for all
// schedules must hold here too, which is exactly what the integration tests
// assert.
#pragma once

#include <functional>
#include <thread>
#include <vector>

#include "common/assert.hpp"
#include "registers/immediate_snapshot.hpp"
#include "runtime/sim_iis.hpp"

namespace wfc::rt {

/// Runs every processor to halt or max_rounds on its own thread.  on_view
/// must be safe to call concurrently for distinct `proc` arguments.
/// Returns per-processor WriteRead counts.
template <typename Value>
std::vector<int> run_iis_threads(
    int n_procs, int max_rounds, const std::function<Value(int)>& init,
    const std::function<Step<Value>(int, int, const IisSnapshot<Value>&)>&
        on_view) {
  WFC_REQUIRE(n_procs >= 1 && n_procs <= kMaxColors,
              "run_iis_threads: bad n_procs");
  WFC_REQUIRE(max_rounds >= 1, "run_iis_threads: need at least one round");

  reg::IteratedMemory<Value> memories(n_procs,
                                      static_cast<std::size_t>(max_rounds));
  std::vector<int> rounds_taken(static_cast<std::size_t>(n_procs), 0);
  // char, not bool: vector<bool> packs bits, so distinct threads writing
  // distinct indices would race on the shared word.
  std::vector<char> halted(static_cast<std::size_t>(n_procs), 0);

  auto body = [&](int p) {
    Value value = init(p);
    for (int round = 0; round < max_rounds; ++round) {
      auto out = memories.write_read(static_cast<std::size_t>(round), p,
                                     std::move(value));
      ++rounds_taken[static_cast<std::size_t>(p)];
      Step<Value> step = on_view(p, round, out);
      if (step.kind == Step<Value>::Kind::kHalt) {
        halted[static_cast<std::size_t>(p)] = 1;
        return;
      }
      value = std::move(step.next);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n_procs));
  for (int p = 0; p < n_procs; ++p) threads.emplace_back(body, p);
  for (auto& t : threads) t.join();

  for (int p = 0; p < n_procs; ++p) {
    WFC_CHECK(halted[static_cast<std::size_t>(p)],
              "run_iis_threads: processor ran out of rounds before halting");
  }
  return rounds_taken;
}

}  // namespace wfc::rt
