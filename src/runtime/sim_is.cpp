#include "runtime/sim_is.hpp"

#include "runtime/adversary.hpp"

namespace wfc::rt {

BlockSchedule random_block_schedule(int n_procs, int rounds, Rng& rng) {
  WFC_REQUIRE(n_procs >= 1 && n_procs <= kMaxColors,
              "random_block_schedule: n_procs");
  WFC_REQUIRE(rounds >= 0, "random_block_schedule: rounds");
  RandomAdversary adversary(rng.next());
  BlockSchedule out;
  for (int r = 0; r < rounds; ++r) {
    for (ColorSet block : adversary.partition(r, ColorSet::full(n_procs))) {
      out.push_back(block);
    }
  }
  return out;
}

}  // namespace wfc::rt
