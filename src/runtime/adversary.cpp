#include "runtime/adversary.hpp"

#include "common/assert.hpp"

namespace wfc::rt {

void validate_partition(const Partition& p, ColorSet active) {
  ColorSet seen;
  for (ColorSet block : p) {
    WFC_CHECK(!block.empty(), "adversary produced an empty block");
    WFC_CHECK(block.intersect(seen).empty(),
              "adversary produced overlapping blocks");
    WFC_CHECK(block.subset_of(active),
              "adversary scheduled an inactive processor");
    seen = seen.unite(block);
  }
  WFC_CHECK(seen == active, "adversary did not schedule every active processor");
}

}  // namespace wfc::rt
