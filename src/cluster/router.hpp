// wfc::cluster::Router -- the consistent-hash routing tier.
//
// The router is a net::LineBackend: plugged into the epoll front door
// (net/server.hpp) it accepts the same JSONL v2 lines a single wfc_serve
// does, but instead of executing queries locally it consistent-hashes each
// query's canonical task fingerprint onto a ring of backend shards and
// proxies the line over pooled net::Client connections.  Clients cannot
// tell the difference: same envelopes, same "id" echo, same out-of-order
// pipelined completion -- a cluster behind one address.
//
// Id splice.  Every forwarded request is re-stamped with a router-unique
// id ("r<seq>"); the client's own id (or its absence) is remembered in the
// pending table and spliced back into the response before it goes out.
// The splice is what makes EXACTLY-ONCE delivery enforceable at the
// router: duplicate upstream responses (hedges, retried shards) resolve
// the same pending entry, and only the first wins.
//
// Fingerprint routing.  The routing key hashes exactly the fields that
// identify the canonical task (everything except id/op/max_level/budget/
// timeout_ms -- the same identity svc::RequestHandler interns tasks by),
// so repeats of a task land on the shard whose SDS-chain cache and result
// memo are already warm.  bench_cluster quantifies the win over random
// routing.
//
// Resilience:
//   * hedged requests -- when a query carries timeout_ms and no response
//     has arrived by hedge_fraction of it, a copy is sent to the ring
//     successor under the SAME router id; first response wins, the loser
//     finds the pending entry gone and is dropped (counted, not forwarded);
//   * per-shard breaker -- a shard with zero live connections is Down and
//     leaves the ring's candidate set until a background reconnect (the
//     probe) succeeds; an upstream overloaded/resource_exhausted envelope
//     with retry_after_ms puts the shard into a soft backoff window that
//     routes AROUND it while it sheds, unless every candidate is backing
//     off (then the primary is used anyway: degraded beats down);
//   * re-dispatch -- when a connection dies, unresolved requests whose only
//     outstanding send was on that connection are re-routed to the current
//     ring target (bounded by max_attempts).  A shard that already
//     executed such a request before dying cost a duplicate EXECUTION, but
//     the pending latch still guarantees a single RESPONSE;
//   * drain -- a draining shard stops receiving new keys (its arcs fall to
//     the successors) while its inflight requests finish normally; remove
//     then detaches it entirely, re-dispatching whatever was left.
//
// Control plane (same gating as every control op: the front server answers
// them only once the connection's own inflight count is zero):
//   {"op":"cluster_stats"}              flat-JSON counters, per-shard state
//   {"op":"cluster_add","shard":S,"host":H,"port":P}
//   {"op":"cluster_remove","shard":S}   hard detach + re-dispatch
//   {"op":"cluster_drain","shard":S}    stop routing new keys to S
//   {"op":"info"}                       router identity/uptime/membership
//   {"op":"stats"}                      one-line human summary
//   {"op":"metrics"}                    flat-JSON reconciliation line
//   {"op":"trace"}                      rejected (no trace ring here)
// Everything else ("solve", "check", unknown ops, legacy bare task lines)
// is forwarded verbatim -- shards own the protocol's semantics; the router
// stays thin.  cluster_add/remove/drain mutate membership and are meant
// for a trusted network; RouterConfig::admin_ops turns them off.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/ring.hpp"
#include "net/backend.hpp"
#include "net/client.hpp"
#include "net/socket.hpp"
#include "obs/obs.hpp"

namespace wfc::cluster {

struct ShardSpec {
  std::string id;
  net::Endpoint addr;
};

struct RouterConfig {
  /// Initial membership; cluster_add/remove change it at runtime.
  std::vector<ShardSpec> shards;
  /// Ring points per shard (ring.hpp).
  int vnodes = 64;
  /// Pooled connections per shard; each owns a reader thread.
  int conns_per_shard = 2;
  /// Request-line bound mirrored to the front server (LineBackend API).
  std::size_t max_line_bytes = 1u << 20;
  /// Router-wide unresolved-request cap; past it new queries answer
  /// overloaded + retry_after_ms instead of growing the pending table.
  std::size_t max_pending = 64 * 1024;
  /// Upstream connect bound (also the breaker probe bound).
  std::chrono::milliseconds connect_timeout{1'000};
  /// Upstream send bound: a shard that stops draining its socket fails the
  /// send instead of wedging a front io thread.
  std::chrono::milliseconds send_timeout{2'000};
  /// Reconnect backoff for down shards, doubling between these bounds.
  std::chrono::milliseconds reconnect_min{50};
  std::chrono::milliseconds reconnect_max{2'000};
  /// Hedge a query carrying timeout_ms once this fraction of it has passed
  /// with no response (never earlier than hedge_min).  <= 0 disables
  /// deadline-driven hedging.
  double hedge_fraction = 0.5;
  std::chrono::milliseconds hedge_min{20};
  /// Hedge delay for queries WITHOUT timeout_ms; 0 = such queries never
  /// hedge (they have no deadline at risk).
  std::chrono::milliseconds hedge_after{0};
  /// Absolute answer-by bound for queries without timeout_ms; with one the
  /// bound is timeout_ms + grace (the shard enforces the deadline itself;
  /// the router's bound only catches a shard that went silent).  Generous
  /// on purpose: legitimate deep-subdivision queries run for tens of
  /// seconds, and a dead shard is caught much earlier by the connection
  /// teardown re-dispatch, not by this clock.
  std::chrono::milliseconds pending_timeout{120'000};
  std::chrono::milliseconds pending_grace{2'000};
  /// Maintenance cadence (hedging, timeouts, gauge refresh).
  std::chrono::milliseconds tick{10};
  /// Total sends per request (first dispatch + re-dispatches; hedges not
  /// counted) before it resolves overloaded.
  int max_attempts = 3;
  /// Base retry_after_ms hint stamped on router-side rejections.  The
  /// stamped value is jittered uniformly in [base/2, base*3/2] so a burst
  /// of synchronized rejections fans back in spread out instead of
  /// re-herding on the same tick.
  int retry_after_ms = 100;
  /// Active health probing: every probe_interval a dedicated thread opens
  /// a fresh connection to each shard and roundtrips {"op":"info"} under
  /// probe_timeout.  probe_suspect_after consecutive failures mark the
  /// shard Suspect (routed around while healthy alternatives exist);
  /// probe_down_after mark it Down -- evicted from the candidate set and
  /// its unresolved sends re-dispatched immediately, instead of waiting
  /// out pending_timeout.  One probe success restores Up.  This is what
  /// catches the failures a dead socket never reports: blackholed,
  /// wedged, or half-open shards whose connections look alive.
  /// 0 disables probing (the library default; wfc_router enables it).
  std::chrono::milliseconds probe_interval{0};
  std::chrono::milliseconds probe_timeout{500};
  int probe_suspect_after = 1;
  int probe_down_after = 3;
  /// Retry budgets: token buckets capping re-dispatches and hedges so a
  /// sick cluster degrades to fast-fail instead of a retry storm.  The
  /// global bucket gates every retry; the per-shard bucket additionally
  /// gates retries charged to one shard (the dead shard for re-dispatches,
  /// the target for hedges).  burst <= 0 disables that bucket.
  double retry_budget_per_sec = 32.0;
  int retry_budget_burst = 64;
  double shard_retry_budget_per_sec = 16.0;
  int shard_retry_budget_burst = 32;
  /// Deadline propagation: rewrite timeout_ms on hedges and re-dispatches
  /// to the REMAINING client budget (original minus time already burned
  /// at this hop) and fast-fail deadline_exceeded instead of forwarding
  /// once it reaches zero -- a shard never executes a query whose client
  /// already gave up.
  bool propagate_deadlines = true;
  /// Ignore fingerprints and spread keys uniformly (the bench's control
  /// arm for the cache-locality experiment).
  bool random_routing = false;
  /// Allow cluster_add/remove/drain over the wire.
  bool admin_ops = true;
  /// Cluster-wide chain-store posture.  The router holds no store itself;
  /// {"op":"store"} fans out to every shard and aggregates.  `store_dir`
  /// and `store_max_bytes` are operator documentation echoed in the
  /// aggregate (the shards own the actual directory); `store_readonly`
  /// makes the ROUTER refuse to forward publish at all, a cluster-level
  /// guard on top of each shard's own transport gating.
  std::string store_dir;
  bool store_readonly = false;
  std::uint64_t store_max_bytes = 0;
  /// Router-local observability (counters/histograms under wfc_router_*).
  obs::ObsConfig obs{};
  /// Echoed by {"op":"info"} as server_id.
  std::string router_id = "router";
  /// Diagnostics sink (membership changes, shard state flips); null
  /// discards.
  std::function<void(const std::string&)> log;
};

/// A small mutex-guarded token bucket: `burst` capacity, `per_sec`
/// steady refill, one token per take.  burst <= 0 disables the bucket
/// (try_take always grants).  Exposed for tests; the router uses it for
/// the retry budgets.
class TokenBucket {
 public:
  TokenBucket() = default;
  void configure(double per_sec, int burst);
  bool try_take();

 private:
  std::mutex mu_;
  double per_sec_ = 0.0;
  double burst_ = 0.0;
  double tokens_ = 0.0;
  std::chrono::steady_clock::time_point last_{};
};

class Router : public net::LineBackend {
 public:
  explicit Router(RouterConfig config);
  ~Router() override;

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Spawns the upstream connection pools and the maintenance thread.
  /// Shards that are down just stay in reconnect backoff -- the router
  /// comes up regardless.
  void start();
  /// Stops maintenance and every upstream connection; unresolved pendings
  /// resolve overloaded so no Done callback is leaked.  Idempotent.
  void stop();

  // -- net::LineBackend -------------------------------------------------
  Outcome on_line(std::string_view line, int line_no, Done done) override;
  std::string control(std::string_view line, int line_no) override;
  [[nodiscard]] std::size_t max_line_bytes() const override {
    return config_.max_line_bytes;
  }
  [[nodiscard]] obs::Observer* observer() override { return &observer_; }

  // -- membership (the wire ops call these; tests drive them directly) --
  /// False (no change) when the id already exists.
  bool add_shard(const ShardSpec& spec);
  /// Hard detach: closes the pool, re-dispatches unresolved sends.  False
  /// when the id is unknown.
  bool remove_shard(const std::string& id);
  /// Stops routing NEW keys to the shard; inflight finishes.  False when
  /// the id is unknown.
  bool drain_shard(const std::string& id);

  /// Router-level counters (monotone unless noted).  Invariant, held at
  /// every instant: requests == responses + timeouts + failed + pending.
  struct Stats {
    std::uint64_t requests = 0;    // pendings registered
    std::uint64_t responses = 0;   // resolved by an upstream response
    std::uint64_t hedges = 0;      // hedge copies sent
    std::uint64_t hedge_wins = 0;  // resolved by a non-primary shard
    std::uint64_t late_drops = 0;  // upstream lines for already-resolved ids
    std::uint64_t redispatches = 0;
    std::uint64_t timeouts = 0;    // resolved deadline_exceeded by the router
    std::uint64_t failed = 0;      // resolved by a router-generated error
    std::uint64_t rejected = 0;    // refused before registration (capacity)
    std::uint64_t pending = 0;     // snapshot, not monotone
    std::uint64_t probe_failures = 0;       // failed active health probes
    std::uint64_t budget_exhausted = 0;     // retries refused by the budget
    std::uint64_t hop_deadline_expired = 0;  // fast-failed: deadline passed
  };
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t shard_count() const;

  /// Live pool connections for `id` (0 = Down / unknown) -- test hook.
  [[nodiscard]] int shard_up_conns(const std::string& id) const;

  /// Probe-driven health of `id` (kDown for unknown ids) -- test hook.
  enum class ShardHealth { kUp, kSuspect, kDown };
  [[nodiscard]] ShardHealth shard_health(const std::string& id) const;

 private:
  struct UpstreamConn;
  struct Shard;
  struct Pending;

  // Submit path.
  Outcome submit(const svc::Fields& fields, std::string_view line,
                 int line_no, Done done);
  /// Sends `wire` for `p` to the ring target (or `exclude`d fallback).
  /// Records the attempt; false when no shard accepted the send.
  bool route_and_send(const std::shared_ptr<Pending>& p,
                      const std::string& wire, const std::string& exclude);
  bool send_on_shard(const std::shared_ptr<Shard>& shard,
                     const std::shared_ptr<Pending>& p,
                     const std::string& wire);
  [[nodiscard]] std::uint64_t make_key(const svc::Fields& fields);

  // Upstream path.
  void conn_reader(std::shared_ptr<Shard> shard, UpstreamConn* conn);
  void on_upstream_line(const std::shared_ptr<Shard>& shard,
                        UpstreamConn* conn, std::uint64_t generation,
                        std::string&& line);
  void on_conn_down(const std::shared_ptr<Shard>& shard, UpstreamConn* conn,
                    std::uint64_t generation);

  // Resolution.  Exactly-once: take_pending atomically removes the entry
  // from the table (the winner gets the Pending, everyone else null) and
  // advances the cause counter under the same lock.
  enum class Cause { kResponse, kTimeout, kFailed };
  std::shared_ptr<Pending> take_pending(std::uint64_t seq, Cause cause);
  void resolve_response(const std::shared_ptr<Pending>& p,
                        std::string&& response, const std::string& shard_id);
  void resolve_error(const std::shared_ptr<Pending>& p, const char* status,
                     const std::string& message, bool retryable);

  // Maintenance.
  void maintenance_thread();
  void hedge_one(const std::shared_ptr<Pending>& p);
  void refresh_gauges();

  // Hardening (probes / budgets / deadlines).
  void probe_thread();
  void probe_shard(const std::shared_ptr<Shard>& shard);
  /// Pulls every pending whose only outstanding sends were on `shard` and
  /// re-dispatches them elsewhere (probe-driven eviction).
  void evict_shard_pendings(const std::shared_ptr<Shard>& shard);
  /// Budget-gated re-dispatch of orphaned pendings; `allow_fallback`
  /// permits falling back to `shard` itself when nothing else accepts.
  void redispatch_orphans(
      const std::vector<std::shared_ptr<Pending>>& orphans,
      const std::shared_ptr<Shard>& shard, bool allow_fallback);
  /// The wire line for `p` with timeout_ms rewritten to the remaining
  /// client budget; nullopt when that budget is already spent.
  [[nodiscard]] std::optional<std::string> wire_now(
      const std::shared_ptr<Pending>& p) const;
  /// Charges one retry against the global and `shard` buckets; on refusal
  /// counts budget_exhausted and returns false.
  bool charge_retry(const std::shared_ptr<Shard>& shard);
  [[nodiscard]] int jittered_retry_after() const;

  // Membership helpers.
  void start_shard(const std::shared_ptr<Shard>& shard);
  void stop_shard(const std::shared_ptr<Shard>& shard);
  [[nodiscard]] Ring::Accept accept_predicate(bool skip_backoff) const;

  // Control-plane renderings.
  std::string render_cluster_stats(const std::string& id);
  std::string render_info(const std::string& id);
  std::string render_metrics(const std::string& id);
  /// {"op":"store"}: per-shard fan-out over fresh connections (the probe
  /// pattern -- pooled sockets must stay dedicated to the data plane),
  /// summing numeric store gauges and reporting per-shard status.
  std::string render_store_op(const svc::Fields& fields,
                              const std::string& id, int line_no);
  std::string render_membership_op(const svc::Fields& fields,
                                   const std::string& op);

  RouterConfig config_;
  obs::Observer observer_;
  std::chrono::steady_clock::time_point started_;

  // Membership: guarded by membership_mu_ (lookups shared, changes
  // exclusive).  Never held while joining reader threads.
  mutable std::shared_mutex membership_mu_;
  std::unordered_map<std::string, std::shared_ptr<Shard>> shards_;
  Ring ring_;

  // Pending table: seq -> entry.  Rule: membership_mu_ / send locks are
  // never acquired while holding pending_mu_.
  mutable std::mutex pending_mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Pending>> pending_;
  std::atomic<std::uint64_t> seq_{0};

  std::atomic<bool> started_flag_{false};
  std::atomic<bool> stopping_{false};
  std::thread maintenance_;
  std::thread prober_;
  std::condition_variable stop_cv_;
  std::mutex stop_mu_;

  // Retry budgets + rejection-hint jitter lane.
  TokenBucket retry_budget_;
  mutable std::atomic<std::uint64_t> retry_jitter_{0};

  // Counters (see Stats).  requests_ and the three cause counters move
  // only under pending_mu_, which is what makes the reconciliation
  // invariant exact.
  std::atomic<std::uint64_t> requests_{0}, responses_{0}, hedges_{0},
      hedge_wins_{0}, late_drops_{0}, redispatches_{0}, timeouts_{0},
      failed_{0}, rejected_{0};
  std::atomic<std::uint64_t> probe_failures_{0}, budget_exhausted_{0},
      hop_deadline_expired_{0};

  // Obs mirrors (always registered; the registry is cheap when disabled).
  obs::Counter* m_requests_;
  obs::Counter* m_responses_;
  obs::Counter* m_hedges_;
  obs::Counter* m_hedge_wins_;
  obs::Counter* m_late_drops_;
  obs::Counter* m_redispatches_;
  obs::Counter* m_timeouts_;
  obs::Counter* m_failed_;
  obs::Counter* m_rejected_;
  obs::Counter* m_probe_failures_;
  obs::Counter* m_budget_exhausted_;
  obs::Counter* m_hop_deadline_;
  obs::Gauge* m_pending_;
  obs::Gauge* m_shards_up_;
  obs::Gauge* m_imbalance_;
  obs::Gauge* m_state_up_;
  obs::Gauge* m_state_suspect_;
  obs::Gauge* m_state_down_;
};

}  // namespace wfc::cluster
