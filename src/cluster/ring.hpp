// wfc::cluster::Ring -- the consistent-hash ring that assigns query
// fingerprints to shards.
//
// Each shard contributes `vnodes` points on a 64-bit circle (hash of
// "<shard>#<i>"); a key is served by the first point clockwise from the
// key's own hash.  Virtual nodes smooth the arc shares (with 64 points per
// shard the max/mean share stays within a few tens of percent), and
// membership changes move only the arcs adjacent to the added or removed
// points -- the property the routing tier exists for: a shard joining or
// leaving invalidates O(1/N) of every other shard's warm cache, not all
// of it.
//
// pick() takes an acceptance predicate so the router can skip draining,
// down, or backing-off shards WITHOUT mutating the ring: the key's home
// position is stable, and excluded shards resume their arcs the moment the
// predicate admits them again.  successor() is pick() with the primary
// excluded -- the hedge target.
//
// The Ring itself is a plain value type with no locking; the router guards
// it with its membership lock and treats lookups as read-only.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace wfc::cluster {

/// FNV-1a 64-bit -- the fingerprint hash for routing keys and ring points.
/// Stable across runs and platforms (no seed), so a corpus maps to the
/// same shards on every router restart.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view s);

class Ring {
 public:
  /// Predicate admitting a shard for a lookup; empty admits everyone.
  using Accept = std::function<bool(const std::string&)>;

  explicit Ring(int vnodes = 64);

  /// Adds a shard's vnodes points.  No-op if already present.
  void add(const std::string& shard);
  /// Removes a shard's points.  No-op if absent.
  void remove(const std::string& shard);

  [[nodiscard]] bool contains(const std::string& shard) const {
    return members_.count(shard) != 0;
  }
  [[nodiscard]] std::size_t size() const { return members_.size(); }
  [[nodiscard]] std::vector<std::string> members() const {
    return {members_.begin(), members_.end()};
  }

  /// The shard owning `key`: first point clockwise whose shard `accept`
  /// admits.  Returns "" when the ring is empty or every shard is
  /// rejected.
  [[nodiscard]] std::string pick(std::uint64_t key,
                                 const Accept& accept = {}) const;

  /// The hedge target for `key`: the first admitted shard clockwise that
  /// is NOT `primary`.  "" when no distinct shard qualifies.
  [[nodiscard]] std::string successor(std::uint64_t key,
                                      const std::string& primary,
                                      const Accept& accept = {}) const;

  /// Load-balance figure of merit: the largest shard arc share over the
  /// mean share, in permille.  1000 = perfectly balanced; 2000 = the
  /// hottest shard owns twice its fair share of the key space.  0 on an
  /// empty ring.
  [[nodiscard]] std::uint64_t imbalance_permille() const;

 private:
  int vnodes_;
  /// point hash -> shard id, the circle itself (wrap via begin()).
  std::map<std::uint64_t, std::string> points_;
  std::set<std::string> members_;
};

}  // namespace wfc::cluster
