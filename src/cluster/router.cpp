#include "cluster/router.hpp"

#include <sys/socket.h>

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>
#include <set>
#include <stdexcept>
#include <utility>

#include "common/version.hpp"
#include "net/loadgen.hpp"
#include "service/jsonl.hpp"
#include "service/status.hpp"

namespace wfc::cluster {

namespace {

using Clock = std::chrono::steady_clock;

/// Mirrors the handler's error_record shape so router-side failures read
/// exactly like shard-side ones.
std::string error_line(const std::string& id, int line_no, const char* status,
                       const std::string& message, int retry_after_ms = 0) {
  svc::JsonWriter w;
  if (!id.empty()) w.field("id", id);
  w.field("status", status).field("line", line_no).field("error", message);
  if (retry_after_ms > 0) w.field("retry_after_ms", retry_after_ms);
  return w.str();
}

/// splitmix64 -- spreads the request sequence uniformly for the random-
/// routing control arm of the locality experiment.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Compound-key segment for per-shard cluster_stats fields: flat JSON has
/// no nesting, so shard ids become key prefixes and must stay [\w] only.
std::string key_safe(const std::string& id) {
  std::string out = id;
  for (char& c : out) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_') {
      c = '_';
    }
  }
  return out;
}

std::int64_t int_or(const svc::Fields& fields, const char* key,
                    std::int64_t fallback) {
  const auto it = fields.find(key);
  if (it == fields.end()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  return (end != nullptr && *end == '\0') ? v : fallback;
}

}  // namespace

// ---------------------------------------------------------------------------
// TokenBucket.

void TokenBucket::configure(double per_sec, int burst) {
  std::lock_guard<std::mutex> lk(mu_);
  per_sec_ = per_sec;
  burst_ = static_cast<double>(burst);
  tokens_ = burst_;
  last_ = std::chrono::steady_clock::now();
}

bool TokenBucket::try_take() {
  std::lock_guard<std::mutex> lk(mu_);
  if (burst_ <= 0) return true;
  const auto now = std::chrono::steady_clock::now();
  const double dt =
      std::chrono::duration_cast<std::chrono::duration<double>>(now - last_)
          .count();
  last_ = now;
  tokens_ = std::min(burst_, tokens_ + per_sec_ * dt);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

// ---------------------------------------------------------------------------
// Internal structures.

struct Router::UpstreamConn {
  int index = 0;
  /// Guards client/generation; sends from front io threads serialize here.
  std::mutex send_mu;
  std::shared_ptr<net::Client> client;  // null while down
  std::uint64_t generation = 0;
  std::thread reader;
  std::atomic<bool> stop{false};
  std::mutex wake_mu;
  std::condition_variable wake_cv;  // interrupts reconnect backoff
};

struct Router::Shard {
  std::string id;
  net::Endpoint addr;
  std::vector<std::unique_ptr<UpstreamConn>> conns;
  std::atomic<int> up_conns{0};
  std::atomic<std::uint32_t> rr{0};
  std::atomic<bool> draining{false};
  /// Soft-backoff window (steady microsecond epoch) set by upstream
  /// overloaded / resource_exhausted envelopes carrying retry_after_ms.
  std::atomic<std::int64_t> backoff_until_us{0};
  std::atomic<std::uint64_t> routed{0};   // dispatches + re-dispatches
  std::atomic<std::uint64_t> hedges{0};   // hedge copies sent here
  std::atomic<std::uint64_t> answered{0};  // responses that won resolution
  std::atomic<std::uint64_t> connect_failures{0};
  /// Probe-driven health: 0 up / 1 suspect / 2 down.  Orthogonal to the
  /// connection breaker -- a blackholed shard keeps its sockets "up" while
  /// the probes walk it down.
  std::atomic<int> health{0};
  std::atomic<int> probe_streak{0};  // consecutive probe failures
  TokenBucket retry_budget;          // per-shard retry charge
  obs::Counter* m_routed = nullptr;
  obs::Counter* m_answered = nullptr;
  obs::Gauge* m_up = nullptr;

  [[nodiscard]] bool in_backoff() const {
    const std::int64_t until = backoff_until_us.load(std::memory_order_relaxed);
    if (until == 0) return false;
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now().time_since_epoch())
               .count() < until;
  }
};

struct Router::Pending {
  std::uint64_t seq = 0;
  std::string rid;        // "r<seq>", the upstream id
  std::string client_id;  // raw (unescaped) client id
  bool had_id = false;
  int line_no = 0;
  std::string op;
  std::string wire;  // rid-stamped request line, reused by hedge/re-dispatch
  /// Deadline propagation: the client's timeout_ms and the wire line with
  /// that field stripped, so wire_now() can re-stamp the REMAINING budget
  /// on hedges and re-dispatches.  timeout_ms == 0: no deadline to carry.
  std::int64_t timeout_ms = 0;
  std::string wire_base;
  std::uint64_t key = 0;
  Done done;
  Clock::time_point submitted{};
  Clock::time_point hedge_at = Clock::time_point::max();
  Clock::time_point deadline = Clock::time_point::max();
  std::atomic<bool> resolved{false};

  struct Send {
    const void* conn = nullptr;  // identity only, never dereferenced
    std::uint64_t generation = 0;
    std::string shard;
  };
  std::mutex mu;  // guards everything below
  std::vector<Send> sends;
  std::string primary_shard;  // latest dispatch target (hedges excluded)
  int attempts = 0;           // dispatches, not hedges
  bool hedged = false;        // one hedge per request
};

// ---------------------------------------------------------------------------
// Construction / lifecycle.

Router::Router(RouterConfig config)
    : config_(std::move(config)),
      observer_(config_.obs),
      started_(Clock::now()),
      ring_(config_.vnodes) {
  obs::MetricsRegistry& reg = observer_.metrics();
  m_requests_ = &reg.counter("wfc_router_requests_total", "",
                             "Queries accepted for routing");
  m_responses_ = &reg.counter("wfc_router_responses_total", "",
                              "Queries resolved by an upstream response");
  m_hedges_ = &reg.counter("wfc_router_hedges_total", "", "Hedge copies sent");
  m_hedge_wins_ = &reg.counter("wfc_router_hedge_wins_total", "",
                               "Queries won by a non-primary shard");
  m_late_drops_ = &reg.counter(
      "wfc_router_late_drops_total", "",
      "Upstream responses for already-resolved or unknown ids");
  m_redispatches_ = &reg.counter("wfc_router_redispatches_total", "",
                                 "Re-routes after a connection death");
  m_timeouts_ = &reg.counter("wfc_router_timeouts_total", "",
                             "Queries the router answered deadline_exceeded");
  m_failed_ = &reg.counter("wfc_router_failed_total", "",
                           "Queries resolved by a router-generated error");
  m_rejected_ = &reg.counter("wfc_router_rejected_total", "",
                             "Queries rejected before routing (capacity)");
  m_probe_failures_ = &reg.counter("wfc_cluster_probe_failures", "",
                                   "Active health probes that failed");
  m_budget_exhausted_ =
      &reg.counter("wfc_cluster_retry_budget_exhausted", "",
                   "Re-dispatches or hedges refused by the retry budget");
  m_hop_deadline_ = &reg.counter(
      "wfc_cluster_hop_deadline_expired", "",
      "Queries fast-failed: client deadline spent before the next hop");
  m_pending_ = &reg.gauge("wfc_router_pending", "", "Unresolved queries");
  m_shards_up_ =
      &reg.gauge("wfc_router_shards_up", "", "Shards with a live connection");
  m_imbalance_ = &reg.gauge("wfc_router_ring_imbalance_permille", "",
                            "Max shard arc share over mean, permille");
  m_state_up_ = &reg.gauge("wfc_cluster_shard_state", "state=\"up\"",
                           "Shards by probe health state");
  m_state_suspect_ = &reg.gauge("wfc_cluster_shard_state", "state=\"suspect\"",
                                "Shards by probe health state");
  m_state_down_ = &reg.gauge("wfc_cluster_shard_state", "state=\"down\"",
                             "Shards by probe health state");
  retry_budget_.configure(config_.retry_budget_per_sec,
                          config_.retry_budget_burst);
}

Router::~Router() { stop(); }

void Router::start() {
  if (started_flag_.exchange(true)) return;
  {
    std::unique_lock<std::shared_mutex> ml(membership_mu_);
    for (const ShardSpec& spec : config_.shards) {
      if (shards_.count(spec.id) != 0) {
        throw std::invalid_argument("duplicate shard id \"" + spec.id + "\"");
      }
      auto shard = std::make_shared<Shard>();
      shard->id = spec.id;
      shard->addr = spec.addr;
      shards_.emplace(spec.id, shard);
      ring_.add(spec.id);
    }
  }
  {
    std::shared_lock<std::shared_mutex> ml(membership_mu_);
    for (auto& [id, shard] : shards_) start_shard(shard);
  }
  maintenance_ = std::thread([this] { maintenance_thread(); });
  if (config_.probe_interval.count() > 0) {
    prober_ = std::thread([this] { probe_thread(); });
  }
}

void Router::stop() {
  if (!started_flag_.load() || stopping_.exchange(true)) return;
  {
    std::lock_guard<std::mutex> sl(stop_mu_);
  }
  stop_cv_.notify_all();
  if (maintenance_.joinable()) maintenance_.join();
  if (prober_.joinable()) prober_.join();

  std::vector<std::shared_ptr<Shard>> doomed;
  {
    std::unique_lock<std::shared_mutex> ml(membership_mu_);
    for (auto& [id, shard] : shards_) doomed.push_back(shard);
    shards_.clear();
    ring_ = Ring(config_.vnodes);
  }
  for (auto& shard : doomed) stop_shard(shard);

  // Whatever the conn-death sweeps could not re-home answers overloaded so
  // every accepted Done fires exactly once even across shutdown.
  std::vector<std::uint64_t> leftover;
  {
    std::lock_guard<std::mutex> pl(pending_mu_);
    leftover.reserve(pending_.size());
    for (const auto& [seq, p] : pending_) leftover.push_back(seq);
  }
  for (const std::uint64_t seq : leftover) {
    if (auto p = take_pending(seq, Cause::kFailed)) {
      resolve_error(p, svc::to_json_token(svc::Status::kOverloaded),
                    "router shutting down", true);
    }
  }
}

// ---------------------------------------------------------------------------
// LineBackend: the submit path.

net::LineBackend::Outcome Router::on_line(std::string_view line, int line_no,
                                          Done done) {
  Outcome out;
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  if (config_.max_line_bytes != 0 && line.size() > config_.max_line_bytes) {
    out.kind = Outcome::Kind::kRespond;
    out.response = error_line(
        "", line_no, svc::to_json_token(svc::Status::kInvalidArgument),
        "request line exceeds " + std::to_string(config_.max_line_bytes) +
            " bytes");
    return out;
  }
  const std::size_t first = line.find_first_not_of(" \t");
  if (first == std::string_view::npos || line[first] == '#') {
    return out;  // kSkip
  }
  svc::Fields fields;
  try {
    fields = svc::parse_flat_json(line);
  } catch (const std::exception& e) {
    out.kind = Outcome::Kind::kRespond;
    out.response = error_line(
        "", line_no, svc::to_json_token(svc::Status::kInvalidArgument),
        e.what());
    return out;
  }
  const auto op_it = fields.find("op");
  const std::string op = op_it == fields.end() ? "solve" : op_it->second;
  if (op == "stats" || op == "metrics" || op == "trace" || op == "info" ||
      op == "store" || op == "cluster_stats" || op == "cluster_add" ||
      op == "cluster_remove" || op == "cluster_drain") {
    out.kind = Outcome::Kind::kControl;
    return out;
  }
  // Everything else -- solves, checks, unknown ops, legacy bare task lines
  // -- is the shards' business; forward and relay their verdict verbatim.
  return submit(fields, line, line_no, std::move(done));
}

net::LineBackend::Outcome Router::submit(const svc::Fields& fields,
                                         std::string_view line, int line_no,
                                         Done done) {
  Outcome out;
  const auto id_it = fields.find("id");
  const std::string client_id = id_it == fields.end() ? "" : id_it->second;
  {
    std::lock_guard<std::mutex> pl(pending_mu_);
    if (pending_.size() >= config_.max_pending) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      m_rejected_->inc();
      out.kind = Outcome::Kind::kRespond;
      out.response = error_line(
          client_id, line_no, svc::to_json_token(svc::Status::kOverloaded),
          "router pending table full", jittered_retry_after());
      return out;
    }
  }

  auto p = std::make_shared<Pending>();
  p->seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  p->rid = "r" + std::to_string(p->seq);
  p->client_id = client_id;
  p->had_id = id_it != fields.end();
  p->line_no = line_no;
  const auto op_it = fields.find("op");
  p->op = op_it == fields.end() ? "solve" : op_it->second;
  p->key = make_key(fields);
  p->done = std::move(done);
  p->submitted = Clock::now();

  const std::int64_t timeout_ms = int_or(fields, "timeout_ms", 0);
  if (timeout_ms > 0) {
    p->deadline = p->submitted + std::chrono::milliseconds(timeout_ms) +
                  config_.pending_grace;
    if (config_.hedge_fraction > 0) {
      auto lead = std::chrono::milliseconds(static_cast<std::int64_t>(
          static_cast<double>(timeout_ms) * config_.hedge_fraction));
      if (lead < config_.hedge_min) lead = config_.hedge_min;
      p->hedge_at = p->submitted + lead;
    }
  } else {
    p->deadline = p->submitted + config_.pending_timeout;
    if (config_.hedge_after.count() > 0) {
      p->hedge_at = p->submitted + config_.hedge_after;
    }
  }
  p->wire = net::with_id(net::strip_id_field(std::string(line)), p->rid);
  if (config_.propagate_deadlines && timeout_ms > 0) {
    p->timeout_ms = timeout_ms;
    p->wire_base = net::strip_field(p->wire, "timeout_ms");
  }

  {
    std::lock_guard<std::mutex> pl(pending_mu_);
    pending_.emplace(p->seq, p);
    // Bumped under the lock so metrics' reconciliation invariant
    // (requests == responses + timeouts + failed + pending) holds at every
    // instant, not just at quiescence.
    requests_.fetch_add(1, std::memory_order_relaxed);
  }
  m_requests_->inc();

  if (!route_and_send(p, p->wire, "")) {
    if (auto taken = take_pending(p->seq, Cause::kFailed)) {
      // Resolve inline: the Done callback is unused and dropped with `out`.
      out.kind = Outcome::Kind::kRespond;
      out.response = error_line(
          client_id, line_no, svc::to_json_token(svc::Status::kOverloaded),
          "no shard available", jittered_retry_after());
      return out;
    }
  }
  out.kind = Outcome::Kind::kSubmitted;
  return out;
}

std::uint64_t Router::make_key(const svc::Fields& fields) {
  if (config_.random_routing) {
    return mix64(seq_.load(std::memory_order_relaxed) + 1);
  }
  // The canonical (task, model) identity: the fields RequestHandler interns
  // tasks by plus the model, so one fingerprint == one warm shard cache of
  // that model's restricted towers.  An explicit wait_free is dropped to
  // hash identically to omitting the field (the handler normalizes the
  // same way).
  std::string key;
  for (const auto& [k, v] : fields) {
    if (k == "id" || k == "op" || k == "max_level" || k == "budget" ||
        k == "timeout_ms") {
      continue;
    }
    if (k == "model" && v == "wait_free") continue;
    key += k;
    key += '=';
    key += v;
    key += ';';
  }
  return fnv1a64(key);
}

Ring::Accept Router::accept_predicate(bool skip_backoff) const {
  // Caller holds membership_mu_ (shared).
  return [this, skip_backoff](const std::string& id) {
    const auto it = shards_.find(id);
    if (it == shards_.end()) return false;
    const Shard& shard = *it->second;
    if (shard.draining.load(std::memory_order_relaxed)) return false;
    if (shard.up_conns.load(std::memory_order_relaxed) <= 0) return false;
    // Probe-driven health: Down shards are out of the candidate set
    // entirely; Suspect ones are skipped like backoff -- routed around
    // while a healthy alternative exists, used under cluster-wide duress.
    const int health = shard.health.load(std::memory_order_relaxed);
    if (health >= 2) return false;
    if (skip_backoff && (health == 1 || shard.in_backoff())) return false;
    return true;
  };
}

bool Router::route_and_send(const std::shared_ptr<Pending>& p,
                            const std::string& wire,
                            const std::string& exclude) {
  std::shared_lock<std::shared_mutex> ml(membership_mu_);
  std::set<std::string> tried;
  if (!exclude.empty()) tried.insert(exclude);
  const Ring::Accept healthy = accept_predicate(true);
  const Ring::Accept any_up = accept_predicate(false);
  while (true) {
    const auto not_tried = [&](const Ring::Accept& base) {
      return [&tried, &base](const std::string& id) {
        return tried.count(id) == 0 && base(id);
      };
    };
    // Prefer shards outside their backoff window; under cluster-wide
    // pressure fall back to the fingerprint's true home (degraded beats
    // down, and locality still pays).
    std::string id = ring_.pick(p->key, not_tried(healthy));
    if (id.empty()) id = ring_.pick(p->key, not_tried(any_up));
    if (id.empty()) return false;
    const auto it = shards_.find(id);
    if (it == shards_.end()) return false;  // cannot happen: accept checked
    if (send_on_shard(it->second, p, wire)) {
      {
        std::lock_guard<std::mutex> gl(p->mu);
        p->primary_shard = id;
        ++p->attempts;
      }
      it->second->routed.fetch_add(1, std::memory_order_relaxed);
      it->second->m_routed->inc();
      return true;
    }
    tried.insert(id);
  }
}

bool Router::send_on_shard(const std::shared_ptr<Shard>& shard,
                           const std::shared_ptr<Pending>& p,
                           const std::string& wire) {
  const int n = static_cast<int>(shard->conns.size());
  const std::uint32_t start = shard->rr.fetch_add(1, std::memory_order_relaxed);
  for (int i = 0; i < n; ++i) {
    UpstreamConn* conn =
        shard->conns[(start + static_cast<std::uint32_t>(i)) % n].get();
    std::lock_guard<std::mutex> sl(conn->send_mu);
    if (!conn->client) continue;
    try {
      conn->client->send_line(wire);
    } catch (...) {
      // Broken or wedged socket: wake the reader (it owns teardown and
      // re-dispatch) and try the next connection.
      ::shutdown(conn->client->fd(), SHUT_RDWR);
      continue;
    }
    std::lock_guard<std::mutex> gl(p->mu);
    p->sends.push_back(Pending::Send{conn, conn->generation, shard->id});
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Upstream connections.

void Router::start_shard(const std::shared_ptr<Shard>& shard) {
  const std::string labels = "shard=\"" + svc::json_escape(shard->id) + "\"";
  obs::MetricsRegistry& reg = observer_.metrics();
  shard->m_routed = &reg.counter("wfc_router_shard_requests_total", labels,
                                 "Requests dispatched per shard");
  shard->m_answered = &reg.counter("wfc_router_shard_answers_total", labels,
                                   "Winning responses per shard");
  shard->m_up = &reg.gauge("wfc_router_shard_up_conns", labels,
                           "Live pooled connections per shard");
  shard->retry_budget.configure(config_.shard_retry_budget_per_sec,
                                config_.shard_retry_budget_burst);
  for (int i = 0; i < config_.conns_per_shard; ++i) {
    auto conn = std::make_unique<UpstreamConn>();
    conn->index = i;
    UpstreamConn* raw = conn.get();
    shard->conns.push_back(std::move(conn));
    raw->reader = std::thread([this, shard, raw] { conn_reader(shard, raw); });
  }
}

void Router::stop_shard(const std::shared_ptr<Shard>& shard) {
  for (auto& conn : shard->conns) {
    conn->stop.store(true);
    {
      std::lock_guard<std::mutex> sl(conn->send_mu);
      if (conn->client) ::shutdown(conn->client->fd(), SHUT_RDWR);
    }
    conn->wake_cv.notify_all();
  }
  for (auto& conn : shard->conns) {
    if (conn->reader.joinable()) conn->reader.join();
  }
}

void Router::conn_reader(std::shared_ptr<Shard> shard, UpstreamConn* conn) {
  std::chrono::milliseconds backoff = config_.reconnect_min;
  while (!conn->stop.load()) {
    std::shared_ptr<net::Client> client;
    try {
      net::ClientConfig cc;
      cc.server = shard->addr;
      cc.connect_timeout = config_.connect_timeout;
      cc.send_timeout = config_.send_timeout;
      client = std::make_shared<net::Client>(std::move(cc));
    } catch (...) {
      shard->connect_failures.fetch_add(1, std::memory_order_relaxed);
      std::unique_lock<std::mutex> wl(conn->wake_mu);
      conn->wake_cv.wait_for(wl, backoff, [&] { return conn->stop.load(); });
      backoff = std::min(backoff * 2, config_.reconnect_max);
      continue;
    }
    std::uint64_t generation = 0;
    {
      std::lock_guard<std::mutex> sl(conn->send_mu);
      conn->client = client;
      generation = ++conn->generation;
    }
    shard->up_conns.fetch_add(1);
    if (shard->m_up) {
      shard->m_up->set(static_cast<std::uint64_t>(shard->up_conns.load()));
    }
    backoff = config_.reconnect_min;
    // stop() may have raced the install: its shutdown() hit the previous
    // (null) client, so re-check before blocking in recv.
    if (conn->stop.load()) {
      ::shutdown(client->fd(), SHUT_RDWR);
    }
    try {
      while (auto line = client->recv_line()) {
        on_upstream_line(shard, conn, generation, std::move(*line));
      }
    } catch (...) {
      // recv error / oversized response: fall through to teardown.
    }
    {
      std::lock_guard<std::mutex> sl(conn->send_mu);
      if (conn->client == client) conn->client.reset();
    }
    shard->up_conns.fetch_sub(1);
    if (shard->m_up) {
      shard->m_up->set(static_cast<std::uint64_t>(shard->up_conns.load()));
    }
    if (config_.log) {
      config_.log("shard " + shard->id + " conn#" +
                  std::to_string(conn->index) + " down");
    }
    on_conn_down(shard, conn, generation);
  }
}

void Router::on_upstream_line(const std::shared_ptr<Shard>& shard,
                              UpstreamConn* conn, std::uint64_t generation,
                              std::string&& line) {
  (void)conn;
  (void)generation;
  svc::Fields fields;
  try {
    fields = svc::parse_flat_json(line);
  } catch (...) {
    late_drops_.fetch_add(1, std::memory_order_relaxed);
    m_late_drops_->inc();
    return;
  }
  // A retryable envelope with a retry_after_ms hint opens the shard's soft
  // backoff window -- whoever wins the pending race, the hint is real.
  const auto status_it = fields.find("status");
  if (status_it != fields.end() &&
      (status_it->second == "overloaded" ||
       status_it->second == "resource_exhausted")) {
    const std::int64_t hint = int_or(fields, "retry_after_ms", 0);
    if (hint > 0) {
      const std::int64_t until =
          std::chrono::duration_cast<std::chrono::microseconds>(
              Clock::now().time_since_epoch())
              .count() +
          hint * 1000;
      shard->backoff_until_us.store(until, std::memory_order_relaxed);
    }
  }
  const auto id_it = fields.find("id");
  std::uint64_t seq = 0;
  if (id_it != fields.end() && id_it->second.size() > 1 &&
      id_it->second[0] == 'r') {
    seq = std::strtoull(id_it->second.c_str() + 1, nullptr, 10);
  }
  auto p = take_pending(seq, Cause::kResponse);
  if (!p) {
    // The hedge loser, a re-dispatched twin, or an id we never issued.
    late_drops_.fetch_add(1, std::memory_order_relaxed);
    m_late_drops_->inc();
    return;
  }
  shard->answered.fetch_add(1, std::memory_order_relaxed);
  shard->m_answered->inc();
  resolve_response(p, std::move(line), shard->id);
}

void Router::on_conn_down(const std::shared_ptr<Shard>& shard,
                          UpstreamConn* conn, std::uint64_t generation) {
  // Requests whose ONLY outstanding send rode this connection are orphans;
  // a hedged twin still in flight elsewhere keeps ownership instead.
  std::vector<std::shared_ptr<Pending>> orphans;
  {
    std::lock_guard<std::mutex> pl(pending_mu_);
    for (auto& [seq, p] : pending_) {
      std::lock_guard<std::mutex> gl(p->mu);
      bool touched = false;
      for (auto it = p->sends.begin(); it != p->sends.end();) {
        if (it->conn == conn && it->generation == generation) {
          it = p->sends.erase(it);
          touched = true;
        } else {
          ++it;
        }
      }
      if (touched && p->sends.empty()) orphans.push_back(p);
    }
  }
  redispatch_orphans(orphans, shard, /*allow_fallback=*/true);
}

void Router::redispatch_orphans(
    const std::vector<std::shared_ptr<Pending>>& orphans,
    const std::shared_ptr<Shard>& shard, bool allow_fallback) {
  for (const auto& p : orphans) {
    bool exhausted = false;
    {
      std::lock_guard<std::mutex> gl(p->mu);
      exhausted = p->attempts >= config_.max_attempts;
    }
    if (!exhausted) {
      // Budget first: under a mass failure the bucket drains after the
      // first wave and the rest fast-fail, capping the retry
      // amplification a dying shard can inflict on the survivors.
      if (!charge_retry(shard)) {
        if (auto taken = take_pending(p->seq, Cause::kFailed)) {
          resolve_error(taken, svc::to_json_token(svc::Status::kOverloaded),
                        "retry budget exhausted", true);
        }
        continue;
      }
      // Deadline next: re-sending a query whose client budget is spent
      // would only burn a healthy shard's CPU on a dead answer.
      const std::optional<std::string> wire = wire_now(p);
      if (!wire) {
        hop_deadline_expired_.fetch_add(1, std::memory_order_relaxed);
        m_hop_deadline_->inc();
        if (auto taken = take_pending(p->seq, Cause::kTimeout)) {
          resolve_error(taken,
                        svc::to_json_token(svc::Status::kDeadlineExceeded),
                        "client deadline passed before re-dispatch", false);
        }
        continue;
      }
      redispatches_.fetch_add(1, std::memory_order_relaxed);
      m_redispatches_->inc();
      // The shard that just dropped us is suspect even while the rest of
      // its pool still counts as up (a dying process tears its sockets
      // down one reader at a time) -- prefer any other shard, and fall
      // back to the suspect only when nothing else can take the key.
      if (route_and_send(p, *wire, shard->id)) continue;
      if (allow_fallback &&
          shard->up_conns.load(std::memory_order_relaxed) > 0 &&
          route_and_send(p, *wire, "")) {
        continue;
      }
    }
    if (auto taken = take_pending(p->seq, Cause::kFailed)) {
      resolve_error(taken, svc::to_json_token(svc::Status::kOverloaded),
                    exhausted ? "shard connection lost repeatedly"
                              : "shard connection lost, no shard available",
                    true);
    }
  }
}

// ---------------------------------------------------------------------------
// Resolution.

std::shared_ptr<Router::Pending> Router::take_pending(std::uint64_t seq,
                                                      Cause cause) {
  std::shared_ptr<Pending> p;
  std::lock_guard<std::mutex> pl(pending_mu_);
  const auto it = pending_.find(seq);
  if (it == pending_.end()) return nullptr;
  p = it->second;
  pending_.erase(it);
  // Cause counters move under the same lock as the table so the metrics
  // reconciliation holds at every instant (see submit()).
  switch (cause) {
    case Cause::kResponse:
      responses_.fetch_add(1, std::memory_order_relaxed);
      m_responses_->inc();
      break;
    case Cause::kTimeout:
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      m_timeouts_->inc();
      break;
    case Cause::kFailed:
      failed_.fetch_add(1, std::memory_order_relaxed);
      m_failed_->inc();
      break;
  }
  p->resolved.store(true);
  return p;
}

void Router::resolve_response(const std::shared_ptr<Pending>& p,
                              std::string&& response,
                              const std::string& shard_id) {
  {
    std::lock_guard<std::mutex> gl(p->mu);
    if (p->hedged && shard_id != p->primary_shard) {
      hedge_wins_.fetch_add(1, std::memory_order_relaxed);
      m_hedge_wins_->inc();
    }
  }
  // The id splice: our "r<seq>" comes out, the client's own id (escaped
  // again -- parse_flat_json unescaped it) goes back in.
  std::string out = net::strip_id_field(response);
  if (p->had_id) out = net::with_id(out, svc::json_escape(p->client_id));
  p->done(std::move(out));
}

void Router::resolve_error(const std::shared_ptr<Pending>& p,
                           const char* status, const std::string& message,
                           bool retryable) {
  p->done(error_line(p->had_id ? p->client_id : "", p->line_no, status,
                     message, retryable ? jittered_retry_after() : 0));
}

// ---------------------------------------------------------------------------
// Maintenance: hedging, router-side timeouts, gauges.

void Router::maintenance_thread() {
  while (!stopping_.load()) {
    {
      std::unique_lock<std::mutex> sl(stop_mu_);
      stop_cv_.wait_for(sl, config_.tick, [&] { return stopping_.load(); });
    }
    if (stopping_.load()) break;
    const Clock::time_point now = Clock::now();
    std::vector<std::shared_ptr<Pending>> to_hedge;
    std::vector<std::uint64_t> to_timeout;
    {
      std::lock_guard<std::mutex> pl(pending_mu_);
      for (auto& [seq, p] : pending_) {
        if (now >= p->deadline) {
          to_timeout.push_back(seq);
          continue;
        }
        std::lock_guard<std::mutex> gl(p->mu);
        if (!p->hedged && now >= p->hedge_at) {
          p->hedged = true;  // one shot, even if no successor exists
          to_hedge.push_back(p);
        }
      }
    }
    for (const std::uint64_t seq : to_timeout) {
      if (auto p = take_pending(seq, Cause::kTimeout)) {
        resolve_error(p, svc::to_json_token(svc::Status::kDeadlineExceeded),
                      "router: no response from cluster before deadline",
                      false);
      }
    }
    for (auto& p : to_hedge) hedge_one(p);
    refresh_gauges();
  }
}

void Router::hedge_one(const std::shared_ptr<Pending>& p) {
  if (p->resolved.load()) return;
  std::set<std::string> exclude;
  {
    std::lock_guard<std::mutex> gl(p->mu);
    exclude.insert(p->primary_shard);
    for (const auto& send : p->sends) exclude.insert(send.shard);
  }
  std::shared_lock<std::shared_mutex> ml(membership_mu_);
  const Ring::Accept healthy = accept_predicate(true);
  const std::string id = ring_.pick(p->key, [&](const std::string& s) {
    return exclude.count(s) == 0 && healthy(s);
  });
  if (id.empty()) return;  // nobody to hedge to; the primary keeps the key
  const auto it = shards_.find(id);
  if (it == shards_.end()) return;
  // A hedge is a retry in disguise: it pays the same budget, and carries
  // the remaining (not original) client deadline.
  if (!charge_retry(it->second)) return;
  const std::optional<std::string> wire = wire_now(p);
  if (!wire) return;  // out of budget; the router deadline clock fires soon
  if (send_on_shard(it->second, p, *wire)) {
    hedges_.fetch_add(1, std::memory_order_relaxed);
    m_hedges_->inc();
    it->second->hedges.fetch_add(1, std::memory_order_relaxed);
  }
}

void Router::refresh_gauges() {
  std::size_t pending = 0;
  {
    std::lock_guard<std::mutex> pl(pending_mu_);
    pending = pending_.size();
  }
  m_pending_->set(pending);
  std::shared_lock<std::shared_mutex> ml(membership_mu_);
  std::uint64_t up = 0;
  std::uint64_t state_up = 0, state_suspect = 0, state_down = 0;
  for (const auto& [id, shard] : shards_) {
    if (shard->up_conns.load(std::memory_order_relaxed) > 0) ++up;
    const int health = shard->health.load(std::memory_order_relaxed);
    if (health >= 2 || shard->up_conns.load(std::memory_order_relaxed) <= 0) {
      ++state_down;
    } else if (health == 1) {
      ++state_suspect;
    } else {
      ++state_up;
    }
  }
  m_shards_up_->set(up);
  m_imbalance_->set(ring_.imbalance_permille());
  m_state_up_->set(state_up);
  m_state_suspect_->set(state_suspect);
  m_state_down_->set(state_down);
}

// ---------------------------------------------------------------------------
// Hardening: active probes, retry budgets, deadline propagation.

void Router::probe_thread() {
  while (!stopping_.load()) {
    {
      std::unique_lock<std::mutex> sl(stop_mu_);
      stop_cv_.wait_for(sl, config_.probe_interval,
                        [&] { return stopping_.load(); });
    }
    if (stopping_.load()) break;
    // Probe a snapshot so membership changes never race the walk; shards
    // removed mid-pass just get one harmless last probe.
    std::vector<std::shared_ptr<Shard>> snapshot;
    {
      std::shared_lock<std::shared_mutex> ml(membership_mu_);
      snapshot.reserve(shards_.size());
      for (const auto& [id, shard] : shards_) snapshot.push_back(shard);
    }
    for (const auto& shard : snapshot) {
      if (stopping_.load()) break;
      probe_shard(shard);
    }
  }
}

void Router::probe_shard(const std::shared_ptr<Shard>& shard) {
  // A FRESH connection per probe, on purpose: the pooled sockets of a
  // blackholed shard look healthy forever, which is exactly the lie the
  // probe exists to catch.
  bool ok = false;
  try {
    net::ClientConfig cc;
    cc.server = shard->addr;
    cc.connect_timeout = config_.probe_timeout;
    cc.send_timeout = config_.probe_timeout;
    cc.recv_timeout = config_.probe_timeout;
    net::Client probe(std::move(cc));
    const std::string response = probe.roundtrip(R"({"op":"info"})");
    ok = response.find("\"status\":\"ok\"") != std::string::npos;
  } catch (...) {
    ok = false;
  }
  if (ok) {
    shard->probe_streak.store(0, std::memory_order_relaxed);
    const int prev = shard->health.exchange(0, std::memory_order_relaxed);
    if (prev != 0 && config_.log) {
      config_.log("shard " + shard->id + " probe ok, back up");
    }
    return;
  }
  probe_failures_.fetch_add(1, std::memory_order_relaxed);
  m_probe_failures_->inc();
  const int streak =
      shard->probe_streak.fetch_add(1, std::memory_order_relaxed) + 1;
  int next;
  if (streak >= config_.probe_down_after) {
    next = 2;
  } else if (streak >= config_.probe_suspect_after) {
    next = 1;
  } else {
    return;
  }
  const int prev = shard->health.exchange(next, std::memory_order_relaxed);
  if (prev != next && config_.log) {
    config_.log("shard " + shard->id + " probe failure #" +
                std::to_string(streak) + " -> " +
                (next == 2 ? "down" : "suspect"));
  }
  // Crossing into Down evicts the shard's unresolved sends NOW -- the
  // whole point of probing is beating pending_timeout to the bad news.
  if (prev != 2 && next == 2) evict_shard_pendings(shard);
}

void Router::evict_shard_pendings(const std::shared_ptr<Shard>& shard) {
  std::vector<std::shared_ptr<Pending>> orphans;
  {
    std::lock_guard<std::mutex> pl(pending_mu_);
    for (auto& [seq, p] : pending_) {
      std::lock_guard<std::mutex> gl(p->mu);
      bool touched = false;
      for (auto it = p->sends.begin(); it != p->sends.end();) {
        if (it->shard == shard->id) {
          it = p->sends.erase(it);
          touched = true;
        } else {
          ++it;
        }
      }
      if (touched && p->sends.empty()) orphans.push_back(p);
    }
  }
  // No fallback to the evicted shard: probes just declared it Down.
  redispatch_orphans(orphans, shard, /*allow_fallback=*/false);
}

bool Router::charge_retry(const std::shared_ptr<Shard>& shard) {
  if (retry_budget_.try_take() && shard->retry_budget.try_take()) return true;
  budget_exhausted_.fetch_add(1, std::memory_order_relaxed);
  m_budget_exhausted_->inc();
  return false;
}

std::optional<std::string> Router::wire_now(
    const std::shared_ptr<Pending>& p) const {
  if (p->timeout_ms <= 0) return p->wire;  // no deadline to propagate
  const std::int64_t elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            p->submitted)
          .count();
  const std::int64_t remaining = p->timeout_ms - elapsed;
  if (remaining <= 0) return std::nullopt;
  if (remaining >= p->timeout_ms) return p->wire;  // nothing burned yet
  std::string out = p->wire_base;
  out.insert(out.size() - 1, ",\"timeout_ms\":" + std::to_string(remaining));
  return out;
}

int Router::jittered_retry_after() const {
  const int base = config_.retry_after_ms;
  if (base <= 1) return base;
  // Uniform in [base/2, base*3/2] off a private splitmix lane, so a burst
  // of synchronized rejections fans back in spread out.
  const std::uint64_t z =
      mix64(retry_jitter_.fetch_add(1, std::memory_order_relaxed));
  return base / 2 + static_cast<int>(z % static_cast<std::uint64_t>(base + 1));
}

// ---------------------------------------------------------------------------
// Membership.

bool Router::add_shard(const ShardSpec& spec) {
  auto shard = std::make_shared<Shard>();
  shard->id = spec.id;
  shard->addr = spec.addr;
  {
    std::unique_lock<std::shared_mutex> ml(membership_mu_);
    if (shards_.count(spec.id) != 0) return false;
    shards_.emplace(spec.id, shard);
    ring_.add(spec.id);
  }
  start_shard(shard);
  if (config_.log) config_.log("shard " + spec.id + " added");
  return true;
}

bool Router::remove_shard(const std::string& id) {
  std::shared_ptr<Shard> shard;
  {
    std::unique_lock<std::shared_mutex> ml(membership_mu_);
    const auto it = shards_.find(id);
    if (it == shards_.end()) return false;
    shard = it->second;
    shards_.erase(it);
    ring_.remove(id);
  }
  // Joins happen OUTSIDE the membership lock: the dying readers run
  // on_conn_down -> route_and_send, which takes it shared.
  stop_shard(shard);
  if (config_.log) config_.log("shard " + id + " removed");
  return true;
}

bool Router::drain_shard(const std::string& id) {
  std::shared_lock<std::shared_mutex> ml(membership_mu_);
  const auto it = shards_.find(id);
  if (it == shards_.end()) return false;
  it->second->draining.store(true);
  if (config_.log) config_.log("shard " + id + " draining");
  return true;
}

// ---------------------------------------------------------------------------
// Control plane.

std::string Router::control(std::string_view line, int line_no) {
  svc::Fields fields;
  try {
    fields = svc::parse_flat_json(line);
  } catch (const std::exception& e) {
    return error_line("", line_no,
                      svc::to_json_token(svc::Status::kInvalidArgument),
                      e.what());
  }
  const auto id_it = fields.find("id");
  const std::string id = id_it == fields.end() ? "" : id_it->second;
  const auto op_it = fields.find("op");
  const std::string op = op_it == fields.end() ? "" : op_it->second;
  if (op == "cluster_stats") return render_cluster_stats(id);
  if (op == "info") return render_info(id);
  if (op == "metrics") return render_metrics(id);
  if (op == "store") return render_store_op(fields, id, line_no);
  if (op == "stats") {
    const Stats s = stats();
    return "cluster shards=" + std::to_string(shard_count()) +
           " pending=" + std::to_string(s.pending) +
           " requests=" + std::to_string(s.requests) +
           " responses=" + std::to_string(s.responses) +
           " hedges=" + std::to_string(s.hedges) +
           " hedge_wins=" + std::to_string(s.hedge_wins) +
           " redispatches=" + std::to_string(s.redispatches) +
           " timeouts=" + std::to_string(s.timeouts) +
           " failed=" + std::to_string(s.failed) +
           " rejected=" + std::to_string(s.rejected);
  }
  if (op == "trace") {
    return error_line(id, line_no,
                      svc::to_json_token(svc::Status::kInvalidArgument),
                      "trace is not available on the router");
  }
  if (op == "cluster_add" || op == "cluster_remove" || op == "cluster_drain") {
    if (!config_.admin_ops) {
      return error_line(id, line_no,
                        svc::to_json_token(svc::Status::kInvalidArgument),
                        "cluster admin ops are disabled on this router");
    }
    return render_membership_op(fields, op);
  }
  return error_line(id, line_no,
                    svc::to_json_token(svc::Status::kInvalidArgument),
                    "unknown control op \"" + op + "\"");
}

std::size_t Router::shard_count() const {
  std::shared_lock<std::shared_mutex> ml(membership_mu_);
  return shards_.size();
}

int Router::shard_up_conns(const std::string& id) const {
  std::shared_lock<std::shared_mutex> ml(membership_mu_);
  const auto it = shards_.find(id);
  return it == shards_.end() ? 0 : it->second->up_conns.load();
}

Router::ShardHealth Router::shard_health(const std::string& id) const {
  std::shared_lock<std::shared_mutex> ml(membership_mu_);
  const auto it = shards_.find(id);
  if (it == shards_.end()) return ShardHealth::kDown;
  switch (it->second->health.load(std::memory_order_relaxed)) {
    case 1:
      return ShardHealth::kSuspect;
    case 2:
      return ShardHealth::kDown;
    default:
      return ShardHealth::kUp;
  }
}

Router::Stats Router::stats() const {
  Stats s;
  std::lock_guard<std::mutex> pl(pending_mu_);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.responses = responses_.load(std::memory_order_relaxed);
  s.hedges = hedges_.load(std::memory_order_relaxed);
  s.hedge_wins = hedge_wins_.load(std::memory_order_relaxed);
  s.late_drops = late_drops_.load(std::memory_order_relaxed);
  s.redispatches = redispatches_.load(std::memory_order_relaxed);
  s.timeouts = timeouts_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.pending = pending_.size();
  s.probe_failures = probe_failures_.load(std::memory_order_relaxed);
  s.budget_exhausted = budget_exhausted_.load(std::memory_order_relaxed);
  s.hop_deadline_expired =
      hop_deadline_expired_.load(std::memory_order_relaxed);
  return s;
}

std::string Router::render_cluster_stats(const std::string& id) {
  const Stats s = stats();
  svc::JsonWriter w;
  if (!id.empty()) w.field("id", id);
  w.field("op", "cluster_stats")
      .field("status", svc::to_json_token(svc::Status::kOk))
      .field("requests", s.requests)
      .field("responses", s.responses)
      .field("pending", s.pending)
      .field("hedges", s.hedges)
      .field("hedge_wins", s.hedge_wins)
      .field("late_drops", s.late_drops)
      .field("redispatches", s.redispatches)
      .field("timeouts", s.timeouts)
      .field("failed", s.failed)
      .field("rejected", s.rejected)
      .field("probe_failures", s.probe_failures)
      .field("budget_exhausted", s.budget_exhausted)
      .field("hop_deadline_expired", s.hop_deadline_expired);
  std::shared_lock<std::shared_mutex> ml(membership_mu_);
  w.field("shards", static_cast<std::uint64_t>(shards_.size()))
      .field("ring_imbalance_permille", ring_.imbalance_permille());
  std::uint64_t up = 0;
  for (const auto& [sid, shard] : shards_) {
    if (shard->up_conns.load() > 0) ++up;
  }
  w.field("shards_up", up);
  // Flat JSON has no nesting, so per-shard state rides on compound keys.
  for (const auto& [sid, shard] : shards_) {
    const std::string prefix = "shard_" + key_safe(sid) + "_";
    const int health = shard->health.load(std::memory_order_relaxed);
    const char* state = "up";
    if (shard->draining.load()) {
      state = "draining";
    } else if (shard->up_conns.load() <= 0 || health >= 2) {
      state = "down";
    } else if (health == 1) {
      state = "suspect";
    } else if (shard->in_backoff()) {
      state = "backoff";
    }
    w.field(prefix + "state", state)
        .field(prefix + "conns", shard->up_conns.load())
        .field(prefix + "routed",
               shard->routed.load(std::memory_order_relaxed))
        .field(prefix + "hedges",
               shard->hedges.load(std::memory_order_relaxed))
        .field(prefix + "answered",
               shard->answered.load(std::memory_order_relaxed))
        .field(prefix + "connect_failures",
               shard->connect_failures.load(std::memory_order_relaxed))
        .field(prefix + "probe_streak",
               shard->probe_streak.load(std::memory_order_relaxed));
  }
  return w.str();
}

std::string Router::render_info(const std::string& id) {
  svc::JsonWriter w;
  if (!id.empty()) w.field("id", id);
  w.field("op", "info")
      .field("status", svc::to_json_token(svc::Status::kOk))
      .field("version", kVersion)
      .field("server_id", config_.router_id)
      .field("role", "router")
      .field("uptime_ms",
             static_cast<std::uint64_t>(
                 std::chrono::duration_cast<std::chrono::milliseconds>(
                     Clock::now() - started_)
                     .count()));
  const Stats s = stats();
  std::shared_lock<std::shared_mutex> ml(membership_mu_);
  std::uint64_t up = 0;
  for (const auto& [sid, shard] : shards_) {
    if (shard->up_conns.load() > 0) ++up;
  }
  w.field("shards", static_cast<std::uint64_t>(shards_.size()))
      .field("shards_up", up)
      .field("pending", s.pending);
  return w.str();
}

std::string Router::render_metrics(const std::string& id) {
  svc::JsonWriter w;
  if (!id.empty()) w.field("id", id);
  // One consistent snapshot (stats() reads everything under pending_mu_)
  // makes the reconciliation meaningful: accepted == resolved + inflight.
  const Stats s = stats();
  const bool reconciles =
      s.requests == s.responses + s.timeouts + s.failed + s.pending;
  w.field("op", "metrics")
      .field("status", svc::to_json_token(svc::Status::kOk))
      .field("requests", s.requests)
      .field("responses", s.responses)
      .field("timeouts", s.timeouts)
      .field("failed", s.failed)
      .field("pending", s.pending)
      .field("hedges", s.hedges)
      .field("hedge_wins", s.hedge_wins)
      .field("late_drops", s.late_drops)
      .field("redispatches", s.redispatches)
      .field("rejected", s.rejected)
      .field("probe_failures", s.probe_failures)
      .field("budget_exhausted", s.budget_exhausted)
      .field("hop_deadline_expired", s.hop_deadline_expired)
      .field("reconciles", reconciles);
  return w.str();
}

std::string Router::render_store_op(const svc::Fields& fields,
                                    const std::string& id, int line_no) {
  const auto action_it = fields.find("action");
  const std::string action =
      action_it == fields.end() ? "stats" : action_it->second;
  if (action != "stats" && action != "warm" && action != "shed" &&
      action != "pin" && action != "unpin" && action != "publish") {
    return error_line(id, line_no,
                      svc::to_json_token(svc::Status::kInvalidArgument),
                      "unknown store action \"" + action + "\"");
  }
  if (action == "publish" && config_.store_readonly) {
    return error_line(id, line_no,
                      svc::to_json_token(svc::Status::kInvalidArgument),
                      "store publish: this router treats the cluster store "
                      "as read-only (--store-readonly)");
  }
  // Forward a minimal request (id stripped: shard responses are consumed
  // here, not relayed).  Shards keep their own transport gating -- publish
  // over TCP is refused per shard unless its operator enabled it.
  svc::JsonWriter fwd;
  fwd.field("op", "store").field("action", action);
  for (const char* key : {"percent", "fingerprint"}) {
    if (const auto it = fields.find(key); it != fields.end()) {
      fwd.field(key, it->second);
    }
  }
  const std::string wire = fwd.str();

  std::vector<std::pair<std::string, std::shared_ptr<Shard>>> snapshot;
  {
    std::shared_lock<std::shared_mutex> ml(membership_mu_);
    snapshot.reserve(shards_.size());
    for (const auto& [sid, shard] : shards_) snapshot.emplace_back(sid, shard);
  }

  // Sum every counter the shard-side store op emits; per-shard rows ride
  // on compound keys like cluster_stats' (flat JSON has no nesting).
  static constexpr const char* kSummed[] = {
      "lookups",   "store_hits",       "store_misses", "fallbacks",
      "publishes", "publish_skipped",  "files",        "file_bytes",
      "mapped_bytes", "cache_store_hits", "chain_builds", "pinned",
      "admitted",  "evicted",          "written"};
  std::map<std::string, std::uint64_t> totals;
  svc::JsonWriter shard_rows;
  std::uint64_t shards_ok = 0;
  std::uint64_t shards_failed = 0;
  for (const auto& [sid, shard] : snapshot) {
    const std::string prefix = "shard_" + key_safe(sid) + "_store_";
    std::string response;
    try {
      net::ClientConfig cc;
      cc.server = shard->addr;
      cc.connect_timeout = config_.probe_timeout;
      cc.send_timeout = config_.probe_timeout;
      cc.recv_timeout = config_.probe_timeout;
      net::Client client(std::move(cc));
      response = client.roundtrip(wire);
    } catch (const std::exception&) {
      ++shards_failed;
      shard_rows.field(prefix + "status", "unreachable");
      continue;
    }
    svc::Fields reply;
    try {
      reply = svc::parse_flat_json(response);
    } catch (const std::exception&) {
      ++shards_failed;
      shard_rows.field(prefix + "status", "unparseable");
      continue;
    }
    const auto status_it = reply.find("status");
    const std::string status =
        status_it == reply.end() ? "missing" : status_it->second;
    shard_rows.field(prefix + "status", status);
    if (status != svc::to_json_token(svc::Status::kOk)) {
      ++shards_failed;
      if (const auto err = reply.find("error"); err != reply.end()) {
        shard_rows.field(prefix + "error", err->second);
      }
      continue;
    }
    ++shards_ok;
    for (const char* key : kSummed) {
      if (const auto it = reply.find(key); it != reply.end()) {
        totals[key] += static_cast<std::uint64_t>(
            std::strtoull(it->second.c_str(), nullptr, 10));
      }
    }
  }

  svc::JsonWriter w;
  if (!id.empty()) w.field("id", id);
  w.field("op", "store")
      .field("action", action)
      .field("status", svc::to_json_token(shards_failed == 0 || shards_ok > 0
                                              ? svc::Status::kOk
                                              : svc::Status::kInternal))
      .field("shards", static_cast<std::uint64_t>(snapshot.size()))
      .field("shards_ok", shards_ok)
      .field("shards_failed", shards_failed);
  if (!config_.store_dir.empty()) w.field("store_dir", config_.store_dir);
  if (config_.store_readonly) w.field("store_readonly", true);
  if (config_.store_max_bytes != 0) {
    w.field("store_max_bytes", config_.store_max_bytes);
  }
  for (const char* key : kSummed) {
    if (const auto it = totals.find(key); it != totals.end()) {
      w.field(key, it->second);
    }
  }
  std::string out = w.str();
  // Splice the per-shard rows into the envelope (both writers emit one
  // flat object; drop the rows' braces and join).
  const std::string rows = shard_rows.str();
  if (rows.size() > 2) {
    out.insert(out.size() - 1, "," + rows.substr(1, rows.size() - 2));
  }
  return out;
}

std::string Router::render_membership_op(const svc::Fields& fields,
                                         const std::string& op) {
  const auto id_it = fields.find("id");
  const std::string id = id_it == fields.end() ? "" : id_it->second;
  const auto shard_it = fields.find("shard");
  if (shard_it == fields.end() || shard_it->second.empty()) {
    return error_line(id, 0,
                      svc::to_json_token(svc::Status::kInvalidArgument),
                      op + ": missing \"shard\"");
  }
  const std::string& shard = shard_it->second;
  bool ok = false;
  if (op == "cluster_add") {
    const auto host_it = fields.find("host");
    const std::int64_t port = int_or(fields, "port", 0);
    if (host_it == fields.end() || port <= 0 || port > 65535) {
      return error_line(id, 0,
                        svc::to_json_token(svc::Status::kInvalidArgument),
                        "cluster_add: missing or invalid \"host\"/\"port\"");
    }
    ShardSpec spec;
    spec.id = shard;
    spec.addr.host = host_it->second;
    spec.addr.port = static_cast<std::uint16_t>(port);
    ok = add_shard(spec);
  } else if (op == "cluster_remove") {
    ok = remove_shard(shard);
  } else {
    ok = drain_shard(shard);
  }
  if (!ok) {
    return error_line(id, 0,
                      svc::to_json_token(svc::Status::kInvalidArgument),
                      op + ": " + (op == "cluster_add"
                                       ? "shard id already exists"
                                       : "unknown shard id"));
  }
  svc::JsonWriter w;
  if (!id.empty()) w.field("id", id);
  w.field("op", op)
      .field("status", svc::to_json_token(svc::Status::kOk))
      .field("shard", shard)
      .field("shards", static_cast<std::uint64_t>(shard_count()));
  return w.str();
}

}  // namespace wfc::cluster
