#include "cluster/ring.hpp"

#include <stdexcept>

namespace wfc::cluster {

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

Ring::Ring(int vnodes) : vnodes_(vnodes) {
  if (vnodes <= 0) throw std::invalid_argument("Ring: vnodes must be > 0");
}

void Ring::add(const std::string& shard) {
  if (!members_.insert(shard).second) return;
  for (int i = 0; i < vnodes_; ++i) {
    // Collisions across shards are resolved by map insertion order (first
    // owner keeps the point); with 64-bit hashes they are a curiosity, not
    // a correctness concern.
    points_.emplace(fnv1a64(shard + "#" + std::to_string(i)), shard);
  }
}

void Ring::remove(const std::string& shard) {
  if (members_.erase(shard) == 0) return;
  for (auto it = points_.begin(); it != points_.end();) {
    it = it->second == shard ? points_.erase(it) : std::next(it);
  }
}

std::string Ring::pick(std::uint64_t key, const Accept& accept) const {
  if (points_.empty()) return "";
  std::set<std::string> rejected;
  auto it = points_.lower_bound(key);
  // At most one full revolution: every distinct shard is considered once.
  for (std::size_t step = 0; step < points_.size(); ++step, ++it) {
    if (it == points_.end()) it = points_.begin();
    const std::string& shard = it->second;
    if (rejected.count(shard) != 0) continue;
    if (!accept || accept(shard)) return shard;
    rejected.insert(shard);
    if (rejected.size() == members_.size()) break;
  }
  return "";
}

std::string Ring::successor(std::uint64_t key, const std::string& primary,
                            const Accept& accept) const {
  return pick(key, [&](const std::string& shard) {
    return shard != primary && (!accept || accept(shard));
  });
}

std::uint64_t Ring::imbalance_permille() const {
  if (points_.empty()) return 0;
  // Arc owned by a point = distance from the PREVIOUS point (clockwise
  // lookups land on the next point at or after the key).
  std::map<std::string, std::uint64_t> share;
  std::uint64_t prev = points_.rbegin()->first;  // wrap: last point precedes
  for (const auto& [point, shard] : points_) {
    share[shard] += point - prev;  // unsigned wrap gives the circular arc
    prev = point;
  }
  std::uint64_t max_share = 0;
  for (const auto& [shard, arc] : share) {
    if (arc > max_share) max_share = arc;
  }
  // mean share = 2^64 / N; compute permille without 128-bit arithmetic by
  // scaling max down first (loses < 1 permille of precision).
  const double mean =
      18446744073709551616.0 / static_cast<double>(members_.size());
  return static_cast<std::uint64_t>(static_cast<double>(max_share) / mean *
                                    1000.0);
}

}  // namespace wfc::cluster
