#include "net/server.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <map>
#include <mutex>
#include <optional>
#include <string_view>
#include <system_error>
#include <vector>

namespace wfc::net {

namespace {

constexpr int kMaxEvents = 64;
/// Stop slurping one socket after this much in a single readable event so a
/// blasting client cannot starve its loop-mates (level-triggered epoll
/// re-arms for the rest).
constexpr std::size_t kReadBurstBytes = 1u << 20;

void add_counter(obs::Counter* c, std::uint64_t n = 1) {
  if (c != nullptr) c->inc(n);
}

}  // namespace

/// One event loop: its own epoll instance, an eventfd wakeup, and the
/// connections it owns.  `conns` is loop-thread-only; `mu` guards the
/// cross-thread handoff lists (freshly accepted fds, connections with
/// completed responses waiting in their outbox).
struct Server::Loop {
  Fd epoll;
  Fd wake;  // eventfd
  std::map<int, std::shared_ptr<Conn>> conns;
  std::atomic<bool> stop{false};

  std::mutex mu;
  std::vector<Fd> incoming;
  std::vector<std::weak_ptr<Conn>> dirty;

  void kick() const {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(wake.get(), &one, sizeof(one));
  }
};

/// Per-connection state.  Everything except `mu`/`outbox` is touched only
/// by the owning loop thread.
struct Server::Conn {
  Fd sock;
  std::shared_ptr<Loop> loop;

  std::string rbuf;
  std::size_t rpos = 0;      // start of unconsumed input
  std::size_t scan_pos = 0;  // resume point for the newline scan (>= rpos)
  std::string wbuf;
  std::size_t wpos = 0;  // bytes of wbuf already sent
  std::size_t inflight = 0;
  int line_no = 0;
  bool discard = false;      // dropping an oversized line up to its newline
  bool read_closed = false;  // EOF seen, or reads retired by drain()
  bool closed = false;
  std::uint32_t events = 0;  // current epoll interest mask
  /// A control line received while queries were inflight; answered (via
  /// LineBackend::control) as soon as this connection's inflight count
  /// reaches zero.
  struct PendingControl {
    std::string line;
    int line_no = 0;
  };
  std::optional<PendingControl> pending_control;
  std::chrono::steady_clock::time_point last_activity;
  obs::TraceContext trace;  // one row per connection in the Chrome trace

  std::mutex mu;
  std::vector<std::string> outbox;  // rendered response lines, no '\n'

  [[nodiscard]] std::size_t unsent_bytes() const {
    return wbuf.size() - wpos;
  }
};

Server::Server(svc::QueryService& service, ServerConfig config)
    : config_(std::move(config)),
      owned_backend_(
          std::make_unique<ServiceBackend>(service, config_.handler)),
      backend_(owned_backend_.get()) {}

Server::Server(LineBackend& backend, ServerConfig config)
    : config_(std::move(config)), backend_(&backend) {}

Server::~Server() { stop(); }

void Server::init_metrics() {
  obs::Observer* observer = backend_->observer();
  if (observer == nullptr || !observer->enabled()) return;
  obs::MetricsRegistry& reg = observer->metrics();
  m_accepted_ = &reg.counter("wfc_net_accepted_total", "",
                             "TCP connections accepted");
  m_closed_ = &reg.counter("wfc_net_closed_total", "",
                           "TCP connections closed (any reason)");
  m_dropped_ = &reg.counter(
      "wfc_net_dropped_total", "",
      "Connections force-closed (socket error, idle timeout, drain cap)");
  m_requests_ = &reg.counter("wfc_net_requests_total", "",
                             "Request lines submitted as queries");
  m_responses_ = &reg.counter("wfc_net_responses_total", "",
                              "Response lines queued to the wire");
  m_bytes_read_ = &reg.counter("wfc_net_bytes_read_total", "",
                               "Bytes read off client sockets");
  m_bytes_written_ = &reg.counter("wfc_net_bytes_written_total", "",
                                  "Bytes written to client sockets");
  m_active_ = &reg.gauge("wfc_net_active_connections", "",
                         "Currently open client connections");
  m_rtt_us_ = &reg.histogram(
      "wfc_net_rtt_us", obs::latency_bounds_us(), "",
      "Wire RTT per request: line parsed to response rendered, microseconds");
}

void Server::start() {
  if (started_.exchange(true)) return;
  init_metrics();
  listener_ = listen_tcp(config_.listen, &port_);
  const int n_loops = std::max(1, config_.io_threads);
  for (int i = 0; i < n_loops; ++i) {
    auto loop = std::make_shared<Loop>();
    loop->epoll = Fd(::epoll_create1(EPOLL_CLOEXEC));
    if (!loop->epoll.valid()) {
      throw std::system_error(errno, std::generic_category(),
                              "epoll_create1");
    }
    loop->wake = Fd(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
    if (!loop->wake.valid()) {
      throw std::system_error(errno, std::generic_category(), "eventfd");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = loop->wake.get();
    if (::epoll_ctl(loop->epoll.get(), EPOLL_CTL_ADD, loop->wake.get(),
                    &ev) != 0) {
      throw std::system_error(errno, std::generic_category(), "epoll_ctl");
    }
    loops_.push_back(std::move(loop));
  }
  // The listener lives on loop 0 only.
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listener_.get();
  if (::epoll_ctl(loops_[0]->epoll.get(), EPOLL_CTL_ADD, listener_.get(),
                  &ev) != 0) {
    throw std::system_error(errno, std::generic_category(), "epoll_ctl");
  }
  for (int i = 0; i < n_loops; ++i) {
    std::shared_ptr<Loop> loop = loops_[static_cast<std::size_t>(i)];
    threads_.emplace_back(
        [this, loop, acceptor = i == 0] { loop_thread(loop, acceptor); });
  }
}

void Server::stop() {
  if (!started_.load()) return;
  if (!stopping_.exchange(true)) {
    for (const std::shared_ptr<Loop>& loop : loops_) {
      loop->stop.store(true, std::memory_order_relaxed);
      loop->kick();
    }
  }
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  // Loop threads closed their connections on exit; late query completions
  // still holding the Loop shared_ptrs only touch the outbox mutex and the
  // (still open until Loop destruction) eventfd, both safe.
  listener_.reset();
}

void Server::drain() {
  if (!started_.load() || stopping_.load()) return;
  drain_deadline_ = std::chrono::steady_clock::now() + config_.drain_timeout;
  draining_.store(true, std::memory_order_release);
  for (const std::shared_ptr<Loop>& loop : loops_) loop->kick();
  while (active_.load(std::memory_order_relaxed) != 0 &&
         std::chrono::steady_clock::now() <
             drain_deadline_ + std::chrono::milliseconds(200)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop();
}

Server::Stats Server::stats() const {
  Stats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.closed = closed_.load(std::memory_order_relaxed);
  s.dropped = dropped_.load(std::memory_order_relaxed);
  s.active = active_.load(std::memory_order_relaxed);
  s.requests = requests_.value();
  s.responses = responses_.value();
  s.bytes_read = bytes_read_.value();
  s.bytes_written = bytes_written_.value();
  s.oversized_lines = oversized_lines_.load(std::memory_order_relaxed);
  return s;
}

void Server::loop_thread(const std::shared_ptr<Loop>& loop,
                         bool is_acceptor) {
  bool listener_retired = false;
  epoll_event events[kMaxEvents];
  while (!loop->stop.load(std::memory_order_relaxed)) {
    const bool draining = draining_.load(std::memory_order_acquire);
    if (draining && is_acceptor && !listener_retired) {
      // Stop accepting; established connections keep being served.
      (void)::epoll_ctl(loop->epoll.get(), EPOLL_CTL_DEL, listener_.get(),
                        nullptr);
      listener_retired = true;
    }
    int timeout_ms = -1;
    if (draining) {
      timeout_ms = 10;
    } else if (config_.idle_timeout.count() > 0) {
      timeout_ms = static_cast<int>(
          std::min<std::int64_t>(50, config_.idle_timeout.count()));
    }
    const int n =
        ::epoll_wait(loop->epoll.get(), events, kMaxEvents, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    bool wake_fired = false;
    bool accept_ready = false;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == loop->wake.get()) {
        std::uint64_t drainv;
        while (::read(loop->wake.get(), &drainv, sizeof(drainv)) > 0) {
        }
        wake_fired = true;
        continue;
      }
      if (is_acceptor && fd == listener_.get()) {
        accept_ready = true;
        continue;
      }
      auto it = loop->conns.find(fd);
      if (it == loop->conns.end()) continue;
      std::shared_ptr<Conn> conn = it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0 &&
          (events[i].events & EPOLLIN) == 0) {
        close_conn(loop, conn, /*forced=*/true);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) handle_readable(loop, conn);
      if (!conn->closed && (events[i].events & EPOLLOUT) != 0) {
        flush_writes(loop, conn);
        if (!conn->closed) update_interest(loop, conn);
      }
    }
    // Accepting and completion handling run only after every connection
    // event in the batch has dispatched: handle_dirty can close a
    // connection and adopt_incoming can register a new one that reuses the
    // same fd, which would otherwise let this batch's remaining events for
    // the dead connection dispatch to the new one.
    if (accept_ready) handle_accept(loop);
    if (wake_fired) {
      adopt_incoming(loop);
      handle_dirty(loop);
    }
    if (config_.idle_timeout.count() > 0) sweep_idle(loop);
    if (draining) {
      const bool past_deadline =
          std::chrono::steady_clock::now() >= drain_deadline_;
      std::vector<std::shared_ptr<Conn>> conns;
      conns.reserve(loop->conns.size());
      for (const auto& [cfd, conn] : loop->conns) conns.push_back(conn);
      for (const std::shared_ptr<Conn>& conn : conns) {
        conn->read_closed = true;
        if (past_deadline || drained(*conn)) {
          close_conn(loop, conn, /*forced=*/past_deadline);
        } else {
          update_interest(loop, conn);
        }
      }
    }
  }
  // Loop exit: release every connection this loop still owns.
  std::vector<std::shared_ptr<Conn>> conns;
  conns.reserve(loop->conns.size());
  for (const auto& [cfd, conn] : loop->conns) conns.push_back(conn);
  for (const std::shared_ptr<Conn>& conn : conns) {
    close_conn(loop, conn, /*forced=*/true);
  }
}

bool Server::drained(const Conn& conn) {
  // inflight only reaches zero after every completed response line has been
  // moved from the outbox into wbuf, so these checks suffice.
  return conn.inflight == 0 && !conn.pending_control &&
         conn.unsent_bytes() == 0;
}

void Server::handle_accept(const std::shared_ptr<Loop>& loop) {
  while (true) {
    const int cfd = ::accept4(listener_.get(), nullptr, nullptr,
                              SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (cfd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // transient resource failure; the listener stays armed
    }
    set_nodelay(cfd);
    accepted_.fetch_add(1, std::memory_order_relaxed);
    add_counter(m_accepted_);
    const std::size_t target =
        next_loop_.fetch_add(1, std::memory_order_relaxed) % loops_.size();
    const std::shared_ptr<Loop>& owner = loops_[target];
    {
      std::lock_guard<std::mutex> lock(owner->mu);
      owner->incoming.emplace_back(cfd);
    }
    if (owner.get() == loop.get()) {
      adopt_incoming(loop);
    } else {
      owner->kick();
    }
  }
}

void Server::adopt_incoming(const std::shared_ptr<Loop>& loop) {
  std::vector<Fd> incoming;
  {
    std::lock_guard<std::mutex> lock(loop->mu);
    incoming.swap(loop->incoming);
  }
  for (Fd& fd : incoming) {
    if (draining_.load(std::memory_order_relaxed) ||
        loop->stop.load(std::memory_order_relaxed)) {
      // Arrived after the shutdown decision: never served.
      closed_.fetch_add(1, std::memory_order_relaxed);
      add_counter(m_closed_);
      continue;  // Fd destructor closes it
    }
    auto conn = std::make_shared<Conn>();
    const int cfd = fd.get();
    if (config_.sndbuf_bytes > 0) {
      (void)::setsockopt(cfd, SOL_SOCKET, SO_SNDBUF, &config_.sndbuf_bytes,
                         sizeof(config_.sndbuf_bytes));
    }
    conn->sock = std::move(fd);
    conn->loop = loop;
    conn->last_activity = std::chrono::steady_clock::now();
    if (obs::Observer* observer = backend_->observer(); observer != nullptr) {
      conn->trace = observer->begin_trace();
    }
    conn->events = EPOLLIN;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = cfd;
    if (::epoll_ctl(loop->epoll.get(), EPOLL_CTL_ADD, cfd, &ev) != 0) {
      closed_.fetch_add(1, std::memory_order_relaxed);
      add_counter(m_closed_);
      continue;
    }
    loop->conns.emplace(cfd, std::move(conn));
    active_.fetch_add(1, std::memory_order_relaxed);
    if (m_active_ != nullptr) {
      m_active_->set(active_.load(std::memory_order_relaxed));
    }
  }
}

void Server::handle_dirty(const std::shared_ptr<Loop>& loop) {
  std::vector<std::weak_ptr<Conn>> dirty;
  {
    std::lock_guard<std::mutex> lock(loop->mu);
    dirty.swap(loop->dirty);
  }
  for (const std::weak_ptr<Conn>& weak : dirty) {
    std::shared_ptr<Conn> conn = weak.lock();
    if (!conn || conn->closed) continue;
    drain_conn(loop, conn);
  }
}

void Server::drain_conn(const std::shared_ptr<Loop>& loop,
                        const std::shared_ptr<Conn>& conn) {
  std::vector<std::string> lines;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    lines.swap(conn->outbox);
  }
  for (std::string& line : lines) {
    conn->wbuf += line;
    conn->wbuf += '\n';
    responses_.inc();
    add_counter(m_responses_);
  }
  conn->inflight -= lines.size();
  bool queued = !lines.empty();
  if (conn->pending_control && conn->inflight == 0) {
    Conn::PendingControl control = std::move(*conn->pending_control);
    conn->pending_control.reset();
    conn->wbuf += backend_->control(control.line, control.line_no);
    conn->wbuf += '\n';
    responses_.inc();
    add_counter(m_responses_);
    queued = true;
  }
  // Queuing output counts as activity: the idle clock then measures the
  // CLIENT's failure to read these responses, not our own compute time.
  if (queued) conn->last_activity = std::chrono::steady_clock::now();
  // Parsing may have paused on the inflight or write-buffer caps.
  process_rbuf(loop, conn);
  if (conn->closed) return;
  flush_writes(loop, conn);
  if (conn->closed) return;
  if (conn->read_closed && drained(*conn)) {
    close_conn(loop, conn, /*forced=*/false);
    return;
  }
  update_interest(loop, conn);
}

void Server::handle_readable(const std::shared_ptr<Loop>& loop,
                             const std::shared_ptr<Conn>& conn) {
  char buf[65536];
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t got = 0;
  bool eof = false;
  while (got < kReadBurstBytes) {
    const ssize_t n = ::recv(conn->sock.get(), buf, sizeof(buf), 0);
    if (n > 0) {
      conn->rbuf.append(buf, static_cast<std::size_t>(n));
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    close_conn(loop, conn, /*forced=*/true);
    return;
  }
  if (got > 0) {
    bytes_read_.inc(got);
    add_counter(m_bytes_read_, got);
    conn->last_activity = std::chrono::steady_clock::now();
    conn->trace.complete(obs::SpanKind::kNetRead, t0, conn->last_activity,
                         got);
  }
  if (eof) conn->read_closed = true;
  // drain_conn (rather than process_rbuf + flush) so responses that
  // completed INLINE during parsing -- memo hits, error records, shed
  // queries -- reach the write buffer in this same pass instead of waiting
  // for their eventfd round-trip.
  drain_conn(loop, conn);
}

void Server::process_rbuf(const std::shared_ptr<Loop>& loop,
                          const std::shared_ptr<Conn>& conn) {
  std::string& rb = conn->rbuf;
  while (!conn->closed) {
    if (conn->discard) {
      // Dropping the rest of an oversized line (its error record is already
      // queued) up to and including the next newline.
      const std::size_t nl = rb.find('\n', conn->rpos);
      if (nl == std::string::npos) {
        rb.resize(conn->rpos);
        conn->scan_pos = conn->rpos;
        break;
      }
      conn->rpos = nl + 1;
      conn->scan_pos = conn->rpos;
      conn->discard = false;
      continue;
    }
    if (conn->pending_control ||
        conn->inflight >= config_.max_inflight_per_conn ||
        conn->unsent_bytes() >= config_.max_write_buffer) {
      break;  // backpressure: update_interest disarms EPOLLIN
    }
    const std::size_t from = std::max(conn->rpos, conn->scan_pos);
    const std::size_t nl = rb.find('\n', from);
    if (nl == std::string::npos) {
      conn->scan_pos = rb.size();
      const std::size_t cap = backend_->max_line_bytes();
      const std::size_t partial = rb.size() - conn->rpos;
      if (cap != 0 && partial > cap) {
        // Cannot keep buffering while waiting for this line's newline:
        // reject it now (the backend renders the over-cap error record) and
        // discard the remainder as it streams in.
        handle_line(loop, conn,
                    std::string_view(rb.data() + conn->rpos, partial));
        rb.resize(conn->rpos);
        conn->scan_pos = conn->rpos;
        conn->discard = true;
        continue;
      }
      if (conn->read_closed && partial > 0) {
        // Mid-line EOF: the final unterminated line is still a request.
        const std::string_view line(rb.data() + conn->rpos, partial);
        conn->rpos = rb.size();
        conn->scan_pos = rb.size();
        handle_line(loop, conn, line);
        continue;
      }
      break;
    }
    const std::string_view line(rb.data() + conn->rpos, nl - conn->rpos);
    conn->rpos = nl + 1;
    conn->scan_pos = conn->rpos;
    handle_line(loop, conn, line);
  }
  if (conn->rpos > 0) {
    rb.erase(0, conn->rpos);
    conn->scan_pos -= conn->rpos;
    conn->rpos = 0;
  }
}

void Server::handle_line(const std::shared_ptr<Loop>& /*loop*/,
                         const std::shared_ptr<Conn>& conn,
                         std::string_view line) {
  const int line_no = ++conn->line_no;
  const auto start = std::chrono::steady_clock::now();
  std::weak_ptr<Conn> weak = conn;
  std::shared_ptr<Loop> owner = conn->loop;
  obs::Histogram* rtt = m_rtt_us_;
  LineBackend::Outcome outcome = backend_->on_line(
      line, line_no,
      [weak = std::move(weak), owner = std::move(owner), start,
       rtt](std::string&& rendered) {
        // Runs on a service worker, a router upstream-reader thread, or
        // inline on the loop thread (memo hits / sheds): hand the line to
        // the owning loop.  A connection that died first simply drops the
        // response.
        if (rtt != nullptr) {
          rtt->observe(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count()));
        }
        std::shared_ptr<Conn> c = weak.lock();
        if (!c) return;
        {
          std::lock_guard<std::mutex> lock(c->mu);
          c->outbox.push_back(std::move(rendered));
        }
        {
          std::lock_guard<std::mutex> lock(owner->mu);
          owner->dirty.push_back(c);
        }
        owner->kick();
      });
  using Kind = LineBackend::Outcome::Kind;
  switch (outcome.kind) {
    case Kind::kSkip:
      return;
    case Kind::kRespond: {
      const std::size_t cap = backend_->max_line_bytes();
      if (cap != 0 && line.size() > cap) {
        oversized_lines_.fetch_add(1, std::memory_order_relaxed);
      }
      conn->wbuf += outcome.response;
      conn->wbuf += '\n';
      responses_.inc();
      add_counter(m_responses_);
      return;
    }
    case Kind::kControl:
      if (conn->inflight == 0) {
        conn->wbuf += backend_->control(line, line_no);
        conn->wbuf += '\n';
        responses_.inc();
        add_counter(m_responses_);
      } else {
        // Answer once this connection's earlier queries are all terminal,
        // so the promised counters reconcile; parsing pauses until then.
        conn->pending_control = Conn::PendingControl{std::string(line),
                                                     line_no};
      }
      return;
    case Kind::kSubmitted:
      ++conn->inflight;
      requests_.inc();
      add_counter(m_requests_);
      return;
  }
}

void Server::flush_writes(const std::shared_ptr<Loop>& loop,
                          const std::shared_ptr<Conn>& conn) {
  if (conn->closed || conn->unsent_bytes() == 0) return;
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t wrote = 0;
  while (conn->wpos < conn->wbuf.size()) {
    const ssize_t n =
        ::send(conn->sock.get(), conn->wbuf.data() + conn->wpos,
               conn->wbuf.size() - conn->wpos, MSG_NOSIGNAL);
    if (n > 0) {
      conn->wpos += static_cast<std::size_t>(n);
      wrote += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    close_conn(loop, conn, /*forced=*/true);
    return;
  }
  if (wrote > 0) {
    bytes_written_.inc(wrote);
    add_counter(m_bytes_written_, wrote);
    conn->last_activity = std::chrono::steady_clock::now();
    conn->trace.complete(obs::SpanKind::kNetWrite, t0, conn->last_activity,
                         wrote);
  }
  if (conn->wpos == conn->wbuf.size()) {
    conn->wbuf.clear();
    conn->wpos = 0;
  } else if (conn->wpos > (config_.max_write_buffer / 2)) {
    conn->wbuf.erase(0, conn->wpos);
    conn->wpos = 0;
  }
}

void Server::update_interest(const std::shared_ptr<Loop>& loop,
                             const std::shared_ptr<Conn>& conn) {
  if (conn->closed) return;
  // Discard mode must keep reading to find the oversized line's newline;
  // otherwise reading pauses under any backpressure condition.
  const bool paused = conn->pending_control ||
                      conn->inflight >= config_.max_inflight_per_conn ||
                      conn->unsent_bytes() >= config_.max_write_buffer;
  const bool want_read =
      !conn->read_closed && (conn->discard || !paused);
  const bool want_write = conn->unsent_bytes() > 0;
  const std::uint32_t events = (want_read ? static_cast<std::uint32_t>(
                                                EPOLLIN)
                                          : 0u) |
                               (want_write ? static_cast<std::uint32_t>(
                                                 EPOLLOUT)
                                           : 0u);
  if (events == conn->events) return;
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = conn->sock.get();
  if (::epoll_ctl(loop->epoll.get(), EPOLL_CTL_MOD, conn->sock.get(), &ev) ==
      0) {
    conn->events = events;
  }
}

void Server::close_conn(const std::shared_ptr<Loop>& loop,
                        const std::shared_ptr<Conn>& conn, bool forced) {
  if (conn->closed) return;
  conn->closed = true;
  (void)::epoll_ctl(loop->epoll.get(), EPOLL_CTL_DEL, conn->sock.get(),
                    nullptr);
  loop->conns.erase(conn->sock.get());
  conn->sock.reset();
  closed_.fetch_add(1, std::memory_order_relaxed);
  add_counter(m_closed_);
  if (forced) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    add_counter(m_dropped_);
  }
  active_.fetch_sub(1, std::memory_order_relaxed);
  if (m_active_ != nullptr) {
    m_active_->set(active_.load(std::memory_order_relaxed));
  }
}

void Server::sweep_idle(const std::shared_ptr<Loop>& loop) {
  const auto now = std::chrono::steady_clock::now();
  std::vector<std::shared_ptr<Conn>> victims;
  for (const auto& [fd, conn] : loop->conns) {
    // A connection waiting on its own long-running queries is not idle --
    // the silence is ours, not the client's.  Unsent response bytes do NOT
    // hold a connection open, though: last_activity advances whenever
    // responses are queued or the socket accepts bytes, so a client that
    // fills its window and stops reading for a full idle period is dropped
    // instead of pinning its write buffer forever (EPOLLOUT never fires
    // for a peer that stops reading).
    if (conn->inflight == 0 && !conn->pending_control &&
        now - conn->last_activity >= config_.idle_timeout) {
      victims.push_back(conn);
    }
  }
  for (const std::shared_ptr<Conn>& conn : victims) {
    close_conn(loop, conn, /*forced=*/true);
  }
}

}  // namespace wfc::net
