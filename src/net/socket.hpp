// POSIX socket primitives for wfc::net -- a RAII fd, "host:port" parsing,
// and the listen/connect helpers shared by the server, the client library,
// and the load generator.  Linux-only (epoll lives in server.cpp; this file
// is plain Berkeley sockets + fcntl).
//
// Everything reports failure with std::system_error carrying errno, so
// callers see "bind: address already in use" instead of a bare -1.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>

namespace wfc::net {

/// Owning file descriptor: closes on destruction, move-only.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int release() { return std::exchange(fd_, -1); }
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// An IPv4 "host:port" endpoint.  Port 0 asks the kernel for an ephemeral
/// port (the bound port is readable back via listen_tcp's out-param).
struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// Parses "host:port" ("127.0.0.1:7777", ":0" for any port on localhost).
/// Throws std::invalid_argument on malformed input.
Endpoint parse_endpoint(const std::string& spec);

/// Creates a nonblocking listening socket bound to `ep` (SO_REUSEADDR,
/// numeric IPv4 host only).  On return *bound_port is the actual port
/// (resolves port 0).  Throws std::system_error.
Fd listen_tcp(const Endpoint& ep, std::uint16_t* bound_port, int backlog = 128);

/// Blocking connect to `ep` with TCP_NODELAY.  Throws std::system_error.
/// A nonzero `timeout` bounds the connect attempt: past it the call throws
/// std::system_error(ETIMEDOUT) instead of blocking for the kernel's SYN
/// retry budget (minutes) -- required plumbing for breaker probes and
/// hedged requests, which must fail fast on a dead shard.
Fd connect_tcp(const Endpoint& ep,
               std::chrono::milliseconds timeout = std::chrono::milliseconds{
                   0});

/// fcntl(O_NONBLOCK) toggle.  Throws std::system_error.
void set_nonblocking(int fd, bool nonblocking);

/// setsockopt(TCP_NODELAY) -- response lines are latency-sensitive and tiny.
void set_nodelay(int fd);

}  // namespace wfc::net
