#include "net/client.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>
#include <system_error>

namespace wfc::net {

namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

/// poll() for `events` until `deadline`; throws TimeoutError past it.
void poll_or_timeout(int fd, short events, Clock::time_point deadline,
                     const char* what) {
  while (true) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (left.count() <= 0) throw TimeoutError(what);
    pollfd pfd{fd, events, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(left.count()));
    if (ready > 0) return;
    if (ready < 0 && errno != EINTR) throw_errno("poll");
  }
}

}  // namespace

Client::Client(ClientConfig config) : config_(std::move(config)) {
  sock_ = connect_tcp(config_.server, config_.connect_timeout);
}

void Client::send_line(std::string_view line) {
  std::string framed;
  framed.reserve(line.size() + 1);
  framed.append(line);
  framed.push_back('\n');
  send_raw(framed);
}

void Client::send_raw(std::string_view bytes) {
  const bool bounded = config_.send_timeout.count() > 0;
  const Clock::time_point deadline =
      bounded ? Clock::now() + config_.send_timeout : Clock::time_point::max();
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(sock_.get(), bytes.data() + sent,
                             bytes.size() - sent,
                             MSG_NOSIGNAL | (bounded ? MSG_DONTWAIT : 0));
    if (n >= 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (bounded && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      poll_or_timeout(sock_.get(), POLLOUT, deadline,
                      "send timed out (peer not draining)");
      continue;
    }
    throw_errno("send");
  }
}

void Client::shutdown_write() {
  if (sock_.valid()) (void)::shutdown(sock_.get(), SHUT_WR);
}

std::optional<std::string> Client::recv_line() {
  const Clock::time_point recv_deadline =
      config_.recv_timeout.count() > 0 ? Clock::now() + config_.recv_timeout
                                       : Clock::time_point::max();
  while (true) {
    const std::size_t nl = rbuf_.find('\n', rpos_);
    if (nl != std::string::npos) {
      if (config_.max_line_bytes != 0 && nl - rpos_ > config_.max_line_bytes) {
        throw std::runtime_error("response line exceeds " +
                                 std::to_string(config_.max_line_bytes) +
                                 " bytes");
      }
      std::string line = rbuf_.substr(rpos_, nl - rpos_);
      rpos_ = nl + 1;
      // Compact once the consumed prefix dominates.
      if (rpos_ > 4096 && rpos_ * 2 > rbuf_.size()) {
        rbuf_.erase(0, rpos_);
        rpos_ = 0;
      }
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    if (eof_) {
      // A final unterminated line would be a framing bug on the server
      // side; surface it rather than silently dropping bytes.
      if (rpos_ < rbuf_.size()) {
        std::string line = rbuf_.substr(rpos_);
        rpos_ = rbuf_.size();
        return line;
      }
      return std::nullopt;
    }
    if (config_.max_line_bytes != 0 &&
        rbuf_.size() - rpos_ > config_.max_line_bytes) {
      throw std::runtime_error("response line exceeds " +
                               std::to_string(config_.max_line_bytes) +
                               " bytes");
    }
    if (config_.recv_timeout.count() > 0) {
      // Wait for readability up to the timeout BEFORE the blocking recv, so
      // a dead or stalled peer cannot park the caller forever.  One window
      // covers the whole recv_line() call, however many reads it takes.
      poll_or_timeout(sock_.get(), POLLIN, recv_deadline,
                      "recv timed out (no response from peer)");
    }
    char buf[65536];
    const ssize_t n = ::recv(sock_.get(), buf, sizeof(buf), 0);
    if (n > 0) {
      rbuf_.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      eof_ = true;
      continue;
    }
    if (errno == EINTR) continue;
    throw_errno("recv");
  }
}

std::string Client::roundtrip(std::string_view line) {
  send_line(line);
  std::optional<std::string> response = recv_line();
  if (!response) {
    throw std::runtime_error("server closed the connection mid-request");
  }
  return *std::move(response);
}

}  // namespace wfc::net
