// wfc::net::ChaosProxy -- a seeded, deterministic TCP fault-injection
// proxy for the cluster tier (wfc::chaosnet).
//
// The proxy sits between the router and its shards: each configured LINK
// is one listening port forwarding raw bytes to one upstream endpoint, and
// each link carries a runtime-switchable FaultSpec shaping BOTH directions
// of every connection on it:
//
//   none       relay verbatim (the control arm)
//   latency    hold each chunk for latency +/- jitter before delivery
//   bandwidth  token-bucket the delivered bytes to bytes_per_sec
//   corrupt    flip each byte with probability corrupt_prob (seeded)
//   blackhole  accept and read, deliver NOTHING either way (a partition
//              that keeps every socket innocently open)
//   rst        hard-reset every connection (SO_LINGER 0) and keep
//              resetting new ones until the mode changes -- "RST mid-line"
//   trickle    slow-loris: deliver trickle_bytes every trickle_interval
//   half_open  requests flow upstream, responses are dropped -- the gray
//              failure where a shard does the work and nobody hears it
//
// Determinism: every random draw (corruption bytes, latency jitter) comes
// from a SplitMix64 stream seeded from (config seed, link index, flow
// serial, direction), so a regime replays byte-for-byte under the same
// seed and input -- chaosnet_test asserts it.  The relay itself is ONE
// thread running a rebuilt poll() set per pass: interest depends on shaped
// queue state and chunk release times, which a static epoll interest set
// cannot express, and the fault matrix tops out at tens of sockets.  The
// admin port stays on the epoll front door: ChaosProxy is a LineBackend,
// so wfc_chaosnet serves its JSONL admin protocol through the same
// net::Server machinery as every other tier:
//
//   {"op":"fault","link":"s1","mode":"latency","ms":200,"jitter_ms":50}
//   {"op":"fault","link":"*","mode":"none"}         ("*" = every link)
//   {"op":"chaos_stats"}                            per-link counters
//   {"op":"info"}                                   identity/links/seed
//
// Fault flips take effect on the next relay pass (the admin thread pokes
// the relay's wake pipe): bytes already shaped keep their stamps, new
// bytes are shaped under the new spec, and `rst` tears existing flows down
// immediately.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "net/backend.hpp"
#include "net/socket.hpp"

namespace wfc::net {

enum class FaultMode {
  kNone,
  kLatency,
  kBandwidth,
  kCorrupt,
  kBlackhole,
  kRst,
  kTrickle,
  kHalfOpen,
};

/// "latency" <-> FaultMode::kLatency etc.; parse returns false on an
/// unknown name (the admin op answers invalid_argument).
[[nodiscard]] const char* fault_mode_name(FaultMode mode);
[[nodiscard]] bool parse_fault_mode(std::string_view name, FaultMode* out);

struct FaultSpec {
  FaultMode mode = FaultMode::kNone;
  /// kLatency: per-chunk hold, +/- uniform jitter.
  std::chrono::milliseconds latency{0};
  std::chrono::milliseconds jitter{0};
  /// kBandwidth: delivered-byte cap per direction.
  std::size_t bytes_per_sec = 0;
  /// kCorrupt: per-byte flip probability.
  double corrupt_prob = 0.0;
  /// kTrickle: chunk size / cadence of the slow-loris drip.
  std::size_t trickle_bytes = 1;
  std::chrono::milliseconds trickle_interval{20};
};

struct ChaosLinkSpec {
  std::string id;
  /// Port 0 binds ephemeral; read the result back with port(id).
  Endpoint listen;
  Endpoint upstream;
};

struct ChaosProxyConfig {
  std::vector<ChaosLinkSpec> links;
  /// Seed for every deterministic draw; same seed + same input bytes =
  /// same output bytes.
  std::uint64_t seed = 1;
  /// Per-direction shaped-buffer cap; past it the proxy stops reading the
  /// source socket (backpressure propagates, the proxy never balloons).
  std::size_t max_buffer = 8u << 20;
  /// Upstream connect bound per new flow.
  std::chrono::milliseconds connect_timeout{1'000};
  std::function<void(const std::string&)> log;
};

class ChaosProxy : public LineBackend {
 public:
  /// Binds every link's listener (so ports are known); throws
  /// std::system_error when a bind fails.
  explicit ChaosProxy(ChaosProxyConfig config);
  ~ChaosProxy() override;

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// Spawns the relay thread.  Idempotent.
  void start();
  /// Tears every flow down and joins the relay.  Idempotent.
  void stop();

  /// The bound port of `link` (0 for an unknown id).
  [[nodiscard]] std::uint16_t port(const std::string& link) const;

  /// Sets the fault regime on one link ("*" = all).  False on an unknown
  /// link.  Tests call this directly; the wire path is the fault op.
  bool set_fault(const std::string& link, const FaultSpec& spec);
  [[nodiscard]] FaultSpec fault(const std::string& link) const;

  struct LinkStats {
    std::uint64_t accepted = 0;           // downstream connections taken
    std::uint64_t upstream_failures = 0;  // connects to the shard that failed
    std::uint64_t bytes_up = 0;           // delivered downstream -> upstream
    std::uint64_t bytes_down = 0;         // delivered upstream -> downstream
    std::uint64_t corrupted_bytes = 0;
    std::uint64_t dropped_bytes = 0;      // blackhole / half_open discards
    std::uint64_t rsts = 0;               // connections hard-reset
  };
  [[nodiscard]] LinkStats link_stats(const std::string& link) const;

  // -- net::LineBackend (the JSONL admin port) --------------------------
  // Every admin op answers immediately (kRespond): the proxy holds no
  // inflight work of its own, so nothing needs the control-op gating.
  Outcome on_line(std::string_view line, int line_no, Done done) override;
  std::string control(std::string_view line, int line_no) override;
  [[nodiscard]] std::size_t max_line_bytes() const override {
    return 1u << 16;
  }

 private:
  struct Link;
  struct Flow;
  struct Pipe;

  std::string handle_fault(const svc::Fields& fields, const std::string& id);
  std::string render_chaos_stats(const std::string& id);
  std::string render_info(const std::string& id);

  void relay_thread();
  void accept_on(Link& link);
  /// Reads from pipe.src and shapes the bytes under the link's current
  /// spec; returns false when the flow must die (error on the socket).
  bool pump_read(Link& link, Pipe& pipe);
  /// Writes due chunks to pipe.dst; returns false when the flow must die.
  bool pump_write(Link& link, Pipe& pipe,
                  std::chrono::steady_clock::time_point now);
  void hard_reset(Link& link, Flow& flow);
  void wake();

  ChaosProxyConfig config_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::unique_ptr<Flow>> flows_;  // relay thread only
  Fd wake_r_, wake_w_;                        // self-pipe for admin flips
  std::thread relay_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
};

}  // namespace wfc::net
