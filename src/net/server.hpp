// wfc::net::Server -- the epoll TCP front door.
//
// The server speaks a newline-framed line protocol over plaintext TCP and
// delegates every framed line to a LineBackend (backend.hpp).  The default
// backend executes the JSONL v2 protocol of service/handler.hpp against a
// local QueryService; cluster::Router plugs in as a proxying backend so the
// routing tier reuses this exact front end.  Responses carry the
// client-supplied "id" echo and MAY complete out of order -- each accepted
// request carries a completion callback, so a pipelined batch finishes in
// completion order, not submission order (the stdin front-end keeps
// ordered printing; the wire keeps throughput).
//
// Threading model:
//   * `io_threads` event loops, each with its own epoll instance and an
//     eventfd wakeup.  The listener is owned by loop 0; accepted
//     connections are handed out round-robin.
//   * All connection state except the outbox is touched ONLY by the owning
//     loop thread.  Service workers deliver completed responses by pushing
//     the rendered line into the connection's mutex-protected outbox and
//     kicking the loop's eventfd; the loop moves outbox lines into the
//     write buffer and flushes.
//
// Backpressure, bounded everywhere:
//   * per-connection inflight cap: parsing pauses (and EPOLLIN is
//     disarmed) while `max_inflight_per_conn` requests are unanswered;
//   * per-connection write-buffer cap: a slow reader stops being read
//     from until it drains its responses;
//   * per-line byte cap (HandlerConfig::max_line_bytes): an oversized line
//     answers {"status":"invalid_argument"} and is discarded up to the next
//     newline -- the connection survives;
//   * service-level admission control flows through unchanged: a shed
//     query completes its callback with kOverloaded + retry_after_ms, which
//     renders onto the wire like any other envelope.
//
// Control ops ({"op":"stats"|"metrics"|"trace"}) promise counters that
// reconcile with everything submitted before them, so the connection stops
// parsing until its own inflight count reaches zero, answers the control
// op, then resumes.  Path-bearing control ops (metrics/trace naming a
// filesystem "path") are rejected on this transport: the default
// HandlerConfig::allow_control_paths stays off, because a remote client
// must not be able to create or truncate server-side files.
//
// Lifecycle: start() binds and spawns the loops; stop() closes everything
// immediately; drain() (the SIGTERM path) closes the listener, lets
// inflight queries finish and flushes their responses, then closes --
// bounded by `drain_timeout`.  Idle connections (no traffic for
// `idle_timeout`) are closed by their loop.  The Server must be destroyed
// BEFORE the QueryService it serves (completion callbacks hold weak
// references, so late completions after stop() are safely dropped).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/backend.hpp"
#include "net/socket.hpp"
#include "service/handler.hpp"
#include "wf/counter.hpp"

namespace wfc::net {

struct ServerConfig {
  Endpoint listen;  // port 0 = ephemeral (read back via Server::port())
  /// Event-loop threads.  Loop 0 also owns the listener.
  int io_threads = 2;
  /// Per-line protocol behavior (envelope, line cap, default max_level).
  /// Used only by the QueryService constructor, which builds the
  /// ServiceBackend from it; a caller-supplied LineBackend carries its own
  /// configuration and ignores this field.
  svc::HandlerConfig handler;
  /// Unanswered requests per connection before parsing pauses.
  std::size_t max_inflight_per_conn = 128;
  /// Buffered unsent response bytes per connection before reading pauses.
  std::size_t max_write_buffer = 4u << 20;
  /// Close connections with no traffic for this long; zero disables.  A
  /// client with unsent responses that makes no read progress for a full
  /// idle period counts as idle (and is force-closed) -- its silence pins
  /// up to max_write_buffer of rendered responses otherwise.
  std::chrono::milliseconds idle_timeout{0};
  /// SO_SNDBUF for accepted sockets; 0 keeps the kernel default.  Small
  /// values surface write backpressure after a few KB (a tuning / test
  /// knob; the idle-timeout tests rely on it).
  int sndbuf_bytes = 0;
  /// drain(): force-close connections still busy past this deadline.
  std::chrono::milliseconds drain_timeout{10'000};
};

class Server {
 public:
  /// Wire-level counters, all monotone except `active`.  Always on
  /// (lifecycle counts are plain atomics, per-line/per-byte counts are
  /// sharded wf::Counters); mirrored into the service's obs registry when
  /// observability is enabled.
  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t closed = 0;      // every close, any reason
    std::uint64_t dropped = 0;     // forced: error / idle timeout / drain cap
    std::uint64_t active = 0;
    std::uint64_t requests = 0;    // lines submitted as queries
    std::uint64_t responses = 0;   // envelope lines queued to the wire
    std::uint64_t bytes_read = 0;
    std::uint64_t bytes_written = 0;
    std::uint64_t oversized_lines = 0;
  };

  /// Serve a local QueryService through the shared protocol handler
  /// (ServiceBackend built from config.handler); `service` must outlive the
  /// Server.
  Server(svc::QueryService& service, ServerConfig config);
  /// Serve an arbitrary line protocol; `backend` must outlive the Server.
  Server(LineBackend& backend, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the io threads.  Throws std::system_error
  /// (bind/listen failure) or std::invalid_argument (bad address).
  void start();

  /// The bound listening port (valid after start(); resolves port 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Immediate shutdown: closes the listener and every connection without
  /// waiting for inflight queries (their completions are dropped).
  /// Idempotent.
  void stop();

  /// Graceful shutdown: stop accepting, keep serving until every
  /// connection's inflight queries have answered and flushed (or
  /// drain_timeout passes, then force-close), then stop.  Idempotent with
  /// stop().
  void drain();

  [[nodiscard]] Stats stats() const;

 private:
  struct Loop;
  struct Conn;

  void loop_thread(const std::shared_ptr<Loop>& loop, bool is_acceptor);
  void handle_accept(const std::shared_ptr<Loop>& loop);
  void adopt_incoming(const std::shared_ptr<Loop>& loop);
  void handle_dirty(const std::shared_ptr<Loop>& loop);
  /// Moves completed outbox lines into the write buffer, answers a gated
  /// control op once inflight hits zero, resumes parsing, flushes, and
  /// closes if fully drained.  The shared tail of the dirty and readable
  /// paths.
  void drain_conn(const std::shared_ptr<Loop>& loop,
                  const std::shared_ptr<Conn>& conn);
  void handle_readable(const std::shared_ptr<Loop>& loop,
                       const std::shared_ptr<Conn>& conn);
  void process_rbuf(const std::shared_ptr<Loop>& loop,
                    const std::shared_ptr<Conn>& conn);
  void handle_line(const std::shared_ptr<Loop>& loop,
                   const std::shared_ptr<Conn>& conn, std::string_view line);
  void flush_writes(const std::shared_ptr<Loop>& loop,
                    const std::shared_ptr<Conn>& conn);
  void update_interest(const std::shared_ptr<Loop>& loop,
                       const std::shared_ptr<Conn>& conn);
  void close_conn(const std::shared_ptr<Loop>& loop,
                  const std::shared_ptr<Conn>& conn, bool forced);
  void sweep_idle(const std::shared_ptr<Loop>& loop);
  /// True once a draining connection has nothing left to do.
  static bool drained(const Conn& conn);
  void init_metrics();

  ServerConfig config_;
  /// Set by the QueryService constructor flavor; backend_ points at it.
  std::unique_ptr<ServiceBackend> owned_backend_;
  LineBackend* backend_ = nullptr;
  std::uint16_t port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  std::chrono::steady_clock::time_point drain_deadline_{};

  Fd listener_;
  std::vector<std::shared_ptr<Loop>> loops_;
  std::vector<std::thread> threads_;
  std::atomic<std::uint32_t> next_loop_{0};

  // Wire counters (see Stats).  Connection-lifecycle counts stay plain
  // atomics (accept/close are rare); the per-line / per-byte hot counters
  // are sharded wf::Counters so io loops never contend on one cache line.
  std::atomic<std::uint64_t> accepted_{0}, closed_{0}, dropped_{0},
      active_{0}, oversized_lines_{0};
  wf::Counter requests_, responses_, bytes_read_, bytes_written_;

  // Obs mirrors; null when the service's observability layer is disabled.
  obs::Counter* m_accepted_ = nullptr;
  obs::Counter* m_closed_ = nullptr;
  obs::Counter* m_dropped_ = nullptr;
  obs::Counter* m_requests_ = nullptr;
  obs::Counter* m_responses_ = nullptr;
  obs::Counter* m_bytes_read_ = nullptr;
  obs::Counter* m_bytes_written_ = nullptr;
  obs::Gauge* m_active_ = nullptr;
  obs::Histogram* m_rtt_us_ = nullptr;
};

}  // namespace wfc::net
