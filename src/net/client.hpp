// wfc::net::Client -- a small blocking client for the JSONL v2 TCP
// protocol (net/server.hpp).
//
// The client is deliberately simple: one blocking socket, newline framing
// handled internally, no background threads.  Pipelining is the caller's
// job -- send as many lines as you like, then read responses as they
// arrive; the server may answer out of order, so match on the "id" echo.
// One Client is NOT thread-safe; use one per thread (the load generator
// does exactly that).
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "net/socket.hpp"

namespace wfc::net {

/// Thrown by Client when a configured connect/recv/send timeout expires.
/// Distinct from std::system_error so callers (the router's hedging and
/// breaker probes) can tell "the peer is slow" from "the peer is broken".
class TimeoutError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct ClientConfig {
  Endpoint server;
  /// recv_line() rejects response lines longer than this (protects the
  /// client from a runaway peer).  0 disables.
  std::size_t max_line_bytes = 8u << 20;
  /// Bound on the connect attempt; past it the constructor throws
  /// std::system_error(ETIMEDOUT).  0 = block for the kernel's SYN budget.
  std::chrono::milliseconds connect_timeout{0};
  /// recv_line() throws TimeoutError after this long with no bytes from the
  /// peer (a stalled or dead server no longer blocks the caller forever;
  /// buffered complete lines are always returned first).  0 disables.
  std::chrono::milliseconds recv_timeout{0};
  /// send_line()/send_raw() throw TimeoutError when the peer's window stays
  /// full for this long (a reader that stopped draining).  0 disables.
  std::chrono::milliseconds send_timeout{0};
};

class Client {
 public:
  /// Connects immediately; throws std::system_error on failure.
  explicit Client(ClientConfig config);

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Sends one request line (the trailing newline is added here; `line`
  /// must not contain one).  Throws std::system_error if the peer is gone.
  void send_line(std::string_view line);

  /// Sends pre-framed bytes as-is (the caller supplies the newlines).  One
  /// syscall for a whole pipelined batch; the load generator's closed loop
  /// uses this to refill its window.
  void send_raw(std::string_view bytes);

  /// Half-closes the write side: the server sees EOF, answers everything
  /// already sent, then closes.  The read side stays open.
  void shutdown_write();

  /// Blocks for the next response line (without its newline).  Returns
  /// nullopt at server EOF.  Throws std::system_error on socket errors,
  /// std::runtime_error past max_line_bytes, and TimeoutError once
  /// recv_timeout passes without progress.
  std::optional<std::string> recv_line();

  /// Convenience for strictly serial request/response exchanges: sends
  /// `line`, returns the next response line.  Throws std::runtime_error if
  /// the server closed instead of answering.  Only meaningful with nothing
  /// else inflight.
  std::string roundtrip(std::string_view line);

  [[nodiscard]] bool connected() const { return sock_.valid(); }
  /// The raw socket, for callers that poll readability between sends (the
  /// load generator's open-loop pacing).
  [[nodiscard]] int fd() const { return sock_.get(); }
  /// True once recv_line() has returned every buffered line and seen EOF.
  [[nodiscard]] bool buffered_empty() const { return rpos_ >= rbuf_.size(); }

 private:
  Fd sock_;
  ClientConfig config_;
  std::string rbuf_;
  std::size_t rpos_ = 0;
  bool eof_ = false;
};

}  // namespace wfc::net
