#include "net/loadgen.hpp"

#include <poll.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <istream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "net/client.hpp"
#include "service/jsonl.hpp"

namespace wfc::net {

namespace {

using Clock = std::chrono::steady_clock;

bool is_error_status(const std::string& status) {
  return status == "cancelled" || status == "deadline_exceeded" ||
         status == "overloaded" || status == "resource_exhausted" ||
         status == "invalid_argument" || status == "internal";
}

/// Per-connection tallies, merged after the join.
struct ThreadOutcome {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t errors = 0;
  std::uint64_t lost = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t unmatched = 0;
  std::vector<std::uint64_t> latencies_us;
  std::map<std::string, std::uint64_t> by_status;
  std::map<std::string, std::uint64_t> by_model;
  std::string failure;  // nonempty: the thread died on this exception
};

}  // namespace

std::string strip_field(const std::string& line, std::string_view key) {
  std::string needle;
  needle.reserve(key.size() + 2);
  needle += '"';
  needle += key;
  needle += '"';
  std::size_t pos = 0;
  while ((pos = line.find(needle, pos)) != std::string::npos) {
    // A top-level key is preceded (modulo whitespace) by '{' or ','.
    std::size_t before = pos;
    while (before > 0 && std::isspace(static_cast<unsigned char>(
                             line[before - 1]))) {
      --before;
    }
    const bool key_position =
        before > 0 && (line[before - 1] == '{' || line[before - 1] == ',');
    std::size_t after = pos + needle.size();
    while (after < line.size() &&
           std::isspace(static_cast<unsigned char>(line[after]))) {
      ++after;
    }
    if (!key_position || after >= line.size() || line[after] != ':') {
      pos += needle.size();  // matched inside a value; keep looking
      continue;
    }
    ++after;  // past ':'
    while (after < line.size() &&
           std::isspace(static_cast<unsigned char>(line[after]))) {
      ++after;
    }
    if (after < line.size() && line[after] == '"') {
      ++after;
      while (after < line.size() && line[after] != '"') {
        after += line[after] == '\\' ? 2 : 1;
      }
      if (after < line.size()) ++after;  // past the closing quote
    } else {
      while (after < line.size() && line[after] != ',' &&
             line[after] != '}') {
        ++after;
      }
    }
    // Absorb exactly one separating comma (trailing preferred).
    std::size_t cut_from = pos;
    while (after < line.size() &&
           std::isspace(static_cast<unsigned char>(line[after]))) {
      ++after;
    }
    if (after < line.size() && line[after] == ',') {
      ++after;
    } else if (line[before - 1] == ',') {
      cut_from = before - 1;
    }
    return line.substr(0, cut_from) + line.substr(after);
  }
  return line;
}

std::string strip_id_field(const std::string& line) {
  return strip_field(line, "id");
}

std::vector<std::string> load_corpus(std::istream& in) {
  std::vector<std::string> corpus;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    try {
      (void)svc::parse_flat_json(line);
    } catch (const std::exception& e) {
      throw std::invalid_argument("corpus line " + std::to_string(line_no) +
                                  ": " + e.what());
    }
    corpus.push_back(strip_id_field(line));
  }
  return corpus;
}

namespace {

/// Splices `field_text` (a rendered "key":value) in as the first field of a
/// flat JSON object known not to contain that key.
std::string splice_front(const std::string& stripped,
                         const std::string& field_text) {
  // stripped is a validated flat object, so it starts with '{'.
  std::size_t body = 1;
  while (body < stripped.size() &&
         std::isspace(static_cast<unsigned char>(stripped[body]))) {
    ++body;
  }
  const bool empty_object = body < stripped.size() && stripped[body] == '}';
  std::string out;
  out.reserve(stripped.size() + field_text.size() + 2);
  out += '{';
  out += field_text;
  if (!empty_object) out += ',';
  out.append(stripped.data() + 1, stripped.size() - 1);
  return out;
}

}  // namespace

/// Stamps a unique id into an id-stripped corpus line.
std::string with_id(const std::string& stripped, const std::string& id) {
  return splice_front(stripped, "\"id\":\"" + id + "\"");
}

std::string with_model(const std::string& line, const std::string& model) {
  return splice_front(strip_field(line, "model"),
                      "\"model\":\"" + model + "\"");
}

namespace {

/// Whether the handler accepts a "model" field on this request line: solve
/// (including legacy bare {"task":...} lines), convergence, and checks of
/// the default "sds" target do; emulate, other check targets, and control
/// ops reject or ignore it.
bool line_takes_model(const std::string& line) {
  std::map<std::string, std::string> fields;
  try {
    fields = svc::parse_flat_json(line);
  } catch (const std::exception&) {
    return false;
  }
  const auto op_it = fields.find("op");
  const std::string op = op_it == fields.end() ? "solve" : op_it->second;
  if (op == "solve" || op == "convergence") return true;
  if (op == "check") {
    const auto target = fields.find("target");
    return target == fields.end() || target->second == "sds";
  }
  return false;
}

/// One sendable corpus entry after model-mix expansion.
struct CorpusEntry {
  std::string line;   // id-stripped, model spliced in when applicable
  std::string model;  // tally key ("" = no mix configured)
};

void drive_connection(const LoadgenConfig& config,
                      const std::vector<CorpusEntry>& corpus, int thread_idx,
                      Clock::time_point start, ThreadOutcome* out) {
  try {
    Client client(ClientConfig{config.server});
    const std::uint64_t total =
        config.duration.count() > 0
            ? 0  // duration-bounded instead
            : static_cast<std::uint64_t>(std::max(1, config.iterations)) *
                  corpus.size();
    const Clock::time_point deadline =
        config.duration.count() > 0 ? start + config.duration
                                    : Clock::time_point::max();
    // Open loop: this connection's share of the target rate.
    const double per_conn_rate =
        config.rate > 0 ? config.rate / std::max(1, config.connections) : 0;
    std::unordered_map<std::string, Clock::time_point> outstanding;
    std::unordered_set<std::string> answered;
    std::string id_prefix = "t";  // built up to dodge a GCC 12 -Wrestrict
    id_prefix += std::to_string(thread_idx);  // false positive on operator+
    id_prefix += '-';
    std::uint64_t seq = 0;
    std::size_t next_line = 0;

    auto handle_response = [&](const std::string& line) {
      ++out->received;
      std::string id;
      std::string status;
      try {
        const auto fields = svc::parse_flat_json(line);
        if (auto it = fields.find("id"); it != fields.end()) id = it->second;
        if (auto it = fields.find("status"); it != fields.end()) {
          status = it->second;
        }
      } catch (const std::exception&) {
        // Unparseable response: counted as unmatched below (empty id).
      }
      if (is_error_status(status)) ++out->errors;
      ++out->by_status[status.empty() ? "none" : status];
      auto it = outstanding.find(id);
      if (it != outstanding.end()) {
        out->latencies_us.push_back(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - it->second)
                .count()));
        answered.insert(id);
        outstanding.erase(it);
      } else if (!id.empty() && answered.count(id) != 0) {
        ++out->duplicates;
      } else {
        ++out->unmatched;
      }
    };

    while (true) {
      const Clock::time_point now = Clock::now();
      const bool more_to_send = config.duration.count() > 0
                                    ? now < deadline
                                    : seq < total;
      if (!more_to_send && outstanding.empty()) break;
      bool can_send = more_to_send &&
                      outstanding.size() < config.max_inflight;
      Clock::time_point slot = now;
      if (can_send && per_conn_rate > 0) {
        slot = start + std::chrono::microseconds(static_cast<std::int64_t>(
                           static_cast<double>(seq) * 1e6 / per_conn_rate));
        if (slot > now) {
          // Not this connection's turn yet: drain responses while waiting.
          pollfd pfd{client.fd(), POLLIN, 0};
          const int wait_ms = static_cast<int>(std::max<std::int64_t>(
              1, std::chrono::duration_cast<std::chrono::milliseconds>(
                     slot - now)
                     .count()));
          const int ready = ::poll(&pfd, 1, wait_ms);
          if (ready <= 0 && Clock::now() < slot) continue;
          can_send = Clock::now() >= slot;
          if (!can_send) {
            std::optional<std::string> line = client.recv_line();
            if (!line) break;  // premature server EOF
            handle_response(*line);
            continue;
          }
        }
      }
      if (can_send) {
        // Closed loop: refill the whole window in ONE send -- per-request
        // syscalls would dominate the wire cost.  Open loop sends one, so
        // the pacing stays per-request.
        std::string batch;
        do {
          const std::string id = id_prefix + std::to_string(seq);
          const CorpusEntry& entry = corpus[next_line];
          batch += with_id(entry.line, id);
          batch += '\n';
          if (!entry.model.empty()) ++out->by_model[entry.model];
          next_line = (next_line + 1) % corpus.size();
          outstanding.emplace(id, Clock::now());
          ++seq;
          ++out->sent;
        } while (per_conn_rate <= 0 &&
                 outstanding.size() < config.max_inflight &&
                 (config.duration.count() > 0 ? Clock::now() < deadline
                                              : seq < total));
        client.send_raw(batch);
        continue;
      }
      std::optional<std::string> line = client.recv_line();
      if (!line) break;  // premature server EOF: leftovers count as lost
      handle_response(*line);
    }
    out->lost += outstanding.size();
  } catch (const std::exception& e) {
    out->failure = e.what();
  }
}

std::uint64_t percentile(const std::vector<std::uint64_t>& sorted,
                         double p) {
  if (sorted.empty()) return 0;
  const std::size_t idx = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted.size())));
  return sorted[idx];
}

}  // namespace

LoadgenReport run_loadgen(const std::vector<std::string>& corpus,
                          const LoadgenConfig& config) {
  if (corpus.empty()) {
    throw std::invalid_argument("loadgen: empty corpus");
  }
  // Model-mix expansion: one pass of the corpus per model, model spliced
  // into every line the handler accepts it on.  Ineligible lines ride each
  // pass unchanged (tallied "none") so their share of the load is
  // preserved.
  std::vector<CorpusEntry> entries;
  if (config.models.empty()) {
    entries.reserve(corpus.size());
    for (const std::string& line : corpus) entries.push_back({line, ""});
  } else {
    entries.reserve(corpus.size() * config.models.size());
    for (const std::string& model : config.models) {
      for (const std::string& line : corpus) {
        if (line_takes_model(line)) {
          entries.push_back({with_model(line, model), model});
        } else {
          entries.push_back({line, "none"});
        }
      }
    }
  }
  const int connections = std::max(1, config.connections);
  std::vector<ThreadOutcome> outcomes(
      static_cast<std::size_t>(connections));
  std::vector<std::thread> threads;
  const Clock::time_point start = Clock::now();
  for (int i = 0; i < connections; ++i) {
    threads.emplace_back(drive_connection, std::cref(config),
                         std::cref(entries), i, start,
                         &outcomes[static_cast<std::size_t>(i)]);
  }
  for (std::thread& t : threads) t.join();
  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          Clock::now() - start)
          .count();

  LoadgenReport report;
  std::vector<std::uint64_t> latencies;
  std::string failure;
  for (ThreadOutcome& o : outcomes) {
    report.sent += o.sent;
    report.received += o.received;
    report.errors += o.errors;
    report.lost += o.lost;
    report.duplicates += o.duplicates;
    report.unmatched += o.unmatched;
    latencies.insert(latencies.end(), o.latencies_us.begin(),
                     o.latencies_us.end());
    for (const auto& [status, count] : o.by_status) {
      report.by_status[status] += count;
    }
    for (const auto& [model, count] : o.by_model) {
      report.by_model[model] += count;
    }
    if (failure.empty() && !o.failure.empty()) failure = o.failure;
  }
  if (!failure.empty()) {
    throw std::runtime_error("loadgen connection failed: " + failure);
  }
  std::sort(latencies.begin(), latencies.end());
  report.seconds = seconds;
  report.qps = seconds > 0 ? static_cast<double>(report.received) / seconds
                           : 0.0;
  report.p50_us = percentile(latencies, 0.50);
  report.p90_us = percentile(latencies, 0.90);
  report.p99_us = percentile(latencies, 0.99);
  report.p999_us = percentile(latencies, 0.999);
  report.max_us = latencies.empty() ? 0 : latencies.back();

  if (config.check_metrics) {
    Client probe(ClientConfig{config.server});
    const std::string line =
        probe.roundtrip(R"({"id":"loadgen-metrics","op":"metrics"})");
    bool reconciles = false;
    try {
      const auto fields = svc::parse_flat_json(line);
      auto it = fields.find("reconciles");
      reconciles = it != fields.end() && it->second == "true";
    } catch (const std::exception&) {
    }
    report.metrics_reconcile = reconciles;
  }
  return report;
}

std::string LoadgenReport::to_json() const {
  std::ostringstream os;
  os << "{\"sent\":" << sent << ",\"received\":" << received
     << ",\"errors\":" << errors << ",\"lost\":" << lost
     << ",\"duplicates\":" << duplicates << ",\"unmatched\":" << unmatched
     << ",\"exactly_once\":" << (exactly_once() ? "true" : "false");
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds);
  os << ",\"seconds\":" << buf;
  std::snprintf(buf, sizeof(buf), "%.1f", qps);
  os << ",\"qps\":" << buf;
  os << ",\"p50_us\":" << p50_us << ",\"p90_us\":" << p90_us
     << ",\"p99_us\":" << p99_us << ",\"p999_us\":" << p999_us
     << ",\"max_us\":" << max_us;
  // Status tokens are [a-z_] -- but a chaos regime can corrupt one in
  // flight, so anything else maps to '_' to keep the flat
  // "status_<token>" keys valid, jq-addressable JSON.  Sanitized
  // collisions merge into one key.
  std::map<std::string, std::uint64_t> clean;
  for (const auto& [status, count] : by_status) {
    std::string key = status;
    for (char& c : key) {
      if ((c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_') c = '_';
    }
    clean[key] += count;
  }
  for (const auto& [status, count] : clean) {
    os << ",\"status_" << status << "\":" << count;
  }
  // Model names carry punctuation ("t_resilient(1)"); same sanitization so
  // the keys stay jq-addressable.
  std::map<std::string, std::uint64_t> clean_models;
  for (const auto& [model, count] : by_model) {
    std::string key = model;
    for (char& c : key) {
      if ((c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_') c = '_';
    }
    clean_models[key] += count;
  }
  for (const auto& [model, count] : clean_models) {
    os << ",\"model_" << model << "\":" << count;
  }
  if (metrics_reconcile) {
    os << ",\"metrics_reconcile\":" << (*metrics_reconcile ? "true" : "false");
  }
  os << "}";
  return os.str();
}

}  // namespace wfc::net
