// wfc::net load generator -- drives a JSONL v2 server (net/server.hpp)
// with a corpus of request lines over N concurrent connections and verifies
// EXACTLY-ONCE delivery: every request is stamped with a unique "id", and
// the report counts lost (never answered), duplicated, and unmatched
// responses alongside throughput and latency percentiles.
//
// Two driving modes:
//   * closed loop (rate == 0): each connection keeps up to `max_inflight`
//     requests outstanding and sends as fast as the server answers;
//   * open loop (rate > 0): each connection paces sends to rate/connections
//     per second regardless of completions (up to the inflight cap), the
//     classic way to expose queueing collapse.
//
// Corpus lines are flat JSON requests (the examples/queries.jsonl shape);
// '#' comments and blanks are skipped, and any "id" the corpus carries is
// replaced by the generator's own unique ids.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/socket.hpp"

namespace wfc::net {

struct LoadgenConfig {
  Endpoint server;
  int connections = 1;
  /// Closed loop: passes over the corpus PER CONNECTION (total requests =
  /// connections * iterations * corpus size).  Ignored when duration is set.
  int iterations = 1;
  /// When nonzero, send for this long (looping the corpus) instead of a
  /// fixed iteration count.
  std::chrono::milliseconds duration{0};
  /// Pipelining window per connection.
  std::size_t max_inflight = 32;
  /// Open-loop target in requests/second across ALL connections; 0 = closed
  /// loop.
  double rate = 0.0;
  /// After the run, ask the server for {"op":"metrics"} on a fresh
  /// connection and record whether its counters reconcile.
  bool check_metrics = false;
  /// Model mix (wfc::model wire names).  Non-empty: the corpus is expanded
  /// to one pass per model, each pass sending every eligible line (solve /
  /// convergence / check target "sds") with that "model" field spliced in
  /// -- any corpus model field is replaced.  Ineligible lines are sent
  /// unchanged once per pass.  Effective corpus size becomes
  /// corpus * models, and the report tallies sends per model.
  std::vector<std::string> models;
};

struct LoadgenReport {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  /// Responses whose "status" is an error token of the transport taxonomy.
  std::uint64_t errors = 0;
  std::uint64_t lost = 0;        // sent but never answered
  std::uint64_t duplicates = 0;  // answered more than once
  std::uint64_t unmatched = 0;   // answered with an unknown / missing id
  double seconds = 0.0;
  double qps = 0.0;  // received / seconds
  std::uint64_t p50_us = 0;
  std::uint64_t p90_us = 0;
  std::uint64_t p99_us = 0;
  std::uint64_t p999_us = 0;
  std::uint64_t max_us = 0;
  /// Responses tallied by their "status" token ("none" when the response
  /// carried no status field) -- the per-regime breakdown a soak needs to
  /// tell fast-fail rejections from real answers.
  std::map<std::string, std::uint64_t> by_status;
  /// Set when LoadgenConfig::check_metrics: the server's own counters
  /// reconciled after the run.
  std::optional<bool> metrics_reconcile;
  /// Requests sent per injected model (LoadgenConfig::models); lines the
  /// mix could not apply to (emulate, non-sds checks) tally under "none".
  /// Empty when no model mix was configured.
  std::map<std::string, std::uint64_t> by_model;

  /// Every id answered exactly once.
  [[nodiscard]] bool exactly_once() const {
    return lost == 0 && duplicates == 0 && unmatched == 0;
  }
  /// One flat JSON line (BENCH_net.json-style fields).
  [[nodiscard]] std::string to_json() const;
};

/// Reads corpus lines from `in` ('#' and blanks skipped), validating each
/// as flat JSON and stripping any "id" field.  Throws std::invalid_argument
/// on a malformed line.
std::vector<std::string> load_corpus(std::istream& in);

/// Removes a top-level `key` field from a flat JSON line (no-op without
/// one).  Exposed for tests, the router's id splice, and the router's
/// deadline rewrite (timeout_ms).
std::string strip_field(const std::string& line, std::string_view key);

/// strip_field(line, "id") -- the original router id-splice entry point.
std::string strip_id_field(const std::string& line);

/// Inserts `id` (verbatim -- the caller escapes if needed) as the first
/// field of an id-stripped flat JSON line.  The other half of the router's
/// id splice; the load generator stamps its unique ids with it too.
std::string with_id(const std::string& stripped, const std::string& id);

/// Replaces any "model" field of a flat JSON line with `model` (wire name,
/// inserted as the line's first field).  Exposed for tests and the model
/// mix in run_loadgen.
std::string with_model(const std::string& line, const std::string& model);

/// Runs the generator; `corpus` must be load_corpus-shaped (no comments,
/// ids stripped).  Throws std::system_error if connecting fails and
/// std::invalid_argument on an empty corpus.
LoadgenReport run_loadgen(const std::vector<std::string>& corpus,
                          const LoadgenConfig& config);

}  // namespace wfc::net
