#include "net/backend.hpp"

namespace wfc::net {

LineBackend::Outcome ServiceBackend::on_line(std::string_view line,
                                             int line_no, Done done) {
  svc::RequestHandler::ParsedLine parsed = handler_.parse(line, line_no);
  using Action = svc::RequestHandler::Action;
  switch (parsed.action) {
    case Action::kSkip:
      return {Outcome::Kind::kSkip, {}};
    case Action::kRespond:
      return {Outcome::Kind::kRespond, std::move(parsed.immediate.line)};
    case Action::kControl:
      return {Outcome::Kind::kControl, {}};
    case Action::kSubmit:
      break;
  }
  svc::RequestHandler::Rendered error;
  const bool ok = handler_.submit_async(
      parsed,
      [done = std::move(done)](svc::RequestHandler::Rendered&& rendered) {
        done(std::move(rendered.line));
      },
      &error);
  if (!ok) return {Outcome::Kind::kRespond, std::move(error.line)};
  return {Outcome::Kind::kSubmitted, {}};
}

std::string ServiceBackend::control(std::string_view line, int line_no) {
  // Control lines are rare; re-parsing one beats carrying an opaque parsed
  // token through the transport's gating state.
  svc::RequestHandler::ParsedLine parsed = handler_.parse(line, line_no);
  return handler_.control(parsed).line;
}

}  // namespace wfc::net
