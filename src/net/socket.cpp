#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

namespace wfc::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

sockaddr_in make_addr(const Endpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  if (inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
    throw std::invalid_argument("not a numeric IPv4 address: \"" + ep.host +
                                "\"");
  }
  return addr;
}

}  // namespace

void Fd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Endpoint parse_endpoint(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos) {
    throw std::invalid_argument("endpoint \"" + spec +
                                "\" is not host:port");
  }
  Endpoint ep;
  if (colon != 0) ep.host = spec.substr(0, colon);
  const std::string port = spec.substr(colon + 1);
  try {
    std::size_t pos = 0;
    const int value = std::stoi(port, &pos);
    if (pos != port.size() || value < 0 || value > 65535) {
      throw std::invalid_argument(port);
    }
    ep.port = static_cast<std::uint16_t>(value);
  } catch (const std::exception&) {
    throw std::invalid_argument("endpoint \"" + spec +
                                "\": bad port \"" + port + "\"");
  }
  return ep;
}

Fd listen_tcp(const Endpoint& ep, std::uint16_t* bound_port, int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) throw_errno("socket");
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
      0) {
    throw_errno("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr = make_addr(ep);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw_errno("bind");
  }
  if (::listen(fd.get(), backlog) != 0) throw_errno("listen");
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&actual), &len) !=
        0) {
      throw_errno("getsockname");
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return fd;
}

Fd connect_tcp(const Endpoint& ep, std::chrono::milliseconds timeout) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) throw_errno("socket");
  sockaddr_in addr = make_addr(ep);
  if (timeout.count() <= 0) {
    int rc;
    do {
      rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) throw_errno("connect");
    set_nodelay(fd.get());
    return fd;
  }
  // Bounded connect: nonblocking connect, poll for writability up to the
  // deadline, then read the outcome back with SO_ERROR.
  set_nonblocking(fd.get(), true);
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    if (errno != EINPROGRESS) throw_errno("connect");
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (true) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) {
        errno = ETIMEDOUT;
        throw_errno("connect");
      }
      pollfd pfd{fd.get(), POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, static_cast<int>(left.count()));
      if (ready < 0) {
        if (errno == EINTR) continue;
        throw_errno("poll(connect)");
      }
      if (ready == 0) continue;  // re-check the deadline
      int err = 0;
      socklen_t len = sizeof(err);
      if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
        throw_errno("getsockopt(SO_ERROR)");
      }
      if (err != 0) {
        errno = err;
        throw_errno("connect");
      }
      break;
    }
  }
  set_nonblocking(fd.get(), false);
  set_nodelay(fd.get());
  return fd;
}

void set_nonblocking(int fd, bool nonblocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  const int next = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, next) != 0) throw_errno("fcntl(F_SETFL)");
}

void set_nodelay(int fd) {
  const int one = 1;
  // Best effort: TCP_NODELAY fails on AF_UNIX etc., which tests may use.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace wfc::net
