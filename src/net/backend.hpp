// net::LineBackend -- the seam between the epoll front tier (server.hpp)
// and whatever answers the lines.
//
// PR 6 splits the TCP server in two: the transport half (accept loops,
// framing, backpressure, idle sweep, graceful drain) is generic over any
// newline-framed protocol, and the protocol half is a LineBackend.  Two
// backends exist today:
//
//   * ServiceBackend (below) -- the PR-5 behavior: lines go through the
//     shared svc::RequestHandler into a local QueryService;
//   * cluster::Router (cluster/router.hpp) -- lines are consistent-hash
//     routed to remote wfc_serve shards over pooled clients.
//
// Contract per input line (the server calls on_line from its io threads,
// one call per framed line, line numbers 1-based per connection):
//
//   kSkip       blank / comment; no response line.
//   kRespond    `response` is the complete response, ready now (parse
//               errors, memoized rejections, oversized lines).
//   kControl    a control op whose answer must reconcile with everything
//               this CONNECTION submitted before it; the server waits for
//               the connection's inflight count to reach zero, then calls
//               control() with the same line.
//   kSubmitted  accepted for asynchronous completion; `done` will be
//               invoked with the rendered response EXACTLY ONCE, from any
//               thread (possibly inline, before on_line returns).  `done`
//               only enqueues and never throws.
//
// Lines longer than max_line_bytes() must come back kRespond with an error
// record -- the server also uses the bound to reject a line mid-stream,
// before its newline ever arrives.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>

#include "service/handler.hpp"

namespace wfc::net {

class LineBackend {
 public:
  /// Delivers one rendered response line (no trailing newline).  Calls may
  /// come from any thread; implementations only enqueue.
  using Done = std::function<void(std::string&&)>;

  struct Outcome {
    enum class Kind { kSkip, kRespond, kControl, kSubmitted };
    Kind kind = Kind::kSkip;
    std::string response;  // kRespond only
  };

  virtual ~LineBackend() = default;

  /// Classifies and (for kSubmitted) submits one input line.
  virtual Outcome on_line(std::string_view line, int line_no, Done done) = 0;

  /// Answers a line on_line classified kControl, after the server flushed
  /// the connection's inflight requests.
  virtual std::string control(std::string_view line, int line_no) = 0;

  /// Request-line byte bound; 0 disables.  The server rejects a line past
  /// the bound without buffering it to completion.
  [[nodiscard]] virtual std::size_t max_line_bytes() const = 0;

  /// The obs facade the server mirrors wire counters and connection spans
  /// into; null (or a disabled observer) leaves wire obs off.
  [[nodiscard]] virtual obs::Observer* observer() { return nullptr; }
};

/// The local-execution backend: lines feed a QueryService through the
/// transport-agnostic svc::RequestHandler, exactly as the stdin front-end
/// does.  One instance is safe to share across io threads.
class ServiceBackend : public LineBackend {
 public:
  ServiceBackend(svc::QueryService& service, svc::HandlerConfig config)
      : service_(service), handler_(service, std::move(config)) {}

  Outcome on_line(std::string_view line, int line_no, Done done) override;
  std::string control(std::string_view line, int line_no) override;
  [[nodiscard]] std::size_t max_line_bytes() const override {
    return handler_.config().max_line_bytes;
  }
  [[nodiscard]] obs::Observer* observer() override {
    return &service_.observer();
  }

 private:
  svc::QueryService& service_;
  svc::RequestHandler handler_;
};

}  // namespace wfc::net
