#include "net/chaosproxy.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <deque>
#include <system_error>
#include <utility>

#include "common/rng.hpp"
#include "common/version.hpp"
#include "service/jsonl.hpp"
#include "service/status.hpp"

namespace wfc::net {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kReadChunk = 64 * 1024;

std::string error_line(const std::string& id, int line_no, const char* status,
                       const std::string& message) {
  svc::JsonWriter w;
  if (!id.empty()) w.field("id", id);
  w.field("status", status).field("line", line_no).field("error", message);
  return w.str();
}

std::int64_t int_or(const svc::Fields& fields, const char* key,
                    std::int64_t fallback) {
  const auto it = fields.find(key);
  if (it == fields.end()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  return (end != nullptr && *end == '\0') ? v : fallback;
}

double double_or(const svc::Fields& fields, const char* key, double fallback) {
  const auto it = fields.find(key);
  if (it == fields.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return (end != nullptr && *end == '\0') ? v : fallback;
}

/// Compound-key segment for per-link chaos_stats fields (flat JSON has no
/// nesting; mirrors the router's key_safe).
std::string key_safe(const std::string& id) {
  std::string out = id;
  for (char& c : out) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_') c = '_';
  }
  return out;
}

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

const char* fault_mode_name(FaultMode mode) {
  switch (mode) {
    case FaultMode::kNone: return "none";
    case FaultMode::kLatency: return "latency";
    case FaultMode::kBandwidth: return "bandwidth";
    case FaultMode::kCorrupt: return "corrupt";
    case FaultMode::kBlackhole: return "blackhole";
    case FaultMode::kRst: return "rst";
    case FaultMode::kTrickle: return "trickle";
    case FaultMode::kHalfOpen: return "half_open";
  }
  return "none";
}

bool parse_fault_mode(std::string_view name, FaultMode* out) {
  for (const FaultMode mode :
       {FaultMode::kNone, FaultMode::kLatency, FaultMode::kBandwidth,
        FaultMode::kCorrupt, FaultMode::kBlackhole, FaultMode::kRst,
        FaultMode::kTrickle, FaultMode::kHalfOpen}) {
    if (name == fault_mode_name(mode)) {
      *out = mode;
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Internal structures.  Flows (and everything inside them) are owned by the
// relay thread; Links are shared with the admin path through link.mu and
// the atomic counters.

struct ChaosProxy::Link {
  std::string id;
  std::size_t index = 0;
  Endpoint upstream;
  Fd listener;
  std::uint16_t bound_port = 0;

  mutable std::mutex mu;  // guards spec
  FaultSpec spec;

  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> upstream_failures{0};
  std::atomic<std::uint64_t> bytes_up{0};
  std::atomic<std::uint64_t> bytes_down{0};
  std::atomic<std::uint64_t> corrupted_bytes{0};
  std::atomic<std::uint64_t> dropped_bytes{0};
  std::atomic<std::uint64_t> rsts{0};
  std::uint64_t flow_serial = 0;  // relay thread only

  [[nodiscard]] FaultSpec snapshot() const {
    std::lock_guard<std::mutex> lk(mu);
    return spec;
  }
};

/// One direction of a flow: bytes read from `src` are shaped into `queue`
/// and written to `dst` once their release time passes.
struct ChaosProxy::Pipe {
  int src = -1;  // borrowed from the Flow's Fds
  int dst = -1;
  bool to_upstream = false;  // direction label for counters / half_open

  struct Chunk {
    std::string data;
    Clock::time_point release;
  };
  std::deque<Chunk> queue;
  std::size_t queued_bytes = 0;
  std::size_t write_off = 0;  // partial-write offset into queue.front()
  bool src_eof = false;
  bool wr_shut = false;  // SHUT_WR already propagated to dst

  /// Deterministic per-direction stream: corruption and jitter draws.
  Rng rng{0};

  // Bandwidth token bucket (kBandwidth only).  bw_next is when the bucket
  // next holds a whole byte -- the poll pass must NOT arm POLLOUT before
  // it, or an empty bucket against a writable socket becomes a busy loop.
  double bw_tokens = 0.0;
  Clock::time_point bw_last{};
  Clock::time_point bw_next{};
};

struct ChaosProxy::Flow {
  Link* link = nullptr;
  Fd down;  // the router-facing socket
  Fd up;    // the shard-facing socket
  Pipe d2u;
  Pipe u2d;
  bool dead = false;
};

// ---------------------------------------------------------------------------
// Lifecycle.

ChaosProxy::ChaosProxy(ChaosProxyConfig config) : config_(std::move(config)) {
  std::size_t index = 0;
  for (const ChaosLinkSpec& spec : config_.links) {
    auto link = std::make_unique<Link>();
    link->id = spec.id;
    link->index = index++;
    link->upstream = spec.upstream;
    link->listener = listen_tcp(spec.listen, &link->bound_port);
    links_.push_back(std::move(link));
  }
  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0) {
    throw std::system_error(errno, std::generic_category(), "pipe");
  }
  wake_r_ = Fd(pipe_fds[0]);
  wake_w_ = Fd(pipe_fds[1]);
  set_nonblocking(wake_r_.get(), true);
  set_nonblocking(wake_w_.get(), true);
}

ChaosProxy::~ChaosProxy() { stop(); }

void ChaosProxy::start() {
  if (started_.exchange(true)) return;
  relay_ = std::thread([this] { relay_thread(); });
}

void ChaosProxy::stop() {
  if (!started_.load() || stopping_.exchange(true)) return;
  wake();
  if (relay_.joinable()) relay_.join();
}

void ChaosProxy::wake() {
  const char byte = 1;
  (void)!::write(wake_w_.get(), &byte, 1);
}

std::uint16_t ChaosProxy::port(const std::string& link) const {
  for (const auto& l : links_) {
    if (l->id == link) return l->bound_port;
  }
  return 0;
}

bool ChaosProxy::set_fault(const std::string& link, const FaultSpec& spec) {
  bool found = false;
  for (const auto& l : links_) {
    if (link != "*" && l->id != link) continue;
    {
      std::lock_guard<std::mutex> lk(l->mu);
      l->spec = spec;
    }
    found = true;
    if (config_.log) {
      config_.log("link " + l->id + " -> " + fault_mode_name(spec.mode));
    }
  }
  if (found) wake();
  return found;
}

FaultSpec ChaosProxy::fault(const std::string& link) const {
  for (const auto& l : links_) {
    if (l->id == link) return l->snapshot();
  }
  return FaultSpec{};
}

ChaosProxy::LinkStats ChaosProxy::link_stats(const std::string& link) const {
  LinkStats s;
  for (const auto& l : links_) {
    if (l->id != link) continue;
    s.accepted = l->accepted.load(std::memory_order_relaxed);
    s.upstream_failures = l->upstream_failures.load(std::memory_order_relaxed);
    s.bytes_up = l->bytes_up.load(std::memory_order_relaxed);
    s.bytes_down = l->bytes_down.load(std::memory_order_relaxed);
    s.corrupted_bytes = l->corrupted_bytes.load(std::memory_order_relaxed);
    s.dropped_bytes = l->dropped_bytes.load(std::memory_order_relaxed);
    s.rsts = l->rsts.load(std::memory_order_relaxed);
  }
  return s;
}

// ---------------------------------------------------------------------------
// The relay: one thread, a poll set rebuilt per pass.

void ChaosProxy::accept_on(Link& link) {
  for (;;) {
    Fd down(::accept(link.listener.get(), nullptr, nullptr));
    if (!down.valid()) return;  // EAGAIN (listener is nonblocking)
    link.accepted.fetch_add(1, std::memory_order_relaxed);
    const FaultSpec spec = link.snapshot();
    if (spec.mode == FaultMode::kRst) {
      // The regime refuses service the hard way: accept, then reset.
      linger hard{};
      hard.l_onoff = 1;
      hard.l_linger = 0;
      ::setsockopt(down.get(), SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
      link.rsts.fetch_add(1, std::memory_order_relaxed);
      continue;  // Fd closes -> RST
    }
    Fd up;
    try {
      up = connect_tcp(link.upstream, config_.connect_timeout);
    } catch (...) {
      link.upstream_failures.fetch_add(1, std::memory_order_relaxed);
      continue;  // downstream closes; the router sees a dead shard
    }
    set_nonblocking(down.get(), true);
    set_nonblocking(up.get(), true);
    set_nodelay(down.get());

    auto flow = std::make_unique<Flow>();
    flow->link = &link;
    const std::uint64_t serial = ++link.flow_serial;
    flow->down = std::move(down);
    flow->up = std::move(up);
    flow->d2u.src = flow->down.get();
    flow->d2u.dst = flow->up.get();
    flow->d2u.to_upstream = true;
    flow->d2u.rng = Rng(mix64(config_.seed ^ (link.index << 1)) ^ serial);
    flow->u2d.src = flow->up.get();
    flow->u2d.dst = flow->down.get();
    flow->u2d.to_upstream = false;
    flow->u2d.rng = Rng(mix64(config_.seed ^ ((link.index << 1) | 1)) ^ serial);
    flows_.push_back(std::move(flow));
  }
}

bool ChaosProxy::pump_read(Link& link, Pipe& pipe) {
  char buf[kReadChunk];
  const ssize_t n = ::recv(pipe.src, buf, sizeof(buf), 0);
  if (n < 0) {
    return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR;
  }
  if (n == 0) {
    pipe.src_eof = true;
    return true;
  }
  const FaultSpec spec = link.snapshot();
  const Clock::time_point now = Clock::now();
  const bool drop =
      spec.mode == FaultMode::kBlackhole ||
      (spec.mode == FaultMode::kHalfOpen && !pipe.to_upstream);
  if (drop) {
    link.dropped_bytes.fetch_add(static_cast<std::uint64_t>(n),
                                 std::memory_order_relaxed);
    return true;
  }
  std::string data(buf, static_cast<std::size_t>(n));
  if (spec.mode == FaultMode::kCorrupt && spec.corrupt_prob > 0) {
    // One draw per byte keeps the stream position-deterministic however
    // the kernel chunks the reads; the mask draw only happens on a flip.
    std::uint64_t flipped = 0;
    for (char& c : data) {
      if (pipe.rng.unit() < spec.corrupt_prob) {
        c = static_cast<char>(
            static_cast<unsigned char>(c) ^
            static_cast<unsigned char>(1 + pipe.rng.below(255)));
        ++flipped;
      }
    }
    link.corrupted_bytes.fetch_add(flipped, std::memory_order_relaxed);
  }
  if (spec.mode == FaultMode::kTrickle) {
    // Slow-loris: split into drips, each released one interval after the
    // previous pending drip (or now, when the queue is empty).
    const std::size_t step = std::max<std::size_t>(1, spec.trickle_bytes);
    Clock::time_point release =
        pipe.queue.empty() ? now : pipe.queue.back().release;
    for (std::size_t off = 0; off < data.size(); off += step) {
      release += spec.trickle_interval;
      pipe.queue.push_back(
          Pipe::Chunk{data.substr(off, step), release});
    }
  } else {
    Clock::time_point release = now;
    if (spec.mode == FaultMode::kLatency) {
      auto hold = spec.latency;
      if (spec.jitter.count() > 0) {
        const std::int64_t span = 2 * spec.jitter.count() + 1;
        hold += std::chrono::milliseconds(
            static_cast<std::int64_t>(pipe.rng.below(
                static_cast<std::uint64_t>(span))) -
            spec.jitter.count());
        if (hold.count() < 0) hold = std::chrono::milliseconds(0);
      }
      release = now + hold;
      // Delivery stays FIFO even when jitter re-orders stamps.
      if (!pipe.queue.empty() && release < pipe.queue.back().release) {
        release = pipe.queue.back().release;
      }
    }
    pipe.queue.push_back(Pipe::Chunk{std::move(data), release});
  }
  pipe.queued_bytes += static_cast<std::size_t>(n);
  return true;
}

bool ChaosProxy::pump_write(Link& link, Pipe& pipe, Clock::time_point now) {
  const FaultSpec spec = link.snapshot();
  const bool bandwidth =
      spec.mode == FaultMode::kBandwidth && spec.bytes_per_sec > 0;
  // Bandwidth: refill the bucket, then cap this pass's writes.
  std::size_t allowance = static_cast<std::size_t>(-1);
  if (bandwidth) {
    const double rate = static_cast<double>(spec.bytes_per_sec);
    if (pipe.bw_last.time_since_epoch().count() == 0) pipe.bw_last = now;
    const double dt =
        std::chrono::duration_cast<std::chrono::duration<double>>(now -
                                                                  pipe.bw_last)
            .count();
    pipe.bw_last = now;
    // Burst bound: a tenth of a second of credit, so a stall does not bank
    // an unbounded catch-up blast.
    pipe.bw_tokens = std::min(pipe.bw_tokens + dt * rate, rate / 10.0 + 1.0);
    allowance = static_cast<std::size_t>(std::max(0.0, pipe.bw_tokens));
    if (allowance == 0) {
      pipe.bw_next = now + std::chrono::microseconds(static_cast<std::int64_t>(
                               (1.0 - pipe.bw_tokens) * 1e6 / rate) +
                           1);
      return true;
    }
  } else {
    pipe.bw_next = Clock::time_point{};
  }
  std::size_t written_total = 0;
  while (!pipe.queue.empty() && written_total < allowance) {
    Pipe::Chunk& front = pipe.queue.front();
    if (front.release > now) break;
    const std::size_t want = std::min(front.data.size() - pipe.write_off,
                                      allowance - written_total);
    const ssize_t n = ::send(pipe.dst, front.data.data() + pipe.write_off,
                             want, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      return false;  // peer reset / gone
    }
    pipe.write_off += static_cast<std::size_t>(n);
    written_total += static_cast<std::size_t>(n);
    pipe.queued_bytes -= static_cast<std::size_t>(n);
    if (pipe.write_off == front.data.size()) {
      pipe.queue.pop_front();
      pipe.write_off = 0;
    } else {
      break;  // kernel buffer full
    }
  }
  if (bandwidth) {
    if (written_total > 0) pipe.bw_tokens -= static_cast<double>(written_total);
    if (pipe.bw_tokens < 1.0 && !pipe.queue.empty()) {
      const double rate = static_cast<double>(spec.bytes_per_sec);
      pipe.bw_next = now + std::chrono::microseconds(static_cast<std::int64_t>(
                             (1.0 - pipe.bw_tokens) * 1e6 / rate) +
                         1);
    }
  }
  if (written_total > 0) {
    auto& counter = pipe.to_upstream ? link.bytes_up : link.bytes_down;
    counter.fetch_add(written_total, std::memory_order_relaxed);
  }
  // A blackholed direction is SILENT: no bytes, and no FIN either -- a
  // partition does not deliver the peer's close.
  const bool fin_silent =
      spec.mode == FaultMode::kBlackhole ||
      (spec.mode == FaultMode::kHalfOpen && !pipe.to_upstream);
  if (!fin_silent && pipe.src_eof && pipe.queue.empty() && !pipe.wr_shut) {
    (void)::shutdown(pipe.dst, SHUT_WR);
    pipe.wr_shut = true;
  }
  return true;
}

void ChaosProxy::hard_reset(Link& link, Flow& flow) {
  linger hard{};
  hard.l_onoff = 1;
  hard.l_linger = 0;
  ::setsockopt(flow.down.get(), SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
  ::setsockopt(flow.up.get(), SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
  link.rsts.fetch_add(1, std::memory_order_relaxed);
  flow.dead = true;
}

void ChaosProxy::relay_thread() {
  std::vector<pollfd> pfds;
  // Parallel map: pfds[i] belongs to what?  kind 0 = wake pipe, 1 =
  // listener (aux = link index), 2 = flow fd (aux = flow index).
  struct Ref {
    int kind;
    std::size_t aux;
  };
  std::vector<Ref> refs;

  while (!stopping_.load()) {
    const Clock::time_point now = Clock::now();

    // Apply regime changes that act on EXISTING flows (rst), drop dead
    // flows, propagate EOF.
    for (auto& flow : flows_) {
      if (flow->dead) continue;
      const FaultMode mode = flow->link->snapshot().mode;
      if (mode == FaultMode::kRst) {
        hard_reset(*flow->link, *flow);
      }
      // The flow is finished once BOTH FINs were propagated (wr_shut).  A
      // fin-silent direction (blackhole, half_open's response leg) never
      // sets wr_shut, so those flows linger -- closing them would leak a
      // FIN/RST through the "partition".
      if (flow->d2u.wr_shut && flow->u2d.wr_shut) {
        flow->dead = true;
      }
    }
    flows_.erase(std::remove_if(flows_.begin(), flows_.end(),
                                [](const std::unique_ptr<Flow>& f) {
                                  return f->dead;
                                }),
                 flows_.end());

    // Build this pass's poll set.
    pfds.clear();
    refs.clear();
    pfds.push_back(pollfd{wake_r_.get(), POLLIN, 0});
    refs.push_back(Ref{0, 0});
    for (std::size_t li = 0; li < links_.size(); ++li) {
      pfds.push_back(pollfd{links_[li]->listener.get(), POLLIN, 0});
      refs.push_back(Ref{1, li});
    }
    Clock::time_point next_due = now + std::chrono::milliseconds(100);
    for (std::size_t fi = 0; fi < flows_.size(); ++fi) {
      Flow& flow = *flows_[fi];
      for (Pipe* pipe : {&flow.d2u, &flow.u2d}) {
        short src_ev = 0;
        short dst_ev = 0;
        if (!pipe->src_eof && pipe->queued_bytes < config_.max_buffer) {
          src_ev = POLLIN;
        }
        if (!pipe->queue.empty()) {
          Clock::time_point due = pipe->queue.front().release;
          if (pipe->bw_next > due) due = pipe->bw_next;
          if (due <= now) {
            dst_ev = POLLOUT;
          } else if (due < next_due) {
            next_due = due;
          }
        }
        if (src_ev != 0) {
          pfds.push_back(pollfd{pipe->src, src_ev, 0});
          refs.push_back(Ref{2, fi});
        }
        if (dst_ev != 0) {
          pfds.push_back(pollfd{pipe->dst, dst_ev, 0});
          refs.push_back(Ref{2, fi});
        }
      }
    }
    const int timeout_ms = static_cast<int>(std::max<std::int64_t>(
        1, std::chrono::duration_cast<std::chrono::milliseconds>(next_due -
                                                                 now)
               .count()));
    const int ready = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (stopping_.load()) break;
    if (ready < 0 && errno != EINTR) break;

    // Drain the wake pipe.
    if (pfds[0].revents != 0) {
      char sink[64];
      while (::read(wake_r_.get(), sink, sizeof(sink)) > 0) {
      }
    }
    // Accepts.
    for (std::size_t i = 1; i < pfds.size(); ++i) {
      if (refs[i].kind == 1 && (pfds[i].revents & POLLIN) != 0) {
        accept_on(*links_[refs[i].aux]);
      }
    }
    // Flow work: rather than map events fd-by-fd, give every live flow a
    // read+write pass -- correctness comes from the nonblocking sockets,
    // and the poll set only decides when to wake up.
    const Clock::time_point wake_now = Clock::now();
    for (auto& flow : flows_) {
      if (flow->dead) continue;
      Link& link = *flow->link;
      bool ok = true;
      for (Pipe* pipe : {&flow->d2u, &flow->u2d}) {
        if (!pipe->src_eof && pipe->queued_bytes < config_.max_buffer) {
          ok = ok && pump_read(link, *pipe);
        }
        ok = ok && pump_write(link, *pipe, wake_now);
      }
      if (!ok) flow->dead = true;
    }
  }

  // Teardown: flows close with their Fds; listeners stay bound until the
  // proxy is destroyed (stop() is terminal for the relay).
  flows_.clear();
}

// ---------------------------------------------------------------------------
// The JSONL admin protocol (LineBackend).

ChaosProxy::Outcome ChaosProxy::on_line(std::string_view line, int line_no,
                                        Done done) {
  (void)done;
  Outcome out;
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  const std::size_t first = line.find_first_not_of(" \t");
  if (first == std::string_view::npos || line[first] == '#') {
    return out;  // kSkip
  }
  out.kind = Outcome::Kind::kRespond;
  svc::Fields fields;
  try {
    fields = svc::parse_flat_json(line);
  } catch (const std::exception& e) {
    out.response = error_line(
        "", line_no, svc::to_json_token(svc::Status::kInvalidArgument),
        e.what());
    return out;
  }
  const auto id_it = fields.find("id");
  const std::string id =
      id_it == fields.end() ? "" : svc::json_escape(id_it->second);
  const auto op_it = fields.find("op");
  const std::string op = op_it == fields.end() ? "" : op_it->second;
  if (op == "fault") {
    out.response = handle_fault(fields, id);
  } else if (op == "chaos_stats") {
    out.response = render_chaos_stats(id);
  } else if (op == "info") {
    out.response = render_info(id);
  } else {
    out.response = error_line(
        id, line_no, svc::to_json_token(svc::Status::kInvalidArgument),
        "unknown chaosnet op \"" + op + "\"");
  }
  return out;
}

std::string ChaosProxy::control(std::string_view line, int line_no) {
  (void)line;
  // on_line never classifies kControl; answering here anyway keeps the
  // backend honest if a future server path calls it.
  return error_line("", line_no,
                    svc::to_json_token(svc::Status::kInvalidArgument),
                    "chaosnet has no control ops");
}

std::string ChaosProxy::handle_fault(const svc::Fields& fields,
                                     const std::string& id) {
  const auto link_it = fields.find("link");
  if (link_it == fields.end() || link_it->second.empty()) {
    return error_line(id, 0,
                      svc::to_json_token(svc::Status::kInvalidArgument),
                      "fault: missing \"link\"");
  }
  const auto mode_it = fields.find("mode");
  FaultMode mode = FaultMode::kNone;
  if (mode_it == fields.end() || !parse_fault_mode(mode_it->second, &mode)) {
    return error_line(id, 0,
                      svc::to_json_token(svc::Status::kInvalidArgument),
                      "fault: unknown \"mode\"");
  }
  FaultSpec spec;
  spec.mode = mode;
  spec.latency = std::chrono::milliseconds(int_or(fields, "ms", 0));
  spec.jitter = std::chrono::milliseconds(int_or(fields, "jitter_ms", 0));
  spec.bytes_per_sec =
      static_cast<std::size_t>(int_or(fields, "bytes_per_sec", 0));
  spec.corrupt_prob = double_or(fields, "prob", 0.0);
  spec.trickle_bytes =
      static_cast<std::size_t>(int_or(fields, "trickle_bytes", 1));
  const std::int64_t interval = int_or(fields, "interval_ms", 20);
  spec.trickle_interval = std::chrono::milliseconds(interval);
  if ((mode == FaultMode::kLatency && spec.latency.count() <= 0) ||
      (mode == FaultMode::kBandwidth && spec.bytes_per_sec == 0) ||
      (mode == FaultMode::kCorrupt &&
       (spec.corrupt_prob <= 0.0 || spec.corrupt_prob > 1.0))) {
    return error_line(id, 0,
                      svc::to_json_token(svc::Status::kInvalidArgument),
                      "fault: mode \"" + std::string(fault_mode_name(mode)) +
                          "\" needs a positive parameter");
  }
  if (!set_fault(link_it->second, spec)) {
    return error_line(id, 0,
                      svc::to_json_token(svc::Status::kInvalidArgument),
                      "fault: unknown link \"" + link_it->second + "\"");
  }
  svc::JsonWriter w;
  if (!id.empty()) w.field("id", id);
  w.field("op", "fault")
      .field("status", svc::to_json_token(svc::Status::kOk))
      .field("link", link_it->second)
      .field("mode", fault_mode_name(mode));
  return w.str();
}

std::string ChaosProxy::render_chaos_stats(const std::string& id) {
  svc::JsonWriter w;
  if (!id.empty()) w.field("id", id);
  w.field("op", "chaos_stats")
      .field("status", svc::to_json_token(svc::Status::kOk))
      .field("links", static_cast<std::uint64_t>(links_.size()))
      .field("seed", config_.seed);
  for (const auto& link : links_) {
    const std::string prefix = "link_" + key_safe(link->id) + "_";
    const LinkStats s = link_stats(link->id);
    w.field(prefix + "mode", fault_mode_name(link->snapshot().mode))
        .field(prefix + "port", static_cast<std::uint64_t>(link->bound_port))
        .field(prefix + "accepted", s.accepted)
        .field(prefix + "upstream_failures", s.upstream_failures)
        .field(prefix + "bytes_up", s.bytes_up)
        .field(prefix + "bytes_down", s.bytes_down)
        .field(prefix + "corrupted_bytes", s.corrupted_bytes)
        .field(prefix + "dropped_bytes", s.dropped_bytes)
        .field(prefix + "rsts", s.rsts);
  }
  return w.str();
}

std::string ChaosProxy::render_info(const std::string& id) {
  svc::JsonWriter w;
  if (!id.empty()) w.field("id", id);
  w.field("op", "info")
      .field("status", svc::to_json_token(svc::Status::kOk))
      .field("version", kVersion)
      .field("role", "chaosnet")
      .field("links", static_cast<std::uint64_t>(links_.size()))
      .field("seed", config_.seed);
  return w.str();
}

}  // namespace wfc::net
