// Small dense linear algebra for geometric embeddings: barycentric point
// location, affine solves, and simplex volume.  Dimensions here are tiny
// (the number of processors, <= 8 in every experiment), so a plain
// partial-pivot Gaussian elimination is the right tool.
#pragma once

#include <cstddef>
#include <vector>

namespace wfc::linalg {

/// Dense row-major matrix of doubles.  Minimal: exactly what the geometry
/// code needs, nothing more.
class Matrix {
 public:
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

 private:
  std::size_t rows_, cols_;
  std::vector<double> data_;
};

/// Solves A x = b with partial pivoting.  Returns false if A is singular
/// (pivot below `eps`), in which case `x` is unspecified.
bool solve(Matrix a, std::vector<double> b, std::vector<double>& x,
           double eps = 1e-12);

/// Determinant via LU decomposition with partial pivoting.
double determinant(Matrix a);

/// Barycentric coordinates of point `p` with respect to the affine simplex
/// whose vertices are `verts` (each a coordinate vector of equal length,
/// with verts.size() - 1 == the simplex dimension).  Works when the point's
/// ambient space has dimension >= simplex dimension: the system is solved in
/// least-squares-free exact form by augmenting with the "sum to 1" row.
/// Returns false if the simplex is degenerate.
bool barycentric_coords(const std::vector<std::vector<double>>& verts,
                        const std::vector<double>& p, std::vector<double>& out,
                        double eps = 1e-12);

/// True if all coordinates are >= -tol (point inside or on the boundary).
bool coords_nonnegative(const std::vector<double>& coords, double tol = 1e-9);

/// Unsigned volume (Lebesgue measure within the simplex's affine hull
/// scaled by standard k-volume) of the simplex with the given vertices.
/// For a full-dimensional simplex in R^d with d+1 vertices this is
/// |det(v1-v0, ..., vd-v0)| / d!.
double simplex_volume(const std::vector<std::vector<double>>& verts);

}  // namespace wfc::linalg
