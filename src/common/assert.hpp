// Checked preconditions and internal invariants for the wfc library.
//
// Two macro families, following the error-handling split recommended by the
// C++ Core Guidelines (I.5/I.6, E.x):
//
//   WFC_REQUIRE(cond, msg)  -- precondition on a *public* API.  Violations
//                              are caller bugs and throw std::invalid_argument
//                              so tests and callers can observe them.
//   WFC_CHECK(cond, msg)    -- internal invariant / postcondition.  Violations
//                              are library bugs and throw std::logic_error.
//
// Both are always on: this library's workloads are combinatorial, and a
// silently corrupted complex is far more expensive than the branch.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace wfc::detail {

[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  std::ostringstream os;
  os << "WFC_REQUIRE failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " -- " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "WFC_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " -- " << msg;
  throw std::logic_error(os.str());
}

}  // namespace wfc::detail

#define WFC_REQUIRE(cond, msg)                                          \
  do {                                                                  \
    if (!(cond)) ::wfc::detail::require_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

#define WFC_CHECK(cond, msg)                                            \
  do {                                                                  \
    if (!(cond)) ::wfc::detail::check_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)
