// Deterministic, seedable RNG used across schedulers, property tests, and
// benchmarks.  A thin wrapper over a SplitMix64 core: fast, reproducible
// across platforms (unlike std::default_random_engine), and good enough for
// schedule sampling.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/assert.hpp"

namespace wfc {

/// Seed for randomized tests: the WFC_TEST_SEED environment variable
/// (decimal or 0x-hex) when set, `fallback` otherwise.  Lets a failing
/// randomized run be replayed exactly: rerun with WFC_TEST_SEED=<seed>.
inline std::uint64_t test_seed(std::uint64_t fallback) {
  const char* env = std::getenv("WFC_TEST_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const std::uint64_t seed = std::strtoull(env, &end, 0);
  WFC_REQUIRE(end != nullptr && *end == '\0',
              "WFC_TEST_SEED is not an integer");
  return seed;
}

/// test_seed plus a stderr note naming the suite, so CI logs always record
/// the seed needed to reproduce a randomized failure.
inline std::uint64_t logged_test_seed(const char* suite,
                                      std::uint64_t fallback) {
  const std::uint64_t seed = test_seed(fallback);
  std::fprintf(stderr, "%s: effective WFC_TEST_SEED=%llu\n", suite,
               static_cast<unsigned long long>(seed));
  return seed;
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept
      : state_(seed) {}

  /// Next raw 64-bit value (SplitMix64).
  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound).  bound must be positive.
  std::uint64_t below(std::uint64_t bound) {
    WFC_REQUIRE(bound > 0, "Rng::below bound must be positive");
    // Rejection sampling to avoid modulo bias; bias would be invisible in
    // practice but reproducibility reviews are cheaper without caveats.
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
    std::uint64_t v;
    do {
      v = next();
    } while (v >= limit);
    return v % bound;
  }

  /// Uniform int in [lo, hi] inclusive.
  int between(int lo, int hi) {
    WFC_REQUIRE(lo <= hi, "Rng::between empty range");
    return lo + static_cast<int>(below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double unit() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool coin() noexcept { return next() & 1u; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t state_;
};

}  // namespace wfc
