// ColorSet: a set of processor colors (ids) 0..31 as a bitmask.
//
// Colors identify both processors and the vertices of the base simplex s^n
// (the paper identifies processor ids with simplex corners, §3.1).  All
// carrier bookkeeping in the topology layer is done with ColorSets, so the
// operations here are the hot path of complex generation.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <initializer_list>
#include <string>

#include "common/assert.hpp"

namespace wfc {

/// Processor / vertex color.  Valid range: [0, kMaxColors).
using Color = int;

/// Upper bound on distinct colors (processors) supported by ColorSet.
inline constexpr int kMaxColors = 32;

/// An immutable-style value type holding a set of colors as a 32-bit mask.
class ColorSet {
 public:
  constexpr ColorSet() noexcept = default;

  constexpr explicit ColorSet(std::uint32_t mask) noexcept : mask_(mask) {}

  ColorSet(std::initializer_list<Color> colors) {
    for (Color c : colors) *this = with(c);
  }

  /// The set {0, 1, ..., n_colors-1}.
  static ColorSet full(int n_colors) {
    WFC_REQUIRE(n_colors >= 0 && n_colors <= kMaxColors, "color count");
    return n_colors == kMaxColors
               ? ColorSet(~std::uint32_t{0})
               : ColorSet((std::uint32_t{1} << n_colors) - 1);
  }

  static ColorSet single(Color c) {
    WFC_REQUIRE(c >= 0 && c < kMaxColors, "color out of range");
    return ColorSet(std::uint32_t{1} << c);
  }

  [[nodiscard]] constexpr std::uint32_t mask() const noexcept { return mask_; }
  [[nodiscard]] constexpr bool empty() const noexcept { return mask_ == 0; }
  [[nodiscard]] constexpr int size() const noexcept {
    return std::popcount(mask_);
  }

  [[nodiscard]] bool contains(Color c) const {
    WFC_REQUIRE(c >= 0 && c < kMaxColors, "color out of range");
    return (mask_ >> c) & 1u;
  }

  [[nodiscard]] ColorSet with(Color c) const {
    WFC_REQUIRE(c >= 0 && c < kMaxColors, "color out of range");
    return ColorSet(mask_ | (std::uint32_t{1} << c));
  }

  [[nodiscard]] ColorSet without(Color c) const {
    WFC_REQUIRE(c >= 0 && c < kMaxColors, "color out of range");
    return ColorSet(mask_ & ~(std::uint32_t{1} << c));
  }

  [[nodiscard]] constexpr ColorSet unite(ColorSet o) const noexcept {
    return ColorSet(mask_ | o.mask_);
  }
  [[nodiscard]] constexpr ColorSet intersect(ColorSet o) const noexcept {
    return ColorSet(mask_ & o.mask_);
  }
  [[nodiscard]] constexpr ColorSet minus(ColorSet o) const noexcept {
    return ColorSet(mask_ & ~o.mask_);
  }
  [[nodiscard]] constexpr bool subset_of(ColorSet o) const noexcept {
    return (mask_ & ~o.mask_) == 0;
  }

  /// Smallest color in the set; requires non-empty.
  [[nodiscard]] Color min() const {
    WFC_REQUIRE(!empty(), "min of empty ColorSet");
    return std::countr_zero(mask_);
  }

  constexpr bool operator==(const ColorSet&) const noexcept = default;
  constexpr auto operator<=>(const ColorSet&) const noexcept = default;

  /// Iterates set bits in increasing color order.
  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Color;
    using difference_type = std::ptrdiff_t;
    using pointer = const Color*;
    using reference = Color;

    constexpr iterator() noexcept = default;
    constexpr explicit iterator(std::uint32_t rest) noexcept : rest_(rest) {}
    constexpr Color operator*() const noexcept {
      return std::countr_zero(rest_);
    }
    constexpr iterator& operator++() noexcept {
      rest_ &= rest_ - 1;
      return *this;
    }
    constexpr iterator operator++(int) noexcept {
      iterator tmp = *this;
      ++*this;
      return tmp;
    }
    constexpr bool operator==(const iterator&) const noexcept = default;

   private:
    std::uint32_t rest_ = 0;
  };

  [[nodiscard]] constexpr iterator begin() const noexcept {
    return iterator(mask_);
  }
  [[nodiscard]] constexpr iterator end() const noexcept { return iterator(0); }

  [[nodiscard]] std::string to_string() const {
    std::string s = "{";
    bool first = true;
    for (Color c : *this) {
      if (!first) s += ",";
      s += std::to_string(c);
      first = false;
    }
    return s + "}";
  }

 private:
  std::uint32_t mask_ = 0;
};

/// Enumerates all non-empty subsets of `universe`, invoking `fn(ColorSet)`.
template <typename Fn>
void for_each_nonempty_subset(ColorSet universe, Fn&& fn) {
  const std::uint32_t u = universe.mask();
  // Standard sub-mask walk: visits each subset of u exactly once.
  for (std::uint32_t sub = u;; sub = (sub - 1) & u) {
    if (sub != 0) fn(ColorSet(sub));
    if (sub == 0) break;
  }
}

}  // namespace wfc
