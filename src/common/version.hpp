// Library version, reported by the {"op":"info"} control op so routers and
// operators can identify what a backend is running.  Bumped once per PR
// (the repo's unit of release).
#pragma once

namespace wfc {

inline constexpr const char* kVersion = "0.6.0";

}  // namespace wfc
