#include "common/linalg.hpp"

#include <cmath>
#include <cstdlib>

#include "common/assert.hpp"

namespace wfc::linalg {

bool solve(Matrix a, std::vector<double> b, std::vector<double>& x,
           double eps) {
  WFC_REQUIRE(a.rows() == a.cols(), "solve: matrix must be square");
  WFC_REQUIRE(b.size() == a.rows(), "solve: rhs size mismatch");
  const std::size_t n = a.rows();
  // Forward elimination with partial pivoting.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a.at(r, col)) > std::abs(a.at(pivot, col))) pivot = r;
    }
    if (std::abs(a.at(pivot, col)) < eps) return false;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a.at(col, c), a.at(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a.at(r, col) / a.at(col, col);
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a.at(r, c) -= f * a.at(col, c);
      b[r] -= f * b[col];
    }
  }
  // Back substitution.
  x.assign(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t c = i + 1; c < n; ++c) acc -= a.at(i, c) * x[c];
    x[i] = acc / a.at(i, i);
  }
  return true;
}

double determinant(Matrix a) {
  WFC_REQUIRE(a.rows() == a.cols(), "determinant: matrix must be square");
  const std::size_t n = a.rows();
  double det = 1.0;
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a.at(r, col)) > std::abs(a.at(pivot, col))) pivot = r;
    }
    if (a.at(pivot, col) == 0.0) return 0.0;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a.at(col, c), a.at(pivot, c));
      det = -det;
    }
    det *= a.at(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a.at(r, col) / a.at(col, col);
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a.at(r, c) -= f * a.at(col, c);
    }
  }
  return det;
}

bool barycentric_coords(const std::vector<std::vector<double>>& verts,
                        const std::vector<double>& p, std::vector<double>& out,
                        double eps) {
  WFC_REQUIRE(!verts.empty(), "barycentric_coords: no vertices");
  const std::size_t k = verts.size();       // number of simplex vertices
  const std::size_t d = verts[0].size();    // ambient dimension
  WFC_REQUIRE(p.size() == d, "barycentric_coords: point dimension mismatch");
  for (const auto& v : verts)
    WFC_REQUIRE(v.size() == d, "barycentric_coords: vertex dimension mismatch");

  if (k == 1) {
    // Zero-dimensional simplex: the point must coincide with the vertex.
    double dist2 = 0.0;
    for (std::size_t i = 0; i < d; ++i) {
      const double diff = p[i] - verts[0][i];
      dist2 += diff * diff;
    }
    out.assign(1, 1.0);
    return dist2 < 1e-14;
  }

  // Solve the (possibly overdetermined) system V^T lambda = p together with
  // sum(lambda) = 1 via normal equations: M lambda = rhs where
  // M = A^T A, A is the (d+1) x k matrix [V^T ; 1...1].
  Matrix m(k, k);
  std::vector<double> rhs(k, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      double acc = 1.0;  // contribution of the sum-to-1 row
      for (std::size_t r = 0; r < d; ++r) acc += verts[i][r] * verts[j][r];
      m.at(i, j) = acc;
    }
    double acc = 1.0;
    for (std::size_t r = 0; r < d; ++r) acc += verts[i][r] * p[r];
    rhs[i] = acc;
  }
  if (!solve(std::move(m), std::move(rhs), out, eps)) return false;

  // Residual check: lambda is only meaningful if p lies in the affine hull.
  double res2 = 0.0;
  for (std::size_t r = 0; r < d; ++r) {
    double acc = -p[r];
    for (std::size_t i = 0; i < k; ++i) acc += out[i] * verts[i][r];
    res2 += acc * acc;
  }
  double sum = -1.0;
  for (std::size_t i = 0; i < k; ++i) sum += out[i];
  res2 += sum * sum;
  return res2 < 1e-12;
}

bool coords_nonnegative(const std::vector<double>& coords, double tol) {
  for (double c : coords) {
    if (c < -tol) return false;
  }
  return true;
}

double simplex_volume(const std::vector<std::vector<double>>& verts) {
  WFC_REQUIRE(!verts.empty(), "simplex_volume: no vertices");
  const std::size_t k = verts.size() - 1;  // simplex dimension
  if (k == 0) return 1.0;                  // convention: a point has volume 1
  const std::size_t d = verts[0].size();
  // Gram determinant: vol = sqrt(det G) / k!, with
  // G_ij = (v_i - v_0) . (v_j - v_0).  Works in any ambient dimension.
  Matrix g(k, k);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      double acc = 0.0;
      for (std::size_t r = 0; r < d; ++r) {
        acc += (verts[i + 1][r] - verts[0][r]) * (verts[j + 1][r] - verts[0][r]);
      }
      g.at(i, j) = acc;
    }
  }
  double det = determinant(std::move(g));
  if (det < 0.0) det = 0.0;  // numerical noise on degenerate simplices
  double fact = 1.0;
  for (std::size_t i = 2; i <= k; ++i) fact *= static_cast<double>(i);
  return std::sqrt(det) / fact;
}

}  // namespace wfc::linalg
