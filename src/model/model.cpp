#include "model/model.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

#include "common/assert.hpp"

namespace wfc::model {

namespace {

std::uint64_t fnv1a_str(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// Re-roots rounds [from, from+len) of `run` as a standalone run: window
/// participants are the processors that write inside the window (a crash at
/// the window's first round becomes non-participation, mirroring RunDesc's
/// round-0 normalization).
RunDesc window_run(const RunDesc& run, int from, int len) {
  RunDesc w;
  w.n_sys = run.n_sys;
  for (int r = from; r < from + len; ++r) {
    const RunRound& src = run.rounds[static_cast<std::size_t>(r)];
    RunRound dst;
    dst.blocks = src.blocks;
    if (r > from) dst.crashed = src.crashed;
    w.rounds.push_back(std::move(dst));
    for (const ColorSet& b : src.blocks) {
      w.participants = w.participants.unite(b);
    }
  }
  // Crashes of processors that never wrote in the window are dropped; keep
  // only crash marks of window participants.
  for (RunRound& r : w.rounds) r.crashed = r.crashed.intersect(w.participants);
  return w;
}

}  // namespace

ColorSet RunDesc::crashed() const {
  ColorSet out;
  for (const RunRound& r : rounds) out = out.unite(r.crashed);
  return out.intersect(participants);
}

ColorSet RunDesc::survivors() const { return participants.minus(crashed()); }

std::string RunDesc::signature() const {
  std::ostringstream os;
  os << "n" << n_sys << ":q" << participants.mask();
  for (const RunRound& r : rounds) {
    os << ";";
    for (std::size_t i = 0; i < r.blocks.size(); ++i) {
      if (i) os << "|";
      os << r.blocks[i].mask();
    }
    if (!r.crashed.empty()) os << "!" << r.crashed.mask();
  }
  return os.str();
}

int run_concurrency(const RunDesc& run, int from_round) {
  const int b = static_cast<int>(run.rounds.size());
  if (from_round < 0) from_round = 0;
  // Rounds with at least one block, in order, starting at from_round.
  struct Round {
    const std::vector<ColorSet>* blocks;
  };
  std::vector<Round> rounds;
  for (int r = from_round; r < b; ++r) {
    const auto& blocks = run.rounds[static_cast<std::size_t>(r)].blocks;
    if (!blocks.empty()) rounds.push_back(Round{&blocks});
  }
  const int nr = static_cast<int>(rounds.size());
  if (nr == 0) return 0;
  WFC_REQUIRE(nr <= 8, "run_concurrency: too many rounds");

  // Per processor: first/last round index (within `rounds`) and block index
  // per round it participates in.
  ColorSet procs;
  for (const Round& r : rounds) {
    for (const ColorSet& blk : *r.blocks) procs = procs.unite(blk);
  }
  std::vector<int> first(kMaxColors, -1), last(kMaxColors, -1);
  std::vector<std::vector<int>> block_of(
      static_cast<std::size_t>(nr), std::vector<int>(kMaxColors, -1));
  for (int r = 0; r < nr; ++r) {
    const auto& blocks = *rounds[static_cast<std::size_t>(r)].blocks;
    for (int j = 0; j < static_cast<int>(blocks.size()); ++j) {
      for (Color p : blocks[static_cast<std::size_t>(j)]) {
        block_of[static_cast<std::size_t>(r)][static_cast<std::size_t>(p)] = j;
        if (first[static_cast<std::size_t>(p)] < 0) {
          first[static_cast<std::size_t>(p)] = r;
        }
        last[static_cast<std::size_t>(p)] = r;
      }
    }
  }

  // DFS over block-consumption states c[r] = blocks of round r fired so
  // far.  A round-r block fires only after each member's round-(r-1) block
  // (its previous event) has fired; cost of a firing is the number of
  // started-but-unfinished processors plus the firing block's members.
  // value(state) = min over next firings of max(cost, value(next)), memoized
  // on the packed state.
  std::vector<int> c(static_cast<std::size_t>(nr), 0);
  std::map<std::uint64_t, int> memo;
  const int kInf = kMaxColors + 1;

  auto pack = [&]() {
    std::uint64_t key = 0;
    for (int r = 0; r < nr; ++r) {
      key = (key << 8) | static_cast<std::uint64_t>(c[static_cast<std::size_t>(r)]);
    }
    return key;
  };
  auto fired = [&](Color p, int r) {
    return block_of[static_cast<std::size_t>(r)][static_cast<std::size_t>(p)] <
           c[static_cast<std::size_t>(r)];
  };

  auto rec = [&](auto&& self) -> int {
    bool done = true;
    for (int r = 0; r < nr; ++r) {
      if (c[static_cast<std::size_t>(r)] <
          static_cast<int>(rounds[static_cast<std::size_t>(r)].blocks->size())) {
        done = false;
        break;
      }
    }
    if (done) return 0;
    const std::uint64_t key = pack();
    if (auto it = memo.find(key); it != memo.end()) return it->second;
    memo.emplace(key, kInf);  // cycle guard (the DAG has none, but be safe)

    int best = kInf;
    for (int r = 0; r < nr; ++r) {
      const auto& blocks = *rounds[static_cast<std::size_t>(r)].blocks;
      const int j = c[static_cast<std::size_t>(r)];
      if (j >= static_cast<int>(blocks.size())) continue;
      const ColorSet blk = blocks[static_cast<std::size_t>(j)];
      bool ready = true;
      if (r > 0) {
        for (Color p : blk) {
          // A member live in round r took round r-1 too (crashes only
          // truncate suffixes), so its previous event is in round r-1.
          if (block_of[static_cast<std::size_t>(r - 1)]
                      [static_cast<std::size_t>(p)] >= 0 &&
              !fired(p, r - 1)) {
            ready = false;
            break;
          }
        }
      }
      if (!ready) continue;
      // Active set at this firing.
      ColorSet active = blk;
      for (Color p : procs) {
        const int f = first[static_cast<std::size_t>(p)];
        const int l = last[static_cast<std::size_t>(p)];
        if (fired(p, f) && !fired(p, l)) active = active.with(p);
      }
      const int cost = active.size();
      if (cost >= best) continue;  // cannot improve along this branch
      ++c[static_cast<std::size_t>(r)];
      const int sub = self(self);
      --c[static_cast<std::size_t>(r)];
      best = std::min(best, std::max(cost, sub));
    }
    memo[key] = best;
    return best;
  };
  return rec(rec);
}

Model::Model(Kind kind, int param, std::string name)
    : kind_(kind), param_(param), name_(std::move(name)) {
  tag_ = kind_ == Kind::kWaitFree ? 0 : fnv1a_str(name_);
}

std::shared_ptr<const Model> Model::wait_free() {
  static const std::shared_ptr<const Model> instance(
      new Model(Kind::kWaitFree, 0, "wait_free"));
  return instance;
}

std::shared_ptr<const Model> Model::t_resilient(int t) {
  WFC_REQUIRE(t >= 0 && t < kMaxColors, "t_resilient: bad t");
  return std::shared_ptr<const Model>(new Model(
      Kind::kTResilient, t, "t_resilient(" + std::to_string(t) + ")"));
}

std::shared_ptr<const Model> Model::k_concurrency(int k) {
  WFC_REQUIRE(k >= 1 && k <= kMaxColors, "k_concurrency: bad k");
  return std::shared_ptr<const Model>(new Model(
      Kind::kKConcurrency, k, "k_concurrency(" + std::to_string(k) + ")"));
}

std::shared_ptr<const Model> Model::k_obstruction_free(int k) {
  WFC_REQUIRE(k >= 1 && k <= kMaxColors, "k_obstruction_free: bad k");
  return std::shared_ptr<const Model>(
      new Model(Kind::kKObstructionFree, k,
                "k_obstruction_free(" + std::to_string(k) + ")"));
}

std::shared_ptr<const Model> Model::affine(
    int m, std::shared_ptr<const Model> inner) {
  WFC_REQUIRE(m >= 1 && m <= 8, "affine: bad window");
  WFC_REQUIRE(inner != nullptr, "affine: null inner model");
  auto model = std::shared_ptr<Model>(new Model(
      Kind::kAffine, m,
      "affine(" + std::to_string(m) + ";" + inner->name() + ")"));
  model->window_ = m;
  model->inner_ = std::move(inner);
  return model;
}

std::shared_ptr<const Model> Model::affine_from_windows(
    std::string name, int m, std::set<std::string> windows) {
  WFC_REQUIRE(m >= 1 && m <= 8, "affine_from_windows: bad window");
  auto model =
      std::shared_ptr<Model>(new Model(Kind::kAffine, m, std::move(name)));
  model->window_ = m;
  model->windows_ = std::move(windows);
  model->has_window_set_ = true;
  return model;
}

std::shared_ptr<const Model> Model::parse(const std::string& name) {
  auto bad = [&]() -> std::shared_ptr<const Model> {
    throw std::invalid_argument("unknown model: " + name);
  };
  if (name == "wait_free") return wait_free();
  auto int_arg = [&](const std::string& prefix) -> int {
    const std::string body =
        name.substr(prefix.size(), name.size() - prefix.size() - 1);
    if (body.empty() ||
        body.find_first_not_of("0123456789") != std::string::npos ||
        body.size() > 2) {
      throw std::invalid_argument("unknown model: " + name);
    }
    return std::stoi(body);
  };
  auto is_call = [&](const std::string& prefix) {
    return name.size() > prefix.size() + 1 && name.rfind(prefix, 0) == 0 &&
           name.back() == ')';
  };
  try {
    if (is_call("t_resilient(")) return t_resilient(int_arg("t_resilient("));
    if (is_call("k_concurrency(")) {
      return k_concurrency(int_arg("k_concurrency("));
    }
    if (is_call("k_obstruction_free(")) {
      return k_obstruction_free(int_arg("k_obstruction_free("));
    }
    if (is_call("affine(")) {
      const std::string body = name.substr(7, name.size() - 8);
      const std::size_t semi = body.find(';');
      if (semi == std::string::npos || semi == 0 || semi + 1 >= body.size()) {
        return bad();
      }
      const std::string m_str = body.substr(0, semi);
      if (m_str.find_first_not_of("0123456789") != std::string::npos ||
          m_str.size() > 1) {
        return bad();
      }
      return affine(std::stoi(m_str), parse(body.substr(semi + 1)));
    }
  } catch (const std::invalid_argument&) {
    throw;
  } catch (const std::exception&) {
    return bad();
  }
  return bad();
}

bool Model::admits(const RunDesc& run) const {
  const int b = static_cast<int>(run.rounds.size());
  switch (kind_) {
    case Kind::kWaitFree:
      return true;
    case Kind::kTResilient: {
      const int failures =
          (run.n_sys - run.participants.size()) + run.crashed().size();
      if (failures > param_) return false;
      for (const RunRound& r : run.rounds) {
        if (r.blocks.empty()) continue;  // all-crash tail; no survivors
        if (r.blocks.front().size() < run.n_sys - param_) return false;
      }
      return true;
    }
    case Kind::kKConcurrency:
      return run_concurrency(run, 0) <= param_;
    case Kind::kKObstructionFree: {
      if (b == 0) return true;
      for (int r0 = 0; r0 < b; ++r0) {
        if (run_concurrency(run, r0) <= param_) return true;
      }
      return false;
    }
    case Kind::kAffine: {
      if (b == 0) return true;
      if (b % window_ != 0) return false;
      for (int w = 0; w < b / window_; ++w) {
        const RunDesc win = window_run(run, w * window_, window_);
        if (has_window_set_) {
          if (windows_.find(win.signature()) == windows_.end()) return false;
        } else {
          if (!inner_->admits(win)) return false;
        }
      }
      return true;
    }
  }
  return false;
}

std::uint64_t mix_fingerprint(std::uint64_t fingerprint,
                              std::uint64_t model_tag) {
  if (model_tag == 0) return fingerprint;
  std::uint64_t z = fingerprint ^ model_tag;
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace wfc::model
