// Model-parameterized Prop 3.1: the task-solvability search restricted to
// the admissible subcomplex of each level (generalized ACT).  wait_free (or
// a null model) takes the unrestricted path and is bit-for-bit identical to
// task::solve -- same verdicts, decisions, and node counts.
#pragma once

#include <memory>

#include "model/model.hpp"
#include "tasks/solvability.hpp"

namespace wfc::model {

/// A LevelRestrictor computing restrict_level(chain, level, *model) per
/// level (no caching -- the service layer caches restricted towers in
/// SdsCache instead and installs its own restrictor).  Returns an empty
/// function for null / wait_free models.
task::LevelRestrictor make_restrictor(std::shared_ptr<const Model> model);

/// task::solve with the search confined to `model`'s admissible simplices.
task::SolveResult solve_in_model(const task::Task& task, int max_level,
                                 std::shared_ptr<const Model> model,
                                 task::SolveOptions options = {});

/// task::solve_at_level under `model`.
task::SolveResult solve_at_level_in_model(const task::Task& task, int level,
                                          std::shared_ptr<const Model> model,
                                          task::SolveOptions options = {});

}  // namespace wfc::model
