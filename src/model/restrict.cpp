#include "model/restrict.hpp"

#include <algorithm>
#include <map>
#include <span>

#include "common/assert.hpp"

namespace wfc::model {

namespace {

using topo::Arena;
using topo::ChromaticComplex;
using topo::Simplex;
using topo::VertexId;

/// "<color>@<v1>,<v2>,..." -> (color, sorted view ids one level down).
std::pair<Color, Simplex> parse_sds_key(std::string_view key) {
  const std::size_t at = key.find('@');
  WFC_CHECK(at != std::string_view::npos && at > 0,
            "model: vertex key is not an SDS view key");
  Color color = 0;
  for (char c : key.substr(0, at)) {
    WFC_CHECK(c >= '0' && c <= '9', "model: bad color in SDS key");
    color = color * 10 + (c - '0');
  }
  Simplex view;
  VertexId v = 0;
  bool have = false;
  for (char c : key.substr(at + 1)) {
    if (c == ',') {
      WFC_CHECK(have, "model: empty id in SDS key view");
      view.push_back(v);
      v = 0;
      have = false;
    } else {
      WFC_CHECK(c >= '0' && c <= '9', "model: bad id in SDS key view");
      v = v * 10 + static_cast<VertexId>(c - '0');
      have = true;
    }
  }
  WFC_CHECK(have, "model: empty SDS key view");
  view.push_back(v);
  return {color, std::move(view)};
}

/// One descent step: groups a simplex's (color, view) pairs into the
/// round's blocks (view-size order is the snapshot containment chain) and
/// returns the parent simplex one level down (the largest view).
struct Step {
  std::vector<ColorSet> blocks;
  Simplex parent;
};

Step step_down(const std::vector<std::pair<Color, Simplex>>& verts) {
  std::map<Simplex, ColorSet> groups;
  for (const auto& [color, view] : verts) {
    auto [it, fresh] = groups.try_emplace(view);
    it->second = it->second.with(color);
  }
  Step out;
  std::vector<const Simplex*> views;
  for (const auto& [view, colors] : groups) views.push_back(&view);
  std::sort(views.begin(), views.end(),
            [](const Simplex* a, const Simplex* b) {
              return a->size() < b->size();
            });
  for (std::size_t i = 0; i < views.size(); ++i) {
    if (i > 0) {
      WFC_CHECK(views[i - 1]->size() < views[i]->size() &&
                    std::includes(views[i]->begin(), views[i]->end(),
                                  views[i - 1]->begin(), views[i - 1]->end()),
                "model: views are not a containment chain");
    }
    out.blocks.push_back(groups.find(*views[i])->second);
  }
  out.parent = *views.back();
  return out;
}

ColorSet span_colors(const Arena& arena, std::span<const VertexId> s) {
  ColorSet out;
  for (VertexId v : s) {
    out = out.with(static_cast<Color>(arena.colors()[v]));
  }
  return out;
}

ColorSet span_carrier(const Arena& arena, std::span<const VertexId> s) {
  ColorSet out;
  for (VertexId v : s) {
    out = out.unite(ColorSet(arena.carrier_masks()[v]));
  }
  return out;
}

}  // namespace

std::vector<std::vector<ColorSet>> recover_schedule(
    const proto::SdsChain& chain, int level,
    std::span<const VertexId> facet, Simplex* base_facet) {
  WFC_REQUIRE(level >= 0 && level <= chain.depth(),
              "recover_schedule: level out of range");
  std::vector<std::vector<ColorSet>> rounds(
      static_cast<std::size_t>(level));
  Simplex cur(facet.begin(), facet.end());
  for (int l = level; l >= 1; --l) {
    const Arena arena = chain.arena(l);
    std::vector<std::pair<Color, Simplex>> verts;
    verts.reserve(cur.size());
    for (VertexId v : cur) {
      verts.push_back(parse_sds_key(arena.key(v)));
    }
    Step step = step_down(verts);
    rounds[static_cast<std::size_t>(l - 1)] = std::move(step.blocks);
    cur = std::move(step.parent);
  }
  if (base_facet != nullptr) *base_facet = std::move(cur);
  return rounds;
}

void for_each_run(const proto::SdsChain& chain, int level,
                  const Arena& facets_arena,
                  const std::function<void(const RunDesc&,
                                           const Simplex&)>& fn) {
  WFC_REQUIRE(level >= 0 && level <= chain.depth(),
              "for_each_run: level out of range");
  const int n_sys = facets_arena.n_colors();
  const int b = level;

  for (std::uint32_t f = 0; f < facets_arena.num_facets(); ++f) {
    const std::span<const VertexId> fv = facets_arena.facet(f);
    const ColorSet colors = span_colors(facets_arena, fv);
    // The crash embedding is enumerated on top of a FULL-INFORMATION
    // simplex: its colors must equal its carrier colors (every processor
    // anyone saw survived to the facet).  restrict_level only emits such
    // facets for the canonical models; see affine_task_windows.
    WFC_REQUIRE(span_carrier(facets_arena, fv) == colors,
                "for_each_run: facet is not full-information");
    const int q = colors.size();
    WFC_CHECK(q == static_cast<int>(fv.size()),
              "for_each_run: non-rainbow facet");

    if (b == 0) {
      // 0-round runs: participation only.
      for (std::uint32_t sub = colors.mask(); sub != 0;
           sub = (sub - 1) & colors.mask()) {
        const ColorSet part(sub);
        RunDesc run;
        run.n_sys = n_sys;
        run.participants = part;
        Simplex survivors;
        for (VertexId v : fv) {
          if (part.contains(static_cast<Color>(facets_arena.colors()[v]))) {
            survivors.push_back(v);
          }
        }
        fn(run, topo::make_simplex(std::move(survivors)));
      }
      continue;
    }

    // Recover the schedule: round 0 blocks come from descending the whole
    // tower; the top step parses keys from `facets_arena` (which may be a
    // pruned subcomplex with its own vertex ids), lower steps from the
    // chain's own levels.
    std::vector<std::vector<ColorSet>> schedule(static_cast<std::size_t>(b));
    {
      std::vector<std::pair<Color, Simplex>> verts;
      verts.reserve(fv.size());
      for (VertexId v : fv) {
        verts.push_back(parse_sds_key(facets_arena.key(v)));
      }
      Step step = step_down(verts);
      schedule[static_cast<std::size_t>(b - 1)] = std::move(step.blocks);
      Simplex cur = std::move(step.parent);
      for (int l = b - 1; l >= 1; --l) {
        const Arena arena = chain.arena(l);
        std::vector<std::pair<Color, Simplex>> vs;
        vs.reserve(cur.size());
        for (VertexId v : cur) vs.push_back(parse_sds_key(arena.key(v)));
        Step s = step_down(vs);
        schedule[static_cast<std::size_t>(l - 1)] = std::move(s.blocks);
        cur = std::move(s.parent);
      }
    }

    // Enumerate crash-round assignments cr[i] in 0..b per color (0 = never
    // participated, b = survived): valid iff at every round the
    // crashed-so-far colors occupy the trailing singleton blocks.
    std::vector<Color> order(colors.begin(), colors.end());
    double cost = 1;
    for (int i = 0; i < q; ++i) cost *= b + 1;
    WFC_REQUIRE(cost <= 4e6, "for_each_run: crash enumeration too large");

    std::set<std::string> seen;
    std::vector<int> cr(static_cast<std::size_t>(q), 0);
    auto emit = [&]() {
      ColorSet dead;
      ColorSet nonpart;
      for (int i = 0; i < q; ++i) {
        if (cr[static_cast<std::size_t>(i)] < b) {
          dead = dead.with(order[static_cast<std::size_t>(i)]);
        }
        if (cr[static_cast<std::size_t>(i)] == 0) {
          nonpart = nonpart.with(order[static_cast<std::size_t>(i)]);
        }
      }
      const ColorSet survivors = colors.minus(dead);
      if (survivors.empty()) return;
      // Validity + live-run assembly in one pass.
      RunDesc run;
      run.n_sys = n_sys;
      run.participants = colors.minus(nonpart);
      for (int r = 0; r < b; ++r) {
        ColorSet gone;  // crashed by round r
        ColorSet now;   // crashed exactly at round r
        for (int i = 0; i < q; ++i) {
          const int c = cr[static_cast<std::size_t>(i)];
          if (c <= r) gone = gone.with(order[static_cast<std::size_t>(i)]);
          if (c == r) now = now.with(order[static_cast<std::size_t>(i)]);
        }
        const auto& blocks = schedule[static_cast<std::size_t>(r)];
        const int nb = static_cast<int>(blocks.size());
        const int m = gone.size();
        if (m > nb) return;
        for (int j = nb - m; j < nb; ++j) {
          const ColorSet blk = blocks[static_cast<std::size_t>(j)];
          if (blk.size() != 1 || !gone.contains(blk.min())) return;
        }
        RunRound rr;
        rr.blocks.assign(blocks.begin(), blocks.end() - m);
        if (r >= 1) rr.crashed = now;
        run.rounds.push_back(std::move(rr));
      }
      if (!seen.insert(run.signature()).second) return;
      Simplex sx;
      for (VertexId v : fv) {
        if (survivors.contains(static_cast<Color>(facets_arena.colors()[v]))) {
          sx.push_back(v);
        }
      }
      fn(run, topo::make_simplex(std::move(sx)));
    };
    // Odometer over crash assignments.
    for (;;) {
      emit();
      int i = 0;
      while (i < q && cr[static_cast<std::size_t>(i)] == b) {
        cr[static_cast<std::size_t>(i)] = 0;
        ++i;
      }
      if (i == q) break;
      ++cr[static_cast<std::size_t>(i)];
    }
  }
}

Restriction restrict_level(const proto::SdsChain& chain, int level,
                           const Model& model) {
  const Arena arena = chain.arena(level);
  Restriction out;

  std::map<std::string, bool> verdicts;  // run signature -> admitted
  std::set<Simplex> kept;
  for_each_run(chain, level, arena, [&](const RunDesc& run, const Simplex& sx) {
    auto [it, fresh] = verdicts.try_emplace(run.signature(), false);
    if (fresh) it->second = model.admits(run);
    if (it->second) kept.insert(sx);
  });
  for (const auto& [sig, admitted] : verdicts) {
    if (admitted) {
      ++out.runs_admitted;
    } else {
      ++out.runs_rejected;
    }
  }

  // Maximal kept simplices, in the set's lexicographic order.
  std::vector<const Simplex*> maximal;
  for (const Simplex& s : kept) {
    bool covered = false;
    for (const Simplex& t : kept) {
      if (t.size() > s.size() &&
          std::includes(t.begin(), t.end(), s.begin(), s.end())) {
        covered = true;
        break;
      }
    }
    if (!covered) maximal.push_back(&s);
  }
  out.facets_kept = maximal.size();
  for (std::uint32_t f = 0; f < arena.num_facets(); ++f) {
    const auto fs = arena.facet(f);
    if (kept.find(Simplex(fs.begin(), fs.end())) == kept.end()) {
      ++out.facets_dropped;
    }
  }

  // Rebuild the pruned level: kept vertices in ascending original order.
  std::set<VertexId> vertex_set;
  for (const Simplex* s : maximal) {
    for (VertexId v : *s) vertex_set.insert(v);
  }
  auto pruned = std::make_shared<ChromaticComplex>(arena.n_colors());
  std::vector<VertexId> remap(arena.num_vertices(), topo::kNoVertex);
  for (VertexId v : vertex_set) {
    const auto bc = arena.base_carrier(v);
    const auto coords = arena.coords(v);
    remap[v] = pruned->add_vertex(
        static_cast<Color>(arena.colors()[v]), std::string(arena.key(v)),
        ColorSet(arena.carrier_masks()[v]),
        std::vector<double>(coords.begin(), coords.end()),
        Simplex(bc.begin(), bc.end()));
    out.to_base.push_back(v);
  }
  for (const Simplex* s : maximal) {
    Simplex facet;
    facet.reserve(s->size());
    for (VertexId v : *s) facet.push_back(remap[v]);
    pruned->add_facet(topo::make_simplex(std::move(facet)));
  }
  out.complex = pruned;
  out.arena = Arena::build(*pruned);
  return out;
}

std::set<std::string> affine_task_windows(const proto::SdsChain& chain, int m,
                                          const Arena& affine_arena) {
  std::set<std::string> out;
  for_each_run(chain, m, affine_arena,
               [&](const RunDesc& run, const Simplex&) {
                 out.insert(run.signature());
               });
  return out;
}

std::shared_ptr<const proto::SdsChain> restricted_tower(
    const proto::SdsChain& full, int depth, const Model& model,
    const std::shared_ptr<const proto::SdsChain>& prior,
    std::uint64_t* runs_admitted, std::uint64_t* runs_rejected) {
  WFC_REQUIRE(depth >= 0 && depth <= full.depth(),
              "restricted_tower: depth out of range");
  std::vector<Arena> arenas;
  arenas.reserve(static_cast<std::size_t>(depth) + 1);
  int start = 0;
  if (prior != nullptr) {
    const int reuse = std::min(prior->depth(), depth);
    for (int r = 0; r <= reuse; ++r) arenas.push_back(prior->arena(r));
    start = reuse + 1;
  }
  for (int r = start; r <= depth; ++r) {
    Restriction res = restrict_level(full, r, model);
    if (runs_admitted != nullptr) *runs_admitted += res.runs_admitted;
    if (runs_rejected != nullptr) *runs_rejected += res.runs_rejected;
    arenas.push_back(std::move(res.arena));
  }
  return std::make_shared<proto::SdsChain>(
      std::make_shared<ArenaVectorBacking>(std::move(arenas)));
}

}  // namespace wfc::model
