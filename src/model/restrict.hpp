// Arena-path derivation of the admissible subcomplex of SDS^level(I).
//
// The facets of SDS^b over a base facet F are in bijection with sequences
// of b ordered partitions of colors(F) (Lemma 3.2 iterated), and every
// level-l vertex key encodes its round-(l-1) view ("<color>@<v1>,<v2>,...",
// view ids at level l-1; subdivision.cpp).  recover_schedule() inverts the
// bijection by parsing keys down the tower: group a simplex's vertices by
// equal views (the blocks), order blocks by view size (the containment
// chain), recurse into the largest view (the parent facet one level down).
//
// Crashes ride the chk::explore_iis embedding: a processor that crashes at
// round r is indistinguishable from one scheduled alone in the LAST block
// of every round >= r.  So the runs carried by a facet with schedule sigma
// are exactly the crash-round assignments (one per color; 0 = never
// participated, b = survived) under which every round's crashed-so-far set
// occupies the trailing singleton blocks of sigma; the run's survivor
// simplex is the facet minus the crashed colors' vertices.  The admissible
// subcomplex is the downward closure of the admissible runs' survivor
// simplices -- represented by its maximal simplices, pruned-and-rebuilt as
// a fresh ChromaticComplex + Arena with a map back to original vertex ids.
//
// oracle.hpp derives the same subcomplex a second way (live replay through
// chk::explore_iis + SdsChain::locate); verify_restriction cross-checks the
// two, which is the PR's main correctness argument.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "model/model.hpp"
#include "protocol/sds_chain.hpp"
#include "topology/arena.hpp"
#include "topology/complex.hpp"

namespace wfc::model {

/// The admissible subcomplex of one chain level, in both engine forms.
struct Restriction {
  /// Pruned level complex: kept vertices in ascending original-id order,
  /// maximal admissible simplices as facets in lexicographic order.
  std::shared_ptr<const topo::ChromaticComplex> complex;
  /// Arena::build(*complex) -- what the kArena engine searches.
  topo::Arena arena;
  /// to_base[pruned vertex id] = vertex id in SDS^level(I).
  std::vector<topo::VertexId> to_base;

  std::uint64_t runs_admitted = 0;   // distinct admissible runs
  std::uint64_t runs_rejected = 0;   // distinct runs the model refused
  std::uint64_t facets_kept = 0;     // maximal simplices of the subcomplex
  std::uint64_t facets_dropped = 0;  // original facets with no admissible run

  [[nodiscard]] bool empty() const {
    return complex == nullptr || complex->num_facets() == 0;
  }
};

/// Recovers the b ordered partitions (round 0 first) that generate the
/// level-`level` facet `facet` (vertex ids of chain.level(level)), and the
/// base facet it subdivides into *base_facet (level-0 vertex ids).  The
/// blocks are ColorSets; every round partitions colors(facet).
std::vector<std::vector<ColorSet>> recover_schedule(
    const proto::SdsChain& chain, int level, std::span<const topo::VertexId> facet,
    topo::Simplex* base_facet = nullptr);

/// Enumerates every distinct run carried by level `level` of `chain`
/// restricted to the facets of `facets_arena` (pass chain.arena(level) for
/// the whole level): full-information runs plus every crash embedding.
/// fn(run, survivors) gets the survivor simplex in `facets_arena` vertex
/// ids; runs with no survivor are skipped.  Runs are deduplicated by
/// signature PER FACET (the same run surfaces from several facets when
/// crashed colors' trailing singletons permute; the caller's set union
/// handles that).
void for_each_run(const proto::SdsChain& chain, int level,
                  const topo::Arena& facets_arena,
                  const std::function<void(const RunDesc&,
                                           const topo::Simplex&)>& fn);

/// Derives the admissible subcomplex of chain level `level` under `model`
/// by pruning the level's arena (see file comment).
Restriction restrict_level(const proto::SdsChain& chain, int level,
                           const Model& model);

/// Window-signature set of the runs of `affine_arena` viewed as a
/// subcomplex of chain level `m` -- the affine task A as input for
/// Model::affine_from_windows.  Iterating A admits a b-round run iff m | b
/// and every m-round window's signature is in this set.
std::set<std::string> affine_task_windows(const proto::SdsChain& chain, int m,
                                          const topo::Arena& affine_arena);

/// ChainBacking over a vector of arenas: how restricted towers (one pruned
/// arena per level) travel as proto::SdsChain through SdsCache and
/// store::ChainStore.
class ArenaVectorBacking final : public proto::ChainBacking {
 public:
  explicit ArenaVectorBacking(std::vector<topo::Arena> arenas)
      : arenas_(std::move(arenas)) {}
  [[nodiscard]] int depth() const override {
    return static_cast<int>(arenas_.size()) - 1;
  }
  [[nodiscard]] topo::Arena arena(int r) const override {
    return arenas_.at(static_cast<std::size_t>(r));
  }

 private:
  std::vector<topo::Arena> arenas_;
};

/// Builds (or extends) the restricted tower for `model` over `full`: level
/// r of the result is the pruned arena of restrict_level(full, r, model).
/// `prior` (may be null) contributes its already-pruned levels unchanged.
/// Totals of runs admitted/rejected across the NEW levels are added to the
/// optional counters.
std::shared_ptr<const proto::SdsChain> restricted_tower(
    const proto::SdsChain& full, int depth, const Model& model,
    const std::shared_ptr<const proto::SdsChain>& prior = nullptr,
    std::uint64_t* runs_admitted = nullptr,
    std::uint64_t* runs_rejected = nullptr);

}  // namespace wfc::model
