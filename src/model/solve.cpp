#include "model/solve.hpp"

#include <utility>

#include "model/restrict.hpp"

namespace wfc::model {

task::LevelRestrictor make_restrictor(std::shared_ptr<const Model> model) {
  if (model == nullptr || model->is_wait_free()) return {};
  return [model = std::move(model)](const proto::SdsChain& chain, int level)
             -> std::optional<task::LevelRestriction> {
    Restriction res = restrict_level(chain, level, *model);
    return task::LevelRestriction{std::move(res.arena),
                                  std::move(res.complex)};
  };
}

task::SolveResult solve_in_model(const task::Task& task, int max_level,
                                 std::shared_ptr<const Model> model,
                                 task::SolveOptions options) {
  options.restrictor = make_restrictor(std::move(model));
  return task::solve(task, max_level, options);
}

task::SolveResult solve_at_level_in_model(const task::Task& task, int level,
                                          std::shared_ptr<const Model> model,
                                          task::SolveOptions options) {
  options.restrictor = make_restrictor(std::move(model));
  return task::solve_at_level(task, level, options);
}

}  // namespace wfc::model
