#include "model/oracle.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/assert.hpp"
#include "topology/arena.hpp"

namespace wfc::model {

namespace {

using topo::Arena;
using topo::Simplex;
using topo::VertexId;

ColorSet map_colors(ColorSet procs, const std::vector<Color>& colors) {
  ColorSet out;
  for (Color p : procs) out = out.with(colors[static_cast<std::size_t>(p)]);
  return out;
}

}  // namespace

RunDesc run_from_execution(int n_sys, const std::vector<Color>& colors,
                           const std::vector<rt::Partition>& schedule,
                           const std::vector<ColorSet>& crashes) {
  WFC_REQUIRE(schedule.size() == crashes.size(),
              "run_from_execution: schedule/crash length mismatch");
  RunDesc run;
  run.n_sys = n_sys;
  ColorSet all;
  for (Color c : colors) all = all.with(c);
  const ColorSet nonpart =
      crashes.empty() ? ColorSet{} : map_colors(crashes.front(), colors);
  run.participants = all.minus(nonpart);
  for (std::size_t r = 0; r < schedule.size(); ++r) {
    if (schedule[r].empty()) {
      // All-crash final round: the remaining processors are silenced with
      // no WriteRead, i.e. they crashed at round r.
      WFC_CHECK(r + 1 == schedule.size(),
                "run_from_execution: empty round not last");
      if (r == 0) break;  // nobody ever wrote
      RunRound rr;
      rr.crashed = map_colors(crashes[r], colors);
      run.rounds.push_back(std::move(rr));
      break;
    }
    RunRound rr;
    for (ColorSet block : schedule[r]) {
      rr.blocks.push_back(map_colors(block, colors));
    }
    if (r >= 1) rr.crashed = map_colors(crashes[r], colors);
    run.rounds.push_back(std::move(rr));
  }
  // A trailing empty round keeps its crash set: dropping it would turn an
  // all-crash execution into a phantom short run WITH survivors.  Such runs
  // have no survivors, so no caller ever hands them to a predicate.
  return run;
}

OracleResult oracle_survivors(const proto::SdsChain& chain, int level,
                              const Model& model) {
  WFC_REQUIRE(level >= 0 && level <= chain.depth(),
              "oracle_survivors: level out of range");
  const Arena base = chain.arena(0);
  const int n_sys = base.n_colors();
  OracleResult out;

  std::map<std::string, bool> verdicts;
  if (level == 0) {
    // Zero rounds leave the explorer nothing to schedule, but level-0 runs
    // still differ by WHO participated: enumerate participation subsets,
    // exactly like the arena path.
    for (std::uint32_t f = 0; f < base.num_facets(); ++f) {
      const std::span<const VertexId> fv = base.facet(f);
      ColorSet colors;
      for (VertexId v : fv) {
        colors = colors.with(static_cast<Color>(base.colors()[v]));
      }
      for (std::uint32_t sub = colors.mask(); sub != 0;
           sub = (sub - 1) & colors.mask()) {
        const ColorSet part(sub);
        RunDesc run;
        run.n_sys = n_sys;
        run.participants = part;
        auto [it, fresh] = verdicts.try_emplace(run.signature(), false);
        if (fresh) it->second = model.admits(run);
        if (!it->second) continue;
        Simplex sx;
        for (VertexId v : fv) {
          if (part.contains(static_cast<Color>(base.colors()[v]))) {
            sx.push_back(v);
          }
        }
        out.survivors.insert(topo::make_simplex(std::move(sx)));
        ++out.executions;
      }
    }
    for (const auto& [sig, admitted] : verdicts) {
      (admitted ? out.runs_admitted : out.runs_rejected).insert(sig);
    }
    return out;
  }
  for (std::uint32_t f = 0; f < base.num_facets(); ++f) {
    const std::span<const VertexId> fv = base.facet(f);
    std::vector<Color> colors;
    std::vector<VertexId> start(static_cast<std::size_t>(kMaxColors), 0);
    for (VertexId v : fv) {
      colors.push_back(static_cast<Color>(base.colors()[v]));
    }
    std::sort(colors.begin(), colors.end());
    for (VertexId v : fv) {
      const Color c = static_cast<Color>(base.colors()[v]);
      const auto it = std::find(colors.begin(), colors.end(), c);
      start[static_cast<std::size_t>(it - colors.begin())] = v;
    }

    chk::ExploreOptions opt;
    opt.n_procs = static_cast<int>(colors.size());
    opt.rounds = level;
    opt.max_crashes = opt.n_procs;

    const auto stats = chk::explore_iis<VertexId>(
        opt,
        [&](int p) { return start[static_cast<std::size_t>(p)]; },
        [&](int p, int round, const rt::IisSnapshot<VertexId>& snap) {
          Simplex seen;
          seen.reserve(snap.size());
          for (const auto& [writer, vid] : snap) seen.push_back(vid);
          return rt::Step<VertexId>::cont(chain.locate(
              round + 1, colors[static_cast<std::size_t>(p)],
              topo::make_simplex(std::move(seen))));
        },
        [&](const chk::Execution<VertexId>& exec) {
          const RunDesc run =
              run_from_execution(n_sys, colors, exec.schedule, exec.crashes);
          if (run.survivors().empty()) return;
          auto [it, fresh] = verdicts.try_emplace(run.signature(), false);
          if (fresh) it->second = model.admits(run);
          if (!it->second) return;
          Simplex sx;
          for (int p = 0; p < opt.n_procs; ++p) {
            if (!exec.crashed.contains(static_cast<Color>(p))) {
              sx.push_back(exec.value[static_cast<std::size_t>(p)]);
            }
          }
          out.survivors.insert(topo::make_simplex(std::move(sx)));
        });
    out.executions += stats.executions;
  }
  for (const auto& [sig, admitted] : verdicts) {
    (admitted ? out.runs_admitted : out.runs_rejected).insert(sig);
  }
  return out;
}

bool verify_restriction(const proto::SdsChain& chain, int level,
                        const Model& model, const Restriction& restriction,
                        std::string* detail) {
  const OracleResult oracle = oracle_survivors(chain, level, model);

  // Maximal oracle survivors.
  std::set<Simplex> oracle_maximal;
  for (const Simplex& s : oracle.survivors) {
    bool covered = false;
    for (const Simplex& t : oracle.survivors) {
      if (t.size() > s.size() &&
          std::includes(t.begin(), t.end(), s.begin(), s.end())) {
        covered = true;
        break;
      }
    }
    if (!covered) oracle_maximal.insert(s);
  }

  std::set<Simplex> pruned_facets;
  if (!restriction.empty()) {
    for (std::uint32_t f = 0; f < restriction.arena.num_facets(); ++f) {
      Simplex mapped;
      for (VertexId v : restriction.arena.facet(f)) {
        mapped.push_back(restriction.to_base[v]);
      }
      pruned_facets.insert(topo::make_simplex(std::move(mapped)));
    }
  }

  auto fail = [&](const std::string& msg) {
    if (detail != nullptr) *detail = msg;
    return false;
  };
  if (oracle_maximal != pruned_facets) {
    std::ostringstream os;
    os << "model=" << model.name() << " level=" << level
       << ": survivor complexes disagree (oracle " << oracle_maximal.size()
       << " maximal vs arena " << pruned_facets.size() << " facets)";
    for (const Simplex& s : oracle_maximal) {
      if (pruned_facets.find(s) == pruned_facets.end()) {
        os << "; oracle-only " << topo::to_string(s);
      }
    }
    for (const Simplex& s : pruned_facets) {
      if (oracle_maximal.find(s) == oracle_maximal.end()) {
        os << "; arena-only " << topo::to_string(s);
      }
    }
    return fail(os.str());
  }
  if (oracle.runs_admitted.size() != restriction.runs_admitted ||
      oracle.runs_rejected.size() != restriction.runs_rejected) {
    std::ostringstream os;
    os << "model=" << model.name() << " level=" << level
       << ": run counts disagree (oracle " << oracle.runs_admitted.size()
       << "/" << oracle.runs_rejected.size() << " vs arena "
       << restriction.runs_admitted << "/" << restriction.runs_rejected
       << ")";
    return fail(os.str());
  }
  if (detail != nullptr) detail->clear();
  return true;
}

std::function<bool(const std::vector<rt::Partition>&,
                   const std::vector<ColorSet>&)>
run_filter(std::shared_ptr<const Model> model, int n_sys) {
  if (model == nullptr || model->is_wait_free()) return {};
  std::vector<Color> colors;
  colors.reserve(static_cast<std::size_t>(n_sys));
  for (int c = 0; c < n_sys; ++c) colors.push_back(static_cast<Color>(c));
  return [model = std::move(model), n_sys, colors = std::move(colors)](
             const std::vector<rt::Partition>& schedule,
             const std::vector<ColorSet>& crashes) {
    return model->admits(
        run_from_execution(n_sys, colors, schedule, crashes));
  };
}

}  // namespace wfc::model
