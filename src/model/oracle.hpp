// Oracle-path derivation of the admissible subcomplex: live replay.
//
// Where restrict.hpp PRUNES the already-built level (parsing vertex keys
// backwards), this path runs the full-information protocol FORWARDS through
// chk::explore_iis -- the paper's schedule quantifier with crash injection
// -- and interns each survivor's final view into the chain with
// SdsChain::locate.  The two derivations share no code beyond the Model
// predicate itself, so agreement of their maximal-simplex sets (and of
// their admitted/rejected run-signature sets) is a strong end-to-end check
// of the schedule recovery, the crash embedding, and the pruning.
// verify_restriction() performs exactly that comparison; model_test runs it
// over every instance of the separation suite.
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "check/explorer.hpp"
#include "model/model.hpp"
#include "model/restrict.hpp"
#include "protocol/sds_chain.hpp"

namespace wfc::model {

/// Builds the RunDesc of one explored execution: `colors[i]` is the system
/// color driven by explorer processor i (pass the identity for whole-system
/// explorations).  Round-0 crashes become non-participation; an all-crash
/// trailing empty round is dropped.
RunDesc run_from_execution(int n_sys, const std::vector<Color>& colors,
                           const std::vector<rt::Partition>& schedule,
                           const std::vector<ColorSet>& crashes);

struct OracleResult {
  /// Survivor simplices of admissible runs (level-`level` vertex ids).
  std::set<topo::Simplex> survivors;
  std::set<std::string> runs_admitted;   // distinct admissible signatures
  std::set<std::string> runs_rejected;   // distinct refused signatures
  std::uint64_t executions = 0;          // explorer executions replayed
};

/// Enumerates every crash-placed execution of `level` IIS rounds over every
/// base facet of the chain's input complex, replays the full-information
/// protocol, and keeps the survivor simplices of the runs `model` admits.
OracleResult oracle_survivors(const proto::SdsChain& chain, int level,
                              const Model& model);

/// Cross-checks restrict_level() against oracle_survivors(): the maximal
/// oracle survivor simplices must equal the restriction's facets (mapped to
/// chain-level vertex ids via to_base), and the admitted/rejected run
/// counts must agree.  Returns true on agreement; otherwise false with a
/// human-readable discrepancy in *detail (if non-null).
bool verify_restriction(const proto::SdsChain& chain, int level,
                        const Model& model, const Restriction& restriction,
                        std::string* detail = nullptr);

/// Adapter for chk::ExploreOptions::run_filter: keeps exactly the
/// executions of an n_sys-processor exploration that `model` admits.
/// Null or wait_free models yield an empty function (no filtering).
std::function<bool(const std::vector<rt::Partition>&,
                   const std::vector<ColorSet>&)>
run_filter(std::shared_ptr<const Model> model, int n_sys);

}  // namespace wfc::model
