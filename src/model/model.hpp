// wfc::model -- model-parameterized solvability (the generalized ACT view).
//
// The paper characterizes wait-free computability: a task is solvable iff a
// color-preserving simplicial map exists on SDS^b(I) for some b, where the
// quantification runs over ALL bounded IIS runs.  Gafni-Kuznetsov-Manolescu
// observe that the same machinery characterizes any model defined as a
// SUBSET of IIS runs, and Gafni-He-Kuznetsov-Rieutord show the canonical
// sub-models (k-concurrency, k-set-consensus memories) are captured by
// AFFINE TASKS -- subcomplexes of an iterated standard chromatic
// subdivision whose iteration generates exactly the admissible runs.
//
// A Model here is a predicate over bounded IIS runs (RunDesc below).  The
// admissible subcomplex of SDS^b(I) is the downward closure of the SURVIVOR
// simplices of admissible runs: for each run, the level-b vertices of the
// processors that took all b rounds.  Crashes and partial participation use
// the crash embedding of chk::explore_iis -- a processor that crashes at
// round r is indistinguishable from one scheduled alone in the last block
// of every round >= r, so every crashy run's survivor simplex is a face of
// an ordinary facet (restrict.hpp recovers them by walking vertex keys).
//
// Built-ins:
//   wait_free            identity; admits every run.  The solver bypasses
//                        restriction entirely for this model, so results
//                        are bit-for-bit identical to a model-less query.
//   t_resilient(t)       at most t failures total (non-participation +
//                        crashes), and no process ever advances before
//                        n - t processes have written the current round:
//                        every round's first block has size >= n - t.  This
//                        is the per-round fairness subset IS_{n,t} (the
//                        IRIS rendition).  t = n-1 coincides with
//                        wait_free; t = 0 is the fully-synchronous model.
//                        For 0 < t < n-1 it is a STRICT sub-model of a
//                        genuine t-resilient adversary: waiting snapshots
//                        are nested but not immediate, so the faithful
//                        t-resilient model is an affine task over
//                        multi-round windows (use affine_from_windows).
//   k_concurrency(k)     some linear extension of the run's block events
//                        keeps at most k processes simultaneously active
//                        (active = between first and last WriteRead;
//                        crashes truncate the interval).  k = 1 is the
//                        sequential / obstruction-free-like core, k = n is
//                        wait_free on full-participation runs.
//   k_obstruction_free(k) eventually-k-concurrent: some suffix of the run's
//                        rounds is k-concurrent.  A bounded rendition of
//                        the GHKR k-OF adversary -- sound as a run subset
//                        (it contains every k-concurrent run) but bounded
//                        executions cannot express "eventually", so only
//                        containment properties are asserted by tests.
//   affine(m; M)         the affine-task iteration view: a run of b rounds
//                        is admissible iff m divides b and every m-round
//                        window is admissible under M (windows re-rooted as
//                        standalone runs).  With M's level-m survivor
//                        complex as the affine task A, this is the GHKR
//                        "iterate A" model; affine_from_windows() builds
//                        the same thing from an explicit A given as a
//                        topo::Arena subcomplex (restrict.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/color_set.hpp"

namespace wfc::model {

/// One executed IIS round of a run: the ordered partition of the processors
/// that performed a WriteRead this round, plus the processors newly crashed
/// at this round (they write neither this round nor later).
struct RunRound {
  std::vector<ColorSet> blocks;
  ColorSet crashed;
};

/// A bounded IIS run over a system of n_sys processors.  Non-participation
/// is exclusion from `participants` (a processor silenced before its first
/// write); `rounds[r].crashed` holds participants silenced at round r >= 1.
/// Runs whose every participant crashes have no survivors and never
/// contribute simplices, so predicates may assume every round has at least
/// one block.
struct RunDesc {
  int n_sys = 0;
  ColorSet participants;
  std::vector<RunRound> rounds;

  /// Participants silenced during the run.
  [[nodiscard]] ColorSet crashed() const;
  /// participants minus crashed(): the processors that took every round.
  [[nodiscard]] ColorSet survivors() const;
  /// Canonical textual form; equal runs (and only equal runs) render
  /// equally, so this doubles as the dedupe / affine-window key.
  [[nodiscard]] std::string signature() const;
};

/// Minimum over all linear extensions of the run's block events of the
/// maximum number of simultaneously active processors, counting only rounds
/// >= from_round.  A processor is active from its first to its last counted
/// event; block order within a round and per-processor round order are the
/// only precedence constraints.  0 when the (suffix of the) run has no
/// events.
[[nodiscard]] int run_concurrency(const RunDesc& run, int from_round = 0);

class Model {
 public:
  enum class Kind {
    kWaitFree,
    kTResilient,
    kKConcurrency,
    kKObstructionFree,
    kAffine,
  };

  static std::shared_ptr<const Model> wait_free();
  static std::shared_ptr<const Model> t_resilient(int t);
  static std::shared_ptr<const Model> k_concurrency(int k);
  static std::shared_ptr<const Model> k_obstruction_free(int k);
  /// Window model: m divides the round count and every m-round window is
  /// admissible under `inner` (see file comment).
  static std::shared_ptr<const Model> affine(int m,
                                             std::shared_ptr<const Model> inner);
  /// Window model over an explicit admissible-window signature set (the
  /// signatures of the affine task's runs; built by
  /// model::affine_task_windows in restrict.hpp).
  static std::shared_ptr<const Model> affine_from_windows(
      std::string name, int m, std::set<std::string> windows);

  /// Parses a wire-format model name: "wait_free", "t_resilient(T)",
  /// "k_concurrency(K)", "k_obstruction_free(K)", or "affine(M;<inner>)".
  /// Throws std::invalid_argument on anything else.
  static std::shared_ptr<const Model> parse(const std::string& name);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] int param() const noexcept { return param_; }
  [[nodiscard]] bool is_wait_free() const noexcept {
    return kind_ == Kind::kWaitFree;
  }
  /// Cache / store / memo key mixer: 0 for wait_free (so model-less keys
  /// are unchanged), FNV-1a of the canonical name otherwise.
  [[nodiscard]] std::uint64_t tag() const noexcept { return tag_; }
  /// Window length for affine models, 0 otherwise.
  [[nodiscard]] int window() const noexcept { return window_; }

  [[nodiscard]] bool admits(const RunDesc& run) const;

 private:
  Model(Kind kind, int param, std::string name);

  Kind kind_;
  int param_;
  std::string name_;
  std::uint64_t tag_ = 0;
  int window_ = 0;
  std::shared_ptr<const Model> inner_;        // affine(m; inner)
  std::set<std::string> windows_;             // affine_from_windows
  bool has_window_set_ = false;
};

/// Mixes a model tag into a complex fingerprint (splitmix64 over the xor);
/// tag 0 -- wait_free -- returns `fingerprint` unchanged, so pre-model keys
/// and files keep their addresses.
[[nodiscard]] std::uint64_t mix_fingerprint(std::uint64_t fingerprint,
                                            std::uint64_t model_tag);

}  // namespace wfc::model
