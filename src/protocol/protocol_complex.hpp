// Protocol complexes built from actual executions (paper §3.1, §3.6).
//
// These generators are deliberately independent of the combinatorial SDS
// construction in topology/subdivision.hpp: they enumerate executions with
// the runtime's executors and intern (processor, local state) pairs as
// vertices, with one simplex per execution.  Comparing the result against
// SDS^b(I) is the machine-checked content of Lemmas 3.2 and 3.3 (E1/E2).
#pragma once

#include "protocol/sds_chain.hpp"
#include "topology/complex.hpp"
#include "topology/simplicial_map.hpp"

namespace wfc::proto {

/// The b-round full-information IIS protocol complex over `input`:
/// enumerate all executions in which every processor takes exactly b
/// WriteReads; vertices are (color, final view content); a set of vertices
/// is a simplex iff co-produced by one execution.  Views are interned by
/// content, so identical local states arising from different executions
/// collapse -- exactly the paper's definition.
topo::ChromaticComplex build_iis_protocol_complex(
    const topo::ChromaticComplex& input, int rounds);

/// The k-shot SWMR atomic-snapshot full-information protocol complex over
/// n_procs processors with inputs = processor ids (Figure 1 semantics):
/// enumerate all interleavings of 2k appearances per processor.  Grows very
/// fast; keep n_procs <= 3 and k <= 2.
topo::ChromaticComplex build_snapshot_protocol_complex(int n_procs, int shots);

struct IsomorphismReport {
  bool vertex_bijection = false;
  bool facets_match = false;
  std::size_t protocol_vertices = 0;
  std::size_t sds_vertices = 0;
  std::size_t protocol_facets = 0;
  std::size_t sds_facets = 0;

  [[nodiscard]] bool ok() const noexcept {
    return vertex_bijection && facets_match;
  }
};

/// Machine check of Lemma 3.3 (and 3.2 for rounds == 1): the execution-
/// derived IIS protocol complex is isomorphic to SDS^rounds(input), via the
/// canonical correspondence "view seen at round r" -> "SDS vertex".
/// The isomorphism is rebuilt by replaying executions against an SdsChain.
IsomorphismReport verify_iis_complex_is_sds(
    const topo::ChromaticComplex& input, int rounds);

}  // namespace wfc::proto
