#include "protocol/sds_chain.hpp"

namespace wfc::proto {

SdsChain::SdsChain(topo::ChromaticComplex input, int depth) {
  WFC_REQUIRE(depth >= 0, "SdsChain: negative depth");
  levels_.reserve(static_cast<std::size_t>(depth) + 1);
  levels_.push_back(
      std::make_shared<const topo::ChromaticComplex>(std::move(input)));
  for (int r = 1; r <= depth; ++r) {
    levels_.push_back(std::make_shared<const topo::ChromaticComplex>(
        topo::standard_chromatic_subdivision(*levels_.back())));
  }
}

SdsChain::SdsChain(const SdsChain& other, int depth) {
  WFC_REQUIRE(depth >= 0, "SdsChain: negative depth");
  const int shared = std::min(depth, other.depth());
  levels_.reserve(static_cast<std::size_t>(depth) + 1);
  levels_.assign(other.levels_.begin(),
                 other.levels_.begin() + (shared + 1));
  for (int r = shared + 1; r <= depth; ++r) {
    levels_.push_back(std::make_shared<const topo::ChromaticComplex>(
        topo::standard_chromatic_subdivision(*levels_.back())));
  }
}

const topo::ChromaticComplex& SdsChain::level(int r) const {
  WFC_REQUIRE(r >= 0 && r < static_cast<int>(levels_.size()),
              "SdsChain::level: out of range");
  return *levels_[static_cast<std::size_t>(r)];
}

topo::VertexId SdsChain::locate(int r, Color c,
                                const topo::Simplex& seen) const {
  WFC_REQUIRE(r >= 1 && r < static_cast<int>(levels_.size()),
              "SdsChain::locate: level out of range");
  const topo::VertexId v =
      levels_[static_cast<std::size_t>(r)]->find_vertex(
          topo::sds_vertex_key(c, seen));
  WFC_CHECK(v != topo::kNoVertex,
            "SdsChain::locate: live view is not a vertex of SDS^r -- "
            "Lemma 3.2 violation");
  return v;
}

}  // namespace wfc::proto
