#include "protocol/sds_chain.hpp"

namespace wfc::proto {

SdsChain::SdsChain(topo::ChromaticComplex input, int depth) : depth_(depth) {
  WFC_REQUIRE(depth >= 0, "SdsChain: negative depth");
  levels_.resize(static_cast<std::size_t>(depth) + 1);
  arenas_.resize(static_cast<std::size_t>(depth) + 1);
  levels_[0] =
      std::make_shared<const topo::ChromaticComplex>(std::move(input));
  for (int r = 1; r <= depth; ++r) {
    levels_[static_cast<std::size_t>(r)] =
        std::make_shared<const topo::ChromaticComplex>(
            topo::standard_chromatic_subdivision(
                *levels_[static_cast<std::size_t>(r) - 1]));
  }
}

SdsChain::SdsChain(const SdsChain& other, int depth) : depth_(depth) {
  WFC_REQUIRE(depth >= 0, "SdsChain: negative depth");
  const int shared = std::min(depth, other.depth_);
  levels_.resize(static_cast<std::size_t>(depth) + 1);
  arenas_.resize(static_cast<std::size_t>(depth) + 1);
  backing_ = other.backing_;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    for (int r = 0; r <= shared; ++r) {
      levels_[static_cast<std::size_t>(r)] =
          other.levels_[static_cast<std::size_t>(r)];
      arenas_[static_cast<std::size_t>(r)] =
          other.arenas_[static_cast<std::size_t>(r)];
    }
  }
  // Extension beyond the shared prefix subdivides from our own (possibly
  // backed) top; the constructor has exclusive access, no lock needed.
  for (int r = shared + 1; r <= depth; ++r) {
    const topo::ChromaticComplex& below = ensure_level(r - 1);
    levels_[static_cast<std::size_t>(r)] =
        std::make_shared<const topo::ChromaticComplex>(
            topo::standard_chromatic_subdivision(below));
  }
}

SdsChain::SdsChain(std::shared_ptr<const ChainBacking> backing)
    : depth_(backing ? backing->depth() : 0), backing_(std::move(backing)) {
  WFC_REQUIRE(backing_ != nullptr, "SdsChain: null backing");
  WFC_REQUIRE(depth_ >= 0, "SdsChain: backing with negative depth");
  levels_.resize(static_cast<std::size_t>(depth_) + 1);
  arenas_.resize(static_cast<std::size_t>(depth_) + 1);
}

const topo::ChromaticComplex& SdsChain::ensure_level(int r) const {
  auto& slot = levels_[static_cast<std::size_t>(r)];
  if (!slot) {
    if (backing_ && r <= backing_->depth()) {
      slot = std::make_shared<const topo::ChromaticComplex>(
          backing_->arena(r).materialize());
    } else {
      WFC_CHECK(r > 0, "SdsChain: level 0 has no source");
      slot = std::make_shared<const topo::ChromaticComplex>(
          topo::standard_chromatic_subdivision(ensure_level(r - 1)));
    }
  }
  return *slot;
}

const topo::Arena& SdsChain::ensure_arena(int r) const {
  auto& slot = arenas_[static_cast<std::size_t>(r)];
  if (!slot) {
    if (backing_ && r <= backing_->depth()) {
      slot = std::make_shared<topo::Arena>(backing_->arena(r));
    } else {
      slot = std::make_shared<topo::Arena>(topo::Arena::build(ensure_level(r)));
    }
  }
  return *slot;
}

const topo::ChromaticComplex& SdsChain::level(int r) const {
  WFC_REQUIRE(r >= 0 && r <= depth_, "SdsChain::level: out of range");
  std::lock_guard<std::mutex> lock(mu_);
  return ensure_level(r);
}

topo::Arena SdsChain::arena(int r) const {
  WFC_REQUIRE(r >= 0 && r <= depth_, "SdsChain::arena: out of range");
  std::lock_guard<std::mutex> lock(mu_);
  return ensure_arena(r);
}

std::size_t SdsChain::level_vertex_count(int r) const {
  WFC_REQUIRE(r >= 0 && r <= depth_,
              "SdsChain::level_vertex_count: out of range");
  std::lock_guard<std::mutex> lock(mu_);
  const auto& slot = levels_[static_cast<std::size_t>(r)];
  if (slot) return slot->num_vertices();
  if (backing_ && r <= backing_->depth()) {
    return backing_->arena(r).num_vertices();
  }
  return ensure_level(r).num_vertices();
}

topo::VertexId SdsChain::locate(int r, Color c,
                                const topo::Simplex& seen) const {
  WFC_REQUIRE(r >= 1 && r <= depth_, "SdsChain::locate: level out of range");
  const topo::VertexId v = level(r).find_vertex(topo::sds_vertex_key(c, seen));
  WFC_CHECK(v != topo::kNoVertex,
            "SdsChain::locate: live view is not a vertex of SDS^r -- "
            "Lemma 3.2 violation");
  return v;
}

}  // namespace wfc::proto
