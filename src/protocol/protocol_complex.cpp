#include "protocol/protocol_complex.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "runtime/sim_iis.hpp"
#include "runtime/sim_snapshot.hpp"

namespace wfc::proto {

namespace {

using topo::ChromaticComplex;
using topo::Simplex;
using topo::VertexId;

/// Interning table for full-information views.  A view is either a base
/// view (an input vertex) or (color, sorted list of child view ids); two
/// local states are equal iff their recursive content is equal, which the
/// table guarantees by hashing the flattened key.
class ViewTable {
 public:
  explicit ViewTable(const ChromaticComplex& input) : input_(&input) {}

  /// Base view of input vertex v.
  int base(VertexId v) {
    std::string key = "base:" + std::to_string(v);
    auto [it, inserted] = index_.emplace(std::move(key), next_id());
    if (inserted) {
      rows_.push_back(Row{input_->vertex(v).color,
                          ColorSet::single(input_->vertex(v).color),
                          Simplex{v}});
    }
    return it->second;
  }

  /// Composite view: processor of color `c` saw `seen` = (color, view id),
  /// id-sorted.
  int composite(Color c, const std::vector<std::pair<int, int>>& seen) {
    std::ostringstream os;
    os << "view:" << c << ':';
    for (const auto& [col, vid] : seen) os << col << '=' << vid << ';';
    auto [it, inserted] = index_.emplace(os.str(), next_id());
    if (inserted) {
      Row row;
      row.color = c;
      for (const auto& [col, vid] : seen) {
        const Row& child = rows_[static_cast<std::size_t>(vid)];
        row.colors_seen = row.colors_seen.unite(child.colors_seen);
        row.inputs_seen.insert(row.inputs_seen.end(),
                               child.inputs_seen.begin(),
                               child.inputs_seen.end());
      }
      row.inputs_seen = topo::make_simplex(std::move(row.inputs_seen));
      rows_.push_back(std::move(row));
    }
    return it->second;
  }

  [[nodiscard]] Color color(int id) const {
    return rows_[static_cast<std::size_t>(id)].color;
  }
  [[nodiscard]] ColorSet colors_seen(int id) const {
    return rows_[static_cast<std::size_t>(id)].colors_seen;
  }
  [[nodiscard]] const Simplex& inputs_seen(int id) const {
    return rows_[static_cast<std::size_t>(id)].inputs_seen;
  }

 private:
  struct Row {
    Color color = 0;
    ColorSet colors_seen;
    Simplex inputs_seen;
  };

  int next_id() { return static_cast<int>(rows_.size()); }

  const ChromaticComplex* input_;
  std::map<std::string, int> index_;
  std::vector<Row> rows_;
};

/// Enumerates all `rounds`-round full-participation IIS executions over each
/// facet of `input`, reporting each execution's final views through `emit`.
/// emit(final_view_ids_by_position, colors_by_position).
void enumerate_final_views(
    const ChromaticComplex& input, int rounds, ViewTable& views,
    const std::function<void(const std::vector<int>&, const std::vector<Color>&)>&
        emit) {
  WFC_REQUIRE(rounds >= 1, "protocol complex: need at least one round");
  for (const Simplex& facet : input.facets()) {
    const int n_active = static_cast<int>(facet.size());
    std::vector<Color> colors(facet.size());
    for (std::size_t pos = 0; pos < facet.size(); ++pos) {
      colors[pos] = input.vertex(facet[pos]).color;
    }
    std::vector<int> final_views(facet.size(), -1);

    std::function<int(int)> init = [&](int pos) {
      return views.base(facet[static_cast<std::size_t>(pos)]);
    };
    std::function<rt::Step<int>(int, int, const rt::IisSnapshot<int>&)>
        on_view = [&](int pos, int round, const rt::IisSnapshot<int>& snap) {
          std::vector<std::pair<int, int>> seen;
          seen.reserve(snap.size());
          for (const auto& [q, vid] : snap) {
            seen.emplace_back(colors[static_cast<std::size_t>(q)], vid);
          }
          std::sort(seen.begin(), seen.end());
          const int id = views.composite(colors[static_cast<std::size_t>(pos)],
                                         seen);
          if (round + 1 == rounds) {
            final_views[static_cast<std::size_t>(pos)] = id;
            return rt::Step<int>::halt();
          }
          return rt::Step<int>::cont(id);
        };

    rt::for_each_iis_execution<int>(
        n_active, rounds, init, on_view,
        [&](const std::vector<rt::Partition>&) { emit(final_views, colors); });
  }
}

}  // namespace

ChromaticComplex build_iis_protocol_complex(const ChromaticComplex& input,
                                            int rounds) {
  ViewTable views(input);
  ChromaticComplex out(input.n_colors());
  enumerate_final_views(
      input, rounds, views,
      [&](const std::vector<int>& finals, const std::vector<Color>&) {
        Simplex facet;
        facet.reserve(finals.size());
        for (int vid : finals) {
          WFC_CHECK(vid >= 0, "protocol complex: missing final view");
          facet.push_back(out.intern_vertex(
              views.color(vid), "v" + std::to_string(vid),
              views.colors_seen(vid), {}, views.inputs_seen(vid)));
        }
        out.add_facet(topo::make_simplex(std::move(facet)));
      });
  return out;
}

ChromaticComplex build_snapshot_protocol_complex(int n_procs, int shots) {
  WFC_REQUIRE(n_procs >= 1 && n_procs <= 4,
              "snapshot protocol complex: n_procs too large to enumerate");
  WFC_REQUIRE(shots >= 1, "snapshot protocol complex: shots must be >= 1");

  // Interned full-information states for the atomic-snapshot model.
  // Base state of p: "p".  After a scan: (p, cell contents as state ids).
  struct Row {
    Color color;
    ColorSet colors_seen;
  };
  std::map<std::string, int> index;
  std::vector<Row> rows;
  auto intern = [&](Color p, const std::string& key, ColorSet seen) {
    auto [it, inserted] = index.emplace(key, static_cast<int>(rows.size()));
    if (inserted) rows.push_back(Row{p, seen});
    return it->second;
  };

  ChromaticComplex out(n_procs);
  rt::for_each_interleaving(n_procs, 2 * shots, [&](const std::vector<Color>&
                                                        sched) {
    std::vector<int> final_state(static_cast<std::size_t>(n_procs), -1);
    std::function<int(int)> init = [&](int p) {
      return intern(p, "in:" + std::to_string(p), ColorSet::single(p));
    };
    std::function<rt::Step<int>(int, int, const rt::MemoryView<int>&)> on_scan =
        [&](int p, int k, const rt::MemoryView<int>& view) {
          std::ostringstream os;
          os << "st:" << p << ':';
          ColorSet seen = ColorSet::single(p);
          for (std::size_t q = 0; q < view.size(); ++q) {
            if (view[q].has_value()) {
              os << q << '=' << *view[q] << ';';
              seen = seen.unite(rows[static_cast<std::size_t>(*view[q])]
                                    .colors_seen);
            }
          }
          const int id = intern(p, os.str(), seen);
          if (k == shots) {
            final_state[static_cast<std::size_t>(p)] = id;
            return rt::Step<int>::halt();
          }
          return rt::Step<int>::cont(id);
        };
    rt::run_snapshot_model<int>(n_procs, sched, init, on_scan);

    Simplex facet;
    for (int p = 0; p < n_procs; ++p) {
      const int sid = final_state[static_cast<std::size_t>(p)];
      WFC_CHECK(sid >= 0, "snapshot complex: processor did not finish");
      facet.push_back(out.intern_vertex(rows[static_cast<std::size_t>(sid)].color,
                                        "s" + std::to_string(sid),
                                        rows[static_cast<std::size_t>(sid)]
                                            .colors_seen));
    }
    out.add_facet(topo::make_simplex(std::move(facet)));
  });
  return out;
}

IsomorphismReport verify_iis_complex_is_sds(const ChromaticComplex& input,
                                            int rounds) {
  IsomorphismReport rep;
  SdsChain chain(input, rounds);

  // Replay all executions, tracking (view id, SDS vertex id) side by side.
  // Value = (protocol view id, vertex id in chain.level(round)).
  using Pair = std::pair<int, VertexId>;
  ViewTable views(input);
  std::map<int, VertexId> corr;
  bool consistent = true;
  std::set<Simplex> proto_facets;  // as sorted sets of SDS vertex ids
  std::set<int> final_view_ids;

  for (const Simplex& facet : input.facets()) {
    const int n_active = static_cast<int>(facet.size());
    std::vector<Color> colors(facet.size());
    for (std::size_t pos = 0; pos < facet.size(); ++pos) {
      colors[pos] = input.vertex(facet[pos]).color;
    }
    std::vector<Pair> finals(facet.size(), {-1, topo::kNoVertex});

    std::function<Pair(int)> init = [&](int pos) {
      const VertexId iv = facet[static_cast<std::size_t>(pos)];
      return Pair{views.base(iv), iv};
    };
    std::function<rt::Step<Pair>(int, int, const rt::IisSnapshot<Pair>&)>
        on_view = [&](int pos, int round, const rt::IisSnapshot<Pair>& snap) {
          std::vector<std::pair<int, int>> seen_views;
          Simplex seen_sds;
          for (const auto& [q, pr] : snap) {
            seen_views.emplace_back(colors[static_cast<std::size_t>(q)],
                                    pr.first);
            seen_sds.push_back(pr.second);
          }
          std::sort(seen_views.begin(), seen_views.end());
          const Color c = colors[static_cast<std::size_t>(pos)];
          const int vid = views.composite(c, seen_views);
          const VertexId sid =
              chain.locate(round + 1, c, topo::make_simplex(seen_sds));
          auto [it, inserted] = corr.emplace(vid, sid);
          if (!inserted && it->second != sid) consistent = false;
          if (round + 1 == rounds) {
            finals[static_cast<std::size_t>(pos)] = {vid, sid};
            return rt::Step<Pair>::halt();
          }
          return rt::Step<Pair>::cont({vid, sid});
        };

    rt::for_each_iis_execution<Pair>(
        n_active, rounds, init, on_view,
        [&](const std::vector<rt::Partition>&) {
          Simplex f;
          for (const auto& [vid, sid] : finals) {
            final_view_ids.insert(vid);
            f.push_back(sid);
          }
          proto_facets.insert(topo::make_simplex(std::move(f)));
        });
  }

  // Injectivity: distinct views must land on distinct SDS vertices.
  std::set<VertexId> images;
  for (int vid : final_view_ids) images.insert(corr.at(vid));

  const ChromaticComplex& sds = chain.top();
  rep.protocol_vertices = final_view_ids.size();
  rep.sds_vertices = sds.num_vertices();
  rep.protocol_facets = proto_facets.size();
  rep.sds_facets = sds.num_facets();
  rep.vertex_bijection = consistent &&
                         images.size() == final_view_ids.size() &&
                         final_view_ids.size() == sds.num_vertices();

  std::set<Simplex> sds_facets(sds.facets().begin(), sds.facets().end());
  rep.facets_match = proto_facets == sds_facets;
  return rep;
}

}  // namespace wfc::proto
