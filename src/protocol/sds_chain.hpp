// SdsChain: the tower I, SDS(I), SDS^2(I), ..., SDS^b(I) with vertex
// location for live executions.
//
// A processor running the full-information IIS protocol can always name its
// own vertex: at round r it holds a set of (color, vertex-at-level-r) pairs
// -- its immediate snapshot -- and its level-(r+1) vertex is the interned
// SDS vertex (own color, that set).  This is the operational content of
// Lemma 3.3: local states after r rounds ARE vertices of SDS^r(I).  The
// solvability checker compiles decision maps against the top level, and the
// runtime looks itself up here to decide.
//
// Levels are held through shared_ptr and immutable once built, so chains
// over the same input can SHARE them: SdsChain(prefix, depth) reuses every
// already-built level of `prefix` and only subdivides beyond its top (or
// merely re-points at a prefix of the levels when depth <= prefix.depth()).
// Iterated subdivision dominates every workload in this library; the
// service-layer cache (src/service) leans on this to compute SDS^k(I) once
// per input across queries and levels.
#pragma once

#include <memory>
#include <vector>

#include "topology/complex.hpp"
#include "topology/subdivision.hpp"

namespace wfc::proto {

class SdsChain {
 public:
  /// Builds levels 0..depth; level r is SDS^r(input).
  SdsChain(topo::ChromaticComplex input, int depth);

  /// Shares levels with `other`: levels 0..min(depth, other.depth()) are the
  /// same objects (no copy, no recomputation); levels beyond other.depth()
  /// are freshly subdivided.  Both extension (depth > other.depth()) and
  /// truncation (depth < other.depth()) are O(shared levels) pointer copies.
  SdsChain(const SdsChain& other, int depth);

  [[nodiscard]] int depth() const noexcept {
    return static_cast<int>(levels_.size()) - 1;
  }

  /// Level r complex; r = 0 is the input complex.
  [[nodiscard]] const topo::ChromaticComplex& level(int r) const;

  /// Top level, SDS^depth(input).
  [[nodiscard]] const topo::ChromaticComplex& top() const {
    return level(depth());
  }

  /// The vertex of level `r` (r >= 1) for a processor of color `c` whose
  /// round-(r-1) immediate snapshot contained exactly the level-(r-1)
  /// vertices `seen` (canonical simplex).  Throws std::logic_error if no
  /// such vertex exists -- i.e. if `seen` is not a legal view, which would
  /// contradict Lemma 3.2.
  [[nodiscard]] topo::VertexId locate(int r, Color c,
                                      const topo::Simplex& seen) const;

 private:
  std::vector<std::shared_ptr<const topo::ChromaticComplex>> levels_;
};

}  // namespace wfc::proto
