// SdsChain: the tower I, SDS(I), SDS^2(I), ..., SDS^b(I) with vertex
// location for live executions.
//
// A processor running the full-information IIS protocol can always name its
// own vertex: at round r it holds a set of (color, vertex-at-level-r) pairs
// -- its immediate snapshot -- and its level-(r+1) vertex is the interned
// SDS vertex (own color, that set).  This is the operational content of
// Lemma 3.3: local states after r rounds ARE vertices of SDS^r(I).  The
// solvability checker compiles decision maps against the top level, and the
// runtime looks itself up here to decide.
//
// Levels are held through shared_ptr and immutable once built, so chains
// over the same input can SHARE them: SdsChain(prefix, depth) reuses every
// already-built level of `prefix` and only subdivides beyond its top (or
// merely re-points at a prefix of the levels when depth <= prefix.depth()).
// Iterated subdivision dominates every workload in this library; the
// service-layer cache (src/service) leans on this to compute SDS^k(I) once
// per input across queries and levels.
//
// A chain may also be BACKED: constructed over a ChainBacking that can hand
// out each level as a flat topo::Arena (in practice an mmap'ed region of
// the persistent chain store, shared read-only across processes).  Backed
// chains materialize ChromaticComplex levels lazily and only on demand --
// the arena-core solver (tasks/arena_search) runs straight off the mapped
// spans, so a warm restart never rebuilds or even copies the tower.
// `arena(r)` is the uniform accessor: zero-copy for backed chains, built
// once and cached for in-memory ones.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "topology/arena.hpp"
#include "topology/complex.hpp"
#include "topology/subdivision.hpp"

namespace wfc::proto {

/// Source of pre-serialized chain levels (store/chain_store.cpp implements
/// this over an mmap).  `arena(r)` must be cheap -- a view, not a build.
class ChainBacking {
 public:
  virtual ~ChainBacking() = default;
  [[nodiscard]] virtual int depth() const = 0;
  [[nodiscard]] virtual topo::Arena arena(int r) const = 0;
};

class SdsChain {
 public:
  /// Builds levels 0..depth eagerly; level r is SDS^r(input).
  SdsChain(topo::ChromaticComplex input, int depth);

  /// Shares levels with `other`: levels 0..min(depth, other.depth()) are the
  /// same objects (no copy, no recomputation); levels beyond other.depth()
  /// are freshly subdivided.  Both extension (depth > other.depth()) and
  /// truncation (depth < other.depth()) are O(shared levels) pointer copies.
  SdsChain(const SdsChain& other, int depth);

  /// Adopts pre-serialized levels; depth() == backing->depth().  Levels
  /// materialize lazily, arenas are zero-copy views into the backing.
  explicit SdsChain(std::shared_ptr<const ChainBacking> backing);

  [[nodiscard]] int depth() const noexcept { return depth_; }

  /// Level r complex; r = 0 is the input complex.  Backed chains
  /// materialize the level on first access (thread-safe, cached).
  [[nodiscard]] const topo::ChromaticComplex& level(int r) const;

  /// Top level, SDS^depth(input).
  [[nodiscard]] const topo::ChromaticComplex& top() const {
    return level(depth_);
  }

  /// Flat arena form of level r: a view into the backing for backed
  /// chains, else built on first access and cached.  The returned Arena is
  /// a cheap value copy and stays valid independent of this chain.
  [[nodiscard]] topo::Arena arena(int r) const;

  /// Vertex count of level r WITHOUT materializing it (reads the arena
  /// header for backed levels).  Lets the cache weigh lazily-backed chains
  /// without forcing the rebuild that laziness exists to avoid.
  [[nodiscard]] std::size_t level_vertex_count(int r) const;

  /// The vertex of level `r` (r >= 1) for a processor of color `c` whose
  /// round-(r-1) immediate snapshot contained exactly the level-(r-1)
  /// vertices `seen` (canonical simplex).  Throws std::logic_error if no
  /// such vertex exists -- i.e. if `seen` is not a legal view, which would
  /// contradict Lemma 3.2.
  [[nodiscard]] topo::VertexId locate(int r, Color c,
                                      const topo::Simplex& seen) const;

 private:
  // Both helpers require mu_ held (or exclusive access in a constructor);
  // slots are written once and never reassigned, so references handed out
  // under the lock stay valid after it is released.
  const topo::ChromaticComplex& ensure_level(int r) const;
  const topo::Arena& ensure_arena(int r) const;

  int depth_ = 0;
  std::shared_ptr<const ChainBacking> backing_;
  mutable std::mutex mu_;
  mutable std::vector<std::shared_ptr<const topo::ChromaticComplex>> levels_;
  mutable std::vector<std::shared_ptr<const topo::Arena>> arenas_;
};

}  // namespace wfc::proto
