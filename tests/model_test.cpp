// wfc::model -- model-parameterized solvability.
//
// The load-bearing suite here is the SEPARATIONS + CROSS-CHECK pair:
//   * known separations reproduce (consensus is FLP-unsolvable wait-free
//     but trivially solvable 0-resilient; the t-resilient and k-concurrency
//     set-consensus ladders land exactly where the literature puts them);
//   * on every instance the pruned-arena solver path and the live
//     chk::explore_iis oracle derive the SAME admissible subcomplex, so a
//     verdict never depends on which of the two derivations ran.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "model/model.hpp"
#include "model/oracle.hpp"
#include "model/restrict.hpp"
#include "model/solve.hpp"
#include "protocol/sds_chain.hpp"
#include "tasks/canonical.hpp"
#include "tasks/solvability.hpp"
#include "topology/subdivision.hpp"

namespace wfc::model {
namespace {

using task::Solvability;

std::shared_ptr<const Model> M(const std::string& name) {
  return Model::parse(name);
}

Solvability verdict(const task::Task& t, int max_level,
                    const std::shared_ptr<const Model>& m,
                    task::SolveEngine engine = task::SolveEngine::kArena) {
  task::SolveOptions opt;
  opt.engine = engine;
  return solve_in_model(t, max_level, m, opt).status;
}

// ---------------------------------------------------------------- RunDesc

RunDesc make_run(int n_sys, ColorSet participants,
                 std::vector<RunRound> rounds) {
  RunDesc run;
  run.n_sys = n_sys;
  run.participants = participants;
  run.rounds = std::move(rounds);
  return run;
}

TEST(RunConcurrency, SequentialRunIsOne) {
  // [{a}, {b}, {c}]: fire in order, one active at a time.
  const RunDesc run =
      make_run(3, {0, 1, 2}, {RunRound{{{0}, {1}, {2}}, {}}});
  EXPECT_EQ(run_concurrency(run), 1);
}

TEST(RunConcurrency, CentralRunIsN) {
  const RunDesc run = make_run(3, {0, 1, 2}, {RunRound{{{0, 1, 2}}, {}}});
  EXPECT_EQ(run_concurrency(run), 3);
}

TEST(RunConcurrency, StaircaseIsTwo) {
  // [{ab}, {c}]: c only becomes active after a and b finished.
  const RunDesc run = make_run(3, {0, 1, 2}, {RunRound{{{0, 1}, {2}}, {}}});
  EXPECT_EQ(run_concurrency(run), 2);
}

TEST(RunConcurrency, TwoRoundOverlapForcedByRoundOrder) {
  // Round 0 [{a},{b}], round 1 [{b},{a}]: a's two events bracket both of
  // b's, so a stays active across b's interval -- concurrency 2.
  const RunDesc run = make_run(2, {0, 1},
                               {RunRound{{{0}, {1}}, {}},
                                RunRound{{{1}, {0}}, {}}});
  EXPECT_EQ(run_concurrency(run), 2);
}

TEST(RunConcurrency, TwoRoundSequentialStaysOne) {
  // Round 0 [{a},{b}], round 1 [{a},{b}] -- but a's round-1 step may run
  // before b's round-0 step?  No: block order within round 1 forces a
  // before b, and a's round 1 needs only a's round 0.  a can finish both
  // rounds before b starts: concurrency 1.
  const RunDesc run = make_run(2, {0, 1},
                               {RunRound{{{0}, {1}}, {}},
                                RunRound{{{0}, {1}}, {}}});
  EXPECT_EQ(run_concurrency(run), 1);
}

TEST(RunDescTest, SignatureDistinguishesCrashFromNonParticipation) {
  const RunDesc crashy = make_run(
      2, {0, 1}, {RunRound{{{0}, {1}}, {}}, RunRound{{{0}}, {1}}});
  const RunDesc solo = make_run(2, {0}, {RunRound{{{0}}, {}},
                                         RunRound{{{0}}, {}}});
  EXPECT_NE(crashy.signature(), solo.signature());
  EXPECT_EQ(crashy.survivors(), solo.survivors());
}

// ------------------------------------------------------------ Model::parse

TEST(ModelParse, RoundTripsCanonicalNames) {
  for (const std::string name :
       {"wait_free", "t_resilient(0)", "t_resilient(2)", "k_concurrency(1)",
        "k_obstruction_free(2)", "affine(2;t_resilient(0))"}) {
    EXPECT_EQ(M(name)->name(), name);
  }
}

TEST(ModelParse, RejectsGarbage) {
  for (const std::string name :
       {"", "waitfree", "t_resilient", "t_resilient(-1)", "k_concurrency(0)",
        "affine(0;wait_free)", "affine(2;nope)", "t_resilient(1ticks)"}) {
    EXPECT_THROW((void)Model::parse(name), std::invalid_argument) << name;
  }
}

TEST(ModelParse, TagIsZeroOnlyForWaitFree) {
  EXPECT_EQ(M("wait_free")->tag(), 0u);
  EXPECT_NE(M("t_resilient(1)")->tag(), 0u);
  EXPECT_NE(M("t_resilient(1)")->tag(), M("t_resilient(2)")->tag());
  EXPECT_EQ(mix_fingerprint(42, 0), 42u);
  EXPECT_NE(mix_fingerprint(42, M("t_resilient(1)")->tag()), 42u);
}

// ------------------------------------------------- arena path vs oracle

/// Every suite instance must agree between the two derivations.
void expect_cross_checked(const proto::SdsChain& chain, int level,
                          const std::shared_ptr<const Model>& m) {
  const Restriction res = restrict_level(chain, level, *m);
  std::string detail;
  EXPECT_TRUE(verify_restriction(chain, level, *m, res, &detail))
      << m->name() << " @ level " << level << ": " << detail;
}

TEST(CrossCheck, BaseSimplexAllModels) {
  const proto::SdsChain chain(topo::base_simplex(3), 2);
  for (const char* name :
       {"t_resilient(0)", "t_resilient(1)", "t_resilient(2)",
        "k_concurrency(1)", "k_concurrency(2)", "k_concurrency(3)",
        "k_obstruction_free(1)", "k_obstruction_free(2)",
        "affine(1;t_resilient(0))", "affine(2;k_concurrency(2))"}) {
    for (int level = 0; level <= 2; ++level) {
      expect_cross_checked(chain, level, M(name));
    }
  }
}

TEST(CrossCheck, MultiVertexInputComplex) {
  // Consensus inputs: several vertices per color, several base facets.
  const task::ConsensusTask task(2, 2);
  const proto::SdsChain chain(task.input(), 2);
  for (const char* name :
       {"t_resilient(0)", "t_resilient(1)", "k_concurrency(1)",
        "k_obstruction_free(1)"}) {
    for (int level = 0; level <= 2; ++level) {
      expect_cross_checked(chain, level, M(name));
    }
  }
}

TEST(RestrictLevel, WaitFreeKeepsEveryFacet) {
  const proto::SdsChain chain(topo::base_simplex(3), 1);
  const Restriction res = restrict_level(chain, 1, *M("wait_free"));
  EXPECT_EQ(res.arena.num_facets(), chain.arena(1).num_facets());
  EXPECT_EQ(res.facets_dropped, 0u);
  EXPECT_EQ(res.runs_rejected, 0u);
  EXPECT_GT(res.runs_admitted, 0u);
}

TEST(RestrictLevel, ZeroResilientKeepsOnlyCentralRuns) {
  // t_resilient(0) at level 1: the only admissible run per base facet is
  // the central one-block run, so exactly one facet per base facet stays.
  const proto::SdsChain chain(topo::base_simplex(3), 1);
  const Restriction res = restrict_level(chain, 1, *M("t_resilient(0)"));
  EXPECT_EQ(res.arena.num_facets(), 1u);
  EXPECT_EQ(res.runs_admitted, 1u);
}

TEST(RestrictLevel, AffineRejectsOffWindowLevels) {
  const proto::SdsChain chain(topo::base_simplex(2), 1);
  const Restriction res =
      restrict_level(chain, 1, *M("affine(2;t_resilient(0))"));
  EXPECT_TRUE(res.empty());
  EXPECT_EQ(res.runs_admitted, 0u);
}

TEST(AffineWindows, ExplicitWindowSetMatchesPredicate) {
  // affine(1; t_resilient(0)) rebuilt from its own level-1 affine task's
  // window signatures must carve identical subcomplexes at level 2.
  const proto::SdsChain chain(topo::base_simplex(3), 2);
  const auto inner = M("t_resilient(0)");
  const Restriction task_level = restrict_level(chain, 1, *inner);
  const auto windows = affine_task_windows(chain, 1, task_level.arena);
  EXPECT_FALSE(windows.empty());
  const auto predicate = Model::affine(1, inner);
  const auto explicit_model =
      Model::affine_from_windows("affine_explicit", 1, windows);

  for (int level = 0; level <= 2; ++level) {
    const Restriction a = restrict_level(chain, level, *predicate);
    const Restriction b = restrict_level(chain, level, *explicit_model);
    std::set<topo::Simplex> fa, fb;
    for (std::uint32_t f = 0; f < a.arena.num_facets(); ++f) {
      topo::Simplex s;
      for (topo::VertexId v : a.arena.facet(f)) s.push_back(a.to_base[v]);
      fa.insert(topo::make_simplex(std::move(s)));
    }
    for (std::uint32_t f = 0; f < b.arena.num_facets(); ++f) {
      topo::Simplex s;
      for (topo::VertexId v : b.arena.facet(f)) s.push_back(b.to_base[v]);
      fb.insert(topo::make_simplex(std::move(s)));
    }
    EXPECT_EQ(fa, fb) << "level " << level;
    expect_cross_checked(chain, level, explicit_model);
  }
}

// ------------------------------------------------------------- separations

TEST(Separations, WaitFreeMatchesUnrestrictedBitForBit) {
  const task::ConsensusTask consensus(2, 2);
  const task::KSetConsensusTask kset(3, 2);
  // kset stops at level 1: its level-2 wait-free search exhausts the node
  // budget (tens of seconds) without changing what this test pins down.
  const std::vector<std::pair<const task::Task*, int>> cases = {
      {&consensus, 2}, {&kset, 1}};
  for (const auto& [t, max_level] : cases) {
    const task::SolveResult plain = task::solve(*t, max_level);
    const task::SolveResult modeled =
        solve_in_model(*t, max_level, M("wait_free"));
    EXPECT_EQ(plain.status, modeled.status) << t->name();
    EXPECT_EQ(plain.level, modeled.level) << t->name();
    EXPECT_EQ(plain.nodes_explored, modeled.nodes_explored) << t->name();
    EXPECT_EQ(plain.decision, modeled.decision) << t->name();
  }
}

TEST(Separations, ConsensusWaitFreeVsZeroResilient) {
  // The paper's motivating separation: FLP kills wait-free consensus at
  // every level, but with no failures (synchronous runs only) one closing
  // round decides.
  const task::ConsensusTask consensus(2, 2);
  EXPECT_EQ(verdict(consensus, 2, M("wait_free")), Solvability::kUnsolvable);
  const task::SolveResult r = solve_in_model(consensus, 2, M("t_resilient(0)"));
  EXPECT_EQ(r.status, Solvability::kSolvable);
  EXPECT_EQ(r.level, 1);
  EXPECT_EQ(r.chain, nullptr);  // restricted decisions index the pruned level
}

TEST(Separations, TResilientLadder) {
  // The t-resilient k-set ladder, as visible through the per-round fairness
  // rendition IS_{n,t}.  Sperner kills wait-free 2-set consensus for 3
  // processors already at the first subdivision (level 2 only burns the node
  // budget without changing the verdict), one tolerated failure is enough
  // slack to decide 2 values, and with no failures at all (synchronous runs)
  // even consensus closes in one round.
  const task::KSetConsensusTask kset32(3, 2);
  const task::KSetConsensusTask kset31(3, 1);
  EXPECT_EQ(verdict(kset32, 1, M("wait_free")), Solvability::kUnsolvable);
  EXPECT_EQ(verdict(kset32, 2, M("t_resilient(1)")), Solvability::kSolvable);
  EXPECT_EQ(verdict(kset31, 2, M("t_resilient(0)")), Solvability::kSolvable);
}

TEST(Separations, PerRoundFairnessIsStrongerThanTrueResilience) {
  // A subtlety worth pinning as a regression test: IS_{n,t} (every round's
  // first block has >= n-t processors) is a STRICT sub-model of genuine
  // t-resilience for 0 < t < n-1.  Write-then-wait-for-(n-t) snapshots are
  // nested as sets but not immediate -- p in view(q) does not force
  // view(p) subseteq view(q) -- so an asynchronous t-resilient system
  // cannot implement one IS_{n,t} round per round.  The gap is visible in
  // the complex: a size->=2 round-1 view pins its members' round-0 views,
  // so after one fair round the round-0 schedule is common knowledge, the
  // level-2 admissible subcomplex disconnects per round-0 schedule, and
  // consensus becomes solvable per component -- which genuine 1-resilience
  // famously forbids (FLP).  At level 1 the fair subcomplex is still
  // connected through the central vertices and consensus stays unsolvable.
  // The faithful t-resilient model is an affine task over multi-round
  // windows; express it via Model::affine_from_windows.
  const task::KSetConsensusTask kset31(3, 1);
  EXPECT_EQ(verdict(kset31, 1, M("t_resilient(1)")),
            Solvability::kUnsolvable);
  const task::SolveResult two = solve_in_model(kset31, 2, M("t_resilient(1)"));
  EXPECT_EQ(two.status, Solvability::kSolvable);
  EXPECT_EQ(two.level, 2);
}

TEST(Separations, KConcurrencyLadder) {
  // k-set consensus is exactly as strong as k-concurrency [GHKR]: j-set
  // consensus is solvable under k_concurrency(k) iff j >= k.
  const task::KSetConsensusTask kset32(3, 2);
  const task::KSetConsensusTask kset31(3, 1);
  EXPECT_EQ(verdict(kset32, 2, M("k_concurrency(2)")),
            Solvability::kSolvable);
  EXPECT_EQ(verdict(kset31, 2, M("k_concurrency(2)")),
            Solvability::kUnsolvable);
  EXPECT_EQ(verdict(kset31, 2, M("k_concurrency(1)")),
            Solvability::kSolvable);
  // n-concurrency admits every run: same verdict as wait-free (level 1,
  // where the Sperner refutation is exhaustive and cheap).
  EXPECT_EQ(verdict(kset32, 1, M("k_concurrency(3)")),
            Solvability::kUnsolvable);
}

TEST(Separations, EnginesAgreeOnRestrictedSearch) {
  const task::ConsensusTask consensus(2, 2);
  for (const char* name : {"t_resilient(0)", "k_concurrency(1)"}) {
    const task::SolveResult arena = solve_in_model(
        consensus, 2, M(name));
    task::SolveOptions legacy_opt;
    legacy_opt.engine = task::SolveEngine::kLegacy;
    const task::SolveResult legacy =
        solve_in_model(consensus, 2, M(name), legacy_opt);
    EXPECT_EQ(arena.status, legacy.status) << name;
    EXPECT_EQ(arena.level, legacy.level) << name;
    EXPECT_EQ(arena.nodes_explored, legacy.nodes_explored) << name;
    EXPECT_EQ(arena.decision, legacy.decision) << name;
  }
}

TEST(Separations, ObstructionFreeContainsConcurrency) {
  // Every k-concurrent run has a k-concurrent suffix, so k-OF admits at
  // least as much as k-concurrency: solvable under k-OF(k) implies nothing,
  // but UNSOLVABLE under k-OF(k) implies unsolvable under k_concurrency(k).
  const proto::SdsChain chain(topo::base_simplex(3), 2);
  for (int level = 0; level <= 2; ++level) {
    const Restriction conc = restrict_level(chain, level, *M("k_concurrency(2)"));
    const Restriction of = restrict_level(chain, level,
                                          *M("k_obstruction_free(2)"));
    EXPECT_GE(of.runs_admitted, conc.runs_admitted) << "level " << level;
  }
}

// ------------------------------------------------------- run_filter adapter

TEST(RunFilterAdapter, WaitFreeIsNoFilter) {
  EXPECT_FALSE(run_filter(nullptr, 3));
  EXPECT_FALSE(run_filter(M("wait_free"), 3));
}

TEST(RunFilterAdapter, MatchesModelOnExploredExecutions) {
  // Filtered exploration counts only the runs the model admits -- and that
  // count must equal the oracle's distinct admitted signatures, modulo the
  // explorer emitting equal-signature executions once each here (crash-free
  // plus every crash placement; n=2 keeps them all distinct).
  const auto m = M("t_resilient(0)");
  const auto filter = run_filter(m, 2);
  ASSERT_TRUE(static_cast<bool>(filter));
  chk::ExploreOptions opt;
  opt.n_procs = 2;
  opt.rounds = 2;
  opt.max_crashes = 2;
  std::uint64_t admitted = 0;
  chk::explore_iis<int>(
      opt, [](int p) { return p; },
      [](int, int, const rt::IisSnapshot<int>& snap) {
        return rt::Step<int>::cont(static_cast<int>(snap.size()));
      },
      [&](const chk::Execution<int>& exec) {
        if (filter(exec.schedule, exec.crashes)) ++admitted;
      });
  // t_resilient(0) over 2 procs, 2 rounds: only the central-central run.
  EXPECT_EQ(admitted, 1u);
}

}  // namespace
}  // namespace wfc::model
